"""Setuptools shim.

Kept alongside pyproject.toml so ``pip install -e .`` works in offline
environments that lack the ``wheel`` package (the PEP 660 editable path
needs it; the legacy ``setup.py develop`` path does not).
"""

from setuptools import setup

setup()
