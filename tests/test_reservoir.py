"""Tests for the bounded latency reservoir and its ServiceStats wiring."""

from __future__ import annotations

import pytest

from repro.metrics.reservoir import LatencyReservoir


class TestLatencyReservoir:
    def test_exact_until_capacity(self):
        reservoir = LatencyReservoir(capacity=100)
        for value in range(1, 51):
            reservoir.add(float(value))
        assert len(reservoir) == 50
        assert reservoir.count == 50
        # Nearest-rank over the full population: exact quantiles.
        assert reservoir.quantile(0.50) == 25.0
        assert reservoir.quantile(1.0) == 50.0

    def test_empty_quantile_is_zero(self):
        assert LatencyReservoir().quantile(0.99) == 0.0

    def test_memory_is_bounded(self):
        reservoir = LatencyReservoir(capacity=64)
        for value in range(10_000):
            reservoir.add(float(value))
        assert len(reservoir) == 64
        assert reservoir.count == 10_000

    def test_sample_tracks_population_quantiles(self):
        """On a uniform stream of 10k values, the sampled p50/p99 must
        land inside the population's central region — a loose bound, but
        one that fails loudly if sampling ever becomes biased."""
        reservoir = LatencyReservoir(capacity=512)
        for value in range(10_000):
            reservoir.add(float(value))
        assert 3_000 <= reservoir.quantile(0.50) <= 7_000
        assert reservoir.quantile(0.99) >= 8_000

    def test_deterministic_given_stream(self):
        first = LatencyReservoir(capacity=32)
        second = LatencyReservoir(capacity=32)
        for value in range(1_000):
            first.add(float(value))
            second.add(float(value))
        assert first.values() == second.values()

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            LatencyReservoir(capacity=0)


class TestServiceStatsHardening:
    def _response(self, elapsed: float):
        from repro.mining.patterns import PatternSet
        from repro.metrics.counters import CostCounters
        from repro.service import MineResponse

        return MineResponse(
            tenant="t",
            path="mine",
            absolute_support=5,
            feedstock_support=None,
            patterns=PatternSet(),
            coalesced=False,
            elapsed_seconds=elapsed,
            counters=CostCounters(),
        )

    def test_snapshot_reports_p99(self):
        from repro.service import ServiceStats

        stats = ServiceStats()
        for i in range(100):
            stats.record(self._response(float(i + 1)))
        snapshot = stats.snapshot()
        assert snapshot["latency_p99_s"] == 99.0
        assert snapshot["latency_p50_s"] == 50.0

    def test_latency_memory_is_bounded(self):
        from repro.metrics.reservoir import DEFAULT_RESERVOIR_CAPACITY
        from repro.service import ServiceStats

        stats = ServiceStats()
        for i in range(DEFAULT_RESERVOIR_CAPACITY + 500):
            stats.record(self._response(1.0))
        assert len(stats._latencies) == DEFAULT_RESERVOIR_CAPACITY
        assert stats._latencies.count == DEFAULT_RESERVOIR_CAPACITY + 500

    def test_attach_gauges_merges_into_snapshot(self):
        from repro.service import ServiceStats

        class Source:
            def gauges(self):
                return {"gateway_queue_depth": 3.0}

        stats = ServiceStats()
        stats.attach_gauges(Source())
        assert stats.snapshot()["gateway_queue_depth"] == 3.0
