"""The synthetic traffic generator: determinism, shape, validation."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.data.transactions import TransactionDatabase
from repro.errors import GatewayError
from repro.gateway import TrafficConfig, bursts, synthesize_traffic

DB = TransactionDatabase([[0, 1, 2], [0, 1], [1, 2], [0, 2], [1], [0, 1, 2]])
MENU = [5, 3, 2]


def fingerprint(trace):
    return [
        (
            round(offset, 9),
            req.tenant,
            req.request.support,
            req.priority,
            req.deadline_seconds,
        )
        for offset, req in trace
    ]


class TestDeterminism:
    def test_same_seed_same_trace(self):
        cfg = TrafficConfig(requests=40, seed=9, deadline_fraction=0.4)
        first = synthesize_traffic(DB, MENU, cfg)
        second = synthesize_traffic(DB, MENU, cfg)
        assert fingerprint(first) == fingerprint(second)

    def test_different_seed_different_trace(self):
        a = synthesize_traffic(DB, MENU, TrafficConfig(requests=40, seed=1))
        b = synthesize_traffic(DB, MENU, TrafficConfig(requests=40, seed=2))
        assert fingerprint(a) != fingerprint(b)


class TestShape:
    def test_zipfian_popularity_concentrates_on_low_ranks(self):
        trace = synthesize_traffic(
            DB,
            MENU,
            TrafficConfig(requests=300, tenants=6, zipf_exponent=1.5, seed=3),
        )
        counts = Counter(req.tenant for _, req in trace)
        assert counts["tenant-01"] == max(counts.values())
        assert counts["tenant-01"] > counts.get("tenant-06", 0)

    def test_supports_come_from_the_menu(self):
        trace = synthesize_traffic(DB, MENU, TrafficConfig(requests=50, seed=4))
        assert {req.request.support for _, req in trace} <= set(MENU)

    def test_sessions_walk_supports_downward(self):
        trace = synthesize_traffic(
            DB, MENU, TrafficConfig(requests=60, seed=5, tenants=1)
        )
        # Sessions walk the menu downward one rung at a time, so every
        # descending adjacent pair must be consecutive menu entries; an
        # increase can only be a new session restarting the ladder.
        supports = [req.request.support for _, req in trace]
        for prev, cur in zip(supports, supports[1:]):
            if cur < prev:
                assert MENU.index(cur) == MENU.index(prev) + 1
        assert any(cur < prev for prev, cur in zip(supports, supports[1:]))

    def test_burst_structure(self):
        cfg = TrafficConfig(
            requests=10,
            burst_length=4,
            burst_gap_seconds=1.0,
            within_burst_seconds=0.01,
            seed=6,
        )
        trace = synthesize_traffic(DB, MENU, cfg)
        groups = bursts(trace, gap_threshold_seconds=0.5)
        assert [len(g) for g in groups] == [4, 4, 2]

    def test_deadline_fraction_bounds(self):
        all_deadlines = synthesize_traffic(
            DB,
            MENU,
            TrafficConfig(requests=20, deadline_fraction=1.0, seed=7),
        )
        assert all(
            req.deadline_seconds is not None for _, req in all_deadlines
        )
        none = synthesize_traffic(
            DB, MENU, TrafficConfig(requests=20, deadline_fraction=0.0, seed=7)
        )
        assert all(req.deadline_seconds is None for _, req in none)

    def test_priority_mix_respected(self):
        trace = synthesize_traffic(
            DB,
            MENU,
            TrafficConfig(
                requests=30,
                priority_mix={"interactive": 1.0},
                seed=8,
            ),
        )
        assert {req.priority for _, req in trace} == {"interactive"}


class TestValidation:
    def test_empty_menu_rejected(self):
        with pytest.raises(GatewayError, match="supports"):
            synthesize_traffic(DB, [], TrafficConfig())

    def test_bad_configs_rejected(self):
        with pytest.raises(GatewayError, match="requests"):
            TrafficConfig(requests=0)
        with pytest.raises(GatewayError, match="tenants"):
            TrafficConfig(tenants=0)
        with pytest.raises(GatewayError, match="unknown priority"):
            TrafficConfig(priority_mix={"vip": 1.0})
        with pytest.raises(GatewayError, match="positive share"):
            TrafficConfig(priority_mix={"interactive": 0.0})
        with pytest.raises(GatewayError, match="deadline_fraction"):
            TrafficConfig(deadline_fraction=1.5)
