"""Gateway behavior: batching, admission control, deadlines, lifecycles.

Everything deterministic runs in manual mode (``start=False`` with an
injectable clock) so outcomes are a pure function of the submission
sequence; auto mode gets end-to-end coverage on top.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.data.synthetic import QuestParams, quest_database
from repro.errors import GatewayError, ReproError
from repro.gateway import (
    STATUS_EXPIRED,
    STATUS_REJECTED,
    STATUS_SERVED,
    STATUS_SHED,
    GatewayConfig,
    GatewayRequest,
    MiningGateway,
)
from repro.mining.hmine import mine_hmine
from repro.resilience import (
    REASON_DEADLINE_EXPIRED,
    REASON_GATEWAY_CLOSED,
    REASON_LOAD_SHED,
    REASON_QUEUE_FULL,
)
from repro.service import MineRequest, MiningService, PatternWarehouse


@pytest.fixture
def db():
    return quest_database(
        QuestParams(n_transactions=80, n_items=24, avg_transaction_length=5),
        seed=11,
    )


@pytest.fixture
def service():
    with MiningService(warehouse=PatternWarehouse(), max_workers=2) as svc:
        yield svc


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestBatching:
    def test_one_pump_serves_a_whole_support_ladder(self, db, service):
        gw = MiningGateway(service, start=False)
        requests = [
            MineRequest(db=db, support=s, tenant=f"t{i}")
            for i, s in enumerate((12, 8, 5))
        ]
        futures = [gw.submit(r) for r in requests]
        assert gw.pump_once() == 3
        responses = [f.result() for f in futures]
        for response, request in zip(responses, requests):
            assert response.status == STATUS_SERVED
            assert response.batched and response.batch_size == 3
            assert response.batch_support == 5
            assert response.patterns == mine_hmine(db, request.support)
        assert gw.stats.batches == 1
        assert gw.stats.merged_batches == 1
        assert gw.stats.batched_requests == 3
        gw.close()

    def test_members_share_the_leader_computation(self, db, service):
        gw = MiningGateway(service, start=False)
        responses = gw.execute_many(
            [MineRequest(db=db, support=10), MineRequest(db=db, support=6)]
        )
        assert all(r.response.coalesced for r in responses)
        # One real mine: the gateway's work ledger equals that single
        # computation's cost, not the sum over members.
        assert gw.stats.work_executed > 0
        assert service.stats.computations == 1
        gw.close()

    def test_batching_disabled_serves_one_at_a_time(self, db, service):
        gw = MiningGateway(service, GatewayConfig(batching=False), start=False)
        futures = [
            gw.submit(MineRequest(db=db, support=s)) for s in (10, 7)
        ]
        assert gw.pump_once() == 1
        assert futures[0].done() and not futures[1].done()
        gw.drain()
        assert all(f.result().batch_size == 1 for f in futures)
        assert gw.stats.merged_batches == 0
        gw.close()

    def test_max_batch_size_caps_one_plan(self, db, service):
        gw = MiningGateway(
            service, GatewayConfig(max_batch_size=2), start=False
        )
        futures = [
            gw.submit(MineRequest(db=db, support=s)) for s in (12, 9, 6)
        ]
        assert gw.pump_once() == 2
        assert gw.pump_once() == 1
        sizes = sorted(f.result().batch_size for f in futures)
        assert sizes == [1, 2, 2]
        gw.close()

    def test_incompatible_requests_never_merge(self, db, service):
        other = quest_database(
            QuestParams(n_transactions=40, n_items=16), seed=23
        )
        gw = MiningGateway(service, start=False)
        responses = gw.execute_many(
            [MineRequest(db=db, support=8), MineRequest(db=other, support=8)]
        )
        assert all(not r.batched for r in responses)
        assert gw.stats.batches == 2
        gw.close()


class TestAdmissionControl:
    def test_full_queue_rejects_equal_priority_arrival(self, db, service):
        gw = MiningGateway(
            service, GatewayConfig(max_queue_depth=1), start=False
        )
        kept = gw.submit(MineRequest(db=db, support=10))
        turned_away = gw.submit(MineRequest(db=db, support=8))
        rejected = turned_away.result()
        assert rejected.status == STATUS_REJECTED
        assert rejected.degradation.steps[0].reason == REASON_QUEUE_FULL
        gw.drain()
        assert kept.result().status == STATUS_SERVED
        assert gw.stats.rejected == 1
        gw.close()

    def test_higher_priority_arrival_sheds_queued_batch_work(
        self, db, service
    ):
        gw = MiningGateway(
            service, GatewayConfig(max_queue_depth=1), start=False
        )
        victim = gw.submit(
            GatewayRequest(
                request=MineRequest(db=db, support=10), priority="batch"
            )
        )
        urgent = gw.submit(
            GatewayRequest(
                request=MineRequest(db=db, support=8), priority="interactive"
            )
        )
        shed = victim.result()
        assert shed.status == STATUS_SHED
        assert shed.degradation.steps[0].reason == REASON_LOAD_SHED
        gw.drain()
        assert urgent.result().status == STATUS_SERVED
        assert gw.stats.shed == 1 and gw.stats.served == 1
        gw.close()

    def test_shed_on_full_false_rejects_even_urgent_arrivals(
        self, db, service
    ):
        gw = MiningGateway(
            service,
            GatewayConfig(max_queue_depth=1, shed_on_full=False),
            start=False,
        )
        gw.submit(
            GatewayRequest(
                request=MineRequest(db=db, support=10), priority="batch"
            )
        )
        urgent = gw.submit(
            GatewayRequest(
                request=MineRequest(db=db, support=8), priority="interactive"
            )
        )
        assert urgent.result().status == STATUS_REJECTED
        gw.close()

    def test_queue_gauges_reach_service_snapshot(self, db, service):
        gw = MiningGateway(
            service, GatewayConfig(max_queue_depth=2), start=False
        )
        for support in (12, 9, 6):
            gw.submit(MineRequest(db=db, support=support))
        snapshot = service.stats.snapshot()
        assert snapshot["gateway_queue_depth"] == 2.0
        assert snapshot["gateway_queue_high_water"] == 2.0
        assert snapshot["gateway_rejected"] == 1.0
        gw.drain()
        assert service.stats.snapshot()["gateway_queue_depth"] == 0.0
        gw.close()


class TestDeadlines:
    def test_expired_request_is_rejected_not_mined(self, db, service):
        clock = FakeClock()
        gw = MiningGateway(service, clock=clock, start=False)
        hurried = gw.submit(
            GatewayRequest(
                request=MineRequest(db=db, support=10), deadline_seconds=1.0
            )
        )
        relaxed = gw.submit(MineRequest(db=db, support=10))
        clock.advance(2.0)
        computations_before = service.stats.computations
        gw.drain()
        expired = hurried.result()
        assert expired.status == STATUS_EXPIRED
        assert expired.degradation.steps[0].reason == REASON_DEADLINE_EXPIRED
        assert relaxed.result().status == STATUS_SERVED
        assert gw.stats.expired == 1
        # The expired request cost no mining work.
        assert service.stats.computations == computations_before + 1
        gw.close()

    def test_unexpired_deadline_still_serves(self, db, service):
        clock = FakeClock()
        gw = MiningGateway(service, clock=clock, start=False)
        future = gw.submit(
            GatewayRequest(
                request=MineRequest(db=db, support=10), deadline_seconds=5.0
            )
        )
        clock.advance(1.0)
        gw.drain()
        assert future.result().status == STATUS_SERVED
        gw.close()


class TestSchedulingOrder:
    def test_interactive_dispatches_before_batch(self, db, service):
        gw = MiningGateway(service, GatewayConfig(batching=False), start=False)
        low = gw.submit(
            GatewayRequest(
                request=MineRequest(db=db, support=10), priority="batch"
            )
        )
        high = gw.submit(
            GatewayRequest(
                request=MineRequest(db=db, support=8), priority="interactive"
            )
        )
        gw.pump_once()
        assert high.done() and not low.done()
        gw.drain()
        gw.close()


class TestLifecycle:
    def test_closed_gateway_refuses_submissions(self, db, service):
        gw = MiningGateway(service, start=False)
        gw.close()
        with pytest.raises(GatewayError, match="closed"):
            gw.submit(MineRequest(db=db, support=10))

    def test_manual_close_drains_by_default(self, db, service):
        gw = MiningGateway(service, start=False)
        future = gw.submit(MineRequest(db=db, support=10))
        gw.close()
        assert future.result().status == STATUS_SERVED

    def test_close_without_drain_flushes_as_rejected(self, db, service):
        gw = MiningGateway(service, start=False)
        future = gw.submit(MineRequest(db=db, support=10))
        gw.close(drain=False)
        flushed = future.result()
        assert flushed.status == STATUS_REJECTED
        assert flushed.degradation.steps[0].reason == REASON_GATEWAY_CLOSED

    def test_gateway_never_closes_the_service(self, db, service):
        with MiningGateway(service, start=False):
            pass
        assert service.execute(MineRequest(db=db, support=10)).patterns

    def test_validation_failures_raise_instead_of_queueing(self, db, service):
        gw = MiningGateway(service, start=False)
        with pytest.raises(GatewayError, match="unknown algorithm"):
            gw.submit(MineRequest(db=db, support=10, algorithm="magic"))
        with pytest.raises(GatewayError, match="jobs"):
            gw.submit(MineRequest(db=db, support=10, jobs=0))
        with pytest.raises(GatewayError, match="priority"):
            GatewayRequest(
                request=MineRequest(db=db, support=10), priority="vip"
            )
        with pytest.raises(GatewayError, match="deadline"):
            GatewayRequest(
                request=MineRequest(db=db, support=10), deadline_seconds=0.0
            )
        gw.close()

    def test_config_validation(self):
        with pytest.raises(GatewayError, match="max_queue_depth"):
            GatewayConfig(max_queue_depth=0)
        with pytest.raises(GatewayError, match="max_batch_size"):
            GatewayConfig(max_batch_size=0)
        with pytest.raises(GatewayError, match="max_inflight"):
            GatewayConfig(max_inflight=0)
        with pytest.raises(GatewayError, match="priority"):
            GatewayConfig(default_priority="vip")

    def test_service_failure_propagates_to_every_member(self, db):
        service = MiningService(max_workers=1)
        gw = MiningGateway(service, start=False)
        futures = [
            gw.submit(MineRequest(db=db, support=s)) for s in (10, 7)
        ]
        service.close()  # the pool dies under the gateway's feet
        gw.pump_once()
        for future in futures:
            with pytest.raises(ReproError, match="closed"):
                future.result()
        assert gw.stats.failed == 1

    def test_unserved_response_refuses_patterns(self, db, service):
        gw = MiningGateway(service, start=False)
        future = gw.submit(MineRequest(db=db, support=10))
        gw.close(drain=False)
        with pytest.raises(GatewayError, match="not served"):
            future.result().patterns

    def test_mode_guards(self, db, service):
        manual = MiningGateway(service, start=False)
        with pytest.raises(GatewayError, match="manual"):
            asyncio.run(manual.submit_async(MineRequest(db=db, support=10)))
        manual.close()
        auto = MiningGateway(service)
        with pytest.raises(GatewayError, match="dispatcher"):
            auto.pump_once()
        auto.close()


class TestStats:
    def test_work_basis_latency_recorded_per_class(self, db, service):
        gw = MiningGateway(service, start=False)
        gw.execute_many(
            [
                GatewayRequest(
                    request=MineRequest(db=db, support=10),
                    priority="interactive",
                ),
                MineRequest(db=db, support=7),
            ]
        )
        assert gw.stats.work_quantile("interactive", 0.5) > 0
        assert gw.stats.work_quantile("standard", 0.5) > 0
        assert gw.stats.latency_quantile("standard", 0.99) >= 0
        gauges = gw.stats.gauges()
        assert gauges["gateway_p99_standard_s"] >= 0.0
        assert gauges["gateway_served"] == 2.0
        gw.close()


class TestAutoMode:
    def test_execute_many_end_to_end(self, db, service):
        with MiningGateway(service) as gw:
            requests = [
                MineRequest(db=db, support=s, tenant=f"t{i}")
                for i, s in enumerate((12, 9, 6, 9, 12))
            ]
            responses = gw.execute_many(requests)
            for response, request in zip(responses, requests):
                assert response.status == STATUS_SERVED
                assert response.patterns == mine_hmine(db, request.support)

    def test_submit_async_awaits_the_same_future(self, db, service):
        with MiningGateway(service) as gw:

            async def go():
                return await gw.execute_many_async(
                    [
                        MineRequest(db=db, support=10),
                        MineRequest(db=db, support=7),
                    ]
                )

            responses = asyncio.run(go())
            assert [r.status for r in responses] == [STATUS_SERVED] * 2
            assert responses[1].patterns == mine_hmine(db, 7)

    def test_close_drains_queued_work(self, db, service):
        gw = MiningGateway(service, GatewayConfig(max_inflight=1))
        futures = [
            gw.submit(MineRequest(db=db, support=s)) for s in (12, 9, 6)
        ]
        gw.close()
        assert all(f.result().status == STATUS_SERVED for f in futures)
