"""Pure data-structure tests for the priority/fairness request queue."""

from __future__ import annotations

import pytest

from repro.data.transactions import TransactionDatabase
from repro.errors import GatewayError
from repro.gateway import GatewayRequest, PriorityRequestQueue, QueueEntry
from repro.service import MineRequest

DB = TransactionDatabase([[0, 1, 2], [0, 1], [1, 2], [0, 2]])

_SEQ = [0]


def entry(
    tenant: str = "a",
    priority: str = "standard",
    deadline: float | None = None,
    enqueued_at: float = 0.0,
    support: int = 2,
) -> QueueEntry:
    _SEQ[0] += 1
    return QueueEntry(
        gateway_request=GatewayRequest(
            request=MineRequest(db=DB, support=support, tenant=tenant),
            priority=priority,
            deadline_seconds=deadline,
        ),
        seq=_SEQ[0],
        enqueued_at=enqueued_at,
    )


class TestPriorityOrder:
    def test_best_class_serves_first(self):
        q = PriorityRequestQueue()
        batch = entry(priority="batch")
        interactive = entry(priority="interactive")
        standard = entry(priority="standard")
        for e in (batch, standard, interactive):
            q.push(e)
        assert [q.pop().seq for _ in range(3)] == [
            interactive.seq,
            standard.seq,
            batch.seq,
        ]
        assert q.pop() is None

    def test_fifo_within_one_tenant_and_class(self):
        q = PriorityRequestQueue()
        first, second, third = entry(), entry(), entry()
        for e in (first, second, third):
            q.push(e)
        assert [q.pop().seq for _ in range(3)] == [
            first.seq,
            second.seq,
            third.seq,
        ]

    def test_fifo_mode_ignores_priority(self):
        q = PriorityRequestQueue(fifo=True)
        batch = entry(priority="batch")
        interactive = entry(priority="interactive")
        q.push(batch)
        q.push(interactive)
        assert q.pop().seq == batch.seq
        assert q.pop().seq == interactive.seq


class TestFairness:
    def test_equal_weights_interleave(self):
        q = PriorityRequestQueue()
        for _ in range(6):
            q.push(entry(tenant="hog"))
        for _ in range(2):
            q.push(entry(tenant="small"))
        first_four = [q.pop().tenant for _ in range(4)]
        assert first_four.count("hog") == 2
        assert first_four.count("small") == 2

    def test_weighted_share_without_starvation(self):
        q = PriorityRequestQueue(tenant_weights={"heavy": 3.0})
        for _ in range(8):
            q.push(entry(tenant="light"))
        for _ in range(8):
            q.push(entry(tenant="heavy"))
        first_eight = [q.pop().tenant for _ in range(8)]
        assert first_eight.count("heavy") == 6  # 3:1 weighted share
        assert first_eight.count("light") == 2  # ...but never starved

    def test_residual_credit_forfeited_when_tenant_drains(self):
        q = PriorityRequestQueue(tenant_weights={"burst": 100.0})
        q.push(entry(tenant="burst"))
        q.push(entry(tenant="other"))
        assert q.pop().tenant == "burst"
        # A fresh burst arrival must not inherit the huge unused credit.
        q.push(entry(tenant="burst"))
        tenants = [q.pop().tenant for _ in range(2)]
        assert set(tenants) == {"burst", "other"}

    def test_invalid_weights_and_quantum_rejected(self):
        with pytest.raises(GatewayError, match="weight"):
            PriorityRequestQueue(tenant_weights={"a": 0.0})
        with pytest.raises(GatewayError, match="quantum"):
            PriorityRequestQueue(quantum=0.0)


class TestAdmissionHelpers:
    def test_shed_picks_youngest_of_worst_lane(self):
        q = PriorityRequestQueue()
        older = entry(priority="batch")
        younger = entry(priority="batch")
        standard = entry(priority="standard")
        for e in (older, younger, standard):
            q.push(e)
        victim = q.shed_worse_than(0)  # an interactive arrival
        assert victim is not None and victim.seq == younger.seq
        assert q.depth == 2

    def test_shed_requires_strictly_lower_priority(self):
        q = PriorityRequestQueue()
        q.push(entry(priority="standard"))
        assert q.shed_worse_than(1) is None  # equal rank never sheds
        assert q.shed_worse_than(2) is None  # nothing below batch
        assert q.depth == 1

    def test_fifo_mode_never_sheds(self):
        q = PriorityRequestQueue(fifo=True)
        q.push(entry(priority="batch"))
        assert q.shed_worse_than(0) is None

    def test_high_water_tracks_peak_depth(self):
        q = PriorityRequestQueue()
        for _ in range(3):
            q.push(entry())
        q.pop()
        q.push(entry())
        assert q.depth == 3
        assert q.high_water == 3


class TestBatchExtraction:
    def test_take_compatible_crosses_lanes_in_arrival_order(self):
        q = PriorityRequestQueue()
        a = entry(tenant="a", priority="batch", support=3)
        b = entry(tenant="b", priority="interactive", support=2)
        c = entry(tenant="c", priority="standard", support=4)
        for e in (a, b, c):
            q.push(e)
        key = a.gateway_request.batch_key()
        taken = q.take_compatible(key)
        assert [e.seq for e in taken] == [a.seq, b.seq, c.seq]
        assert q.depth == 0

    def test_take_compatible_limit_requeues_overflow(self):
        q = PriorityRequestQueue()
        entries = [entry(tenant=f"t{i}") for i in range(4)]
        for e in entries:
            q.push(e)
        key = entries[0].gateway_request.batch_key()
        taken = q.take_compatible(key, limit=2)
        assert [e.seq for e in taken] == [entries[0].seq, entries[1].seq]
        assert q.depth == 2
        remaining = q.take_compatible(key)
        assert [e.seq for e in remaining] == [entries[2].seq, entries[3].seq]

    def test_incompatible_requests_stay_queued(self):
        other_db = TransactionDatabase([[5, 6], [6, 7]])
        q = PriorityRequestQueue()
        here = entry(tenant="a")
        _SEQ[0] += 1
        there = QueueEntry(
            gateway_request=GatewayRequest(
                request=MineRequest(db=other_db, support=1, tenant="b")
            ),
            seq=_SEQ[0],
            enqueued_at=0.0,
        )
        q.push(here)
        q.push(there)
        taken = q.take_compatible(here.gateway_request.batch_key())
        assert [e.seq for e in taken] == [here.seq]
        assert q.depth == 1


class TestDeadlines:
    def test_purge_expired_removes_in_seq_order(self):
        q = PriorityRequestQueue()
        live = entry(deadline=10.0, enqueued_at=0.0)
        dead_late = entry(deadline=1.0, enqueued_at=0.0)
        dead_early = entry(deadline=0.5, enqueued_at=0.0)
        for e in (live, dead_late, dead_early):
            q.push(e)
        expired = q.purge_expired(now=2.0)
        assert [e.seq for e in expired] == [dead_late.seq, dead_early.seq]
        assert q.depth == 1

    def test_next_deadline_is_earliest(self):
        q = PriorityRequestQueue()
        q.push(entry(deadline=5.0, enqueued_at=1.0))
        q.push(entry(deadline=2.0, enqueued_at=1.0))
        q.push(entry())  # no deadline
        assert q.next_deadline() == 3.0

    def test_drain_returns_everything_in_arrival_order(self):
        q = PriorityRequestQueue()
        entries = [
            entry(priority=p) for p in ("batch", "interactive", "standard")
        ]
        for e in entries:
            q.push(e)
        drained = q.drain()
        assert [e.seq for e in drained] == [e.seq for e in entries]
        assert q.depth == 0 and len(q) == 0
