"""The gateway's tentpole invariant: batched serving is bit-identical.

For hypothesis-generated databases and support ladders, a group of
compatible requests served through one gateway batch (one mine at the
group-minimum support, members served by ``filter_min_support``) must
equal — pattern for pattern, support count for support count — the
responses an isolated synchronous :class:`MiningService` produces for
the same requests, across miner × strategy × backend × warehouse
representation (closed / NDI).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.transactions import TransactionDatabase
from repro.gateway import MiningGateway
from repro.service import MineRequest, MiningService, PatternWarehouse

small_databases = st.lists(
    st.lists(st.integers(0, 7), min_size=1, max_size=6),
    min_size=2,
    max_size=16,
)


@given(
    transactions=small_databases,
    supports=st.lists(st.integers(1, 8), min_size=2, max_size=5),
    algorithm=st.sampled_from(["apriori", "eclat", "fpgrowth", "hmine"]),
    strategy=st.sampled_from(["mcp", "mlp"]),
    backend=st.sampled_from(["python", "bitset"]),
    representation=st.sampled_from(["closed", "ndi"]),
)
@settings(max_examples=25, deadline=None)
def test_batched_group_equals_independent_serving(
    transactions, supports, algorithm, strategy, backend, representation
):
    db = TransactionDatabase(transactions)
    requests = [
        MineRequest(
            db=db,
            support=support,
            tenant=f"tenant-{i}",
            algorithm=algorithm,
            strategy=strategy,
            backend=backend,
        )
        for i, support in enumerate(supports)
    ]

    with MiningService(
        warehouse=PatternWarehouse(representation=representation),
        max_workers=1,
    ) as service:
        gateway = MiningGateway(service, start=False)
        batched = gateway.execute_many(requests)
        gateway.close()

    with MiningService(
        warehouse=PatternWarehouse(representation=representation),
        max_workers=1,
    ) as reference:
        for response, request in zip(batched, requests):
            expected = reference.execute(request)
            assert response.status == "served"
            assert response.patterns == expected.patterns
            assert (
                response.response.absolute_support == expected.absolute_support
            )


@given(
    transactions=small_databases,
    supports=st.lists(st.integers(1, 6), min_size=3, max_size=6),
)
@settings(max_examples=15, deadline=None)
def test_one_submission_wave_is_one_computation(transactions, supports):
    """However long the ladder, a single queued cohort mines exactly once."""
    db = TransactionDatabase(transactions)
    with MiningService(warehouse=None, max_workers=1) as service:
        gateway = MiningGateway(service, start=False)
        gateway.execute_many(
            [MineRequest(db=db, support=s) for s in supports]
        )
        assert service.stats.computations == 1
        assert gateway.stats.batches == 1
        gateway.close()
