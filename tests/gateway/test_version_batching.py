"""Version-aware batching: two versions of one tenant's evolving
database must never share a gateway batch, even when the underlying
rows coincide — a shared mine would serve one of them a stale or
premature pattern set."""

from __future__ import annotations

from repro.data.transactions import TransactionDatabase
from repro.data.versioned import DatabaseDelta, VersionedDatabase
from repro.gateway import MiningGateway
from repro.gateway.request import GatewayRequest
from repro.mining.hmine import mine_hmine
from repro.service import MineRequest, MiningService, PatternWarehouse


def _db():
    return TransactionDatabase(
        [[1, 2, 3], [1, 2], [2, 3], [1, 3], [4, 5], [1, 2, 3]]
    )


def _key(request: MineRequest) -> tuple:
    return GatewayRequest(request=request).batch_key()


class TestBatchKeyVersioning:
    def test_distinct_versions_never_share_a_key(self):
        db = _db()
        v0 = VersionedDatabase.initial(db)
        v1 = v0.apply(DatabaseDelta.append([[6, 7]]))
        k0 = _key(MineRequest(db=db, support=2, version=v0))
        k1 = _key(MineRequest(db=v1.db, support=2, version=v1))
        assert k0 != k1

    def test_same_content_different_chain_position_splits_the_batch(self):
        """A version that deleted a row and then re-appended identical
        items has the same multiset of rows but different tids — its
        chain fingerprint differs, so it must not batch with the
        original (the stored delta's tid references would not resolve
        against the other version)."""
        db = _db()
        v0 = VersionedDatabase.initial(db)
        v2 = v0.apply(DatabaseDelta.delete([0])).apply(
            DatabaseDelta.append([[1, 2, 3]])
        )
        assert sorted(v2.db.transactions) == sorted(db.transactions)
        k0 = _key(MineRequest(db=db, support=2, version=v0))
        k2 = _key(MineRequest(db=v2.db, support=2, version=v2))
        assert k0 != k2

    def test_unversioned_request_falls_back_to_db_fingerprint(self):
        db = _db()
        v0 = VersionedDatabase.initial(db)
        bare = _key(MineRequest(db=db, support=2))
        versioned = _key(MineRequest(db=db, support=2, version=v0))
        # An initial version wraps the identical database, so the bare
        # fingerprint and the chain-head fingerprint agree: existing
        # unversioned tenants keep batching with version-0 tenants.
        assert bare == versioned

    def test_same_version_different_support_still_batches(self):
        db = _db()
        v0 = VersionedDatabase.initial(db)
        low = _key(MineRequest(db=db, support=2, version=v0))
        high = _key(MineRequest(db=db, support=4, version=v0))
        assert low == high  # support is served by filtering, not keying


def test_gateway_serves_both_versions_exactly():
    """End to end: a queue holding requests against both ends of a delta
    is served with each version's own exact answer."""
    db = _db()
    v0 = VersionedDatabase.initial(db)
    v1 = v0.apply(
        DatabaseDelta(appends=((1, 2), (2, 3)), deletes=frozenset({4}))
    )
    with MiningService(warehouse=PatternWarehouse()) as service:
        gateway = MiningGateway(service, start=False)
        futures = [
            gateway.submit(MineRequest(db=db, support=2, version=v0)),
            gateway.submit(MineRequest(db=v1.db, support=2, version=v1)),
            gateway.submit(MineRequest(db=db, support=3, version=v0)),
        ]
        gateway.drain()
        r0, r1, r2 = [future.result() for future in futures]
        assert r0.patterns == mine_hmine(db, 2)
        assert r1.patterns == mine_hmine(v1.db, 2)
        assert r2.patterns == mine_hmine(db, 3)
        gateway.close()
