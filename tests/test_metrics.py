"""Tests for the cost-counter accounting."""

from __future__ import annotations

from repro.metrics.counters import CostCounters


class TestCounters:
    def test_add_standard_field(self):
        counters = CostCounters()
        counters.add("item_visits", 5)
        counters.add("item_visits")
        assert counters.item_visits == 6

    def test_add_extra_field(self):
        counters = CostCounters()
        counters.add("tidset_intersections", 3)
        assert counters.as_dict()["tidset_intersections"] == 3

    def test_add_method_name_goes_to_extra_not_clobbering(self):
        """Regression: add("merge") used to overwrite the bound method
        because hasattr() is true for methods."""
        counters = CostCounters()
        counters.add("merge", 2)
        counters.add("add")
        assert callable(counters.merge)
        assert callable(counters.add)
        assert counters.as_dict()["merge"] == 2
        assert counters.as_dict()["add"] == 1
        # The instance still merges correctly afterwards.
        other = CostCounters(item_visits=1)
        counters.merge(other)
        assert counters.item_visits == 1

    def test_add_private_extra_name_is_safe(self):
        counters = CostCounters()
        counters.add("_extra", 3)
        assert counters.as_dict()["_extra"] == 3
        assert isinstance(counters._extra, dict)

    def test_merge(self):
        a = CostCounters(item_visits=3)
        a.add("custom", 1)
        b = CostCounters(item_visits=4, disk_reads=2)
        b.add("custom", 5)
        a.merge(b)
        assert a.item_visits == 7
        assert a.disk_reads == 2
        assert a.as_dict()["custom"] == 6

    def test_totals(self):
        counters = CostCounters(
            item_visits=10, tuple_scans=5, projections=1,
            bytes_read=100, bytes_written=50,
        )
        assert counters.total_work() == 16
        assert counters.total_io() == 150

    def test_reset(self):
        counters = CostCounters(item_visits=9)
        counters.add("custom", 2)
        counters.reset()
        assert counters.item_visits == 0
        assert "custom" not in counters.as_dict()

    def test_as_dict_includes_all_standard_fields(self):
        keys = CostCounters().as_dict()
        for name in (
            "item_visits", "tuple_scans", "group_counts", "projections",
            "single_group_enumerations", "patterns_emitted",
            "containment_checks", "disk_reads", "disk_writes",
            "bytes_read", "bytes_written",
        ):
            assert name in keys
