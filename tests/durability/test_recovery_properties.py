"""Hypothesis property: persist → kill → recover → bit-identical serving.

For every combination of baseline miner × compression strategy ×
warehouse representation × persistence fault point × kill offset, a
service generation that persists its warehouse and chain, dies at an
injected persistence fault, and is rebuilt from the directory alone
must serve the post-delta request with *bit-identical* patterns to the
uninterrupted run — whatever path (update or mine) recovery left
reachable.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.synthetic import QuestParams, quest_database
from repro.data.transactions import TransactionDatabase
from repro.data.versioned import DatabaseDelta, VersionedDatabase
from repro.mining.registry import get_miner
from repro.resilience import PERSIST_FAULT_POINTS, FaultInjector
from repro.service import MineRequest, MiningService, PatternWarehouse

ALGORITHMS = ("hmine", "fpgrowth", "eclat")
STRATEGIES = ("mcp", "mlp")
REPRESENTATIONS = ("full", "closed", "ndi")
SUPPORT = 8


def make_db(seed: int) -> TransactionDatabase:
    return quest_database(
        QuestParams(n_transactions=50, n_items=18, avg_transaction_length=5),
        seed=seed,
    )


def run_generation(directory, db, algorithm, strategy, representation, faults):
    """One service generation: mine v0 versioned, advance by one delta.

    Injected persistence faults are absorbed by the warehouse's
    degradation ladder (memory-only), exactly like a dying disk; the
    kill is simulated by abandoning every live object afterwards.
    Returns the post-delta version.
    """
    warehouse = PatternWarehouse(
        directory=directory,
        representation=representation,
        fault_injector=faults,
    )
    with MiningService(warehouse=warehouse) as service:
        v0 = VersionedDatabase(db)
        service.execute(
            MineRequest(
                db=db,
                support=SUPPORT,
                algorithm=algorithm,
                strategy=strategy,
                version=v0,
            )
        )
        v1 = service.apply_delta(
            v0, DatabaseDelta(appends=((1, 2, 4), (3, 5)))
        )
    return v1


def serve_after_restart(directory, v1, algorithm, strategy, representation):
    """Rebuild the service from the directory and serve v1 unversioned."""
    warehouse = PatternWarehouse(
        directory=directory, representation=representation
    )
    with MiningService(warehouse=warehouse) as service:
        return service.execute(
            MineRequest(
                db=TransactionDatabase(v1.db.transactions, tids=v1.db.tids),
                support=SUPPORT,
                algorithm=algorithm,
                strategy=strategy,
            )
        )


@settings(max_examples=20, deadline=None)
@given(
    algorithm=st.sampled_from(ALGORITHMS),
    strategy=st.sampled_from(STRATEGIES),
    representation=st.sampled_from(REPRESENTATIONS),
    point=st.sampled_from(PERSIST_FAULT_POINTS),
    offset=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=3),
)
def test_kill_then_recover_serves_bit_identical_patterns(
    tmp_path_factory, algorithm, strategy, representation, point, offset, seed
):
    db = make_db(seed)
    scratch = get_miner(algorithm, kind="baseline")

    # Ground truth: the uninterrupted persist → restart → serve run.
    clean_dir = tmp_path_factory.mktemp("clean")
    v1 = run_generation(
        clean_dir, db, algorithm, strategy, representation, faults=None
    )
    expected = serve_after_restart(
        clean_dir, v1, algorithm, strategy, representation
    )
    assert expected.path == "update"
    assert expected.patterns == scratch.mine(v1.db, SUPPORT)

    # The killed run: same generation, a persistence fault at (point,
    # offset), then recovery from whatever reached the disk.
    crash_dir = tmp_path_factory.mktemp("crash")
    faults = FaultInjector(seed=seed).inject(point, on_calls=(offset,))
    v1_crash = run_generation(
        crash_dir, db, algorithm, strategy, representation, faults
    )
    assert v1_crash.fingerprint() == v1.fingerprint()
    response = serve_after_restart(
        crash_dir, v1_crash, algorithm, strategy, representation
    )
    # The one non-negotiable: bit-identical patterns, whatever survived.
    assert response.patterns == expected.patterns, (
        f"{algorithm}/{strategy}/{representation} {point}@{offset} seed={seed}"
        f" served via {response.path}"
    )
    assert response.path in ("update", "mine")
