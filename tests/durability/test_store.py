"""Unit tests for :class:`DurableStore`: journaled mutations, kill-window
recovery at every persistence fault point, quarantine, and GC on disk."""

from __future__ import annotations

import pytest

from repro.data.io import read_warehouse_entry
from repro.data.patterns import CondensedPatternSet, PatternSet
from repro.data.transactions import TransactionDatabase
from repro.data.versioned import DatabaseDelta, VersionedDatabase
from repro.durability import DurableStore, record_from_node
from repro.durability.journal import OP_DROP, WriteAheadJournal, format_record
from repro.errors import InjectedFaultError
from repro.resilience import (
    PERSIST_MANIFEST,
    PERSIST_RENAME,
    PERSIST_WRITE,
    FaultInjector,
)


def condensed_patterns():
    patterns = PatternSet({(1,): 4, (2,): 3, (1, 2): 3})
    return CondensedPatternSet.condense(patterns, 3, "closed")


def build_chain():
    db = TransactionDatabase([[1, 2, 3], [1, 2], [2, 3], [1, 3]])
    v0 = VersionedDatabase(db)
    v1 = v0.apply(DatabaseDelta(appends=((1, 4),)))
    v2 = v1.apply(DatabaseDelta(appends=((2, 4),)))
    return v0, v1, v2


class TestHappyPath:
    def test_entry_write_lands_and_reloads(self, tmp_path):
        store = DurableStore(tmp_path)
        store.write_entry("f" * 64, 3, condensed_patterns())
        condensed, _full = read_warehouse_entry(store.entry_path("f" * 64, 3))
        assert condensed.as_dict() == condensed_patterns().as_dict()
        # Both journal lines landed; nothing is pending on reload.
        assert DurableStore(tmp_path).recover(apply=False).journal_replays == 0

    def test_links_and_chains_survive_restart(self, tmp_path):
        v0, v1, v2 = build_chain()
        store = DurableStore(tmp_path)
        for node in (v1, v2):
            record = record_from_node(node)
            store.write_chain(record)
            store.record_link(
                record.child, record.parent, record.delta_fingerprint(), record.size
            )
        reopened = DurableStore(tmp_path)
        report = reopened.recover()
        assert report.recovered_chains == 2
        assert report.recovered_links == 2
        restored = reopened.restore_version(v2.db)
        assert restored is not None
        assert restored.fingerprint() == v2.fingerprint()
        assert restored.parent.parent.fingerprint() == v0.fingerprint()

    def test_journal_compacts_once_it_grows(self, tmp_path):
        store = DurableStore(tmp_path)
        for i in range(3):
            store.write_entry(f"{i:064x}", 2, condensed_patterns())
        # Far under the compaction threshold: history retained.
        assert store.journal.size_bytes() > 0


class TestKillWindows:
    def test_kill_mid_journal_append_leaves_torn_tail(self, tmp_path):
        faults = FaultInjector().inject(PERSIST_WRITE, on_calls=(1,))
        store = DurableStore(tmp_path, faults)
        with pytest.raises(InjectedFaultError):
            store.write_entry("a" * 64, 2, condensed_patterns())
        # The mutation never started: no target file, and recovery
        # drops exactly one torn line.
        assert not store.entry_path("a" * 64, 2).exists()
        report = DurableStore(tmp_path).recover()
        assert report.torn_journal_lines == 1
        assert report.journal_replays == 0

    def test_kill_before_rename_keeps_old_state_and_sweeps_tmp(self, tmp_path):
        store = DurableStore(tmp_path)
        store.write_entry("a" * 64, 2, condensed_patterns())
        before = store.entry_path("a" * 64, 2).read_text()
        faults = FaultInjector().inject(PERSIST_RENAME, on_calls=(1,))
        dying = DurableStore(tmp_path, faults)
        with pytest.raises(InjectedFaultError):
            dying.write_entry("a" * 64, 2, condensed_patterns())
        # Old state intact, never torn.
        assert store.entry_path("a" * 64, 2).read_text() == before
        report = DurableStore(tmp_path).recover()
        assert report.stray_tmp_removed == 1
        assert list(tmp_path.glob("*.tmp")) == []

    def test_kill_mid_manifest_rolls_the_link_forward(self, tmp_path):
        faults = FaultInjector().inject(PERSIST_MANIFEST, on_calls=(1,))
        dying = DurableStore(tmp_path, faults)
        with pytest.raises(InjectedFaultError):
            dying.record_link("c" * 64, "p" * 64, None, 1)
        reopened = DurableStore(tmp_path)
        report = reopened.recover()
        # The begin record carried the full intent; replay re-applies it.
        assert report.journal_replays == 1
        assert reopened.lineage_links()["c" * 64] == ("p" * 64, None, 1)
        # And the replay is durable: a third open sees it with no replay.
        third = DurableStore(tmp_path)
        assert third.recover().journal_replays == 0
        assert third.lineage_links()["c" * 64] == ("p" * 64, None, 1)

    def test_pending_drop_is_replayed(self, tmp_path):
        store = DurableStore(tmp_path)
        store.write_entry("a" * 64, 2, condensed_patterns())
        # Simulate a crash between the drop's begin and the unlink: append
        # the begin record by hand, as the dying process would have.
        journal = WriteAheadJournal(tmp_path / "journal.log")
        name = store.entry_path("a" * 64, 2).name
        with journal.path.open("a", encoding="utf-8") as handle:
            handle.write(format_record(99, "begin", OP_DROP, {"file": name}))
        report = DurableStore(tmp_path).recover()
        assert report.journal_replays == 1
        assert not store.entry_path("a" * 64, 2).exists()

    def test_audit_mode_never_mutates(self, tmp_path):
        faults = FaultInjector().inject(PERSIST_RENAME, on_calls=(1,))
        dying = DurableStore(tmp_path, faults)
        with pytest.raises(InjectedFaultError):
            dying.write_entry("a" * 64, 2, condensed_patterns())
        stray = list(tmp_path.glob("*.tmp"))
        assert len(stray) == 1
        report = DurableStore(tmp_path).recover(apply=False)
        assert report.stray_tmp_removed == 0
        assert list(tmp_path.glob("*.tmp")) == stray


class TestQuarantine:
    def test_corrupt_chain_file_is_quarantined(self, tmp_path):
        _, v1, _ = build_chain()
        store = DurableStore(tmp_path)
        record = record_from_node(v1)
        store.write_chain(record)
        path = store.chain_path(record.child)
        path.write_text(path.read_text()[:-6])
        reopened = DurableStore(tmp_path)
        report = reopened.recover()
        assert report.recovered_chains == 0
        assert [name for name, _ in report.quarantined] == [path.name]
        assert not path.exists()
        assert (tmp_path / "quarantine" / path.name).exists()

    def test_corrupt_manifest_is_quarantined(self, tmp_path):
        store = DurableStore(tmp_path)
        store.record_link("c" * 64, "p" * 64, None, 1)
        store.manifest_path.write_text("{ not json")
        report = DurableStore(tmp_path).recover()
        assert any(name == "MANIFEST" for name, _ in report.quarantined)


class TestGC:
    def test_dead_links_and_chain_files_are_dropped(self, tmp_path):
        _, v1, v2 = build_chain()
        store = DurableStore(tmp_path)
        for node in (v1, v2):
            record = record_from_node(node)
            store.write_chain(record)
            store.record_link(
                record.child, record.parent, record.delta_fingerprint(), record.size
            )
        report = store.gc(warehoused=set())
        assert report.dropped_links == 2
        assert report.dropped_chain_files == 2
        assert store.lineage_links() == {}
        assert list((tmp_path / "chains").glob("*.chain")) == []

    def test_compaction_rewires_past_unwarehoused_hop(self, tmp_path):
        v0, v1, v2 = build_chain()
        store = DurableStore(tmp_path)
        for node in (v1, v2):
            record = record_from_node(node)
            store.write_chain(record)
            store.record_link(
                record.child, record.parent, record.delta_fingerprint(), record.size
            )
        report = store.gc(warehoused={v0.fingerprint()})
        assert report.collapsed_hops == 1
        assert report.rewritten_chains == 1
        parent, _fp, _distance = store.lineage_links()[v2.fingerprint()]
        assert parent == v0.fingerprint()
        # The composed record still restores v2 straight to v0 — even
        # after another restart re-reads everything from disk.
        reopened = DurableStore(tmp_path)
        reopened.recover()
        restored = reopened.restore_version(v2.db)
        assert restored is not None
        assert restored.parent.fingerprint() == v0.fingerprint()

    def test_dry_run_plans_without_touching_disk(self, tmp_path):
        _, v1, v2 = build_chain()
        store = DurableStore(tmp_path)
        for node in (v1, v2):
            record = record_from_node(node)
            store.write_chain(record)
            store.record_link(
                record.child, record.parent, record.delta_fingerprint(), record.size
            )
        report = store.gc(warehoused=set(), dry_run=True)
        assert report.dry_run
        assert report.dropped_links == 2
        assert len(store.lineage_links()) == 2
        assert len(list((tmp_path / "chains").glob("*.chain"))) == 2
