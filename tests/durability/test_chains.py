"""Unit tests for durable chain records: exact inversion, composition,
the checksummed file format, and fingerprint-identical chain restore."""

from __future__ import annotations

import pytest

from repro.data.transactions import TransactionDatabase
from repro.data.versioned import DatabaseDelta, VersionedDatabase
from repro.durability import (
    ChainRecord,
    apply_record,
    chain_record_text,
    compose_records,
    invert_record,
    read_chain_record,
    record_from_node,
    restore_version,
)
from repro.errors import DataError


def build_chain() -> tuple[VersionedDatabase, VersionedDatabase, VersionedDatabase]:
    """v0 → v1 (append) → v2 (mixed append + delete)."""
    db = TransactionDatabase([[1, 2, 3], [1, 2], [2, 3], [1, 3]])
    v0 = VersionedDatabase(db)
    v1 = v0.apply(DatabaseDelta(appends=((1, 4), (2, 3, 4))))
    v2 = v1.apply(
        DatabaseDelta(appends=((3, 4),), deletes=frozenset({0, 4}))
    )
    return v0, v1, v2


class TestRecordExactness:
    def test_record_from_node_round_trips_both_directions(self):
        _, v1, v2 = build_chain()
        record = record_from_node(v2)
        rebuilt_child = apply_record(v1.db, record)
        assert rebuilt_child.fingerprint() == v2.fingerprint()
        rebuilt_parent = invert_record(v2.db, record)
        assert rebuilt_parent.fingerprint() == v1.fingerprint()

    def test_root_has_no_record(self):
        v0, _, _ = build_chain()
        with pytest.raises(DataError, match="chain root"):
            record_from_node(v0)

    def test_invert_rejects_mismatched_child(self):
        v0, v1, v2 = build_chain()
        record = record_from_node(v2)
        with pytest.raises(DataError, match="absent from"):
            invert_record(v0.db, record)  # wrong database entirely

    def test_composition_spans_two_hops_and_still_inverts(self):
        v0, _, v2 = build_chain()
        hop1 = record_from_node(v2.parent)
        hop2 = record_from_node(v2)
        composed = compose_records(hop2, hop1)
        assert composed.child == v2.fingerprint()
        assert composed.parent == v0.fingerprint()
        assert apply_record(v0.db, composed).fingerprint() == v2.fingerprint()
        assert invert_record(v2.db, composed).fingerprint() == v0.fingerprint()

    def test_composition_rejects_disjoint_hops(self):
        _, v1, v2 = build_chain()
        record = record_from_node(v2)
        with pytest.raises(DataError, match="cannot compose"):
            compose_records(record, record)

    def test_append_then_delete_cancels_out(self):
        db = TransactionDatabase([[1, 2]])
        v0 = VersionedDatabase(db)
        v1 = v0.apply(DatabaseDelta(appends=((3, 4),)))
        appended_tid = v1.db.tids[-1]
        v2 = v1.apply(DatabaseDelta(deletes=frozenset({appended_tid})))
        composed = compose_records(record_from_node(v2), record_from_node(v1))
        assert composed.appends == () and composed.deletes == ()
        assert apply_record(v0.db, composed).fingerprint() == v2.fingerprint()


class TestFileFormat:
    def test_file_round_trip(self, tmp_path):
        _, _, v2 = build_chain()
        record = record_from_node(v2)
        path = tmp_path / "hop.chain"
        path.write_text(chain_record_text(record))
        assert read_chain_record(path) == record

    def test_truncated_body_raises(self, tmp_path):
        _, _, v2 = build_chain()
        path = tmp_path / "hop.chain"
        path.write_text(chain_record_text(record_from_node(v2))[:-4])
        with pytest.raises(DataError, match="checksum mismatch"):
            read_chain_record(path)

    def test_missing_header_raises(self, tmp_path):
        _, _, v2 = build_chain()
        text = chain_record_text(record_from_node(v2))
        path = tmp_path / "hop.chain"
        path.write_text("\n".join(text.splitlines()[1:]) + "\n")
        with pytest.raises(DataError, match="missing"):
            read_chain_record(path)

    def test_future_format_rejected(self, tmp_path):
        _, _, v2 = build_chain()
        text = chain_record_text(record_from_node(v2))
        path = tmp_path / "hop.chain"
        path.write_text(text.replace("# chain_format=1", "# chain_format=99", 1))
        with pytest.raises(DataError, match="unsupported chain format"):
            read_chain_record(path)

    def test_rows_must_match_delta_header(self, tmp_path):
        # An intact checksum over tampered-and-rehashed rows still fails
        # the delta-fingerprint cross-check.
        _, _, v2 = build_chain()
        record = record_from_node(v2)
        tampered = ChainRecord(
            child=record.child,
            parent=record.parent,
            version=record.version,
            next_tid=record.next_tid,
            appends=record.appends[:-1] if record.appends else record.appends,
            deletes=record.deletes,
        )
        text = chain_record_text(record)
        bad = chain_record_text(tampered)
        # Splice tampered body + its (honest) checksum under the
        # original delta header.
        delta_line = next(
            line for line in text.splitlines() if line.startswith("# delta=")
        )
        spliced = "\n".join(
            delta_line if line.startswith("# delta=") else line
            for line in bad.splitlines()
        ) + "\n"
        path = tmp_path / "hop.chain"
        path.write_text(spliced)
        with pytest.raises(DataError, match="delta fingerprint mismatch"):
            read_chain_record(path)


class TestRestore:
    def test_restores_full_chain_fingerprint_identical(self):
        v0, v1, v2 = build_chain()
        records = {
            v1.fingerprint(): record_from_node(v1),
            v2.fingerprint(): record_from_node(v2),
        }
        restored = restore_version(v2.db, records)
        assert restored is not None
        assert restored.fingerprint() == v2.fingerprint()
        assert restored.version == v2.version
        assert restored.next_tid == v2.next_tid
        assert restored.parent.fingerprint() == v1.fingerprint()
        assert restored.parent.parent.fingerprint() == v0.fingerprint()
        # The restored chain is usable exactly like the original: the
        # delta back to the root matches.
        ancestor = restored.ancestor(v0.fingerprint())
        assert ancestor is not None
        assert restored.delta_from(ancestor).size > 0

    def test_unknown_database_restores_nothing(self):
        v0, v1, v2 = build_chain()
        records = {v2.fingerprint(): record_from_node(v2)}
        assert restore_version(v0.db, records) is None

    def test_stale_record_ends_the_walk_not_the_restore(self):
        v0, v1, v2 = build_chain()
        good = record_from_node(v2)
        stale = record_from_node(v1)
        # Corrupt the deep hop: claim a different parent fingerprint.
        stale = ChainRecord(
            child=stale.child,
            parent="f" * 64,
            version=stale.version,
            next_tid=stale.next_tid,
            appends=stale.appends,
            deletes=stale.deletes,
        )
        restored = restore_version(
            v2.db, {good.child: good, stale.child: stale}
        )
        # One hop restored (v2 → v1); the stale v1 record stopped there.
        assert restored is not None
        assert restored.fingerprint() == v2.fingerprint()
        assert restored.parent.fingerprint() == v1.fingerprint()
        assert restored.parent.parent is None
