"""Unit tests for the write-ahead journal: checksummed intent lines,
torn-tail tolerance, begin/commit pairing and atomic compaction."""

from __future__ import annotations

import pytest

from repro.durability.journal import (
    PHASE_BEGIN,
    PHASE_COMMIT,
    JournalRecord,
    WriteAheadJournal,
    format_record,
    parse_record,
)
from repro.errors import InjectedFaultError
from repro.resilience import PERSIST_WRITE, FaultInjector


class TestLineFormat:
    def test_round_trip(self):
        line = format_record(7, PHASE_BEGIN, "put", {"file": "a.patterns"})
        record = parse_record(line)
        assert record == JournalRecord(
            seq=7, phase=PHASE_BEGIN, op="put", payload={"file": "a.patterns"}
        )

    def test_torn_line_rejected(self):
        line = format_record(1, PHASE_BEGIN, "drop", {"file": "x"})
        # Every strict prefix of the payload is a possible torn tail;
        # none may parse. (A line missing only its newline is complete —
        # the checksum covers everything before it.)
        for cut in range(1, len(line) - 1):
            assert parse_record(line[:cut]) is None
        assert parse_record(line[:-1]) is not None

    def test_bit_rot_rejected(self):
        line = format_record(1, PHASE_COMMIT, "link", {})
        flipped = line.replace("commit", "commit".upper(), 1)
        assert parse_record(flipped) is None

    def test_unknown_phase_and_op_rejected(self):
        # Hand-build otherwise-valid lines with a bad phase / op: the
        # checksum is honest, the vocabulary check must still refuse.
        import hashlib
        import json

        def forged(phase, op):
            payload = json.dumps({}, sort_keys=True, separators=(",", ":"))
            head = f"1\t{phase}\t{op}\t{payload}"
            checksum = hashlib.sha256(head.encode()).hexdigest()
            return f"{head}\t{checksum}\n"

        assert parse_record(forged("abort", "put")) is None
        assert parse_record(forged(PHASE_BEGIN, "format")) is None

    def test_payload_must_be_object(self):
        import hashlib

        head = "1\tbegin\tput\t[1,2]"
        checksum = hashlib.sha256(head.encode()).hexdigest()
        assert parse_record(f"{head}\t{checksum}\n") is None


class TestJournal:
    def test_begin_commit_resolves_pending(self, tmp_path):
        journal = WriteAheadJournal(tmp_path / "journal.log")
        seq = journal.begin("put", {"file": "a"})
        assert [r.seq for r in journal.pending()] == [seq]
        journal.commit(seq, "put")
        assert journal.pending() == []

    def test_sequence_survives_reopen(self, tmp_path):
        path = tmp_path / "journal.log"
        first = WriteAheadJournal(path)
        seq = first.begin("link", {"child": "c"})
        reopened = WriteAheadJournal(path)
        assert reopened.begin("link", {"child": "d"}) == seq + 1

    def test_torn_tail_is_counted_and_dropped(self, tmp_path):
        path = tmp_path / "journal.log"
        journal = WriteAheadJournal(path)
        journal.begin("put", {"file": "a"})
        journal.commit(1, "put")
        # Simulate a crash mid-append: half a line reaches disk.
        torn = format_record(2, PHASE_BEGIN, "drop", {"file": "b"})
        with path.open("a", encoding="utf-8") as handle:
            handle.write(torn[: len(torn) // 2])
        records, torn_count = WriteAheadJournal(path).load()
        assert torn_count == 1
        assert [r.seq for r in records] == [1, 1]  # begin + commit intact

    def test_injected_write_fault_tears_the_line(self, tmp_path):
        faults = FaultInjector().inject(PERSIST_WRITE, on_calls=(1,))
        journal = WriteAheadJournal(tmp_path / "journal.log", faults)
        with pytest.raises(InjectedFaultError):
            journal.begin("put", {"file": "a"})
        # The kill left a genuinely torn tail for recovery to tolerate.
        records, torn_count = WriteAheadJournal(tmp_path / "journal.log").load()
        assert records == [] and torn_count == 1

    def test_compact_truncates_atomically_and_resets_seq(self, tmp_path):
        path = tmp_path / "journal.log"
        journal = WriteAheadJournal(path)
        seq = journal.begin("put", {"file": "a"})
        journal.commit(seq, "put")
        assert journal.size_bytes() > 0
        journal.compact()
        assert journal.size_bytes() == 0
        assert journal.begin("put", {"file": "b"}) == 1
