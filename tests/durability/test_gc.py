"""Unit tests for pure GC planning: liveness, compaction, degraded runs."""

from __future__ import annotations

from repro.data.transactions import TransactionDatabase
from repro.data.versioned import DatabaseDelta, VersionedDatabase
from repro.durability import plan_gc, record_from_node


def chain(depth: int):
    """A straight chain v0 → … → v{depth}; returns the node list."""
    nodes = [VersionedDatabase(TransactionDatabase([[1, 2], [2, 3]]))]
    for i in range(depth):
        nodes.append(nodes[-1].apply(DatabaseDelta(appends=((1, 3 + i),))))
    return nodes


def registries(nodes):
    lineage = {}
    chains = {}
    for node in nodes[1:]:
        record = record_from_node(node)
        chains[record.child] = record
        lineage[record.child] = (
            record.parent,
            record.delta_fingerprint(),
            record.size,
        )
    return lineage, chains


def test_everything_warehoused_is_left_alone():
    nodes = chain(3)
    lineage, chains = registries(nodes)
    plan = plan_gc(lineage, chains, {n.fingerprint() for n in nodes})
    assert plan.is_empty
    assert plan.collapsed_hops == 0


def test_nothing_warehoused_drops_every_link():
    nodes = chain(3)
    lineage, chains = registries(nodes)
    plan = plan_gc(lineage, chains, set())
    assert sorted(plan.dropped_links) == sorted(lineage)
    assert plan.link_rewrites == {}


def test_dead_tail_behind_newest_version_is_pruned():
    # Only the newest version is warehoused: every ancestor link routes
    # *upward* to nothing alive, so the whole tail collapses — the
    # bounded-footprint property.
    nodes = chain(4)
    lineage, chains = registries(nodes)
    plan = plan_gc(lineage, chains, {nodes[-1].fingerprint()})
    assert sorted(plan.dropped_links) == sorted(lineage)


def test_long_run_composes_to_nearest_warehoused_ancestor():
    nodes = chain(3)  # v0..v3
    lineage, chains = registries(nodes)
    plan = plan_gc(lineage, chains, {nodes[0].fingerprint()})
    # v1 keeps its direct hop; v2 collapses one hop, v3 collapses two.
    assert plan.dropped_links == ()
    assert set(plan.link_rewrites) == {
        nodes[2].fingerprint(),
        nodes[3].fingerprint(),
    }
    assert plan.collapsed_hops == 3
    composed = plan.record_rewrites[nodes[3].fingerprint()]
    assert composed.parent == nodes[0].fingerprint()
    assert composed.size == 3  # three appended rows in one hop


def test_missing_record_degrades_to_link_only_rewrite():
    nodes = chain(3)
    lineage, chains = registries(nodes)
    # v2's chain record is gone (quarantined, say); its link survives.
    del chains[nodes[2].fingerprint()]
    plan = plan_gc(lineage, chains, {nodes[0].fingerprint()})
    rewrite = plan.link_rewrites[nodes[3].fingerprint()]
    assert rewrite[0] == nodes[0].fingerprint()
    assert rewrite[1] is None  # no composed delta to fingerprint
    assert rewrite[2] == 3  # distance still sums the run
    assert nodes[3].fingerprint() not in plan.record_rewrites


def test_cycle_in_stale_registries_terminates():
    lineage = {"a": ("b", None, 1), "b": ("a", None, 1)}
    plan = plan_gc(lineage, {}, set())
    assert sorted(plan.dropped_links) == ["a", "b"]
