"""Tests for :mod:`repro.durability` — crash-safe persistence/recovery."""
