"""Tests for the condensed pattern representations (closed / NDI).

The contract under test: a :class:`CondensedPatternSet` is a *lossless*
stand-in for the full frequent set — ``expand()`` reconstructs it bit
for bit, ``support_of`` answers exact supports without expanding, and
``filter_min_support`` commutes with expansion.
"""

from __future__ import annotations

import pytest

from repro.data.patterns import (
    NDI_RULE_DEPTH,
    REPRESENTATIONS,
    CondensedPatternSet,
    derivability_bounds,
    pattern,
)
from repro.data.transactions import TransactionDatabase
from repro.errors import MiningError
from repro.mining.hmine import mine_hmine


@pytest.fixture
def db():
    # Items 3 and 4 only ever occur inside full {1,2,3,4} rows, so whole
    # swaths of the frequent set share one support and collapse onto the
    # closed patterns {1,2} and {1,2,3,4}.
    return TransactionDatabase([[1, 2, 3, 4]] * 4 + [[1, 2]] * 4)


@pytest.fixture
def full(db):
    return mine_hmine(db, 4)


class TestCondense:
    @pytest.mark.parametrize("representation", REPRESENTATIONS)
    def test_expand_round_trips(self, db, full, representation):
        condensed = CondensedPatternSet.condense(
            full, 4, representation, n_transactions=len(db)
        )
        assert condensed.expand() == full

    def test_closed_is_smaller_on_dense_data(self, db, full):
        condensed = CondensedPatternSet.condense(
            full, 4, "closed", n_transactions=len(db)
        )
        assert len(condensed) < len(full)

    def test_unknown_representation_rejected(self, full):
        with pytest.raises(MiningError, match="representation"):
            CondensedPatternSet.condense(full, 4, "lossy")

    def test_ndi_requires_n_transactions(self, full):
        with pytest.raises(MiningError, match="n_transactions"):
            CondensedPatternSet.condense(full, 4, "ndi")

    def test_empty_set_condenses_to_empty(self, db, full):
        empty = full.filter_min_support(10**6)
        for representation in REPRESENTATIONS:
            condensed = CondensedPatternSet.condense(
                empty, 10**6, representation, n_transactions=len(db)
            )
            assert len(condensed) == 0
            assert len(condensed.expand()) == 0


class TestQueries:
    @pytest.mark.parametrize("representation", REPRESENTATIONS)
    def test_support_of_matches_full_without_expansion(
        self, db, full, representation
    ):
        condensed = CondensedPatternSet.condense(
            full, 4, representation, n_transactions=len(db)
        )
        for items, support in full.items():
            assert condensed.support_of(items) == support
        assert condensed.support_of((99,)) is None

    @pytest.mark.parametrize("representation", REPRESENTATIONS)
    def test_filter_commutes_with_expansion(self, db, full, representation):
        condensed = CondensedPatternSet.condense(
            full, 4, representation, n_transactions=len(db)
        )
        for threshold in (4, 5, 8, 9):
            assert (
                condensed.filter_min_support(threshold).expand()
                == full.filter_min_support(threshold)
            )

    def test_condensation_ratio_gauge(self, db, full):
        condensed = CondensedPatternSet.condense(
            full, 4, "closed", n_transactions=len(db)
        )
        assert condensed.condensation_ratio() == len(full) / len(condensed)
        assert condensed.known_expanded_count() == len(full)

    def test_entry_patterns_are_exact_subset(self, db, full):
        condensed = CondensedPatternSet.condense(
            full, 4, "closed", n_transactions=len(db)
        )
        entries = condensed.entry_patterns()
        for items, support in entries.items():
            assert full.support(items) == support


class TestDerivabilityBounds:
    def test_pair_rule_matches_inclusion_exclusion(self):
        # supports: a=4, b=3, ab=2 in a 6-transaction db; bounds on ab
        # from depth-2 rules must bracket the true support.
        supports = {pattern([1]): 4, pattern([2]): 3, pattern([1, 2]): 2}

        def lookup(items):
            if not items:
                return 6
            return supports.get(pattern(items))

        lower, upper = derivability_bounds((1, 2), lookup, NDI_RULE_DEPTH)
        assert lower <= 2 <= upper


class TestPickling:
    def test_pickle_round_trip_drops_caches(self, db, full):
        import pickle

        condensed = CondensedPatternSet.condense(
            full, 4, "closed", n_transactions=len(db)
        )
        condensed.expand()  # populate the cache
        clone = pickle.loads(pickle.dumps(condensed))
        assert clone == condensed
        assert clone.expand() == full
