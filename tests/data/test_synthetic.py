"""Unit + property tests for the synthetic generators."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.synthetic import (
    QuestParams,
    attribute_value_database,
    quest_database,
    random_database,
)
from repro.errors import DataError


class TestQuest:
    def test_deterministic_for_seed(self):
        params = QuestParams(n_transactions=50, n_items=30)
        assert quest_database(params, seed=3) == quest_database(params, seed=3)

    def test_different_seeds_differ(self):
        params = QuestParams(n_transactions=50, n_items=30)
        assert quest_database(params, seed=1) != quest_database(params, seed=2)

    def test_shape(self):
        params = QuestParams(n_transactions=200, n_items=50, avg_transaction_length=6)
        db = quest_database(params, seed=0)
        assert len(db) == 200
        assert db.items() <= set(range(50))
        assert 2 < db.average_length() < 14

    def test_no_empty_transactions(self):
        db = quest_database(QuestParams(n_transactions=100, n_items=20), seed=5)
        assert all(len(tx) >= 1 for tx in db)

    def test_degenerate_params_rejected(self):
        with pytest.raises(DataError):
            quest_database(QuestParams(n_transactions=0))


class TestAttributeValue:
    def test_one_item_per_attribute_without_missing(self):
        db = attribute_value_database(50, [4, 4, 4], missing_rate=0.0, seed=0)
        assert all(len(tx) == 3 for tx in db)

    def test_items_stay_within_attribute_ranges(self):
        db = attribute_value_database(80, [5, 3, 7], missing_rate=0.0, seed=1)
        for tx in db:
            values = sorted(tx)
            assert 0 <= values[0] < 5
            assert 5 <= values[1] < 8
            assert 8 <= values[2] < 15

    def test_missing_rate_shortens_tuples(self):
        full = attribute_value_database(300, [4] * 10, missing_rate=0.0, seed=2)
        holey = attribute_value_database(300, [4] * 10, missing_rate=0.3, seed=2)
        assert holey.average_length() < full.average_length()

    def test_per_attribute_skews(self):
        db = attribute_value_database(
            500, [3, 3], value_skew=[8.0, 0.1], n_classes=1,
            class_coherence=0.0, seed=3,
        )
        supports = db.item_supports()
        # Attribute 0 is near-constant; attribute 1 near-uniform.
        assert supports.get(0, 0) > 450
        assert max(supports.get(i, 0) for i in (3, 4, 5)) < 350

    def test_skew_length_mismatch_rejected(self):
        with pytest.raises(DataError, match="skews"):
            attribute_value_database(10, [3, 3], value_skew=[1.0])

    def test_coherence_increases_correlation(self):
        """Latent-class coherence must create longer frequent patterns."""
        from repro.mining.hmine import mine_hmine

        loose = attribute_value_database(
            400, [6] * 8, value_skew=1.0, class_coherence=0.0, seed=4
        )
        tight = attribute_value_database(
            400, [6] * 8, value_skew=1.0, class_coherence=0.9, seed=4
        )
        xi = 40
        assert mine_hmine(tight, xi).max_length() > mine_hmine(loose, xi).max_length()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(DataError):
            attribute_value_database(10, [])
        with pytest.raises(DataError):
            attribute_value_database(10, [0])
        with pytest.raises(DataError):
            attribute_value_database(10, [3], class_coherence=1.5)


class TestRandomDatabase:
    @given(
        n=st.integers(min_value=1, max_value=30),
        items=st.integers(min_value=1, max_value=15),
        length=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_respects_bounds(self, n, items, length, seed):
        db = random_database(n, items, length, seed)
        assert len(db) == n
        assert all(1 <= len(tx) <= min(length, items) for tx in db)
        assert db.items() <= set(range(items))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(DataError):
            random_database(5, 0, 3)
