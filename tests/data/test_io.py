"""Unit tests for FIMI and pattern-set I/O."""

from __future__ import annotations

import io

import pytest

from repro.data.io import (
    canonical_pattern_rows,
    parse_patterns,
    parse_transactions,
    read_patterns,
    read_patterns_with_support,
    read_transactions,
    transactions_to_string,
    write_patterns,
    write_patterns_with_support,
    write_transactions,
)
from repro.data.transactions import TransactionDatabase
from repro.errors import DataError
from repro.mining.patterns import PatternSet


class TestTransactionIO:
    def test_roundtrip_via_file(self, tmp_path, tiny_db):
        path = tmp_path / "db.dat"
        write_transactions(tiny_db, path)
        loaded = read_transactions(path)
        assert loaded.transactions == tiny_db.transactions

    def test_parse_skips_blank_and_comment_lines(self):
        db = parse_transactions(io.StringIO("1 2 3\n\n# comment\n2 3\n"))
        assert db.transactions == ((1, 2, 3), (2, 3))

    def test_parse_rejects_non_integer(self):
        with pytest.raises(DataError, match="line 1"):
            parse_transactions(io.StringIO("1 x 3\n"))

    def test_missing_file_raises_data_error(self, tmp_path):
        with pytest.raises(DataError, match="cannot read"):
            read_transactions(tmp_path / "nope.dat")

    def test_to_string_roundtrip(self, tiny_db):
        text = transactions_to_string(tiny_db)
        assert parse_transactions(io.StringIO(text)).transactions == tiny_db.transactions


class TestPatternIO:
    def test_roundtrip_via_file(self, tmp_path, paper_old_patterns):
        path = tmp_path / "patterns.txt"
        write_patterns(paper_old_patterns, path)
        loaded = read_patterns(path)
        assert loaded == paper_old_patterns

    def test_output_is_deterministic(self, tmp_path, paper_old_patterns):
        path_a = tmp_path / "a.txt"
        path_b = tmp_path / "b.txt"
        write_patterns(paper_old_patterns, path_a)
        write_patterns(paper_old_patterns, path_b)
        assert path_a.read_text() == path_b.read_text()

    def test_parse_rejects_missing_support(self):
        with pytest.raises(DataError, match="missing"):
            parse_patterns(io.StringIO("1 2 3\n"))

    def test_parse_rejects_empty_pattern(self):
        with pytest.raises(DataError, match="empty pattern"):
            parse_patterns(io.StringIO(" : 3\n"))

    def test_parse_rejects_garbage_support(self):
        with pytest.raises(DataError, match="malformed"):
            parse_patterns(io.StringIO("1 2 : x\n"))

    def test_parse_skips_comments(self):
        patterns = parse_patterns(io.StringIO("# header\n1 2 : 3\n"))
        assert patterns.support({1, 2}) == 3

    def test_canonical_rows_sort_items_then_support(self):
        patterns = PatternSet(
            {
                frozenset({2, 1}): 7,
                frozenset({1}): 9,
                frozenset({3}): 2,
                frozenset({1, 2, 3}): 1,
            }
        )
        assert canonical_pattern_rows(patterns) == [
            ((1,), 9),
            ((1, 2), 7),
            ((1, 2, 3), 1),
            ((3,), 2),
        ]

    def test_support_header_output_is_order_independent(self, tmp_path):
        """Two insertion orders, one canonical file: byte-identical output."""
        forward = PatternSet()
        backward = PatternSet()
        rows = [({1}, 5), ({2}, 4), ({1, 2}, 3), ({1, 3}, 3)]
        for items, support in rows:
            forward.add(frozenset(items), support)
        for items, support in reversed(rows):
            backward.add(frozenset(items), support)
        path_a = tmp_path / "a.txt"
        path_b = tmp_path / "b.txt"
        write_patterns_with_support(forward, path_a, 3)
        write_patterns_with_support(backward, path_b, 3)
        assert path_a.read_bytes() == path_b.read_bytes()
        loaded, support = read_patterns_with_support(path_a)
        assert support == 3
        assert loaded == forward

    def test_recycling_across_sessions_via_files(self, tmp_path, paper_db):
        """One user's saved output is another's recycling input."""
        from repro.core.recycle import recycle_mine
        from repro.mining.hmine import mine_hmine

        old = mine_hmine(paper_db, 3)
        path = tmp_path / "shared_patterns.txt"
        write_patterns(old, path)

        imported = read_patterns(path)
        recycled = recycle_mine(paper_db, imported, 2)
        assert recycled == mine_hmine(paper_db, 2)


class TestChecksumHeader:
    def _patterns(self) -> PatternSet:
        patterns = PatternSet()
        patterns.add({1}, 5)
        patterns.add({1, 2}, 3)
        return patterns

    def test_round_trip_writes_and_verifies_checksum(self, tmp_path):
        from repro.data.io import CHECKSUM_HEADER_PREFIX

        path = tmp_path / "p.patterns"
        write_patterns_with_support(self._patterns(), path, 3)
        lines = path.read_text().splitlines()
        assert lines[1].startswith(CHECKSUM_HEADER_PREFIX)
        loaded, support = read_patterns_with_support(path)
        assert support == 3 and loaded == self._patterns()

    def test_tampered_body_is_rejected(self, tmp_path):
        from repro.errors import DataError

        path = tmp_path / "p.patterns"
        write_patterns_with_support(self._patterns(), path, 3)
        path.write_text(path.read_text().replace(": 3", ": 9"))
        with pytest.raises(DataError, match="checksum mismatch"):
            read_patterns_with_support(path)

    def test_truncated_body_is_rejected(self, tmp_path):
        from repro.errors import DataError

        path = tmp_path / "p.patterns"
        write_patterns_with_support(self._patterns(), path, 3)
        text = path.read_text()
        path.write_text(text[: text.rindex("\n1")])  # drop the last row
        with pytest.raises(DataError, match="checksum mismatch"):
            read_patterns_with_support(path)

    def test_headerless_checksum_file_reads_unverified(self, tmp_path):
        """Back-compat: files written before the checksum header existed
        carry only the support header and must still load."""
        path = tmp_path / "p.patterns"
        path.write_text("# absolute_support=3\n1 : 5\n1 2 : 3\n")
        loaded, support = read_patterns_with_support(path)
        assert support == 3 and loaded == self._patterns()

    def test_missing_support_header_still_rejected(self, tmp_path):
        from repro.errors import DataError

        path = tmp_path / "p.patterns"
        path.write_text("1 : 5\n")
        with pytest.raises(DataError, match="no absolute_support header"):
            read_patterns_with_support(path)
