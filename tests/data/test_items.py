"""Unit tests for the item catalog."""

from __future__ import annotations

import pytest

from repro.data.items import Item, ItemTable
from repro.errors import DataError


class TestItem:
    def test_attribute_lookup(self):
        item = Item(1, "milk", {"price": 2.5})
        assert item.attribute("price") == 2.5

    def test_missing_attribute_raises(self):
        item = Item(1, "milk", {})
        with pytest.raises(DataError, match="no attribute"):
            item.attribute("price")


class TestItemTable:
    def test_add_and_lookup(self):
        table = ItemTable()
        table.add(1, "milk", price=2.5)
        assert table[1].name == "milk"
        assert 1 in table
        assert 2 not in table

    def test_duplicate_ids_rejected(self):
        table = ItemTable()
        table.add(1, "milk")
        with pytest.raises(DataError, match="duplicate"):
            table.add(1, "bread")

    def test_unknown_lookup_raises(self):
        with pytest.raises(DataError, match="unknown item"):
            ItemTable()[42]

    def test_get_returns_none_for_unknown(self):
        assert ItemTable().get(42) is None

    def test_construct_from_items(self):
        table = ItemTable([Item(1, "a"), Item(2, "b")])
        assert len(table) == 2
        assert [item.name for item in table] == ["a", "b"]

    def test_attribute_vector_skips_items_without_attribute(self):
        table = ItemTable()
        table.add(1, "milk", price=2.5)
        table.add(2, "bag")
        assert table.attribute_vector("price") == {1: 2.5}

    def test_names_translation(self):
        table = ItemTable()
        table.add(1, "milk")
        table.add(2, "bread")
        assert table.names([2, 1]) == ["bread", "milk"]
