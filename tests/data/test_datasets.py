"""Tests for the calibrated dataset stand-ins."""

from __future__ import annotations

import pytest

from repro.data.datasets import DATASETS, get_dataset
from repro.errors import DataError


class TestRegistry:
    def test_all_four_paper_datasets_present(self):
        assert set(DATASETS) == {"weather", "forest", "connect4", "pumsb"}

    def test_get_dataset_unknown_raises(self):
        with pytest.raises(DataError, match="unknown dataset"):
            get_dataset("mushroom")

    def test_specs_are_consistent(self):
        for spec in DATASETS.values():
            assert 0 < spec.xi_old <= 1
            assert all(0 < s < spec.xi_old for s in spec.xi_new_sweep), (
                f"{spec.name}: sweep must relax below xi_old"
            )
            assert list(spec.xi_new_sweep) == sorted(spec.xi_new_sweep, reverse=True)


class TestShapes:
    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_deterministic(self, name):
        spec = get_dataset(name)
        assert spec.load(seed=1) == spec.load(seed=1)

    def test_density_split(self):
        """Dense stand-ins must be dense, sparse ones sparse.

        Density here = average frequency of an item occurrence slot:
        avg_len / #items is a scale-free proxy.
        """
        for name, spec in DATASETS.items():
            db = spec.load()
            density = db.average_length() / db.item_count()
            if spec.dense:
                assert density > 0.05, f"{name} should be dense (got {density:.4f})"
            else:
                assert density < 0.05, f"{name} should be sparse (got {density:.4f})"

    def test_connect4_small_alphabet_long_tuples(self):
        db = get_dataset("connect4").load()
        assert db.item_count() < 150
        assert db.average_length() == pytest.approx(43, abs=0.5)

    def test_pumsb_longest_tuples(self):
        db = get_dataset("pumsb").load()
        assert db.average_length() == pytest.approx(74, abs=0.5)

    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_xi_old_yields_recyclable_patterns(self, name):
        """Each stand-in must produce a meaningful pattern set at xi_old
        (the paper: no patterns to recycle means nothing to test)."""
        from repro.mining.fptree import mine_fpgrowth

        spec = get_dataset(name)
        db = spec.load()
        xi = max(1, int(spec.xi_old * len(db)))
        patterns = mine_fpgrowth(db, xi)
        assert len(patterns) > 100, f"{name}: too few patterns at xi_old"
        assert patterns.max_length() >= 3, f"{name}: patterns too short at xi_old"
