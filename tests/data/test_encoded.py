"""Tests for the shared encoded (vertical-bitmap) database layer."""

from __future__ import annotations

import pytest

from repro.data.encoded import EncodedDatabase, bit_positions
from repro.data.transactions import TransactionDatabase
from repro.errors import DataError


@pytest.fixture
def db():
    return TransactionDatabase([[1, 2, 3], [1, 2], [2, 3], [1, 3], [1, 2, 3, 4]])


class TestBitPositions:
    def test_empty_mask(self):
        assert list(bit_positions(0)) == []

    def test_ascending_positions(self):
        assert list(bit_positions(0b101101)) == [0, 2, 3, 5]

    def test_large_mask(self):
        mask = (1 << 500) | (1 << 3) | 1
        assert list(bit_positions(mask)) == [0, 3, 500]


class TestEncoding:
    def test_codes_ordered_by_descending_support(self, db):
        enc = db.encoded()
        supports = [enc.support(code) for code in range(enc.item_count())]
        assert supports == sorted(supports, reverse=True)
        # Item 2 has support 4, ties with item 1 and 3 broken by item id.
        assert enc.item_of(0) in (1, 2)
        assert enc.code_of(enc.item_of(0)) == 0

    def test_ties_broken_by_item_id(self):
        enc = TransactionDatabase([[5, 9], [5, 9]]).encoded()
        assert enc.item_of(0) == 5
        assert enc.item_of(1) == 9

    def test_encode_decode_roundtrip(self, db):
        enc = db.encoded()
        codes = enc.encode([3, 1])
        assert enc.decode(codes) == (1, 3)

    def test_unknown_item_raises(self, db):
        with pytest.raises(DataError, match="does not occur"):
            db.encoded().code_of(99)

    def test_contains(self, db):
        enc = db.encoded()
        assert 4 in enc
        assert 99 not in enc


class TestBitmaps:
    def test_bitmap_counts_match_supports(self, db):
        enc = db.encoded()
        for code in range(enc.item_count()):
            item = enc.item_of(code)
            assert enc.bitmap(code).bit_count() == db.item_supports()[item]
            assert enc.support(code) == db.item_supports()[item]

    def test_bitmap_positions_match_occurrences(self, db):
        enc = db.encoded()
        for code in range(enc.item_count()):
            item = enc.item_of(code)
            positions = set(bit_positions(enc.bitmap(code)))
            expected = {p for p, tx in enumerate(db) if item in tx}
            assert positions == expected

    def test_pattern_bitmap_is_intersection(self, db):
        enc = db.encoded()
        assert enc.support_of_items([1, 2]) == db.support([1, 2])
        assert enc.support_of_items([1, 2, 3]) == db.support([1, 2, 3])
        assert enc.support_of_items([4, 3]) == db.support([3, 4])

    def test_empty_pattern_maps_to_universe(self, db):
        enc = db.encoded()
        assert enc.pattern_bitmap([]) == enc.universe
        assert enc.support_of_items([]) == len(db)

    def test_absent_item_short_circuits(self, db):
        enc = db.encoded()
        assert enc.pattern_bitmap([1, 99]) == 0
        assert enc.bitmap_for_item(99) == 0
        assert enc.support_for_item(99) == 0

    def test_empty_database(self):
        enc = TransactionDatabase([]).encoded()
        assert len(enc) == 0
        assert enc.universe == 0
        assert enc.item_count() == 0


class TestMemoization:
    def test_encoded_is_cached(self, db):
        assert db.encoded() is db.encoded()

    def test_derived_databases_get_fresh_encodings(self, db):
        restricted = db.restrict_to_items([1, 2])
        assert restricted.encoded() is not db.encoded()
        assert restricted.encoded().item_count() == 2
