"""Unit tests for TransactionDatabase."""

from __future__ import annotations

import pytest

from repro.data.transactions import TransactionDatabase
from repro.errors import DataError


class TestConstruction:
    def test_normalizes_sorting_and_duplicates(self):
        db = TransactionDatabase([[3, 1, 2, 1]])
        assert db[0] == (1, 2, 3)

    def test_default_tids_are_positions(self):
        db = TransactionDatabase([[1], [2], [3]])
        assert db.tids == (0, 1, 2)

    def test_explicit_tids(self):
        db = TransactionDatabase([[1], [2]], tids=[100, 200])
        assert db.tids == (100, 200)

    def test_tid_count_mismatch_rejected(self):
        with pytest.raises(DataError):
            TransactionDatabase([[1], [2]], tids=[100])

    def test_negative_items_rejected(self):
        with pytest.raises(DataError):
            TransactionDatabase([[-1, 2]])

    def test_non_integer_items_rejected(self):
        with pytest.raises(DataError):
            TransactionDatabase([["a", "b"]])

    def test_empty_database(self):
        db = TransactionDatabase([])
        assert len(db) == 0
        assert db.average_length() == 0.0
        assert db.items() == set()

    def test_empty_transactions_are_kept(self):
        db = TransactionDatabase([[], [1]])
        assert len(db) == 2
        assert db[0] == ()


class TestStatistics:
    def test_item_supports(self, tiny_db):
        supports = tiny_db.item_supports()
        assert supports[1] == 2
        assert supports[2] == 3
        assert supports[3] == 3

    def test_item_supports_cached(self, tiny_db):
        assert tiny_db.item_supports() is tiny_db.item_supports()

    def test_average_length(self, tiny_db):
        assert tiny_db.average_length() == pytest.approx((3 + 2 + 2 + 1) / 4)

    def test_total_items(self, tiny_db):
        assert tiny_db.total_items() == 8

    def test_item_count(self, tiny_db):
        assert tiny_db.item_count() == 3

    def test_support_of_itemset(self, tiny_db):
        assert tiny_db.support({1, 2}) == 2
        assert tiny_db.support({2, 3}) == 2
        assert tiny_db.support({1, 3}) == 1
        assert tiny_db.support({1, 2, 3}) == 1

    def test_support_of_empty_itemset_is_db_size(self, tiny_db):
        assert tiny_db.support(()) == len(tiny_db)

    def test_paper_example_supports(self, paper_db):
        # Example 1's F-list at xi = 2: d:2, f:3, g:3, a:3, e:4, c:4.
        supports = paper_db.item_supports()
        assert supports[4] == 2   # d
        assert supports[6] == 3   # f
        assert supports[7] == 3   # g
        assert supports[1] == 3   # a
        assert supports[5] == 4   # e
        assert supports[3] == 4   # c


class TestDerivedDatabases:
    def test_restrict_to_items(self, tiny_db):
        restricted = tiny_db.restrict_to_items({1, 3})
        assert restricted.transactions == ((1, 3), (1,), (3,), (3,))
        assert restricted.tids == tiny_db.tids

    def test_sample(self, tiny_db):
        sampled = tiny_db.sample([0, 2])
        assert sampled.transactions == ((1, 2, 3), (2, 3))

    def test_extend_appends_with_fresh_tids(self, tiny_db):
        grown = tiny_db.extend([[4, 5]])
        assert len(grown) == 5
        assert grown[4] == (4, 5)
        assert grown.tids == (0, 1, 2, 3, 4)

    def test_extend_does_not_mutate_original(self, tiny_db):
        tiny_db.extend([[9]])
        assert len(tiny_db) == 4


class TestRelativeSupport:
    def test_fraction_rounds_up(self):
        db = TransactionDatabase([[1]] * 10)
        assert db.relative_to_absolute(0.25) == 3

    def test_absolute_passthrough(self, tiny_db):
        assert tiny_db.relative_to_absolute(3) == 3

    def test_nonpositive_rejected(self, tiny_db):
        with pytest.raises(DataError):
            tiny_db.relative_to_absolute(0)

    def test_minimum_is_one(self):
        db = TransactionDatabase([[1]])
        assert db.relative_to_absolute(0.0001) == 1

    def test_float_one_means_every_transaction(self):
        # 1.0 is the 100% relative threshold, not an absolute count of 1.
        db = TransactionDatabase([[1]] * 10)
        assert db.relative_to_absolute(1.0) == 10

    def test_int_one_means_absolute_count_one(self):
        db = TransactionDatabase([[1]] * 10)
        assert db.relative_to_absolute(1) == 1


class TestEquality:
    def test_equal_databases(self):
        assert TransactionDatabase([[1, 2]]) == TransactionDatabase([[2, 1]])

    def test_different_tids_not_equal(self):
        assert TransactionDatabase([[1]], tids=[5]) != TransactionDatabase([[1]])

    def test_hashable(self):
        assert len({TransactionDatabase([[1]]), TransactionDatabase([[1]])}) == 1
