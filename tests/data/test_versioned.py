"""Tests for versioned database chains (deltas, lineage, fingerprints)."""

from __future__ import annotations

import pytest

from repro.data.transactions import TransactionDatabase
from repro.data.versioned import DatabaseDelta, VersionedDatabase
from repro.errors import DataError


@pytest.fixture
def db():
    return TransactionDatabase([[1, 2, 3], [2, 3], [1, 3], [4, 5], [1, 2]])


class TestDatabaseDelta:
    def test_appends_normalized_like_transactions(self):
        delta = DatabaseDelta.append([[3, 1, 2, 2], [5, 4]])
        assert delta.appends == ((1, 2, 3), (4, 5))
        assert delta.is_insert_only and not delta.is_empty
        assert delta.size == 2

    def test_duplicate_appended_rows_are_kept(self):
        # Two identical transactions are two rows — dedup would corrupt
        # every support count downstream.
        delta = DatabaseDelta.append([[1, 2], [1, 2]])
        assert delta.appends == ((1, 2), (1, 2))

    def test_bad_items_and_tids_rejected(self):
        with pytest.raises(DataError, match="bad items"):
            DatabaseDelta.append([[-1, 2]])
        with pytest.raises(DataError, match="non-negative"):
            DatabaseDelta.delete([-3])

    def test_apply_deletes_then_appends_preserving_tids(self, db):
        delta = DatabaseDelta(appends=((7, 8),), deletes=frozenset({1, 3}))
        new_db = delta.apply(db)
        assert new_db.tids == (0, 2, 4, 5)
        assert new_db.transactions == ((1, 2, 3), (1, 3), (1, 2), (7, 8))

    def test_apply_unknown_tid_is_an_error(self, db):
        with pytest.raises(DataError, match="unknown tids"):
            DatabaseDelta.delete([99]).apply(db)

    def test_delta_fingerprint_distinguishes_adds_from_deletes(self):
        append = DatabaseDelta.append([[1]])
        delete = DatabaseDelta.delete([1])
        assert append.delta_fingerprint() != delete.delta_fingerprint()
        assert (
            DatabaseDelta.append([[1]]).delta_fingerprint()
            == append.delta_fingerprint()
        )


class TestVersionedChain:
    def test_chain_links_fingerprints(self, db):
        v0 = VersionedDatabase.initial(db)
        delta = DatabaseDelta.append([[6, 7]])
        v1 = v0.apply(delta)
        assert v1.version == 1
        assert v1.parent_fingerprint == v0.fingerprint()
        assert v1.delta_fingerprint == delta.delta_fingerprint()
        assert v0.parent_fingerprint is None and v0.delta_fingerprint is None
        assert v1.chain() == (v1, v0)

    def test_lineage_accumulates_delta_distance(self, db):
        v0 = VersionedDatabase.initial(db)
        v1 = v0.apply(DatabaseDelta.append([[6], [7]]))
        v2 = v1.apply(DatabaseDelta.delete([0]))
        lineage = v2.lineage()
        assert lineage == (
            (v2.fingerprint(), 0),
            (v1.fingerprint(), 1),
            (v0.fingerprint(), 3),
        )
        assert v2.ancestor(v0.fingerprint()) is v0
        assert v2.ancestor("nope") is None

    def test_deleted_tids_are_never_reused(self, db):
        v1 = VersionedDatabase.initial(db).apply(DatabaseDelta.delete([4]))
        v2 = v1.apply(DatabaseDelta.append([[9]]))
        # tid 4 was retired with its transaction; the append gets 5.
        assert v2.db.tids == (0, 1, 2, 3, 5)
        assert v2.db.transactions[-1] == (9,)

    def test_delta_from_reconstructs_multi_hop_change(self, db):
        v0 = VersionedDatabase.initial(db)
        v1 = v0.apply(DatabaseDelta(appends=((8, 9),), deletes=frozenset({0})))
        v2 = v1.apply(DatabaseDelta.append([[6, 7]]))
        recon = v2.delta_from(v0)
        assert recon.deletes == frozenset({0})
        assert sorted(recon.appends) == [(6, 7), (8, 9)]
        assert recon.apply(v0.db, next_tid=5) == v2.db


class TestFingerprintCacheSemantics:
    """Satellite: the fingerprint contract versioning leans on."""

    def test_fingerprint_is_computed_once_and_stable(self, db):
        first = db.fingerprint()
        assert db.fingerprint() is first  # cached, not recomputed

    def test_equal_content_equal_fingerprint_across_construction_paths(self, db):
        """A database grown through a delta chain fingerprints the same
        as one built directly from the final content — the property that
        lets warehouse entries transfer between tenants that arrived at
        the same data differently."""
        grown = DatabaseDelta.append([[6, 7], [8]]).apply(db)
        direct = TransactionDatabase(
            [[1, 2, 3], [2, 3], [1, 3], [4, 5], [1, 2], [6, 7], [8]]
        )
        assert grown == direct
        assert grown.fingerprint() == direct.fingerprint()

    def test_same_rows_different_tids_fingerprint_differently(self, db):
        """Post-delete tids are part of the identity: the same surviving
        rows under renumbered tids are a *different* cache key, because
        a stored delta's tid references would no longer resolve."""
        survivor = DatabaseDelta.delete([0]).apply(db)
        renumbered = TransactionDatabase(survivor.transactions)
        assert survivor.transactions == renumbered.transactions
        assert survivor.fingerprint() != renumbered.fingerprint()

    def test_chain_versions_have_distinct_fingerprints(self, db):
        v0 = VersionedDatabase.initial(db)
        v1 = v0.apply(DatabaseDelta.append([[9]]))
        v2 = v1.apply(DatabaseDelta.delete([v1.db.tids[-1]]))
        fingerprints = {v.fingerprint() for v in (v0, v1, v2)}
        assert len(fingerprints) == 2  # v2 restored v0's exact content...
        assert v2.fingerprint() == v0.fingerprint()  # ...and its tids
