"""Shared fixtures: the paper's worked example and common small databases.

The paper develops one example end to end (Tables 1-2, Examples 1-5);
encoding it here lets the tests pin every intermediate artifact — the
pattern set at xi_old = 3, the MCP utility ordering, the compressed
groups, the F-list of the compressed database at xi_new = 2, and the
projected-database patterns — against the numbers printed in the paper.
"""

from __future__ import annotations

import pytest

from repro.data.transactions import TransactionDatabase
from repro.mining.patterns import PatternSet

# Item encoding for the paper's example: letters -> ints.
A, B, C, D, E, F, G, H, I = 1, 2, 3, 4, 5, 6, 7, 8, 9

#: Human-readable names, for assertion messages.
ITEM_NAMES = {A: "a", B: "b", C: "c", D: "d", E: "e", F: "f", G: "g", H: "h", I: "i"}


@pytest.fixture
def paper_db() -> TransactionDatabase:
    """Table 1: the five-tuple example database."""
    return TransactionDatabase(
        [
            [A, C, D, E, F, G],  # 100
            [B, C, D, F, G],     # 200
            [C, E, F, G],        # 300
            [A, C, E, I],        # 400
            [A, E, H],           # 500
        ],
        tids=[100, 200, 300, 400, 500],
    )


@pytest.fixture
def paper_old_patterns() -> PatternSet:
    """Example 1: the frequent patterns of Table 1 at xi_old = 3.

    The paper's printed list omits ``fc:3`` — an evident typo, since it
    lists ``fgc:3`` and every subset of a frequent pattern is frequent
    (tuples 100, 200 and 300 all contain both f and c). The complete set
    has 11 patterns.
    """
    patterns = PatternSet()
    patterns.add({F}, 3)
    patterns.add({F, G}, 3)
    patterns.add({F, C}, 3)  # missing from the paper's list; see docstring
    patterns.add({F, G, C}, 3)
    patterns.add({G}, 3)
    patterns.add({G, C}, 3)
    patterns.add({A}, 3)
    patterns.add({A, E}, 3)
    patterns.add({E}, 4)
    patterns.add({E, C}, 3)
    patterns.add({C}, 4)
    return patterns


@pytest.fixture
def tiny_db() -> TransactionDatabase:
    """A minimal database for unit tests that don't need the example."""
    return TransactionDatabase([[1, 2, 3], [1, 2], [2, 3], [3]])
