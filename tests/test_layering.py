"""Architectural layering contract, enforced with the ast module.

The package layers one way (see docs/architecture.md):

    repro.data  ->  repro.core / repro.mining / repro.storage
                ->  repro.service  ->  repro.gateway  ->  repro.bench

Concretely: ``repro.data`` must import nothing from the layers above it,
and ``repro.core`` must never reach up into ``repro.service``. The check
walks every module's import statements (including function-local ones —
a lazy import is still a dependency), so a violation fails CI whether or
not any test happens to trigger the import at runtime.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parents[1] / "src"

#: importing package prefix -> package prefixes it must not import.
#:
#: ``repro.parallel`` sits beside ``repro.service`` above the algorithm
#: layers: it may use data/core/mining/storage but never the service,
#: which orchestrates it.  The reverse edge — ``repro.core`` reaching
#: ``repro.parallel`` from ``recycle_mine(jobs=...)`` — is a deliberate,
#: function-local lazy import and therefore intentionally absent from
#: core's forbidden list.
#: ``repro.resilience`` is deliberately the lowest non-trivial layer: it
#: may import only ``repro.errors`` / ``repro.metrics`` (so the fault
#: injector, retry machinery and degradation ladder can be threaded
#: through parallel/core/service without cycles), and conversely the
#: bottom layers must not grow a dependency on it.
#: ``repro.gateway`` sits strictly above ``repro.service``: the service
#: must never import it (gateway gauges flow down through the duck-typed
#: ``ServiceStats.attach_gauges``), and the gateway itself must stay
#: below ``repro.bench`` — benchmarks drive the gateway, never the
#: reverse.
#: ``repro.trends`` is the observability roof over the benchmarks: it
#: reads archived snapshots and renders/gates them, so it may import
#: the leaf utilities and ``repro.bench`` (table formatting) but never
#: the engine, service or gateway — a trend report must be computable
#: from cached data alone, with no mining machinery in scope. The
#: reverse edge is banned too: ``repro.bench`` stays runnable without
#: the archive (benchmark scripts call the snapshot writer themselves,
#: from outside the package).
#: ``repro.durability`` is the crash-safe persistence layer between the
#: leaves and the service: it composes ``repro.data`` (formats, deltas,
#: versioned chains) with ``repro.resilience`` (the persist.* fault
#: points), and ``repro.service`` builds its warehouse on top. Nothing
#: below the service may import it back — the miners and the data layer
#: must stay loadable with no journal or store in scope — and the
#: durability layer itself must never reach up into the algorithm or
#: orchestration layers.
FORBIDDEN: dict[str, tuple[str, ...]] = {
    "repro.data": (
        "repro.core",
        "repro.durability",
        "repro.gateway",
        "repro.mining",
        "repro.parallel",
        "repro.resilience",
        "repro.service",
        "repro.storage",
    ),
    "repro.core": ("repro.durability", "repro.gateway", "repro.service"),
    # The update-path patch engines are pinned individually: even if the
    # blanket repro.core rule is ever relaxed, the algorithms that the
    # planner's PATH_UPDATE dispatches to must stay pure — callable from
    # a bench script or a property test with no service machinery in
    # scope. (repro.parallel stays allowed: fup's two-pass recount lazily
    # borrows the tight candidate bound from repro.parallel.merge.)
    "repro.core.fup": ("repro.gateway", "repro.service"),
    "repro.core.incremental": ("repro.gateway", "repro.service"),
    "repro.mining": (
        "repro.durability",
        "repro.gateway",
        "repro.parallel",
        "repro.resilience",
        "repro.service",
    ),
    "repro.storage": (
        "repro.durability",
        "repro.gateway",
        "repro.parallel",
        "repro.resilience",
        "repro.service",
    ),
    "repro.parallel": ("repro.durability", "repro.gateway", "repro.service"),
    "repro.resilience": (
        "repro.core",
        "repro.data",
        "repro.durability",
        "repro.gateway",
        "repro.mining",
        "repro.parallel",
        "repro.service",
        "repro.storage",
    ),
    "repro.durability": (
        "repro.bench",
        "repro.core",
        "repro.gateway",
        "repro.mining",
        "repro.parallel",
        "repro.service",
        "repro.storage",
        "repro.trends",
    ),
    "repro.service": ("repro.gateway", "repro.trends"),
    "repro.gateway": ("repro.bench", "repro.trends"),
    "repro.bench": ("repro.trends",),
    "repro.trends": (
        "repro.core",
        "repro.data",
        "repro.durability",
        "repro.gateway",
        "repro.mining",
        "repro.parallel",
        "repro.resilience",
        "repro.service",
        "repro.storage",
    ),
}


def module_name(path: Path) -> str:
    relative = path.relative_to(SRC).with_suffix("")
    parts = list(relative.parts)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def imported_modules(path: Path) -> set[str]:
    """Every module name this file imports, resolved to absolute form."""
    tree = ast.parse(path.read_text(), filename=str(path))
    name = module_name(path)
    package_parts = name.split(".")
    if path.name != "__init__.py":
        package_parts = package_parts[:-1]
    found: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            found.update(alias.name for alias in node.names)
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import -> resolve against the package
                base = package_parts[: len(package_parts) - node.level + 1]
                prefix = ".".join(base + ([node.module] if node.module else []))
            else:
                prefix = node.module or ""
            if prefix:
                found.add(prefix)
                found.update(f"{prefix}.{alias.name}" for alias in node.names)
    return found


def _within(module: str, prefix: str) -> bool:
    return module == prefix or module.startswith(prefix + ".")


@pytest.mark.parametrize("layer", sorted(FORBIDDEN))
def test_layer_imports_nothing_from_upper_layers(layer):
    violations: list[str] = []
    for path in sorted(SRC.glob("repro/**/*.py")):
        name = module_name(path)
        if not _within(name, layer):
            continue
        for imported in sorted(imported_modules(path)):
            for forbidden in FORBIDDEN[layer]:
                if _within(imported, forbidden):
                    violations.append(f"{name} imports {imported}")
    assert not violations, (
        f"layering violation(s) — {layer} must not depend on "
        f"{FORBIDDEN[layer]}:\n  " + "\n  ".join(violations)
    )


def test_every_source_module_is_parseable():
    """The walk above silently proves nothing if glob finds nothing."""
    paths = list(SRC.glob("repro/**/*.py"))
    assert len(paths) > 30
    for path in paths:
        ast.parse(path.read_text(), filename=str(path))


#: API names retired for good. They must not resurface anywhere in the
#: source tree — not as definitions, not as imports, not as shims.
RETIRED_NAMES = ("CGroup", "compressed_to_cgroups", "database_to_cgroups")


def test_retired_names_stay_retired():
    """The deprecated CGroup-era shims were deleted, not re-hidden.

    Checked at the AST level: docstrings may still narrate the history,
    but no module may define, import, reference or re-export the retired
    names as code.
    """
    retired = set(RETIRED_NAMES)
    offenders: list[str] = []
    for path in sorted(SRC.glob("repro/**/*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            used: set[str] = set()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                used.add(node.name)
            elif isinstance(node, ast.Name):
                used.add(node.id)
            elif isinstance(node, ast.Attribute):
                used.add(node.attr)
            elif isinstance(node, ast.alias):
                used.add(node.name)
                if node.asname:
                    used.add(node.asname)
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                # String re-exports: __all__ entries, lazy-import tables.
                if node.value in retired:
                    used.add(node.value)
            for name in sorted(used & retired):
                offenders.append(f"{module_name(path)} references {name}")
    assert not offenders, (
        "retired API names resurfaced:\n  " + "\n  ".join(offenders)
    )
