"""Warehouse-level durability: restart recovery, lineage hygiene on
drop/evict/quarantine, persisted chains, and the GC entry point."""

from __future__ import annotations

from repro.data.synthetic import QuestParams, quest_database
from repro.data.transactions import TransactionDatabase
from repro.data.versioned import DatabaseDelta, VersionedDatabase
from repro.durability import record_from_node
from repro.mining.hmine import mine_hmine
from repro.service import PatternWarehouse


def make_db(seed: int = 0) -> TransactionDatabase:
    return quest_database(
        QuestParams(n_transactions=60, n_items=20, avg_transaction_length=5),
        seed=seed,
    )


def build_chain(db: TransactionDatabase):
    v0 = VersionedDatabase(db)
    v1 = v0.apply(DatabaseDelta(appends=((1, 2, 3),)))
    v2 = v1.apply(DatabaseDelta(appends=((2, 4),)))
    return v0, v1, v2


def seed_warehouse(directory, db):
    """Warehouse with v0 mined and the v0→v1→v2 chain persisted."""
    v0, v1, v2 = build_chain(db)
    warehouse = PatternWarehouse(directory=directory)
    warehouse.put(v0.fingerprint(), 6, mine_hmine(db, 6))
    for node in (v1, v2):
        record = record_from_node(node)
        warehouse.record_lineage(
            record.child, record.parent, record.delta_fingerprint(), record.size
        )
        warehouse.persist_chain(record)
    return warehouse, (v0, v1, v2)


class TestRestartRecovery:
    def test_entries_links_and_chains_survive_restart(self, tmp_path):
        db = make_db()
        _, (v0, v1, v2) = seed_warehouse(tmp_path, db)
        reopened = PatternWarehouse(directory=tmp_path)
        assert reopened.recovered_entries == 1
        assert reopened.recovered_chains == 2
        assert reopened.get(v0.fingerprint(), 6) == mine_hmine(db, 6)
        # The lineage registry recovered: a request at v2 still routes
        # to v0's warehoused patterns two hops up.
        hit = reopened.ancestor_feedstock(v2.fingerprint(), 6)
        assert hit is not None
        assert hit.fingerprint == v0.fingerprint()
        assert hit.distance > 0

    def test_restored_version_is_fingerprint_identical(self, tmp_path):
        db = make_db()
        _, (v0, v1, v2) = seed_warehouse(tmp_path, db)
        reopened = PatternWarehouse(directory=tmp_path)
        restored = reopened.restore_version(v2.db)
        assert restored is not None
        assert restored.fingerprint() == v2.fingerprint()
        assert restored.parent.fingerprint() == v1.fingerprint()
        assert restored.parent.parent.fingerprint() == v0.fingerprint()
        assert restored.next_tid == v2.next_tid

    def test_memory_only_warehouse_has_no_durability(self):
        warehouse = PatternWarehouse()
        assert warehouse.restore_version(make_db()) is None
        assert warehouse.recovery_report is None

    def test_stats_carry_the_durability_gauges(self, tmp_path):
        db = make_db()
        seed_warehouse(tmp_path, db)
        stats = PatternWarehouse(directory=tmp_path).stats()
        for key in (
            "chain_records",
            "recovered_entries",
            "recovered_chains",
            "journal_replays",
            "gc_dropped_links",
            "gc_collapsed_hops",
        ):
            assert key in stats, key
        assert stats["recovered_entries"] == 1
        assert stats["recovered_chains"] == 2


class TestLineageHygiene:
    def test_drop_entry_cleans_dangling_lineage(self, tmp_path):
        # Regression (satellite 1): dropping the only warehoused entry a
        # chain routes to used to leave the links dangling forever.
        db = make_db()
        warehouse, (v0, v1, v2) = seed_warehouse(tmp_path, db)
        # lineage_of is self-first; a pruned child walks nowhere past itself.
        assert len(warehouse.lineage_of(v2.fingerprint())) == 3
        assert warehouse.drop_entry(v0.fingerprint(), 6)
        assert len(warehouse.lineage_of(v2.fingerprint())) == 1
        assert len(warehouse.lineage_of(v1.fingerprint())) == 1
        assert warehouse.gc_dropped_links == 2
        # And the dead chain files went with the links.
        assert not warehouse.has_chain(v2.fingerprint())
        assert list((tmp_path / "chains").glob("*.chain")) == []

    def test_drop_entry_keeps_links_other_entries_justify(self, tmp_path):
        db = make_db()
        warehouse, (v0, v1, v2) = seed_warehouse(tmp_path, db)
        # A second support level at v0 keeps the ancestor warehoused.
        warehouse.put(v0.fingerprint(), 10, mine_hmine(db, 10))
        warehouse.drop_entry(v0.fingerprint(), 6)
        assert len(warehouse.lineage_of(v2.fingerprint())) == 3

    def test_eviction_is_lineage_aware(self, tmp_path):
        db = make_db()
        warehouse, (v0, v1, v2) = seed_warehouse(tmp_path, db)
        entry_bytes = warehouse.stored_bytes()
        # Shrink the budget by putting a fresh fingerprint large enough
        # to evict v0's entry (LRU: v0 is oldest).
        small = PatternWarehouse(
            directory=tmp_path, byte_budget=entry_bytes + 1
        )
        assert len(small.lineage_of(v2.fingerprint())) == 3
        small.put("b" * 64, 6, mine_hmine(db, 6))
        assert small.evictions >= 1
        assert (v0.fingerprint(), 6) not in small
        # The evicted ancestor took its dead links with it.
        assert len(small.lineage_of(v2.fingerprint())) == 1

    def test_quarantine_at_load_prunes_lineage(self, tmp_path):
        db = make_db()
        warehouse, (v0, _v1, v2) = seed_warehouse(tmp_path, db)
        path = tmp_path / f"{v0.fingerprint()}-6.patterns"
        path.write_text(path.read_text()[:-8])
        reopened = PatternWarehouse(directory=tmp_path)
        assert reopened.has_quarantined(v0.fingerprint())
        assert len(reopened.lineage_of(v2.fingerprint())) == 1


class TestWarehouseGC:
    def test_gc_compacts_and_counts(self, tmp_path):
        db = make_db()
        warehouse, (v0, v1, v2) = seed_warehouse(tmp_path, db)
        report = warehouse.gc()
        assert report.collapsed_hops == 1
        assert warehouse.gc_collapsed_hops == 1
        # v2 now routes to v0 in one hop.
        hit = warehouse.ancestor_feedstock(v2.fingerprint(), 6)
        assert hit is not None and hit.fingerprint == v0.fingerprint()

    def test_gc_dry_run_mutates_nothing(self, tmp_path):
        db = make_db()
        warehouse, (v0, v1, v2) = seed_warehouse(tmp_path, db)
        report = warehouse.gc(dry_run=True)
        assert report.dry_run and report.collapsed_hops == 1
        assert warehouse.gc_collapsed_hops == 0
        # The registry still walks two hops (nothing was rewritten).
        assert warehouse.lineage_of(v2.fingerprint())[1][0] == v1.fingerprint()

    def test_memory_only_gc_prunes_links(self):
        warehouse = PatternWarehouse()
        warehouse.record_lineage("c" * 64, "p" * 64, None, 1)
        report = warehouse.gc()
        assert report.dropped_links == 1
        assert len(warehouse.lineage_of("c" * 64)) == 1
