"""Service restart acceptance: a restarted :class:`MiningService` over a
persisted warehouse+chain directory keeps serving the update path.

This is the tentpole end-to-end shape: mine v0, advance the chain by a
delta *without* mining the new version, kill every live object, rebuild
the service from the directory alone, and ask for the post-delta
database with **no version attached** — the request must be served via
the planner's update path (not a scratch mine), with patterns identical
to a fault-free scratch mine.
"""

from __future__ import annotations

from repro.data.synthetic import QuestParams, quest_database
from repro.data.transactions import TransactionDatabase
from repro.data.versioned import DatabaseDelta, VersionedDatabase
from repro.mining.hmine import mine_hmine
from repro.service import MineRequest, MiningService, PatternWarehouse

SUPPORT = 8


def make_db(seed: int = 1) -> TransactionDatabase:
    return quest_database(
        QuestParams(n_transactions=80, n_items=25, avg_transaction_length=5),
        seed=seed,
    )


def persist_generation(directory, db):
    """One pre-crash service generation; returns the post-delta version."""
    warehouse = PatternWarehouse(directory=directory)
    with MiningService(warehouse=warehouse) as service:
        v0 = VersionedDatabase(db)
        response = service.execute(
            MineRequest(db=db, support=SUPPORT, version=v0)
        )
        assert response.path == "mine"
        v1 = service.apply_delta(
            v0, DatabaseDelta(appends=(tuple(range(1, 5)), (2, 5)))
        )
        v2 = service.apply_delta(v1, DatabaseDelta(deletes=frozenset({0})))
    return v2


def test_restarted_service_serves_update_path_without_remining(tmp_path):
    db = make_db()
    v2 = persist_generation(tmp_path, db)
    expected = mine_hmine(v2.db, SUPPORT)

    # --- restart: nothing survives but the directory -------------------
    warehouse = PatternWarehouse(directory=tmp_path)
    with MiningService(warehouse=warehouse) as service:
        # A fresh object, same content *and tids* — database identity
        # (the fingerprint) covers both, and the chain's tid discipline
        # is what makes recovery exact.
        resubmitted = TransactionDatabase(
            v2.db.transactions, tids=v2.db.tids
        )
        assert resubmitted is not v2.db
        assert resubmitted.fingerprint() == v2.fingerprint()
        response = service.execute(
            MineRequest(db=resubmitted, support=SUPPORT)
        )
        assert response.path == "update", (
            f"served via {response.path} "
            f"(degradation: {response.degradation.describe() or 'none'})"
        )
        assert response.feedstock_distance > 0
        assert response.patterns == expected
        snapshot = service.stats.snapshot()
        assert snapshot["updates"] == 1
        assert snapshot["mine_runs"] == 0


def test_snapshot_carries_durability_gauges(tmp_path):
    db = make_db()
    persist_generation(tmp_path, db)
    warehouse = PatternWarehouse(directory=tmp_path)
    with MiningService(warehouse=warehouse) as service:
        snapshot = service.stats.snapshot()
    assert snapshot["recovered_entries"] == 1.0
    assert snapshot["recovered_chains"] == 2.0
    for gauge in ("journal_replays", "gc_dropped_links", "gc_collapsed_hops"):
        assert snapshot[gauge] == 0.0


def test_versioned_resubmit_still_beats_restored_chain(tmp_path):
    # A request that *does* carry its version object must behave exactly
    # as before — restoration only fills in for absent chains.
    db = make_db()
    v2 = persist_generation(tmp_path, db)
    warehouse = PatternWarehouse(directory=tmp_path)
    with MiningService(warehouse=warehouse) as service:
        response = service.execute(
            MineRequest(db=v2.db, support=SUPPORT, version=v2)
        )
        assert response.path == "update"
        assert response.patterns == mine_hmine(v2.db, SUPPORT)


def test_unrelated_database_is_untouched_by_restore(tmp_path):
    db = make_db()
    persist_generation(tmp_path, db)
    other = make_db(seed=99)
    warehouse = PatternWarehouse(directory=tmp_path)
    with MiningService(warehouse=warehouse) as service:
        response = service.execute(MineRequest(db=other, support=SUPPORT))
        assert response.path == "mine"
        assert response.patterns == mine_hmine(other, SUPPORT)
