"""Service-level resilience: the circuit breaker, the degradation ladder
on responses and stats, and single-flight failure semantics."""

from __future__ import annotations

import threading

import pytest

import repro.core.planner as planner_module
from repro.data.synthetic import QuestParams, quest_database
from repro.errors import MiningError
from repro.mining.hmine import mine_hmine
from repro.resilience import (
    REASON_CIRCUIT_OPEN,
    REASON_FEEDSTOCK_QUARANTINED,
    REASON_SHARD_FAILED,
    REASON_WAREHOUSE_READ_FAILED,
    REASON_WRITE_FAILED,
    CircuitBreaker,
    FaultInjector,
    ResilienceConfig,
    RetryPolicy,
    SHARD_CRASH,
    WAREHOUSE_READ,
    WAREHOUSE_WRITE,
)
from repro.service import MineRequest, MiningService, PatternWarehouse


@pytest.fixture
def db():
    return quest_database(
        QuestParams(n_transactions=150, n_items=40, avg_transaction_length=6),
        seed=2,
    )


def inline_factory(**extra):
    from repro.parallel import ParallelEngine

    def factory(jobs, shard_feedstock, on_shard_result):
        return ParallelEngine(
            jobs,
            executor="inline",
            shard_feedstock=shard_feedstock,
            on_shard_result=on_shard_result,
            **extra,
        )

    return factory


def no_wait() -> RetryPolicy:
    return RetryPolicy(
        max_attempts=1,
        base_delay_seconds=0.0,
        max_delay_seconds=0.0,
        jitter_fraction=0.0,
    )


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestCircuitBreaker:
    def test_breaker_trips_after_consecutive_fallbacks(self, db):
        """Two fallbacks trip the breaker; the third parallel request is
        served serially with a circuit_open step, without touching the
        engine at all."""
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=2, cooldown_seconds=60.0, clock=clock
        )
        with MiningService(
            warehouse=None,  # keep every request on the mine path
            parallel_engine_factory=inline_factory(
                failure_injection=(0,), retry_policy=no_wait()
            ),
            resilience=ResilienceConfig(breaker=breaker),
        ) as service:
            for _ in range(2):
                response = service.execute(
                    MineRequest(db=db, support=10, jobs=2)
                )
                assert response.parallel_fallback
                assert response.degradation.reasons() == [
                    f"parallel→serial: {REASON_SHARD_FAILED}"
                ]
            assert breaker.state == "open"
            tripped = service.execute(MineRequest(db=db, support=10, jobs=2))
            assert not tripped.parallel_fallback  # never attempted
            assert tripped.jobs == 1
            assert tripped.degradation.reasons() == [
                f"parallel→serial: {REASON_CIRCUIT_OPEN}"
            ]
            assert tripped.patterns == mine_hmine(db, 10)
            snapshot = service.stats.snapshot()
            assert snapshot["breaker_open"] == 1.0
            assert snapshot["breaker_trips"] == 1.0
            assert snapshot["degraded"] == 3
            summary = service.stats.degradation_summary()
            assert summary[f"parallel→serial: {REASON_CIRCUIT_OPEN}"] == 1
            assert summary[f"parallel→serial: {REASON_SHARD_FAILED}"] == 2

    def test_half_open_success_closes_the_breaker(self, db):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=30.0, clock=clock
        )
        calls = {"n": 0}

        def flaky_factory(jobs, shard_feedstock, on_shard_result):
            from repro.parallel import ParallelEngine

            calls["n"] += 1
            inject = (0,) if calls["n"] == 1 else ()
            return ParallelEngine(
                jobs,
                executor="inline",
                shard_feedstock=shard_feedstock,
                on_shard_result=on_shard_result,
                failure_injection=inject,
                retry_policy=no_wait(),
            )

        with MiningService(
            warehouse=None,
            parallel_engine_factory=flaky_factory,
            resilience=ResilienceConfig(breaker=breaker),
        ) as service:
            service.execute(MineRequest(db=db, support=10, jobs=2))
            assert breaker.state == "open"
            clock.now = 30.0  # cooldown over → half-open trial allowed
            trial = service.execute(MineRequest(db=db, support=10, jobs=2))
            assert not trial.parallel_fallback and trial.jobs == 2
            assert breaker.state == "closed"


class TestWarehouseDegradation:
    def test_read_fault_degrades_to_miss_and_is_reported(self, db):
        faults = FaultInjector().inject(WAREHOUSE_READ, on_calls=(2,))
        warehouse = PatternWarehouse(fault_injector=faults)
        with MiningService(warehouse=warehouse) as service:
            service.execute(MineRequest(db=db, support=12))  # call 1: miss
            # Call 2 would have been a filter hit; the fault turns it
            # into a mine with a named degradation instead of an error.
            response = service.execute(MineRequest(db=db, support=12))
            assert response.path == "mine"
            assert response.degradation.reasons() == [
                f"feedstock→miss: {REASON_WAREHOUSE_READ_FAILED}"
            ]
            assert response.patterns == mine_hmine(db, 12)
            assert service.stats.snapshot()["degraded"] == 1

    def test_quarantined_feedstock_names_the_miss(self, db, tmp_path):
        fingerprint = db.fingerprint()
        seeded = PatternWarehouse(directory=tmp_path)
        seeded.put(fingerprint, 12, mine_hmine(db, 12))
        path = tmp_path / f"{fingerprint}-12.patterns"
        path.write_text(path.read_text()[:40])  # corrupt it on disk
        warehouse = PatternWarehouse(directory=tmp_path)
        assert warehouse.has_quarantined(fingerprint)
        with MiningService(warehouse=warehouse) as service:
            response = service.execute(MineRequest(db=db, support=8))
            assert response.path == "mine"
            assert response.degradation.reasons() == [
                f"recycle→mine: {REASON_FEEDSTOCK_QUARANTINED}"
            ]
            assert response.patterns == mine_hmine(db, 8)

    def test_write_fault_reports_memory_only_degradation(self, db, tmp_path):
        faults = FaultInjector().inject(WAREHOUSE_WRITE, on_calls=(1,))
        warehouse = PatternWarehouse(directory=tmp_path, fault_injector=faults)
        with MiningService(warehouse=warehouse) as service:
            response = service.execute(MineRequest(db=db, support=12))
            assert response.degradation.reasons() == [
                f"warehouse→memory_only: {REASON_WRITE_FAILED}"
            ]
            # The entry still serves future requests from memory.
            again = service.execute(MineRequest(db=db, support=12))
            assert again.path == "filter" and not again.degradation.degraded

    def test_shard_feedstock_read_fault_is_a_cold_shard_not_a_crash(self, db):
        # Calls: 1 = leader put's lookup... arm every read after the
        # first (global) lookup so the per-shard lookups all fail.
        faults = FaultInjector().inject(
            WAREHOUSE_READ, on_calls=(2, 3, 4, 5, 6)
        )
        warehouse = PatternWarehouse()
        warehouse.put(db.fingerprint(), 12, mine_hmine(db, 12))
        warehouse.faults = faults
        with MiningService(
            warehouse=warehouse, parallel_engine_factory=inline_factory()
        ) as service:
            response = service.execute(MineRequest(db=db, support=6, jobs=2))
            assert response.patterns == mine_hmine(db, 6)
            assert not response.parallel_fallback


class TestSingleFlightFailure:
    def test_leader_exception_reaches_every_waiter_then_clears(self, db, monkeypatch):
        """Satellite: all coalesced waiters get the leader's exception,
        and the in-flight key is cleared so the next submit retries."""
        release = threading.Event()
        real_get_miner = planner_module.get_miner
        attempts: list[int] = []

        class ExplodingSpec:
            def __init__(self, spec):
                self._spec = spec

            def mine(self, database, support, counters=None):
                attempts.append(support)
                assert release.wait(timeout=30), "gate never released"
                if len(attempts) == 1:
                    raise MiningError("injected leader failure")
                return self._spec.mine(database, support, counters)

        monkeypatch.setattr(
            planner_module,
            "get_miner",
            lambda name, kind="baseline": ExplodingSpec(
                real_get_miner(name, kind=kind)
            ),
        )
        with MiningService(warehouse=None, max_workers=2) as service:
            futures = [
                service.submit(MineRequest(db=db, support=10, tenant=f"t{i}"))
                for i in range(4)
            ]
            release.set()
            for future in futures:
                with pytest.raises(MiningError, match="injected leader"):
                    future.result(timeout=60)
            assert len(attempts) == 1  # one leader, one failure, shared
            # The key was cleared: a fresh submit starts a new leader
            # and succeeds.
            retry = service.execute(MineRequest(db=db, support=10))
            assert retry.patterns == mine_hmine(db, 10)
            assert len(attempts) == 2
