"""Warehouse hardening: quarantine, checksums, memory-only degradation,
and the re-mining-free integrity audit."""

from __future__ import annotations

import pytest

from repro.data.io import (
    read_patterns_with_support,
    write_patterns_with_support,
)
from repro.data.synthetic import QuestParams, quest_database
from repro.errors import StorageError
from repro.mining.hmine import mine_hmine
from repro.mining.patterns import PatternSet
from repro.service import PatternWarehouse
from repro.service.warehouse import QUARANTINE_DIR
from repro.resilience import WAREHOUSE_READ, WAREHOUSE_WRITE, FaultInjector


@pytest.fixture
def db():
    return quest_database(
        QuestParams(n_transactions=120, n_items=30, avg_transaction_length=6),
        seed=5,
    )


def populate(directory, db, supports=(12, 8)) -> str:
    """Fill a disk-backed warehouse; returns the database fingerprint."""
    warehouse = PatternWarehouse(directory=directory)
    fingerprint = db.fingerprint()
    for support in supports:
        warehouse.put(fingerprint, support, mine_hmine(db, support))
    return fingerprint


class TestQuarantine:
    def test_garbage_file_is_quarantined_not_fatal(self, db, tmp_path):
        """Satellite: a truncated/garbage .patterns file dropped into the
        directory must not crash construction."""
        fingerprint = populate(tmp_path, db)
        (tmp_path / f"{fingerprint}-999.patterns").write_text(
            "\x00\x01 garbage not a header\n"
        )
        warehouse = PatternWarehouse(directory=tmp_path)
        assert len(warehouse) == 2  # both healthy entries served
        assert [name for name, _ in warehouse.quarantined] == [
            f"{fingerprint}-999.patterns"
        ]
        assert warehouse.has_quarantined(fingerprint)
        # The bad file was moved aside, not deleted and not rescanned.
        assert (tmp_path / QUARANTINE_DIR / f"{fingerprint}-999.patterns").exists()
        assert not (tmp_path / f"{fingerprint}-999.patterns").exists()

    def test_three_corrupt_files_exactly_three_quarantined(self, db, tmp_path):
        """Acceptance: a directory seeded with 3 corrupt files loads with
        exactly those 3 quarantined and every healthy entry served."""
        fingerprint = populate(tmp_path, db, supports=(15, 10, 6))
        corrupt = {
            f"{fingerprint}-777.patterns": "no header at all\n",
            f"{fingerprint}-778.patterns": "# absolute_support=notanint\n1 2 : 3\n",
            # Valid header, checksum of a different body (tampering).
            f"{fingerprint}-779.patterns": (
                "# absolute_support=779\n# sha256=" + "0" * 64 + "\n1 2 : 900\n"
            ),
        }
        for name, text in corrupt.items():
            (tmp_path / name).write_text(text)
        warehouse = PatternWarehouse(directory=tmp_path)
        assert len(warehouse) == 3
        assert sorted(name for name, _ in warehouse.quarantined) == sorted(corrupt)
        assert warehouse.stats()["quarantined"] == 3
        for support in (15, 10, 6):
            hit = warehouse.best_feedstock(fingerprint, support)
            assert hit is not None and hit.exact
            assert hit.patterns == mine_hmine(db, support)

    def test_truncated_checksummed_file_is_quarantined(self, db, tmp_path):
        fingerprint = populate(tmp_path, db, supports=(8,))
        path = tmp_path / f"{fingerprint}-8.patterns"
        text = path.read_text()
        path.write_text(text[: len(text) // 2])  # torn write / bit rot
        warehouse = PatternWarehouse(directory=tmp_path)
        assert len(warehouse) == 0
        assert len(warehouse.quarantined) == 1
        assert "checksum" in warehouse.quarantined[0][1]

    def test_filename_header_disagreement_is_quarantined(self, db, tmp_path):
        patterns = mine_hmine(db, 10)
        write_patterns_with_support(
            patterns, tmp_path / f"{db.fingerprint()}-99.patterns", 10
        )
        warehouse = PatternWarehouse(directory=tmp_path)
        assert len(warehouse) == 0
        assert "disagrees" in warehouse.quarantined[0][1]

    def test_injected_read_fault_quarantines_that_file_only(self, db, tmp_path):
        fingerprint = populate(tmp_path, db, supports=(12, 8))
        faults = FaultInjector().inject(WAREHOUSE_READ, on_calls=(1,))
        warehouse = PatternWarehouse(directory=tmp_path, fault_injector=faults)
        assert len(warehouse) == 1
        assert len(warehouse.quarantined) == 1
        assert warehouse.has_quarantined(fingerprint)


class TestBackCompat:
    def test_pre_checksum_file_still_loads(self, db, tmp_path):
        """Old headerless-checksum files (support header only) written by
        earlier versions must keep working unverified."""
        patterns = mine_hmine(db, 10)
        path = tmp_path / f"{db.fingerprint()}-10.patterns"
        body = "".join(
            " ".join(str(i) for i in sorted(items)) + f" : {support}\n"
            for items, support in sorted(
                patterns.items(), key=lambda kv: tuple(sorted(kv[0]))
            )
        )
        path.write_text(f"# absolute_support=10\n{body}")
        loaded, support = read_patterns_with_support(path)
        assert support == 10 and loaded == patterns
        warehouse = PatternWarehouse(directory=tmp_path)
        assert len(warehouse) == 1 and not warehouse.quarantined


class TestWriteDegradation:
    def test_write_fault_degrades_to_memory_only(self, db, tmp_path):
        faults = FaultInjector().inject(WAREHOUSE_WRITE, on_calls=(1,))
        warehouse = PatternWarehouse(directory=tmp_path, fault_injector=faults)
        fingerprint = db.fingerprint()
        assert warehouse.put(fingerprint, 10, mine_hmine(db, 10))
        assert warehouse.memory_only_reason is not None
        assert warehouse.stats()["memory_only"] == 1
        # The in-memory entry survives and keeps serving.
        assert warehouse.get(fingerprint, 10) == mine_hmine(db, 10)
        # Later puts stay memory-only: no file ever appears.
        warehouse.put(fingerprint, 6, mine_hmine(db, 6))
        assert not list(tmp_path.glob("*.patterns"))

    def test_read_fault_on_feedstock_lookup_propagates(self, db):
        faults = FaultInjector().inject(WAREHOUSE_READ, on_calls=(1,))
        warehouse = PatternWarehouse(fault_injector=faults)
        fingerprint = db.fingerprint()
        warehouse.put(fingerprint, 10, mine_hmine(db, 10))
        from repro.errors import InjectedFaultError

        with pytest.raises(InjectedFaultError):
            warehouse.best_feedstock(fingerprint, 10)
        # Next lookup (call 2) is healthy.
        assert warehouse.best_feedstock(fingerprint, 10) is not None


class TestIntegrityAudit:
    # The hand-corrupted audits store with representation="full":
    # condensing on put assumes a genuine full set and would
    # normalize the planted inconsistencies away. Condensed-entry
    # audits live in test_warehouse_condensed.py.

    def test_genuine_full_set_passes(self, db):
        warehouse = PatternWarehouse()
        fingerprint = db.fingerprint()
        warehouse.put(fingerprint, 8, mine_hmine(db, 8))
        report = warehouse.verify_entry(fingerprint, 8)
        assert report.ok and report.checks > 0

    def test_missing_entry_raises(self):
        with pytest.raises(StorageError, match="no entry"):
            PatternWarehouse().verify_entry("nope", 5)

    def test_below_threshold_support_detected(self):
        warehouse = PatternWarehouse(representation="full")
        bad = PatternSet()
        bad.add({1}, 3)  # below the claimed threshold of 5
        warehouse.put("fp", 5, bad)
        report = warehouse.verify_entry("fp", 5)
        assert not report.ok
        assert any("below the entry threshold" in v for v in report.violations)

    def test_missing_subset_detected(self):
        warehouse = PatternWarehouse(representation="full")
        bad = PatternSet()
        bad.add({1}, 9)
        bad.add({1, 2}, 7)  # {2} missing → not downward closed
        warehouse.put("fp", 5, bad)
        report = warehouse.verify_entry("fp", 5)
        assert any("missing" in v for v in report.violations)

    def test_anti_monotonicity_violation_detected(self):
        warehouse = PatternWarehouse(representation="full")
        bad = PatternSet()
        bad.add({1}, 6)
        bad.add({2}, 9)
        bad.add({1, 2}, 8)  # superset exceeds subset {1}
        warehouse.put("fp", 5, bad)
        report = warehouse.verify_entry("fp", 5)
        assert any("anti-monotonicity" in v for v in report.violations)

    def test_derivability_lower_bound_violation_detected(self):
        # supp(abc) must be >= supp(ab) + supp(ac) - supp(a) = 9+9-10 = 8,
        # but claims 5 — internally inconsistent even though every pair
        # is individually monotone.
        warehouse = PatternWarehouse(representation="full")
        bad = PatternSet()
        for items, support in (
            ({1}, 10), ({2}, 10), ({3}, 10),
            ({1, 2}, 9), ({1, 3}, 9), ({2, 3}, 5),
            ({1, 2, 3}, 5),
        ):
            bad.add(items, support)
        warehouse.put("fp", 5, bad)
        report = warehouse.verify_entry("fp", 5)
        assert any("derivability" in v for v in report.violations)

    def test_drop_entry_removes_entry_and_file(self, db, tmp_path):
        warehouse = PatternWarehouse(directory=tmp_path)
        fingerprint = db.fingerprint()
        warehouse.put(fingerprint, 10, mine_hmine(db, 10))
        path = tmp_path / f"{fingerprint}-10.patterns"
        assert path.exists()
        assert warehouse.drop_entry(fingerprint, 10)
        assert not path.exists()
        assert warehouse.get(fingerprint, 10) is None
        assert not warehouse.drop_entry(fingerprint, 10)
