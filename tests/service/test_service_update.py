"""Tests for the service's versioned update path: warehouse lineage,
chain-aware planning, stats, and workload database operations."""

from __future__ import annotations

import pytest

from repro.data.synthetic import QuestParams, quest_database
from repro.data.versioned import DatabaseDelta, VersionedDatabase
from repro.errors import DataError, ReproError
from repro.mining.hmine import mine_hmine
from repro.service import (
    MineRequest,
    MiningService,
    PatternWarehouse,
    parse_workload,
    parse_workload_items,
    serve_workload,
)
from repro.service.workload import DeltaOp


@pytest.fixture
def db():
    return quest_database(
        QuestParams(n_transactions=120, n_items=30, avg_transaction_length=6),
        seed=5,
    )


@pytest.fixture
def chain(db):
    v0 = VersionedDatabase.initial(db)
    delta = DatabaseDelta(
        appends=db.transactions[:5], deletes=frozenset(db.tids[:2])
    )
    return v0, v0.apply(delta)


class TestWarehouseLineage:
    def test_record_and_walk_lineage(self, db, chain):
        v0, v1 = chain
        warehouse = PatternWarehouse()
        warehouse.record_lineage(
            v1.fingerprint(), v0.fingerprint(),
            v1.delta_fingerprint, distance=v1.delta.size,
        )
        lineage = warehouse.lineage_of(v1.fingerprint())
        assert lineage == (
            (v1.fingerprint(), 0),
            (v0.fingerprint(), v1.delta.size),
        )
        assert warehouse.stats()["lineage_links"] == 1

    def test_self_links_are_ignored(self, db):
        warehouse = PatternWarehouse()
        warehouse.record_lineage(db.fingerprint(), db.fingerprint())
        assert warehouse.stats()["lineage_links"] == 0

    def test_ancestor_feedstock_finds_nearest_warehoused_ancestor(
        self, db, chain
    ):
        v0, v1 = chain
        warehouse = PatternWarehouse()
        patterns = mine_hmine(db, 10)
        warehouse.put(v0.fingerprint(), 10, patterns)
        hit = warehouse.ancestor_feedstock(
            v1.fingerprint(), 10, lineage=v1.lineage()
        )
        assert hit is not None
        assert hit.fingerprint == v0.fingerprint()
        assert hit.distance == v1.delta.size
        assert not hit.exact  # distance > 0 is never an exact hit
        # A same-version entry dominates any ancestor.
        new_patterns = mine_hmine(v1.db, 10)
        warehouse.put(v1.fingerprint(), 10, new_patterns)
        nearest = warehouse.ancestor_feedstock(
            v1.fingerprint(), 10, lineage=v1.lineage()
        )
        assert nearest.fingerprint == v1.fingerprint()
        assert nearest.distance == 0 and nearest.exact

    def test_unknown_chain_misses(self, db):
        warehouse = PatternWarehouse()
        assert warehouse.ancestor_feedstock(db.fingerprint(), 10) is None


class TestServiceUpdatePath:
    def test_versioned_request_serves_update_bit_identically(self, db, chain):
        v0, v1 = chain
        expected = mine_hmine(v1.db, 10)
        with MiningService(warehouse=PatternWarehouse()) as service:
            service.execute(MineRequest(db=db, support=10, version=v0))
            response = service.execute(
                MineRequest(db=v1.db, support=10, version=v1)
            )
            assert response.path == "update"
            assert response.update_mode == "recycle"  # mixed delta
            assert response.feedstock_distance == v1.delta.size
            assert response.patterns == expected
            snapshot = service.stats.snapshot()
            assert snapshot["updates"] == 1
            assert snapshot["update_runs"] == 1
            assert service.stats.path_rates()["update"] == 0.5

    def test_insert_only_delta_uses_fup_mode(self, db):
        v0 = VersionedDatabase.initial(db)
        v1 = v0.apply(DatabaseDelta.append(db.transactions[:3]))
        with MiningService(warehouse=PatternWarehouse()) as service:
            service.execute(MineRequest(db=db, support=10, version=v0))
            response = service.execute(
                MineRequest(db=v1.db, support=10, version=v1)
            )
            assert response.path == "update" and response.update_mode == "fup"
            assert response.patterns == mine_hmine(v1.db, 10)

    def test_version_must_wrap_the_request_database(self, db, chain):
        v0, v1 = chain
        with MiningService() as service:
            with pytest.raises(ReproError, match="different database"):
                service.submit(MineRequest(db=db, support=10, version=v1))

    def test_apply_delta_advances_and_counts(self, db):
        v0 = VersionedDatabase.initial(db)
        delta = DatabaseDelta.append([[1, 2]])
        with MiningService(warehouse=PatternWarehouse()) as service:
            v1 = service.apply_delta(v0, delta)
            assert v1.parent_fingerprint == v0.fingerprint()
            assert service.stats.snapshot()["deltas_applied"] == 1
            assert service.warehouse.stats()["lineage_links"] == 1

    def test_cold_service_with_version_still_mines_exactly(self, db, chain):
        v0, v1 = chain
        with MiningService(warehouse=None) as service:
            response = service.execute(
                MineRequest(db=v1.db, support=10, version=v1)
            )
            assert response.path == "mine"
            assert response.patterns == mine_hmine(v1.db, 10)


class TestWorkloadOps:
    def _spec(self):
        return {
            "dataset": "weather",
            "seed": 0,
            "requests": [
                {"tenant": "alice", "support": 800},
                {"op": "append", "transactions": [[1, 2, 5], [3, 4]]},
                {"tenant": "bob", "support": 800},
                {"op": "delete", "tids": [0, 7]},
                {"tenant": "carol", "support": 800},
            ],
        }

    def test_ops_advance_the_version_chain(self):
        items = parse_workload_items(self._spec())
        ops = [item for item in items if isinstance(item, DeltaOp)]
        requests = [item for item in items if isinstance(item, MineRequest)]
        assert [op.kind for op in ops] == ["append", "delete"]
        alice, bob, carol = requests
        assert alice.version.version == 0
        assert bob.version.version == 1 and len(bob.db) == len(alice.db) + 2
        assert carol.version.version == 2 and len(carol.db) == len(bob.db) - 2
        assert carol.version.parent_fingerprint == bob.version.fingerprint()

    def test_parse_workload_compat_filters_ops_but_applies_them(self):
        requests = parse_workload(self._spec())
        assert [r.tenant for r in requests] == ["alice", "bob", "carol"]
        assert requests[2].version.version == 2

    @pytest.mark.parametrize(
        ("entry", "message"),
        [
            ({"op": "append"}, "transactions"),
            ({"op": "append", "transactions": []}, "transactions"),
            ({"op": "delete"}, "tids"),
            ({"op": "compact"}, "unknown op"),
        ],
    )
    def test_malformed_ops_rejected(self, entry, message):
        spec = {"dataset": "weather", "requests": [entry]}
        with pytest.raises(DataError, match=message):
            parse_workload_items(spec)

    def test_serve_workload_registers_ops_and_serves_updates(self):
        items = parse_workload_items(self._spec())
        carol = [item for item in items if isinstance(item, MineRequest)][2]
        with MiningService(warehouse=PatternWarehouse()) as service:
            responses = serve_workload(service, items)
            assert len(responses) == 3
            snapshot = service.stats.snapshot()
            assert snapshot["deltas_applied"] == 2
            assert snapshot["versions_registered"] == 2
            # Ops are barriers: alice banks before bob plans, bob before
            # carol, so both post-op requests ride the update path.
            assert [r.path for r in responses] == ["mine", "update", "update"]
            assert responses[2].patterns == mine_hmine(carol.db, 800)
