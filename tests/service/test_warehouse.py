"""Tests for the pattern warehouse (keys, lookup preference, LRU budget)."""

from __future__ import annotations

import pytest

from repro.data.transactions import TransactionDatabase
from repro.errors import StorageError
from repro.mining.hmine import mine_hmine
from repro.mining.patterns import PatternSet
from repro.service.warehouse import PatternWarehouse
from repro.storage.disk import patterns_byte_size


@pytest.fixture
def db():
    return TransactionDatabase(
        [[1, 2, 3], [1, 2, 3], [1, 2], [2, 3], [1, 3], [1, 2, 3, 4]] * 3
    )


def _sets(db, supports):
    return {s: mine_hmine(db, s) for s in supports}


class TestPutGet:
    def test_round_trip(self, db):
        warehouse = PatternWarehouse()
        patterns = mine_hmine(db, 6)
        assert warehouse.put(db.fingerprint(), 6, patterns)
        assert warehouse.get(db.fingerprint(), 6) == patterns
        assert warehouse.get(db.fingerprint(), 7) is None
        assert warehouse.get("other", 6) is None

    def test_replacing_an_entry_does_not_double_charge(self, db):
        warehouse = PatternWarehouse()
        patterns = mine_hmine(db, 6)
        warehouse.put(db.fingerprint(), 6, patterns)
        warehouse.put(db.fingerprint(), 6, patterns)
        assert len(warehouse) == 1
        # The charge is the *condensed* entry's size, once.
        stored = warehouse.get_condensed(db.fingerprint(), 6)
        assert warehouse.stored_bytes() == patterns_byte_size(stored)

    def test_fingerprint_is_content_addressed(self, db):
        """An equal database built separately shares warehouse entries."""
        twin = TransactionDatabase(list(db.transactions))
        warehouse = PatternWarehouse()
        warehouse.put(db.fingerprint(), 6, mine_hmine(db, 6))
        assert warehouse.get(twin.fingerprint(), 6) == mine_hmine(db, 6)

    def test_zero_budget_rejected(self):
        with pytest.raises(StorageError, match="positive"):
            PatternWarehouse(byte_budget=0)


class TestBestFeedstock:
    def test_exact_hit(self, db):
        warehouse = PatternWarehouse()
        sets = _sets(db, (6, 9, 12))
        for support, patterns in sets.items():
            warehouse.put(db.fingerprint(), support, patterns)
        hit = warehouse.best_feedstock(db.fingerprint(), 9)
        assert hit is not None and hit.exact
        assert hit.absolute_support == 9
        assert hit.patterns == sets[9]

    def test_prefers_largest_superset_below(self, db):
        """Stored 6 and 9, requested 10: filter the 9-set (smallest superset)."""
        warehouse = PatternWarehouse()
        sets = _sets(db, (6, 9))
        for support, patterns in sets.items():
            warehouse.put(db.fingerprint(), support, patterns)
        hit = warehouse.best_feedstock(db.fingerprint(), 10)
        assert hit is not None and not hit.exact
        assert hit.absolute_support == 9
        # Filtering the hit yields exactly the answer at the requested support.
        assert hit.patterns.filter_min_support(10) == mine_hmine(db, 10)

    def test_falls_back_to_smallest_subset_above(self, db):
        """Stored 9 and 15, requested 6: recycle from the 9-set."""
        warehouse = PatternWarehouse()
        for support, patterns in _sets(db, (9, 15)).items():
            warehouse.put(db.fingerprint(), support, patterns)
        hit = warehouse.best_feedstock(db.fingerprint(), 6)
        assert hit is not None and not hit.exact
        assert hit.absolute_support == 9

    def test_miss(self, db):
        warehouse = PatternWarehouse()
        warehouse.put("somebody-else", 5, mine_hmine(db, 5))
        assert warehouse.best_feedstock(db.fingerprint(), 5) is None


class TestByteBudget:
    # These budgets are sized from full-set byte counts, so they pin the
    # LRU mechanics with representation="full"; condensed-size accounting
    # has its own budget tests in test_warehouse_condensed.py.
    def test_budget_never_exceeded_and_lru_evicts_first(self, db):
        sets = _sets(db, (4, 6, 9, 12))
        sizes = {s: patterns_byte_size(p) for s, p in sets.items()}
        budget = sizes[4] + sizes[6] + 1  # room for the two biggest, not all
        warehouse = PatternWarehouse(byte_budget=budget, representation="full")
        for support in (12, 9, 6, 4):
            assert warehouse.put(db.fingerprint(), support, sets[support])
            assert warehouse.stored_bytes() <= budget
        assert warehouse.evictions > 0
        # The most recently stored entry must have survived.
        assert (db.fingerprint(), 4) in warehouse

    def test_touch_order_protects_recently_used_entries(self, db):
        sets = _sets(db, (4, 6, 9))
        warehouse = PatternWarehouse()
        for support in (9, 6, 4):
            warehouse.put(db.fingerprint(), support, sets[support])
        warehouse.get(db.fingerprint(), 9)  # touch the oldest
        keys = warehouse.keys()
        assert keys[-1] == (db.fingerprint(), 9)
        assert keys[0] == (db.fingerprint(), 6)

    def test_oversized_entry_rejected_outright(self, db):
        patterns = mine_hmine(db, 4)
        warehouse = PatternWarehouse(
            byte_budget=patterns_byte_size(patterns) - 1, representation="full"
        )
        assert not warehouse.put(db.fingerprint(), 4, patterns)
        assert len(warehouse) == 0
        assert warehouse.rejections == 1

    def test_empty_pattern_set_storable(self, db):
        warehouse = PatternWarehouse(byte_budget=1000)
        assert warehouse.put(db.fingerprint(), 99, PatternSet())
        assert warehouse.get(db.fingerprint(), 99) == PatternSet()


class TestDiskBacking:
    def test_persists_across_instances(self, db, tmp_path):
        sets = _sets(db, (6, 9))
        first = PatternWarehouse(directory=tmp_path)
        for support, patterns in sets.items():
            first.put(db.fingerprint(), support, patterns)

        reborn = PatternWarehouse(directory=tmp_path)
        assert len(reborn) == 2
        assert reborn.get(db.fingerprint(), 6) == sets[6]
        hit = reborn.best_feedstock(db.fingerprint(), 7)
        assert hit is not None and hit.absolute_support == 6

    def test_eviction_removes_files(self, db, tmp_path):
        sets = _sets(db, (4, 6))
        budget = patterns_byte_size(sets[4]) + 1
        warehouse = PatternWarehouse(
            byte_budget=budget, directory=tmp_path, representation="full"
        )
        warehouse.put(db.fingerprint(), 6, sets[6])
        warehouse.put(db.fingerprint(), 4, sets[4])  # evicts the 6-entry
        remaining = list(tmp_path.glob("*.patterns"))
        assert len(remaining) == 1
        assert remaining[0].name.endswith("-4.patterns")

    def test_reload_respects_budget(self, db, tmp_path):
        sets = _sets(db, (4, 6, 9))
        unbounded = PatternWarehouse(directory=tmp_path)
        for support, patterns in sets.items():
            unbounded.put(db.fingerprint(), support, patterns)

        budget = patterns_byte_size(sets[9]) + patterns_byte_size(sets[6])
        bounded = PatternWarehouse(
            byte_budget=budget, directory=tmp_path, representation="full"
        )
        assert bounded.stored_bytes() <= budget
        assert len(bounded) < 3
