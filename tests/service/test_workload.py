"""Tests for JSON workload parsing and replay."""

from __future__ import annotations

import json

import pytest

from repro.errors import DataError
from repro.mining.hmine import mine_hmine
from repro.service import MiningService, PatternWarehouse
from repro.service.workload import load_workload, parse_workload, serve_workload


def _spec(**overrides) -> dict:
    spec = {
        "dataset": "weather",
        "seed": 0,
        "requests": [
            {"tenant": "alice", "support": 0.5},
            {"tenant": "bob", "support": 0.4},
        ],
    }
    spec.update(overrides)
    return spec


class TestParsing:
    def test_defaults_flow_into_requests(self):
        requests = parse_workload(_spec(algorithm="fpgrowth", strategy="mlp"))
        assert [r.tenant for r in requests] == ["alice", "bob"]
        assert all(r.algorithm == "fpgrowth" for r in requests)
        assert all(r.strategy == "mlp" for r in requests)

    def test_requests_share_one_database_object(self):
        """Same (dataset, seed) must resolve to one object, so fingerprint
        and encoding are computed once."""
        requests = parse_workload(_spec())
        assert requests[0].db is requests[1].db

    def test_per_request_overrides(self):
        spec = _spec()
        spec["requests"].append(
            {"tenant": "carol", "support": 0.9, "dataset": "connect4"}
        )
        requests = parse_workload(spec)
        assert requests[2].db is not requests[0].db

    def test_anonymous_tenants_get_indexed_names(self):
        spec = _spec()
        spec["requests"] = [{"support": 0.5}]
        assert parse_workload(spec)[0].tenant == "user-0"

    @pytest.mark.parametrize(
        "mutation, message",
        [
            ({"requests": []}, "non-empty"),
            ({"requests": [{"tenant": "x"}]}, "no support"),
            ({"requests": [{"support": 0.5, "dataset": "mars"}]}, "unknown dataset"),
            ({"dataset": None, "requests": [{"support": 0.5}]}, "no dataset"),
        ],
    )
    def test_malformed_workloads_rejected(self, mutation, message):
        spec = _spec()
        spec.update(mutation)
        if spec.get("dataset") is None:
            del spec["dataset"]
        with pytest.raises(DataError, match=message):
            parse_workload(spec)

    def test_load_workload_file(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(_spec()), encoding="utf-8")
        assert len(load_workload(path)) == 2

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(DataError, match="not valid JSON"):
            load_workload(path)

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(DataError, match="cannot read"):
            load_workload(tmp_path / "absent.json")


class TestSupportConvention:
    def test_float_and_int_supports_round_trip_through_json(self, tmp_path):
        """A JSON float must stay a relative fraction and a JSON int an
        absolute count through a file round-trip — the parser must not
        coerce either way."""
        spec = _spec()
        spec["requests"] = [
            {"tenant": "rel", "support": 0.5},
            {"tenant": "abs", "support": 5},
        ]
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(spec), encoding="utf-8")
        relative, absolute = load_workload(path)
        assert isinstance(relative.support, float) and relative.support == 0.5
        assert isinstance(absolute.support, int) and absolute.support == 5
        assert absolute.absolute_support() == 5
        # ceil(0.5 * |db|): resolved through the database, not the parser.
        assert relative.absolute_support() == -(-len(relative.db) // 2)

    def test_whole_valued_float_stays_relative(self):
        """``1.0`` means "all transactions" (relative), not "count 1"."""
        spec = _spec()
        spec["requests"] = [{"support": 1.0}]
        request = parse_workload(spec)[0]
        assert isinstance(request.support, float)
        assert request.absolute_support() == len(request.db)

    def test_boolean_support_rejected(self):
        spec = _spec()
        spec["requests"] = [{"support": True}]
        with pytest.raises(DataError, match="must be a number"):
            parse_workload(spec)


class TestParsingEdgeCases:
    def test_non_object_spec_rejected(self):
        with pytest.raises(DataError, match="JSON object"):
            parse_workload(["not", "a", "dict"])

    def test_non_object_request_entry_rejected(self):
        spec = _spec()
        spec["requests"] = ["oops"]
        with pytest.raises(DataError, match="must be an object"):
            parse_workload(spec)

    def test_missing_tenant_defaults_stay_distinct_per_index(self):
        spec = _spec()
        spec["requests"] = [{"support": 0.5}, {"support": 0.4}]
        tenants = [r.tenant for r in parse_workload(spec)]
        assert tenants == ["user-0", "user-1"]
        assert len(set(tenants)) == 2  # fairness needs distinct identities

    def test_per_request_seed_materializes_a_distinct_database(self):
        spec = _spec()
        spec["requests"].append({"tenant": "dana", "support": 0.5, "seed": 9})
        requests = parse_workload(spec)
        assert requests[2].db is not requests[0].db
        assert requests[2].db.fingerprint() != requests[0].db.fingerprint()

    def test_jobs_default_and_override(self):
        spec = _spec(jobs=2)
        spec["requests"].append({"tenant": "erin", "support": 0.5, "jobs": 1})
        requests = parse_workload(spec)
        assert [r.jobs for r in requests] == [2, 2, 1]


class TestReplay:
    def test_replay_is_deterministic_across_runs(self):
        """Two replays of the same trace return responses in the same
        arrival order with identical pattern sets, workers or not."""
        requests = parse_workload(_spec())

        def run():
            with MiningService(
                warehouse=PatternWarehouse(), max_workers=4
            ) as service:
                return serve_workload(service, requests)

        first, second = run(), run()
        assert [r.tenant for r in first] == [r.tenant for r in second]
        for a, b in zip(first, second):
            assert a.patterns == b.patterns
            assert a.absolute_support == b.absolute_support

    def test_replay_is_exact_and_ordered(self):
        requests = parse_workload(_spec())
        with MiningService(warehouse=PatternWarehouse(), max_workers=2) as service:
            responses = serve_workload(service, requests)
        assert [r.tenant for r in responses] == ["alice", "bob"]
        for request, response in zip(requests, responses):
            expected = mine_hmine(request.db, request.absolute_support())
            assert response.patterns == expected
