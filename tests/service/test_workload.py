"""Tests for JSON workload parsing and replay."""

from __future__ import annotations

import json

import pytest

from repro.errors import DataError
from repro.mining.hmine import mine_hmine
from repro.service import MiningService, PatternWarehouse
from repro.service.workload import load_workload, parse_workload, serve_workload


def _spec(**overrides) -> dict:
    spec = {
        "dataset": "weather",
        "seed": 0,
        "requests": [
            {"tenant": "alice", "support": 0.5},
            {"tenant": "bob", "support": 0.4},
        ],
    }
    spec.update(overrides)
    return spec


class TestParsing:
    def test_defaults_flow_into_requests(self):
        requests = parse_workload(_spec(algorithm="fpgrowth", strategy="mlp"))
        assert [r.tenant for r in requests] == ["alice", "bob"]
        assert all(r.algorithm == "fpgrowth" for r in requests)
        assert all(r.strategy == "mlp" for r in requests)

    def test_requests_share_one_database_object(self):
        """Same (dataset, seed) must resolve to one object, so fingerprint
        and encoding are computed once."""
        requests = parse_workload(_spec())
        assert requests[0].db is requests[1].db

    def test_per_request_overrides(self):
        spec = _spec()
        spec["requests"].append(
            {"tenant": "carol", "support": 0.9, "dataset": "connect4"}
        )
        requests = parse_workload(spec)
        assert requests[2].db is not requests[0].db

    def test_anonymous_tenants_get_indexed_names(self):
        spec = _spec()
        spec["requests"] = [{"support": 0.5}]
        assert parse_workload(spec)[0].tenant == "user-0"

    @pytest.mark.parametrize(
        "mutation, message",
        [
            ({"requests": []}, "non-empty"),
            ({"requests": [{"tenant": "x"}]}, "no support"),
            ({"requests": [{"support": 0.5, "dataset": "mars"}]}, "unknown dataset"),
            ({"dataset": None, "requests": [{"support": 0.5}]}, "no dataset"),
        ],
    )
    def test_malformed_workloads_rejected(self, mutation, message):
        spec = _spec()
        spec.update(mutation)
        if spec.get("dataset") is None:
            del spec["dataset"]
        with pytest.raises(DataError, match=message):
            parse_workload(spec)

    def test_load_workload_file(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(_spec()), encoding="utf-8")
        assert len(load_workload(path)) == 2

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(DataError, match="not valid JSON"):
            load_workload(path)

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(DataError, match="cannot read"):
            load_workload(tmp_path / "absent.json")


class TestReplay:
    def test_replay_is_exact_and_ordered(self):
        requests = parse_workload(_spec())
        with MiningService(warehouse=PatternWarehouse(), max_workers=2) as service:
            responses = serve_workload(service, requests)
        assert [r.tenant for r in responses] == ["alice", "bob"]
        for request, response in zip(requests, responses):
            expected = mine_hmine(request.db, request.absolute_support())
            assert response.patterns == expected
