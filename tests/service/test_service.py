"""Tests for the multi-tenant mining service (correctness under concurrency,
single-flight coalescing, warehouse interplay and statistics)."""

from __future__ import annotations

import threading

import pytest

import repro.core.planner as planner_module
from repro.data.synthetic import QuestParams, quest_database
from repro.errors import ReproError
from repro.mining.hmine import mine_hmine
from repro.service import MineRequest, MiningService, PatternWarehouse
from repro.storage.disk import patterns_byte_size


@pytest.fixture
def db():
    return quest_database(
        QuestParams(n_transactions=150, n_items=40, avg_transaction_length=6), seed=2
    )


class TestSingleRequests:
    def test_miss_then_filter_then_recycle(self, db):
        with MiningService(warehouse=PatternWarehouse()) as service:
            first = service.execute(MineRequest(db=db, support=12, tenant="alice"))
            assert first.path == "mine" and not first.coalesced
            again = service.execute(MineRequest(db=db, support=12, tenant="bob"))
            assert again.path == "filter" and again.feedstock_support == 12
            relaxed = service.execute(MineRequest(db=db, support=5, tenant="carol"))
            assert relaxed.path == "recycle" and relaxed.feedstock_support == 12
            for response, support in ((first, 12), (again, 12), (relaxed, 5)):
                assert response.patterns == mine_hmine(db, support)

    def test_relative_supports_resolve_via_database(self, db):
        with MiningService(warehouse=PatternWarehouse()) as service:
            response = service.execute(MineRequest(db=db, support=0.1))
            assert response.absolute_support == 15  # ceil(0.1 * 150)

    def test_cold_service_always_mines(self, db):
        with MiningService(warehouse=None) as service:
            service.execute(MineRequest(db=db, support=12))
            second = service.execute(MineRequest(db=db, support=12))
            assert second.path == "mine"
            assert service.stats.mine_runs == 2

    def test_unknown_algorithm_rejected_at_submit(self, db):
        with MiningService() as service:
            with pytest.raises(ReproError, match="unknown algorithm"):
                service.submit(MineRequest(db=db, support=12, algorithm="magic"))

    def test_closed_service_rejects_requests(self, db):
        service = MiningService()
        service.close()
        with pytest.raises(ReproError, match="closed"):
            service.submit(MineRequest(db=db, support=12))

    def test_empty_result_supports_are_cached_not_recycled(self, db):
        """A threshold admitting no patterns must fall back to scratch
        mining on relaxation, exactly like the interactive session."""
        with MiningService(warehouse=PatternWarehouse()) as service:
            barren = service.execute(MineRequest(db=db, support=len(db) + 1))
            assert barren.pattern_count == 0
            relaxed = service.execute(MineRequest(db=db, support=5))
            assert relaxed.path == "mine"
            assert relaxed.patterns == mine_hmine(db, 5)


class TestParallelRequests:
    @staticmethod
    def _inline_factory(**extra):
        """Engine factory running the real worker code path in-process."""
        from repro.parallel import ParallelEngine

        def factory(jobs, shard_feedstock, on_shard_result):
            return ParallelEngine(
                jobs,
                executor="inline",
                shard_feedstock=shard_feedstock,
                on_shard_result=on_shard_result,
                **extra,
            )

        return factory

    def test_parallel_mine_matches_serial(self, db):
        with MiningService(
            warehouse=PatternWarehouse(),
            parallel_engine_factory=self._inline_factory(),
        ) as service:
            response = service.execute(MineRequest(db=db, support=10, jobs=2))
            assert response.jobs == 2 and not response.parallel_fallback
            assert response.patterns == mine_hmine(db, 10)
            snapshot = service.stats.snapshot()
            assert snapshot["parallel_runs"] == 1
            assert snapshot["parallel_fallbacks"] == 0

    def test_parallel_recycle_reuses_warehouse_feedstock(self, db):
        with MiningService(
            warehouse=PatternWarehouse(),
            parallel_engine_factory=self._inline_factory(),
        ) as service:
            service.execute(MineRequest(db=db, support=12))
            relaxed = service.execute(MineRequest(db=db, support=6, jobs=2))
            assert relaxed.path == "recycle" and relaxed.jobs == 2
            assert relaxed.patterns == mine_hmine(db, 6)

    def test_worker_crash_degrades_to_serial_and_is_surfaced(self, db):
        """Acceptance: a shard raising mid-mine falls back to the
        in-process path with exact results, visible in the response and
        in the service stats."""
        with MiningService(
            warehouse=PatternWarehouse(),
            parallel_engine_factory=self._inline_factory(failure_injection=(0,)),
        ) as service:
            response = service.execute(MineRequest(db=db, support=10, jobs=2))
            assert response.parallel_fallback
            assert response.jobs == 1  # the run that produced the answer
            assert response.patterns == mine_hmine(db, 10)
            snapshot = service.stats.snapshot()
            assert snapshot["parallel_fallbacks"] == 1

    def test_nonpositive_jobs_rejected_at_submit(self, db):
        with MiningService() as service:
            with pytest.raises(ReproError, match="jobs"):
                service.submit(MineRequest(db=db, support=12, jobs=0))


class TestStatsZeroGuards:
    def test_fresh_stats_report_without_requests(self):
        from repro.service.service import ServiceStats

        stats = ServiceStats()
        assert stats.latency_quantile(0.5) == 0.0
        assert stats.latency_quantile(0.95) == 0.0
        assert stats.path_rates() == {
            "filter": 0.0,
            "recycle": 0.0,
            "update": 0.0,
            "mine": 0.0,
            "degraded": 0.0,
        }
        snapshot = stats.snapshot()
        assert snapshot["requests"] == 0
        assert snapshot["latency_p50_s"] == 0.0
        assert snapshot["filter_rate"] == 0.0


class TestSingleFlight:
    def test_identical_inflight_requests_share_one_run(self, db, monkeypatch):
        """Six identical requests submitted while the leader is gated must
        produce exactly one underlying mining run."""
        release = threading.Event()
        real_get_miner = planner_module.get_miner
        mine_calls: list[int] = []

        class GatedSpec:
            def __init__(self, spec):
                self._spec = spec

            def mine(self, database, support, counters=None):
                mine_calls.append(support)
                assert release.wait(timeout=30), "gate never released"
                return self._spec.mine(database, support, counters)

        monkeypatch.setattr(
            planner_module,
            "get_miner",
            lambda name, kind="baseline": GatedSpec(real_get_miner(name, kind=kind)),
        )
        with MiningService(warehouse=PatternWarehouse(), max_workers=4) as service:
            futures = [
                service.submit(MineRequest(db=db, support=10, tenant=f"user-{i}"))
                for i in range(6)
            ]
            release.set()
            responses = [future.result(timeout=60) for future in futures]
        assert len(mine_calls) == 1, "single-flight must run the miner once"
        assert service.stats.mine_runs == 1
        assert service.stats.coalesced == 5
        expected = mine_hmine(db, 10)
        assert all(response.patterns == expected for response in responses)
        assert sum(1 for r in responses if not r.coalesced) == 1

    def test_failures_propagate_to_every_waiter(self, db, monkeypatch):
        release = threading.Event()

        def explode(name, kind="baseline"):
            class Boom:
                def mine(self, database, support, counters=None):
                    assert release.wait(timeout=30)
                    raise RuntimeError("disk on fire")

            return Boom()

        monkeypatch.setattr(planner_module, "get_miner", explode)
        with MiningService(warehouse=PatternWarehouse(), max_workers=2) as service:
            futures = [
                service.submit(MineRequest(db=db, support=10)) for _ in range(3)
            ]
            release.set()
            for future in futures:
                with pytest.raises(RuntimeError, match="disk on fire"):
                    future.result(timeout=60)
        # A failed computation must not leave the in-flight slot occupied.
        assert not service._inflight


class TestConcurrency:
    def test_eight_threads_mixed_supports_exact_and_budgeted(self, db):
        """The acceptance scenario: >= 8 client threads of mixed-support
        requests against one service. Every result must be bit-identical
        to single-threaded mining and the warehouse must never exceed its
        byte budget."""
        supports = [18, 12, 9, 15, 7, 20, 10, 8]
        expected = {support: mine_hmine(db, support) for support in supports}
        # Big enough for any single set, far too small for all of them.
        budget = max(
            patterns_byte_size(patterns) for patterns in expected.values()
        ) + 64
        warehouse = PatternWarehouse(byte_budget=budget)
        service = MiningService(warehouse=warehouse, max_workers=8)
        start = threading.Barrier(8)
        failures: list[BaseException] = []

        def tenant(index: int) -> None:
            try:
                start.wait(timeout=30)
                # Every thread walks all supports, each starting elsewhere.
                for offset in range(len(supports)):
                    support = supports[(index + offset) % len(supports)]
                    response = service.execute(
                        MineRequest(db=db, support=support, tenant=f"t{index}")
                    )
                    assert response.patterns == expected[support], (
                        f"thread {index} got wrong patterns at {support}"
                    )
                    assert warehouse.stored_bytes() <= budget
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                failures.append(exc)

        threads = [
            threading.Thread(target=tenant, args=(i,), name=f"tenant-{i}")
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        service.close()
        assert not failures, failures
        assert warehouse.stored_bytes() <= budget
        assert warehouse.evictions > 0, "budget pressure should have evicted"
        snapshot = service.stats.snapshot()
        assert snapshot["requests"] == 8 * len(supports)
        # The warehouse + coalescing must have absorbed some of the traffic.
        assert snapshot["computations"] + snapshot["coalesced"] == snapshot["requests"]
        assert snapshot["misses"] < snapshot["requests"]
        reused = (
            snapshot["filter_hits"] + snapshot["recycles"] + snapshot["coalesced"]
        )
        assert reused > 0

    def test_stats_quantiles_monotonic(self, db):
        with MiningService(warehouse=PatternWarehouse()) as service:
            for support in (20, 15, 10):
                service.execute(MineRequest(db=db, support=support))
            p50 = service.stats.latency_quantile(0.5)
            p95 = service.stats.latency_quantile(0.95)
            assert 0 <= p50 <= p95
