"""Tests for the multi-tenant mining service (correctness under concurrency,
single-flight coalescing, warehouse interplay and statistics)."""

from __future__ import annotations

import threading

import pytest

import repro.core.planner as planner_module
from repro.data.synthetic import QuestParams, quest_database
from repro.errors import ReproError
from repro.mining.hmine import mine_hmine
from repro.service import MineRequest, MiningService, PatternWarehouse
from repro.storage.disk import patterns_byte_size


@pytest.fixture
def db():
    return quest_database(
        QuestParams(n_transactions=150, n_items=40, avg_transaction_length=6), seed=2
    )


class TestSingleRequests:
    def test_miss_then_filter_then_recycle(self, db):
        with MiningService(warehouse=PatternWarehouse()) as service:
            first = service.execute(MineRequest(db=db, support=12, tenant="alice"))
            assert first.path == "mine" and not first.coalesced
            again = service.execute(MineRequest(db=db, support=12, tenant="bob"))
            assert again.path == "filter" and again.feedstock_support == 12
            relaxed = service.execute(MineRequest(db=db, support=5, tenant="carol"))
            assert relaxed.path == "recycle" and relaxed.feedstock_support == 12
            for response, support in ((first, 12), (again, 12), (relaxed, 5)):
                assert response.patterns == mine_hmine(db, support)

    def test_relative_supports_resolve_via_database(self, db):
        with MiningService(warehouse=PatternWarehouse()) as service:
            response = service.execute(MineRequest(db=db, support=0.1))
            assert response.absolute_support == 15  # ceil(0.1 * 150)

    def test_cold_service_always_mines(self, db):
        with MiningService(warehouse=None) as service:
            service.execute(MineRequest(db=db, support=12))
            second = service.execute(MineRequest(db=db, support=12))
            assert second.path == "mine"
            assert service.stats.mine_runs == 2

    def test_unknown_algorithm_rejected_at_submit(self, db):
        with MiningService() as service:
            with pytest.raises(ReproError, match="unknown algorithm"):
                service.submit(MineRequest(db=db, support=12, algorithm="magic"))

    def test_closed_service_rejects_requests(self, db):
        service = MiningService()
        service.close()
        with pytest.raises(ReproError, match="closed"):
            service.submit(MineRequest(db=db, support=12))

    def test_empty_result_supports_are_cached_not_recycled(self, db):
        """A threshold admitting no patterns must fall back to scratch
        mining on relaxation, exactly like the interactive session."""
        with MiningService(warehouse=PatternWarehouse()) as service:
            barren = service.execute(MineRequest(db=db, support=len(db) + 1))
            assert barren.pattern_count == 0
            relaxed = service.execute(MineRequest(db=db, support=5))
            assert relaxed.path == "mine"
            assert relaxed.patterns == mine_hmine(db, 5)


class TestSingleFlight:
    def test_identical_inflight_requests_share_one_run(self, db, monkeypatch):
        """Six identical requests submitted while the leader is gated must
        produce exactly one underlying mining run."""
        release = threading.Event()
        real_get_miner = planner_module.get_miner
        mine_calls: list[int] = []

        class GatedSpec:
            def __init__(self, spec):
                self._spec = spec

            def mine(self, database, support, counters=None):
                mine_calls.append(support)
                assert release.wait(timeout=30), "gate never released"
                return self._spec.mine(database, support, counters)

        monkeypatch.setattr(
            planner_module,
            "get_miner",
            lambda name, kind="baseline": GatedSpec(real_get_miner(name, kind=kind)),
        )
        with MiningService(warehouse=PatternWarehouse(), max_workers=4) as service:
            futures = [
                service.submit(MineRequest(db=db, support=10, tenant=f"user-{i}"))
                for i in range(6)
            ]
            release.set()
            responses = [future.result(timeout=60) for future in futures]
        assert len(mine_calls) == 1, "single-flight must run the miner once"
        assert service.stats.mine_runs == 1
        assert service.stats.coalesced == 5
        expected = mine_hmine(db, 10)
        assert all(response.patterns == expected for response in responses)
        assert sum(1 for r in responses if not r.coalesced) == 1

    def test_failures_propagate_to_every_waiter(self, db, monkeypatch):
        release = threading.Event()

        def explode(name, kind="baseline"):
            class Boom:
                def mine(self, database, support, counters=None):
                    assert release.wait(timeout=30)
                    raise RuntimeError("disk on fire")

            return Boom()

        monkeypatch.setattr(planner_module, "get_miner", explode)
        with MiningService(warehouse=PatternWarehouse(), max_workers=2) as service:
            futures = [
                service.submit(MineRequest(db=db, support=10)) for _ in range(3)
            ]
            release.set()
            for future in futures:
                with pytest.raises(RuntimeError, match="disk on fire"):
                    future.result(timeout=60)
        # A failed computation must not leave the in-flight slot occupied.
        assert not service._inflight


class TestConcurrency:
    def test_eight_threads_mixed_supports_exact_and_budgeted(self, db):
        """The acceptance scenario: >= 8 client threads of mixed-support
        requests against one service. Every result must be bit-identical
        to single-threaded mining and the warehouse must never exceed its
        byte budget."""
        supports = [18, 12, 9, 15, 7, 20, 10, 8]
        expected = {support: mine_hmine(db, support) for support in supports}
        # Big enough for any single set, far too small for all of them.
        budget = max(
            patterns_byte_size(patterns) for patterns in expected.values()
        ) + 64
        warehouse = PatternWarehouse(byte_budget=budget)
        service = MiningService(warehouse=warehouse, max_workers=8)
        start = threading.Barrier(8)
        failures: list[BaseException] = []

        def tenant(index: int) -> None:
            try:
                start.wait(timeout=30)
                # Every thread walks all supports, each starting elsewhere.
                for offset in range(len(supports)):
                    support = supports[(index + offset) % len(supports)]
                    response = service.execute(
                        MineRequest(db=db, support=support, tenant=f"t{index}")
                    )
                    assert response.patterns == expected[support], (
                        f"thread {index} got wrong patterns at {support}"
                    )
                    assert warehouse.stored_bytes() <= budget
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                failures.append(exc)

        threads = [
            threading.Thread(target=tenant, args=(i,), name=f"tenant-{i}")
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        service.close()
        assert not failures, failures
        assert warehouse.stored_bytes() <= budget
        assert warehouse.evictions > 0, "budget pressure should have evicted"
        snapshot = service.stats.snapshot()
        assert snapshot["requests"] == 8 * len(supports)
        # The warehouse + coalescing must have absorbed some of the traffic.
        assert snapshot["computations"] + snapshot["coalesced"] == snapshot["requests"]
        assert snapshot["misses"] < snapshot["requests"]
        reused = (
            snapshot["filter_hits"] + snapshot["recycles"] + snapshot["coalesced"]
        )
        assert reused > 0

    def test_stats_quantiles_monotonic(self, db):
        with MiningService(warehouse=PatternWarehouse()) as service:
            for support in (20, 15, 10):
                service.execute(MineRequest(db=db, support=support))
            p50 = service.stats.latency_quantile(0.5)
            p95 = service.stats.latency_quantile(0.95)
            assert 0 <= p50 <= p95
