"""Condensed warehouse entries: accounting, back-compat, migration, audits.

Four concerns, one per class:

* **Byte accounting** (the LRU regression tests): the budget charges the
  condensed entry's modelled size — entries plus the fixed metadata
  header — never the size of the full set it reconstructs.
* **Back-compat**: pre-condensation full-set ``.patterns`` files (with
  and without the ``# sha256=`` integrity header) still load, and are
  re-written condensed on first load; corrupt condensed files are
  quarantined exactly like corrupt full-set files.
* **Migration**: the ``migrated`` counter, the ndi→closed fallback for
  header-less transaction counts, and ``migrate_on_load=False``.
* **Audits**: ``verify_entry`` still runs its checks against the exact
  expansion of a condensed entry.
"""

from __future__ import annotations

import pytest

from repro.data.io import (
    read_warehouse_entry,
    write_patterns_with_support,
    write_warehouse_entry,
)
from repro.data.patterns import CondensedPatternSet
from repro.data.transactions import TransactionDatabase
from repro.mining.hmine import mine_hmine
from repro.service.warehouse import PatternWarehouse
from repro.storage.disk import (
    CONDENSED_HEADER_BYTES,
    ITEM_BYTES,
    RECORD_OVERHEAD_BYTES,
    patterns_byte_size,
)


@pytest.fixture
def db():
    # Perfectly correlated items: closure collapses the frequent set
    # (15 patterns at support 4) to two closed entries.
    return TransactionDatabase([[1, 2, 3, 4]] * 4 + [[1, 2]] * 4)


@pytest.fixture
def full(db):
    return mine_hmine(db, 4)


class TestByteAccounting:
    def test_condensed_size_is_entries_plus_header(self, db, full):
        condensed = CondensedPatternSet.condense(
            full, 4, "closed", n_transactions=len(db)
        )
        expected = CONDENSED_HEADER_BYTES + sum(
            len(items) * ITEM_BYTES + ITEM_BYTES + RECORD_OVERHEAD_BYTES
            for items, _ in condensed.items()
        )
        assert patterns_byte_size(condensed) == expected

    def test_full_representation_accounting_unchanged(self, db, full):
        """A full-representation condensed set charges exactly what the
        plain pattern set does — no header surcharge — so pre-existing
        budget arithmetic keeps holding."""
        condensed = CondensedPatternSet.condense(
            full, 4, "full", n_transactions=len(db)
        )
        assert patterns_byte_size(condensed) == patterns_byte_size(full)

    def test_budget_charges_condensed_not_full_size(self, db, full):
        condensed_size = patterns_byte_size(
            CondensedPatternSet.condense(full, 4, "closed", n_transactions=len(db))
        )
        assert condensed_size < patterns_byte_size(full)
        # A budget below the full size but above the condensed size
        # accepts the entry — proof the charge is the condensed cost.
        warehouse = PatternWarehouse(byte_budget=condensed_size)
        assert warehouse.put(db.fingerprint(), 4, full, n_transactions=len(db))
        assert warehouse.stored_bytes() == condensed_size
        assert warehouse.get(db.fingerprint(), 4) == full

    def test_stats_report_both_sizes(self, db, full):
        warehouse = PatternWarehouse()
        warehouse.put(db.fingerprint(), 4, full, n_transactions=len(db))
        stats = warehouse.stats()
        assert stats["full_bytes"] == patterns_byte_size(full)
        assert stats["stored_bytes"] < stats["full_bytes"]
        assert warehouse.condensation_ratio() == (
            stats["full_bytes"] / stats["stored_bytes"]
        )


class TestBackCompat:
    def _legacy_file(self, tmp_path, db, full, *, checksum: bool):
        path = tmp_path / f"{db.fingerprint()}-4.patterns"
        if checksum:
            write_patterns_with_support(full, path, 4)
        else:
            lines = ["# absolute_support=4"]
            lines += [
                " ".join(str(i) for i in sorted(items)) + f" : {support}"
                for items, support in sorted(
                    full.items(), key=lambda kv: sorted(kv[0])
                )
            ]
            path.write_text("\n".join(lines) + "\n")
        return path

    @pytest.mark.parametrize("checksum", [True, False])
    def test_legacy_full_set_files_load(self, tmp_path, db, full, checksum):
        self._legacy_file(tmp_path, db, full, checksum=checksum)
        warehouse = PatternWarehouse(directory=tmp_path)
        assert warehouse.quarantined == []
        assert warehouse.get(db.fingerprint(), 4) == full

    def test_legacy_file_rewritten_condensed_on_load(self, tmp_path, db, full):
        path = self._legacy_file(tmp_path, db, full, checksum=True)
        warehouse = PatternWarehouse(directory=tmp_path, representation="closed")
        assert warehouse.migrated == 1
        condensed, full_bytes = read_warehouse_entry(path)
        assert condensed.representation == "closed"
        assert full_bytes == patterns_byte_size(full)
        assert condensed.expand() == full
        # The second load finds the file already condensed: no migration.
        again = PatternWarehouse(directory=tmp_path, representation="closed")
        assert again.migrated == 0
        assert again.get(db.fingerprint(), 4) == full

    def test_migrate_on_load_false_preserves_files(self, tmp_path, db, full):
        path = self._legacy_file(tmp_path, db, full, checksum=True)
        before = path.read_text()
        warehouse = PatternWarehouse(
            directory=tmp_path, representation="closed", migrate_on_load=False
        )
        assert warehouse.migrated == 0
        assert path.read_text() == before
        assert warehouse.get(db.fingerprint(), 4) == full

    def test_legacy_file_in_ndi_warehouse_falls_back_to_closed(
        self, tmp_path, db, full
    ):
        """A legacy file has no transaction count, and the NDI deduction
        rules need supp({}) = |D| — so the migration lands on closed."""
        path = self._legacy_file(tmp_path, db, full, checksum=True)
        warehouse = PatternWarehouse(directory=tmp_path, representation="ndi")
        assert warehouse.migrated == 1
        condensed, _ = read_warehouse_entry(path)
        assert condensed.representation == "closed"
        assert warehouse.get(db.fingerprint(), 4) == full

    def test_corrupt_condensed_file_quarantined(self, tmp_path, db, full):
        condensed = CondensedPatternSet.condense(
            full, 4, "closed", n_transactions=len(db)
        )
        path = tmp_path / f"{db.fingerprint()}-4.patterns"
        write_warehouse_entry(condensed, path)
        text = path.read_text()
        path.write_text(text.replace(" 8\n", " 7\n", 1))  # flip one support
        warehouse = PatternWarehouse(directory=tmp_path)
        assert len(warehouse) == 0
        assert len(warehouse.quarantined) == 1
        assert (tmp_path / "quarantine" / path.name).exists()

    def test_truncated_condensed_file_quarantined(self, tmp_path, db, full):
        condensed = CondensedPatternSet.condense(
            full, 4, "closed", n_transactions=len(db)
        )
        path = tmp_path / f"{db.fingerprint()}-4.patterns"
        write_warehouse_entry(condensed, path)
        path.write_text(path.read_text()[:60])
        warehouse = PatternWarehouse(directory=tmp_path)
        assert len(warehouse) == 0
        assert len(warehouse.quarantined) == 1


class TestRoundTrips:
    @pytest.mark.parametrize("representation", ["full", "closed", "ndi"])
    def test_disk_round_trip_preserves_representation(
        self, tmp_path, db, full, representation
    ):
        warehouse = PatternWarehouse(
            directory=tmp_path, representation=representation
        )
        warehouse.put(db.fingerprint(), 4, full, n_transactions=len(db))
        reborn = PatternWarehouse(
            directory=tmp_path, representation=representation
        )
        assert reborn.migrated == 0
        stored = reborn.get_condensed(db.fingerprint(), 4)
        assert stored.representation == representation
        assert reborn.get(db.fingerprint(), 4) == full

    def test_best_feedstock_serves_condensed(self, db, full):
        warehouse = PatternWarehouse()
        warehouse.put(db.fingerprint(), 4, full, n_transactions=len(db))
        hit = warehouse.best_feedstock(db.fingerprint(), 5)
        assert isinstance(hit.feedstock, CondensedPatternSet)
        assert hit.patterns == full  # the property expands on demand

    def test_describe_entries_reports_condensation(self, db, full):
        warehouse = PatternWarehouse()
        warehouse.put(db.fingerprint(), 4, full, n_transactions=len(db))
        (row,) = warehouse.describe_entries()
        assert row["representation"] == "closed"
        assert row["entries"] == 2
        assert row["expanded"] == len(full)
        assert row["condensation_ratio"] > 1.0


class TestAudits:
    @pytest.mark.parametrize("representation", ["full", "closed", "ndi"])
    def test_genuine_entries_audit_clean(self, db, full, representation):
        warehouse = PatternWarehouse(representation=representation)
        warehouse.put(db.fingerprint(), 4, full, n_transactions=len(db))
        report = warehouse.verify_entry(db.fingerprint(), 4)
        assert report.ok, report.violations
        assert report.representation == representation
        assert report.checks > 0
