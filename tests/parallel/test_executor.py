"""Engine unit tests: worker trichotomy, fallback, hooks, real processes."""

from __future__ import annotations

import pickle

import pytest

from repro.core.compression import compress
from repro.core.planner import PATH_FILTER, PATH_MINE, PATH_RECYCLE
from repro.data.patterns import PatternSet
from repro.data.transactions import TransactionDatabase
from repro.errors import ParallelError
from repro.metrics.counters import CostCounters
from repro.mining.bruteforce import mine_bruteforce
from repro.parallel import (
    ParallelEngine,
    ShardPlanner,
    ShardTask,
    run_shard_task,
)
from repro.parallel.executor import patterns_to_rows, rows_to_patterns


def db() -> TransactionDatabase:
    return TransactionDatabase(
        [
            [1, 2, 3],
            [1, 2, 3],
            [1, 2],
            [2, 3],
            [1, 3],
            [4, 5],
            [4, 5, 1],
            [2, 3, 4],
            [1, 2, 4],
            [3, 4, 5],
        ]
    )


def one_shard(jobs: int = 2):
    database = db()
    patterns = mine_bruteforce(database, 4)
    grouped = compress(database, patterns, "mcp").compressed
    return ShardPlanner(jobs).plan(grouped).shards[0]


class TestPatternRows:
    def test_round_trip(self):
        patterns = mine_bruteforce(db(), 2)
        assert rows_to_patterns(patterns_to_rows(patterns)) == patterns

    def test_rows_are_sorted_canonically(self):
        rows = patterns_to_rows(mine_bruteforce(db(), 2))
        assert rows == tuple(sorted(rows))


class TestRunShardTask:
    def test_recycle_mode_mines_the_shard_groups(self):
        shard = one_shard()
        result = run_shard_task(ShardTask(shard=shard, local_support=2))
        assert result["path"] == PATH_RECYCLE
        patterns = rows_to_patterns(result["patterns"])
        assert patterns == mine_bruteforce(shard.database(), 2)

    def test_scratch_mode_uses_a_baseline_miner(self):
        shard = one_shard()
        result = run_shard_task(
            ShardTask(shard=shard, local_support=2, scratch=True)
        )
        assert result["path"] == PATH_MINE
        patterns = rows_to_patterns(result["patterns"])
        assert patterns == mine_bruteforce(shard.database(), 2)

    def test_feedstock_runs_the_planner_trichotomy(self):
        shard = one_shard()
        feedstock = mine_bruteforce(shard.database(), 1)
        # Feedstock mined at a lower threshold: the worker filters.
        result = run_shard_task(
            ShardTask(
                shard=shard,
                local_support=2,
                feedstock=patterns_to_rows(feedstock),
                feedstock_support=1,
            )
        )
        assert result["path"] == PATH_FILTER
        assert rows_to_patterns(result["patterns"]) == mine_bruteforce(
            shard.database(), 2
        )

    def test_task_survives_pickling(self):
        shard = one_shard()
        task = ShardTask(shard=shard, local_support=2)
        clone = pickle.loads(pickle.dumps(task))
        assert run_shard_task(clone)["patterns"] == run_shard_task(task)["patterns"]

    def test_fail_hook_raises(self):
        with pytest.raises(ParallelError):
            run_shard_task(ShardTask(shard=one_shard(), local_support=2, fail=True))


class TestParallelEngine:
    def test_requires_positive_jobs(self):
        with pytest.raises(ParallelError):
            ParallelEngine(0)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ParallelError):
            ParallelEngine(2, executor="threads")

    def test_jobs_one_short_circuits(self):
        database = db()
        old = mine_bruteforce(database, 4)
        outcome = ParallelEngine(1).recycle_mine(database, old, 2)
        assert outcome.jobs == 1 and not outcome.shards and not outcome.fallback
        assert outcome.patterns == mine_bruteforce(database, 2)

    def test_inline_recycle_matches_reference(self):
        database = db()
        old = mine_bruteforce(database, 4)
        outcome = ParallelEngine(3, executor="inline").recycle_mine(
            database, old, 2
        )
        assert outcome.jobs == 3
        assert outcome.patterns == mine_bruteforce(database, 2)
        assert outcome.merge is not None
        assert outcome.critical_path_seconds <= outcome.elapsed_seconds

    def test_process_pool_matches_reference(self):
        database = db()
        old = mine_bruteforce(database, 4)
        outcome = ParallelEngine(2, executor="process").recycle_mine(
            database, old, 2
        )
        assert outcome.jobs == 2 and not outcome.fallback
        assert outcome.patterns == mine_bruteforce(database, 2)

    def test_scratch_mine_matches_reference(self):
        database = db()
        outcome = ParallelEngine(3, executor="inline").mine(database, 2)
        assert outcome.jobs == 3
        assert outcome.patterns == mine_bruteforce(database, 2)

    def test_crash_falls_back_to_serial(self):
        database = db()
        old = mine_bruteforce(database, 4)
        counters = CostCounters()
        outcome = ParallelEngine(
            2, executor="inline", failure_injection=(0,)
        ).recycle_mine(database, old, 2, counters=counters)
        assert outcome.fallback
        assert "injected failure" in outcome.fallback_reason
        assert outcome.jobs == 1
        assert outcome.patterns == mine_bruteforce(database, 2)
        assert counters.as_dict()["parallel_fallbacks"] == 1

    def test_missed_deadline_falls_back(self):
        database = db()
        old = mine_bruteforce(database, 4)
        outcome = ParallelEngine(
            2, executor="process", timeout_seconds=0.0
        ).recycle_mine(database, old, 2)
        assert outcome.fallback
        assert "deadline" in outcome.fallback_reason
        assert outcome.patterns == mine_bruteforce(database, 2)

    def test_worker_counters_are_merged(self):
        database = db()
        old = mine_bruteforce(database, 4)
        counters = CostCounters()
        outcome = ParallelEngine(2, executor="inline").recycle_mine(
            database, old, 2, counters=counters
        )
        recorded = counters.as_dict()
        assert recorded["parallel_runs"] == 1
        assert recorded["parallel_shards"] == outcome.jobs
        assert counters.total_work() > 0

    def test_shard_feedstock_and_result_hooks(self):
        database = db()
        old = mine_bruteforce(database, 4)
        banked: dict[tuple[str, int], PatternSet] = {}

        def feedstock(fingerprint: str, local_support: int):
            return None  # cold warehouse

        def on_result(fingerprint: str, local_support: int, patterns: PatternSet):
            banked[(fingerprint, local_support)] = patterns

        engine = ParallelEngine(
            2,
            executor="inline",
            shard_feedstock=feedstock,
            on_shard_result=on_result,
        )
        outcome = engine.recycle_mine(database, old, 2)
        assert len(banked) == outcome.jobs

        # Second run: hand the banked sets back and expect filter paths.
        def warm_feedstock(fingerprint: str, local_support: int):
            hit = banked.get((fingerprint, local_support))
            return (hit, local_support) if hit is not None else None

        warm = ParallelEngine(
            2, executor="inline", shard_feedstock=warm_feedstock
        ).recycle_mine(database, old, 2)
        assert warm.patterns == outcome.patterns
        assert all(shard.path == PATH_FILTER for shard in warm.shards)
