"""The tentpole invariant: shard-merge == single-process, always.

For every registered recycling miner x compression strategy x jobs in
{1, 2, 4}, with the Lemma 3.1 single-group shortcut on and off, the
sharded engine's patterns (and supports) are set-identical to the
single-process ``recycle_mine`` result over hypothesis-generated
databases. The property runs on the inline executor — the exact worker
code path including the pickling round-trip, minus process startup — and
a separate spot check covers the real process pool.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.recycle import recycle_mine
from repro.data.transactions import TransactionDatabase
from repro.mining.bruteforce import mine_bruteforce
from repro.mining.registry import iter_miners
from repro.parallel import ParallelEngine

RECYCLING_NAMES = sorted(spec.name for spec in iter_miners("recycling"))
JOBS = (1, 2, 4)

small_databases = st.lists(
    st.lists(st.integers(0, 7), min_size=1, max_size=6),
    min_size=1,
    max_size=16,
)


@given(
    transactions=small_databases,
    xi_old=st.integers(2, 5),
    xi_new=st.integers(1, 3),
    strategy=st.sampled_from(["mcp", "mlp"]),
    shortcut=st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_shard_merge_equals_single_process(
    transactions, xi_old, xi_new, strategy, shortcut
):
    db = TransactionDatabase(transactions)
    old_patterns = mine_bruteforce(db, max(xi_old, xi_new))
    if len(old_patterns) == 0:
        return
    for name in RECYCLING_NAMES:
        reference = recycle_mine(
            db, old_patterns, xi_new, algorithm=name, strategy=strategy
        )
        for jobs in JOBS:
            outcome = ParallelEngine(jobs, executor="inline").recycle_mine(
                db,
                old_patterns,
                xi_new,
                algorithm=name,
                strategy=strategy,
                single_group_shortcut=shortcut,
            )
            assert outcome.patterns == reference, (
                f"{name}/{strategy}/jobs={jobs}/shortcut={shortcut} diverged"
            )


@given(
    transactions=small_databases,
    xi_new=st.integers(1, 3),
    jobs=st.sampled_from(JOBS),
)
@settings(max_examples=25, deadline=None)
def test_parallel_scratch_mine_equals_single_process(transactions, xi_new, jobs):
    db = TransactionDatabase(transactions)
    reference = mine_bruteforce(db, xi_new)
    outcome = ParallelEngine(jobs, executor="inline").mine(db, xi_new)
    assert outcome.patterns == reference


@given(
    transactions=small_databases,
    xi_old=st.integers(2, 5),
    xi_new=st.integers(1, 3),
)
@settings(max_examples=10, deadline=None)
def test_crash_fallback_still_matches(transactions, xi_old, xi_new):
    db = TransactionDatabase(transactions)
    old_patterns = mine_bruteforce(db, max(xi_old, xi_new))
    if len(old_patterns) == 0:
        return
    reference = recycle_mine(db, old_patterns, xi_new)
    outcome = ParallelEngine(
        4, executor="inline", failure_injection=(0, 2)
    ).recycle_mine(db, old_patterns, xi_new)
    assert outcome.patterns == reference


def test_real_process_pool_spot_check():
    """One non-hypothesis run through actual worker processes."""
    db = TransactionDatabase(
        [[1, 2, 3], [1, 2, 3], [1, 2], [2, 3], [1, 3], [4, 5], [4, 5, 1], [2, 4]]
    )
    old_patterns = mine_bruteforce(db, 4)
    reference = recycle_mine(db, old_patterns, 2)
    for jobs in (2, 4):
        outcome = ParallelEngine(jobs, executor="process").recycle_mine(
            db, old_patterns, 2
        )
        assert not outcome.fallback
        assert outcome.patterns == reference
