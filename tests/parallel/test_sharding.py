"""Sharding unit tests: atomic groups, scaling soundness, stable shards."""

from __future__ import annotations

import pickle

import pytest

from repro.core.compression import compress
from repro.core.groups import Group, GroupedDatabase
from repro.data.transactions import TransactionDatabase
from repro.errors import MiningError
from repro.mining.bruteforce import mine_bruteforce
from repro.parallel import Shard, ShardPlanner, scale_local_support


def small_db() -> TransactionDatabase:
    return TransactionDatabase(
        [
            [1, 2, 3],
            [1, 2, 4],
            [1, 2],
            [3, 4],
            [3, 4, 5],
            [5, 6],
            [1, 5, 6],
            [2, 3, 4],
        ]
    )


def compressed(db: TransactionDatabase) -> GroupedDatabase:
    patterns = mine_bruteforce(db, 3)
    return compress(db, patterns, "mcp").compressed


class TestScaleLocalSupport:
    def test_even_split_divides_exactly(self):
        assert scale_local_support(10, 50, 100) == 5

    def test_rounds_up(self):
        # ceil(10 * 33 / 100) = ceil(3.3) = 4: a pattern meeting global
        # support must reach at least that count in some shard.
        assert scale_local_support(10, 33, 100) == 4

    def test_never_below_one(self):
        assert scale_local_support(1, 1, 1000) == 1

    def test_single_shard_is_identity(self):
        assert scale_local_support(7, 100, 100) == 7

    def test_pigeonhole_soundness(self):
        # If every shard missed its scaled threshold, the summed counts
        # would fall below the global threshold — exhaustively check the
        # contrapositive on small splits.
        total, global_support = 20, 6
        for a in range(1, total):
            b = total - a
            ta = scale_local_support(global_support, a, total)
            tb = scale_local_support(global_support, b, total)
            assert (ta - 1) + (tb - 1) < global_support

    def test_rejects_nonpositive_support(self):
        with pytest.raises(MiningError):
            scale_local_support(0, 10, 100)


class TestShardPlanner:
    def test_pattern_groups_are_never_split(self):
        grouped = compressed(small_db())
        plan = ShardPlanner(3).plan(grouped)
        for group in grouped.groups:
            if not group.pattern:
                continue
            owners = [
                shard
                for shard in plan.shards
                if any(g.pattern == group.pattern for g in shard.groups)
            ]
            assert len(owners) == 1, f"group {group.pattern} split across shards"

    def test_shards_partition_the_tuples(self):
        grouped = compressed(small_db())
        plan = ShardPlanner(3).plan(grouped)
        assert sum(s.tuple_count for s in plan.shards) == grouped.tuple_count()
        all_tids = sorted(
            tid for shard in plan.shards for g in shard.groups for tid in g.tids
        )
        assert all_tids == sorted(small_db().tids)

    def test_deterministic(self):
        grouped = compressed(small_db())
        a = ShardPlanner(3).plan(grouped)
        b = ShardPlanner(3).plan(grouped)
        assert [s.fingerprint() for s in a.shards] == [
            s.fingerprint() for s in b.shards
        ]

    def test_residual_only_database_still_shards(self):
        db = small_db()
        plan = ShardPlanner(4).plan(GroupedDatabase.from_database(db))
        assert plan.effective_jobs == 4
        assert sum(s.tuple_count for s in plan.shards) == len(db)

    def test_empty_shards_are_dropped(self):
        db = TransactionDatabase([[1, 2], [1, 3]])
        plan = ShardPlanner(8).plan(GroupedDatabase.from_database(db))
        assert plan.effective_jobs == 2
        assert all(s.tuple_count > 0 for s in plan.shards)

    def test_jobs_must_be_positive(self):
        with pytest.raises(MiningError):
            ShardPlanner(0)


class TestShard:
    def test_database_preserves_rows(self):
        grouped = compressed(small_db())
        plan = ShardPlanner(2).plan(grouped)
        merged = sorted(
            (tid, tuple(tx))
            for shard in plan.shards
            for tid, tx in zip(shard.database().tids, shard.database())
        )
        db = small_db()
        assert merged == sorted((tid, tuple(tx)) for tid, tx in zip(db.tids, db))

    def test_grouped_view_supports_bitset(self):
        grouped = compressed(small_db())
        for shard in ShardPlanner(2).plan(grouped).shards:
            local = shard.grouped()
            assert local.supports_bitset
            assert local.tuple_count() == shard.tuple_count

    def test_pickle_round_trip_drops_caches(self):
        grouped = compressed(small_db())
        shard = ShardPlanner(2).plan(grouped).shards[0]
        before = shard.fingerprint()  # materializes the lazy database
        clone = pickle.loads(pickle.dumps(shard))
        assert clone._database is None  # rebuilt on demand, not shipped
        assert clone.fingerprint() == before
        assert clone.grouped().supports_bitset

    def test_fingerprint_is_content_addressed(self):
        grouped = compressed(small_db())
        plan = ShardPlanner(2).plan(grouped)
        fingerprints = {s.fingerprint() for s in plan.shards}
        assert len(fingerprints) == len(plan.shards)
        rebuilt = Shard(99, plan.shards[0].groups)
        assert rebuilt.fingerprint() == plan.shards[0].fingerprint()
