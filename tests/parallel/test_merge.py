"""Merge-pass unit tests: the tight bound, exact recount, pruning."""

from __future__ import annotations

from math import comb

from repro.core.compression import compress
from repro.core.groups import Group, GroupedDatabase
from repro.data.patterns import PatternSet
from repro.data.transactions import TransactionDatabase
from repro.metrics.counters import CostCounters
from repro.mining.bruteforce import mine_bruteforce
from repro.parallel import (
    count_pattern_support,
    merge_shard_patterns,
    tight_candidate_bound,
    union_candidates,
)


def db() -> TransactionDatabase:
    return TransactionDatabase(
        [[1, 2, 3], [1, 2, 3], [1, 2], [2, 3], [1, 3], [4, 5], [4, 5, 1]]
    )


class TestTightCandidateBound:
    def test_single_frequent_pattern_closes_the_level(self):
        # |F_k| = 1 = C(k, k) -> bound C(k, k+1) = 0 for every k.
        for level in range(1, 6):
            assert tight_candidate_bound(1, level) == 0

    def test_complete_level_gives_binomial(self):
        # |F_2| = C(5, 2) = 10 -> at most C(5, 3) = 10 triples.
        assert tight_candidate_bound(comb(5, 2), 2) == comb(5, 3)

    def test_canonical_decomposition_sums(self):
        # 11 = C(5,2) + C(1,1) -> C(5,3) + C(1,2) = 10 + 0 = 10.
        assert tight_candidate_bound(11, 2) == 10

    def test_two_singletons_allow_one_pair(self):
        assert tight_candidate_bound(2, 1) == 1

    def test_empty_or_invalid_is_zero(self):
        assert tight_candidate_bound(0, 2) == 0
        assert tight_candidate_bound(5, 0) == 0

    def test_monotone_in_frequent_count(self):
        for level in (1, 2, 3):
            bounds = [tight_candidate_bound(m, level) for m in range(0, 40)]
            assert bounds == sorted(bounds)


class TestCountPatternSupport:
    def test_matches_bruteforce_on_bitset_groups(self):
        database = db()
        patterns = mine_bruteforce(database, 3)
        grouped = compress(database, patterns, "mcp").compressed
        assert grouped.supports_bitset
        reference = mine_bruteforce(database, 1)
        for pattern, support in reference.items():
            assert count_pattern_support(grouped, pattern) == support

    def test_matches_bruteforce_on_bare_groups(self):
        database = db()
        patterns = mine_bruteforce(database, 3)
        with_masks = compress(database, patterns, "mcp").compressed
        bare = GroupedDatabase.from_groups(
            Group(g.pattern, g.count, g.tails) for g in with_masks.groups
        )
        assert not bare.supports_bitset
        reference = mine_bruteforce(database, 1)
        for pattern, support in reference.items():
            assert count_pattern_support(bare, pattern) == support

    def test_empty_pattern_counts_everything(self):
        database = db()
        grouped = GroupedDatabase.from_database(database)
        assert count_pattern_support(grouped, frozenset()) == len(database)

    def test_absent_item_is_zero(self):
        grouped = GroupedDatabase.from_database(db())
        assert count_pattern_support(grouped, frozenset({99})) == 0


class TestMergeShardPatterns:
    def test_recount_is_exact(self):
        database = db()
        grouped = GroupedDatabase.from_database(database)
        reference = mine_bruteforce(database, 2)
        # Fake two shards: overlapping, locally-renumbered supports.
        left = mine_bruteforce(TransactionDatabase(list(database)[:4]), 1)
        right = mine_bruteforce(TransactionDatabase(list(database)[4:]), 1)
        result = merge_shard_patterns([left, right], grouped, 2)
        assert result.patterns == reference

    def test_union_is_deduplicated(self):
        a = PatternSet({frozenset({1}): 3, frozenset({2}): 2})
        b = PatternSet({frozenset({1}): 5})
        assert union_candidates([a, b]) == {frozenset({1}), frozenset({2})}

    def test_apriori_prunes_unsupported_supersets(self):
        database = db()
        grouped = GroupedDatabase.from_database(database)
        # At support 3 items 1, 2, 3 stay frequent (bound stays positive)
        # while {4} and {5} fail level 1 -- so the candidate {4,5} must
        # be Apriori-pruned without ever being counted.
        candidates = mine_bruteforce(database, 1)
        assert frozenset({4, 5}) in candidates
        result = merge_shard_patterns([candidates], grouped, 3)
        assert result.patterns == mine_bruteforce(database, 3)
        assert result.pruned_apriori >= 1
        assert frozenset({4, 5}) not in result.patterns

    def test_bound_stops_level_wise_search(self):
        database = db()
        grouped = GroupedDatabase.from_database(database)
        # At support 5 only {1} survives level 1 -> the bound on pairs is
        # C(1,2)=0, so every higher candidate level is skipped unverified.
        candidates = mine_bruteforce(database, 1)
        result = merge_shard_patterns([candidates], grouped, 5)
        assert result.patterns == mine_bruteforce(database, 5)
        assert result.levels_skipped >= 1
        assert result.pruned_bound >= 1

    def test_counters_record_the_budget(self):
        database = db()
        grouped = GroupedDatabase.from_database(database)
        counters = CostCounters()
        candidates = mine_bruteforce(database, 2)
        merge_shard_patterns([candidates], grouped, 2, counters)
        recorded = counters.as_dict()
        assert recorded["merge_candidates"] == len(candidates)
        assert recorded["merge_counted"] > 0

    def test_empty_shards_produce_empty_result(self):
        grouped = GroupedDatabase.from_database(db())
        result = merge_shard_patterns([PatternSet()], grouped, 2)
        assert len(result.patterns) == 0
        assert result.candidate_count == 0
