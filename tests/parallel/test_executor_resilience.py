"""Engine resilience: per-shard retries, deadlines, injected chaos.

These tests drive the retry/backoff/deadline machinery through the
injector's named fault points rather than monkeypatching internals, so
they exercise exactly the code paths a production failure takes.
"""

from __future__ import annotations

import pytest

from repro.data.transactions import TransactionDatabase
from repro.metrics.counters import CostCounters
from repro.mining.bruteforce import mine_bruteforce
from repro.parallel import ParallelEngine
from repro.resilience import (
    MERGE_COUNT,
    REASON_DEADLINE,
    REASON_MERGE_FAILED,
    REASON_SHARD_FAILED,
    SHARD_CRASH,
    SHARD_SLOW,
    FaultInjector,
    RetryPolicy,
)

SUPPORT = 3


def db() -> TransactionDatabase:
    return TransactionDatabase(
        [
            [1, 2, 3],
            [1, 2, 3],
            [1, 2],
            [2, 3],
            [1, 3],
            [4, 5],
            [4, 5, 1],
            [2, 3, 4],
            [1, 2, 4],
            [3, 4, 5],
        ]
    )


def fast_retry(max_attempts: int = 3) -> RetryPolicy:
    return RetryPolicy(
        max_attempts=max_attempts,
        base_delay_seconds=0.0,
        max_delay_seconds=0.0,
        jitter_fraction=0.0,
    )


def expected() -> object:
    return mine_bruteforce(db(), SUPPORT)


class TestRetryHealsTransientCrash:
    def test_inline_crash_on_first_attempt_is_retried_not_fallen_back(self):
        faults = FaultInjector().inject(SHARD_CRASH, on_calls=(1,))
        counters = CostCounters()
        engine = ParallelEngine(
            2,
            executor="inline",
            retry_policy=fast_retry(),
            fault_injector=faults,
        )
        outcome = engine.mine(db(), SUPPORT, counters=counters)
        assert not outcome.fallback
        assert outcome.patterns == expected()
        assert not outcome.degradation.degraded
        assert faults.fired(SHARD_CRASH) == 1
        # One shard took two attempts; the rest took one.
        assert sorted(s.attempts for s in outcome.shards)[-1] == 2
        snap = counters.as_dict()
        assert snap["parallel_shard_retries"] == 1
        assert snap["parallel_shard_attempts"] == len(outcome.shards) + 1
        assert snap.get("parallel_fallbacks", 0) == 0

    def test_process_crash_on_first_attempt_is_retried_not_fallen_back(self):
        faults = FaultInjector().inject(SHARD_CRASH, on_calls=(1,))
        engine = ParallelEngine(
            2, retry_policy=fast_retry(), fault_injector=faults
        )
        outcome = engine.mine(db(), SUPPORT)
        assert not outcome.fallback
        assert outcome.patterns == expected()
        assert faults.fired(SHARD_CRASH) == 1


class TestRetryBudgetExhaustion:
    def test_persistent_crash_exhausts_attempts_then_falls_back(self):
        faults = FaultInjector().inject(SHARD_CRASH, probability=1.0)
        counters = CostCounters()
        engine = ParallelEngine(
            2,
            executor="inline",
            retry_policy=fast_retry(max_attempts=2),
            fault_injector=faults,
        )
        outcome = engine.mine(db(), SUPPORT, counters=counters)
        assert outcome.fallback
        assert outcome.patterns == expected()  # serial answer, never worse
        assert outcome.degradation.reasons() == [
            f"parallel→serial: {REASON_SHARD_FAILED}"
        ]
        assert counters.as_dict()["parallel_fallbacks"] == 1

    def test_completed_shard_counters_salvaged_on_later_failure(self):
        """Satellite: work finished before the pass died is merged into
        the fallback accounting and surfaced as parallel_wasted_work."""
        # Shard 0 succeeds (call 1); every later attempt crashes.
        faults = FaultInjector().inject(
            SHARD_CRASH, on_calls=(2, 3, 4, 5, 6)
        )
        counters = CostCounters()
        engine = ParallelEngine(
            2,
            executor="inline",
            retry_policy=fast_retry(max_attempts=2),
            fault_injector=faults,
        )
        outcome = engine.mine(db(), SUPPORT, counters=counters)
        assert outcome.fallback
        assert outcome.patterns == expected()
        snap = counters.as_dict()
        assert snap["parallel_wasted_shards"] == 1
        assert snap["parallel_wasted_work"] > 0
        # shard 0: 1 attempt; shard 1: 2 attempts, both crashed.
        assert snap["parallel_shard_attempts"] == 3


class TestDeadline:
    def test_inline_slow_shard_blows_the_real_timeout_path(self):
        """Satellite: timeout_seconds is exercised by an injected
        straggler, not by monkeypatching the clock."""
        faults = FaultInjector().inject(
            SHARD_SLOW, probability=1.0, delay_seconds=0.2
        )
        counters = CostCounters()
        engine = ParallelEngine(
            2,
            executor="inline",
            timeout_seconds=0.15,
            retry_policy=fast_retry(),
            fault_injector=faults,
        )
        outcome = engine.mine(db(), SUPPORT, counters=counters)
        assert outcome.fallback
        assert "deadline" in outcome.fallback_reason
        assert outcome.patterns == expected()
        assert outcome.degradation.reasons() == [
            f"parallel→serial: {REASON_DEADLINE}"
        ]

    def test_process_slow_shard_blows_the_real_timeout_path(self):
        faults = FaultInjector().inject(
            SHARD_SLOW, probability=1.0, delay_seconds=1.0
        )
        engine = ParallelEngine(
            2,
            timeout_seconds=0.2,
            retry_policy=fast_retry(),
            fault_injector=faults,
        )
        outcome = engine.mine(db(), SUPPORT)
        assert outcome.fallback
        assert "deadline" in outcome.fallback_reason
        assert outcome.patterns == expected()

    def test_slow_fault_within_deadline_just_runs_slower(self):
        faults = FaultInjector().inject(
            SHARD_SLOW, on_calls=(1,), delay_seconds=0.05
        )
        engine = ParallelEngine(
            2,
            executor="inline",
            timeout_seconds=30.0,
            retry_policy=fast_retry(),
            fault_injector=faults,
        )
        outcome = engine.mine(db(), SUPPORT)
        assert not outcome.fallback
        assert outcome.patterns == expected()
        slowest = max(s.elapsed_seconds for s in outcome.shards)
        assert slowest >= 0.05  # the sleep is charged to the shard


class TestMergeFault:
    def test_merge_count_fault_falls_back_and_salvages_all_shards(self):
        faults = FaultInjector().inject(MERGE_COUNT, on_calls=(1,))
        counters = CostCounters()
        engine = ParallelEngine(
            2, executor="inline", fault_injector=faults
        )
        outcome = engine.mine(db(), SUPPORT, counters=counters)
        assert outcome.fallback
        assert outcome.patterns == expected()
        assert outcome.degradation.reasons() == [
            f"parallel→serial: {REASON_MERGE_FAILED}"
        ]
        snap = counters.as_dict()
        assert snap["parallel_wasted_shards"] == 2  # every shard finished


class TestFaultFreeBaseline:
    @pytest.mark.parametrize("executor", ["inline", "process"])
    def test_unarmed_injector_changes_nothing(self, executor):
        armed = ParallelEngine(
            2, executor=executor, fault_injector=FaultInjector()
        ).mine(db(), SUPPORT)
        bare = ParallelEngine(2, executor=executor).mine(db(), SUPPORT)
        assert armed.patterns == bare.patterns == expected()
        assert not armed.fallback and not bare.fallback
