"""Tests for the repro command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.data.io import read_patterns, write_transactions
from repro.data.transactions import TransactionDatabase
from repro.mining.apriori import mine_apriori


@pytest.fixture
def db_file(tmp_path):
    db = TransactionDatabase(
        [[1, 2, 3], [1, 2, 3], [1, 2], [2, 3], [1, 3], [1, 2, 3, 4]]
    )
    path = tmp_path / "db.dat"
    write_transactions(db, path)
    return path, db


class TestMine:
    def test_mine_from_file(self, db_file, capsys):
        path, _db = db_file
        assert main(["mine", "--input", str(path), "--support", "3"]) == 0
        out = capsys.readouterr().out
        assert "patterns" in out

    def test_mine_writes_output(self, db_file, tmp_path, capsys):
        path, db = db_file
        out_path = tmp_path / "patterns.txt"
        code = main(
            ["mine", "--input", str(path), "--support", "3", "--output", str(out_path)]
        )
        assert code == 0
        assert read_patterns(out_path) == mine_apriori(db, 3)

    def test_relative_support(self, db_file, capsys):
        path, _db = db_file
        assert main(["mine", "--input", str(path), "--support", "0.5"]) == 0
        assert "support 3" in capsys.readouterr().out

    def test_support_one_is_hundred_percent(self, db_file, capsys):
        """The boundary: 1.0 is a relative fraction, not absolute count 1."""
        path, db = db_file
        assert main(["mine", "--input", str(path), "--support", "1.0"]) == 0
        assert f"support {len(db)}" in capsys.readouterr().out

    def test_support_just_above_one_is_absolute(self, db_file, capsys):
        path, _db = db_file
        assert main(["mine", "--input", str(path), "--support", "2"]) == 0
        assert "support 2" in capsys.readouterr().out

    def test_relative_support_rounds_up(self, db_file, capsys):
        # 0.4 of 6 transactions = 2.4 -> threshold 3 under >= semantics.
        path, _db = db_file
        assert main(["mine", "--input", str(path), "--support", "0.4"]) == 0
        assert "support 3" in capsys.readouterr().out

    def test_nonpositive_support_errors(self, db_file, capsys):
        path, _db = db_file
        assert main(["mine", "--input", str(path), "--support", "0"]) == 1
        assert "must be positive" in capsys.readouterr().err

    def test_any_registered_baseline_accepted(self, db_file, capsys):
        from repro.mining.registry import miner_names

        path, _db = db_file
        for name in miner_names("baseline"):
            assert main(
                ["mine", "--input", str(path), "--support", "3",
                 "--algorithm", name]
            ) == 0
            assert f"{name}:" in capsys.readouterr().out

    def test_missing_source_errors(self, capsys):
        assert main(["mine", "--support", "2"]) == 1
        assert "error:" in capsys.readouterr().err


class TestRecycleAndCompress:
    def test_recycle_matches_mine(self, db_file, tmp_path, capsys):
        path, db = db_file
        out_path = tmp_path / "recycled.txt"
        code = main(
            [
                "recycle", "--input", str(path),
                "--old-support", "4", "--support", "2",
                "--output", str(out_path),
            ]
        )
        assert code == 0
        assert read_patterns(out_path) == mine_apriori(db, 2)

    def test_recycle_with_pattern_file(self, db_file, tmp_path, capsys):
        from repro.data.io import write_patterns

        path, db = db_file
        pattern_path = tmp_path / "old.txt"
        write_patterns(mine_apriori(db, 4), pattern_path)
        code = main(
            [
                "recycle", "--input", str(path), "--patterns", str(pattern_path),
                "--old-support", "4", "--support", "2",
            ]
        )
        assert code == 0
        assert "patterns at support 2" in capsys.readouterr().out

    def test_compress_reports_ratio(self, db_file, capsys):
        path, _db = db_file
        code = main(["compress", "--input", str(path), "--old-support", "4"])
        assert code == 0
        assert "ratio" in capsys.readouterr().out

    def test_any_registered_recycler_accepted(self, db_file, capsys):
        from repro.mining.registry import miner_names

        path, db = db_file
        for name in miner_names("recycling"):
            code = main(
                ["recycle", "--input", str(path),
                 "--old-support", "4", "--support", "2", "--algorithm", name]
            )
            assert code == 0
            assert "patterns at support 2" in capsys.readouterr().out


class TestMiners:
    def test_lists_registry_with_capabilities(self, capsys):
        assert main(["miners"]) == 0
        out = capsys.readouterr().out
        for name in ("apriori", "eclat-bitset", "hmine", "naive", "treeprojection"):
            assert name in out
        assert "bitset" in out
        assert "compressed" in out

    def test_kind_filter(self, capsys):
        assert main(["miners", "--kind", "recycling"]) == 0
        out = capsys.readouterr().out
        assert "naive" in out
        assert "apriori" not in out


class TestServeBatch:
    @pytest.fixture
    def workload_file(self, tmp_path):
        import json

        path = tmp_path / "trace.json"
        path.write_text(
            json.dumps(
                {
                    "dataset": "weather",
                    "requests": [
                        {"tenant": "alice", "support": 0.5},
                        {"tenant": "bob", "support": 0.5},
                        {"tenant": "carol", "support": 0.4},
                    ],
                }
            ),
            encoding="utf-8",
        )
        return path

    def test_replays_workload_with_warehouse(self, workload_file, capsys):
        code = main(
            ["serve-batch", "--workload", str(workload_file), "--workers", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        for tenant in ("alice", "bob", "carol"):
            assert tenant in out
        assert "warehouse:" in out
        assert "requests in" in out

    def test_cold_mode_disables_warehouse(self, workload_file, capsys):
        code = main(["serve-batch", "--workload", str(workload_file), "--cold"])
        assert code == 0
        out = capsys.readouterr().out
        assert "warehouse:" not in out

    def test_persistent_warehouse_directory(self, workload_file, tmp_path, capsys):
        store = tmp_path / "warehouse"
        code = main(
            [
                "serve-batch", "--workload", str(workload_file),
                "--warehouse-dir", str(store),
            ]
        )
        assert code == 0
        assert list(store.glob("*.patterns"))

    def test_missing_workload_errors_cleanly(self, tmp_path, capsys):
        code = main(["serve-batch", "--workload", str(tmp_path / "nope.json")])
        assert code == 1
        assert "cannot read" in capsys.readouterr().err

    def test_condensation_gauges_printed(self, workload_file, capsys):
        code = main(["serve-batch", "--workload", str(workload_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "condensation" in out
        assert "closed entries serve" in out

    def test_full_representation_suppresses_gauges(self, workload_file, capsys):
        code = main(
            [
                "serve-batch", "--workload", str(workload_file),
                "--representation", "full",
            ]
        )
        assert code == 0
        assert "condensation" not in capsys.readouterr().out

    def test_gateway_mode_prints_gauges_and_batches(
        self, workload_file, capsys
    ):
        code = main(
            [
                "serve-batch", "--workload", str(workload_file),
                "--gateway", "--queue-depth", "8",
                "--priority", "interactive",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "serve-batch (gateway)" in out
        assert "queue depth HWM" in out
        assert "merged batches" in out
        assert "gateway interactive: p50" in out
        # All three tenants queued together → one merged batch.
        assert "1 merged batches covering 3 requests" in out

    def test_gateway_admission_rejects_overflow(self, workload_file, capsys):
        code = main(
            [
                "serve-batch", "--workload", str(workload_file),
                "--gateway", "--queue-depth", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 rejected" in out
        status_rows = [
            line
            for line in out.splitlines()
            if " rejected " in line and not line.startswith("gateway:")
        ]
        assert len(status_rows) == 2  # per-request status rows

    def test_gateway_no_batching_serves_singly(self, workload_file, capsys):
        code = main(
            [
                "serve-batch", "--workload", str(workload_file),
                "--gateway", "--no-batching",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "3 dispatches, 0 merged batches" in out


class TestWarehouseCommand:
    @pytest.fixture
    def store(self, tmp_path):
        from repro.mining.hmine import mine_hmine
        from repro.service.warehouse import PatternWarehouse

        db = TransactionDatabase([[1, 2, 3, 4]] * 4 + [[1, 2]] * 4)
        warehouse = PatternWarehouse(directory=tmp_path)
        warehouse.put(
            db.fingerprint(), 4, mine_hmine(db, 4), n_transactions=len(db)
        )
        return tmp_path, db

    def test_lists_entries_with_representation(self, store, capsys):
        directory, db = store
        assert main(["warehouse", "--dir", str(directory)]) == 0
        out = capsys.readouterr().out
        assert db.fingerprint() in out
        assert "closed" in out
        assert "condensation" in out

    def test_verify_audits_every_entry(self, store, capsys):
        directory, _db = store
        assert main(["warehouse", "--dir", str(directory), "--verify"]) == 0
        out = capsys.readouterr().out
        assert "ok (" in out
        assert "FAILED" not in out

    def test_verify_fails_on_corrupt_entry(self, tmp_path, capsys):
        # A full-representation entry whose supports violate
        # anti-monotonicity: every file-level check (headers, checksum,
        # threshold) passes, so only the semantic audit can catch it.
        from repro.data.io import write_warehouse_entry
        from repro.data.patterns import CondensedPatternSet, pattern

        bad = CondensedPatternSet(
            "full",
            {pattern([1]): 5, pattern([2]): 6, pattern([1, 2]): 6},
            4,
        )
        write_warehouse_entry(bad, tmp_path / "corrupt-4.patterns")
        code = main(["warehouse", "--dir", str(tmp_path), "--verify"])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAILED" in out

    def test_inspection_does_not_migrate_files(self, tmp_path, capsys):
        from repro.data.io import write_patterns_with_support
        from repro.mining.hmine import mine_hmine

        db = TransactionDatabase([[1, 2, 3, 4]] * 4 + [[1, 2]] * 4)
        path = tmp_path / f"{db.fingerprint()}-4.patterns"
        write_patterns_with_support(mine_hmine(db, 4), path, 4)
        before = path.read_text()
        assert main(["warehouse", "--dir", str(tmp_path)]) == 0
        assert path.read_text() == before
        assert "full" in capsys.readouterr().out


class TestReport:
    @pytest.fixture
    def archived_history(self, tmp_path):
        """A two-commit archive plus a policy file, no git required."""
        from repro.trends import Snapshot, SnapshotArchive

        archive = SnapshotArchive(tmp_path / ".bench_history")
        for commit, stamp, work in (
            ("a" * 40, "2026-01-01T00:00:00+00:00", 1000),
            ("b" * 40, "2026-02-01T00:00:00+00:00", 900),
        ):
            archive.write(Snapshot(
                bench="service_load", commit=commit, timestamp=stamp,
                seed=0, python="3.11", platform="test",
                payload={"seed": 0, "results": [{
                    "dataset": "connect4", "scenario": "batched",
                    "total_work": work, "wall_s": 1.0,
                }]},
            ))
        policy = tmp_path / "policy.toml"
        policy.write_text(
            "[gate]\nmax_regression_pct = 10.0\n\n"
            "[[metric]]\n"
            'name = "batched work"\n'
            'bench = "service_load"\n'
            'field = "total_work"\n'
            'where = { dataset = "connect4", scenario = "batched" }\n'
            'direction = "lower"\n',
            encoding="utf-8",
        )
        return tmp_path, archive, policy

    def test_archive_ingests_legacy_files(self, tmp_path, capsys):
        import json

        (tmp_path / "BENCH_parallel.json").write_text(
            json.dumps({"seed": 0, "results": [{"jobs": 1, "speedup": 1.0}]})
        )
        code = main([
            "report", "archive", "--root", str(tmp_path),
            "--history-dir", str(tmp_path / ".bench_history"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "archived parallel" in out
        assert (tmp_path / ".bench_history").is_dir()

    def test_archive_empty_root_errors(self, tmp_path, capsys):
        code = main([
            "report", "archive", "--root", str(tmp_path),
            "--history-dir", str(tmp_path / ".bench_history"),
        ])
        assert code == 1
        assert "nothing to archive" in capsys.readouterr().out

    def test_render_from_cached_data(self, archived_history, capsys):
        tmp_path, _archive, _policy = archived_history
        out_dir = tmp_path / "report"
        code = main([
            "report", "render",
            "--history-dir", str(tmp_path / ".bench_history"),
            "--output-dir", str(out_dir), "--from-cached-data",
        ])
        assert code == 0
        md = (out_dir / "trends.md").read_text("utf-8")
        html = (out_dir / "trends.html").read_text("utf-8")
        assert "2 commit(s)" in capsys.readouterr().out
        assert "aaaaaaaaaa" in md and "bbbbbbbbbb" in md
        assert "<svg" in html

    def test_render_empty_archive_errors(self, tmp_path, capsys):
        code = main([
            "report", "render",
            "--history-dir", str(tmp_path / "absent"),
            "--output-dir", str(tmp_path / "report"),
        ])
        assert code == 1
        assert "no archived snapshots" in capsys.readouterr().err

    def test_gate_passes_on_improvement(self, archived_history, capsys):
        tmp_path, _archive, policy = archived_history
        code = main([
            "report", "gate",
            "--history-dir", str(tmp_path / ".bench_history"),
            "--policy", str(policy),
        ])
        assert code == 0
        assert "gate: PASS" in capsys.readouterr().out

    def test_gate_exits_nonzero_on_counter_regression(
        self, archived_history, capsys
    ):
        from repro.trends import Snapshot

        tmp_path, archive, policy = archived_history
        # A third snapshot whose machine-independent counter is 50% worse
        # than the best baseline; wall clock unchanged.
        archive.write(Snapshot(
            bench="service_load", commit="c" * 40,
            timestamp="2026-03-01T00:00:00+00:00",
            seed=0, python="3.11", platform="test",
            payload={"seed": 0, "results": [{
                "dataset": "connect4", "scenario": "batched",
                "total_work": 1350, "wall_s": 1.0,
            }]},
        ))
        code = main([
            "report", "gate",
            "--history-dir", str(tmp_path / ".bench_history"),
            "--policy", str(policy),
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "gate: FAIL" in out
        assert "+50.0% worse" in out

    def test_gate_missing_policy_errors(self, archived_history, capsys):
        tmp_path, _archive, _policy = archived_history
        code = main([
            "report", "gate",
            "--history-dir", str(tmp_path / ".bench_history"),
            "--policy", str(tmp_path / "absent.toml"),
        ])
        assert code == 1
        assert "cannot read gate policy" in capsys.readouterr().err


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in (
            "mine", "compress", "recycle", "bench", "serve-batch",
            "warehouse", "report",
        ):
            assert command in text

    def test_report_requires_verb(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report"])

    def test_bench_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench"])


class TestPlot:
    def test_plot_rejects_memory_figures(self, capsys):
        assert main(["plot", "--figure", "21"]) == 1
        assert "not plottable" in capsys.readouterr().err

    def test_plot_renders_chart(self, capsys, monkeypatch):
        import repro.bench.experiments as experiments

        def fake_figure(number, seed=0, sweep=None):
            headers = ["xi_new", "abs", "patterns", "HM_s", "HM-MCP_s",
                       "HM-MLP_s", "s1", "s2", "w1", "w2"]
            rows = [[0.9, 10, 5, 1.0, 0.5, 0.6, 2.0, 1.7, 1, 1],
                    [0.8, 8, 9, 2.0, 0.7, 0.8, 2.9, 2.5, 1, 1]]
            return headers, rows

        monkeypatch.setattr(experiments, "figure", fake_figure)
        assert main(["plot", "--figure", "15", "--log"]) == 0
        out = capsys.readouterr().out
        assert "Figure 15" in out
        assert "HM-MCP_s" in out
