"""Tests for the capability-aware miner registry and its legacy views."""

from __future__ import annotations

import pytest

from repro.core.recycle import RECYCLING_MINERS
from repro.errors import MiningError
from repro.mining import BASELINE_MINERS
from repro.mining.registry import (
    MINERS,
    MinerSpec,
    MinerView,
    get_miner,
    has_miner,
    iter_miners,
    miner_names,
    mine_with_budget,
    register,
)


class TestLookup:
    def test_at_least_nine_miners_registered(self):
        assert len(MINERS) >= 9

    def test_every_seed_name_still_resolves(self):
        for name in ("apriori", "eclat", "hmine", "fpgrowth", "treeprojection"):
            assert get_miner(name, kind="baseline").kind == "baseline"
        for name in ("naive", "hmine", "fpgrowth", "treeprojection", "eclat"):
            spec = get_miner(name, kind="recycling")
            assert spec.needs_compressed

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(MiningError, match="unknown baseline miner"):
            get_miner("quantum", kind="baseline")
        with pytest.raises(MiningError, match="hmine"):
            get_miner("quantum", kind="recycling")

    def test_has_miner(self):
        assert has_miner("hmine", kind="baseline")
        assert has_miner("naive", kind="recycling")
        assert not has_miner("naive", kind="baseline")

    def test_iter_miners_filters_by_kind(self):
        kinds = {spec.kind for spec in iter_miners("baseline")}
        assert kinds == {"baseline"}
        assert len(iter_miners()) == len(MINERS)

    def test_bitset_backend_registered(self):
        spec = get_miner("eclat-bitset", kind="baseline")
        assert spec.backend == "bitset"

    def test_registry_mapping_protocol(self):
        assert ("baseline", "hmine") in MINERS
        assert MINERS[("recycling", "naive")].name == "naive"


class TestRegistration:
    def test_duplicate_registration_rejected(self):
        spec = get_miner("hmine", kind="baseline")
        with pytest.raises(MiningError, match="already registered"):
            register(spec)

    def test_invalid_kind_rejected(self):
        with pytest.raises(MiningError, match="unknown miner kind"):
            MinerSpec(name="x", kind="magic", fn=lambda *a: None)

    def test_invalid_backend_rejected(self):
        with pytest.raises(MiningError, match="unknown miner backend"):
            MinerSpec(name="x", kind="baseline", fn=lambda *a: None, backend="gpu")


class TestLegacyViews:
    def test_baseline_view_reads_registry(self):
        assert set(BASELINE_MINERS) == set(miner_names("baseline"))
        assert BASELINE_MINERS["hmine"] is get_miner("hmine", "baseline").fn

    def test_recycling_view_reads_registry(self):
        assert set(RECYCLING_MINERS) == set(miner_names("recycling"))
        assert RECYCLING_MINERS["naive"] is get_miner("naive", "recycling").fn

    def test_view_raises_keyerror_like_a_dict(self):
        with pytest.raises(KeyError):
            BASELINE_MINERS["quantum"]
        assert "quantum" not in BASELINE_MINERS

    def test_view_rejects_unknown_kind(self):
        with pytest.raises(MiningError):
            MinerView("magic")


class TestBudgetCapability:
    def test_capable_miners_flagged(self):
        assert get_miner("hmine", "baseline").supports_memory_budget
        assert get_miner("naive", "recycling").supports_memory_budget
        assert not get_miner("apriori", "baseline").supports_memory_budget

    def test_budget_dispatch_runs(self, paper_db):
        direct = get_miner("hmine", "baseline").fn(paper_db, 2)
        budgeted = mine_with_budget("hmine", "baseline", paper_db, 2, 10**9)
        assert budgeted == direct

    def test_budget_dispatch_rejects_incapable(self, paper_db):
        with pytest.raises(MiningError, match="no memory-budget driver"):
            mine_with_budget("apriori", "baseline", paper_db, 2, 10**9)
