"""Cross-validation: all baseline miners agree with brute force.

This is the substrate half of the correctness story (the recycling half
lives in tests/core/test_recycle_equivalence.py): five independent
implementations — level-wise, vertical, hyper-structure, prefix-tree and
lexicographic-tree — must produce identical (pattern, support) sets on
randomized and property-generated databases.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.synthetic import random_database
from repro.data.transactions import TransactionDatabase
from repro.mining import BASELINE_MINERS
from repro.mining.bruteforce import mine_bruteforce

transactions_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=6),
    min_size=1,
    max_size=20,
)


@pytest.mark.parametrize("seed", range(12))
@pytest.mark.parametrize("min_support", [1, 2, 4])
def test_all_miners_match_bruteforce_randomized(seed, min_support):
    db = random_database(
        n_transactions=25, n_items=9, max_transaction_length=7, seed=seed
    )
    reference = mine_bruteforce(db, min_support)
    for name, miner in BASELINE_MINERS.items():
        assert miner(db, min_support) == reference, f"{name} diverged (seed={seed})"


@given(transactions=transactions_strategy, min_support=st.integers(1, 5))
@settings(max_examples=60, deadline=None)
def test_all_miners_match_bruteforce_property(transactions, min_support):
    db = TransactionDatabase(transactions)
    reference = mine_bruteforce(db, min_support)
    for name, miner in BASELINE_MINERS.items():
        assert miner(db, min_support) == reference, f"{name} diverged"


@given(transactions=transactions_strategy)
@settings(max_examples=30, deadline=None)
def test_support_monotone_in_threshold(transactions):
    """Raising the threshold filters, never changes, supports."""
    db = TransactionDatabase(transactions)
    low = BASELINE_MINERS["hmine"](db, 1)
    high = BASELINE_MINERS["hmine"](db, 2)
    assert high == low.filter_min_support(2)


@given(transactions=transactions_strategy)
@settings(max_examples=30, deadline=None)
def test_apriori_property_subsets_frequent(transactions):
    """Every subset of a frequent pattern is frequent with >= support."""
    db = TransactionDatabase(transactions)
    patterns = BASELINE_MINERS["fpgrowth"](db, 2)
    for items, support in patterns.items():
        for drop in items:
            subset = items - {drop}
            if subset:
                assert patterns.support(subset) >= support


@given(transactions=transactions_strategy)
@settings(max_examples=30, deadline=None)
def test_reported_supports_are_true_supports(transactions):
    """Each miner's support must equal an independent containment count."""
    db = TransactionDatabase(transactions)
    patterns = BASELINE_MINERS["treeprojection"](db, 2)
    for items, support in patterns.items():
        assert db.support(items) == support
