"""Tests for top-k frequent pattern mining."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.transactions import TransactionDatabase
from repro.errors import MiningError
from repro.mining.bruteforce import mine_bruteforce
from repro.mining.topk import mine_top_k, top_k_by_probe


class TestMineTopK:
    def test_paper_example(self, paper_db):
        patterns, threshold = mine_top_k(paper_db, k=3)
        assert len(patterns) >= 3
        assert all(s >= threshold for _p, s in patterns.items())
        # No larger threshold admits 3 patterns.
        richer = mine_bruteforce(paper_db, threshold + 1)
        assert len(richer) < 3 or threshold == len(paper_db)

    def test_threshold_is_maximal(self, paper_db):
        for k in (1, 5, 11, 25):
            patterns, threshold = mine_top_k(paper_db, k=k)
            assert len(patterns) >= k
            if threshold < len(paper_db):
                above = mine_bruteforce(paper_db, threshold + 1)
                assert len(above) < k

    def test_min_length(self, paper_db):
        patterns, threshold = mine_top_k(paper_db, k=4, min_length=2)
        assert all(len(p) >= 2 for p in patterns)
        assert len(patterns) >= 4

    def test_too_many_requested(self):
        db = TransactionDatabase([[1], [2]])
        with pytest.raises(MiningError, match="fewer than k"):
            mine_top_k(db, k=100)

    def test_invalid_parameters(self, paper_db):
        with pytest.raises(MiningError):
            mine_top_k(paper_db, k=0)
        with pytest.raises(MiningError):
            mine_top_k(paper_db, k=1, min_length=0)

    def test_custom_miner_is_used(self, paper_db):
        calls = []

        def probe_miner(db, min_support):
            calls.append(min_support)
            return mine_bruteforce(db, min_support)

        patterns, _threshold = mine_top_k(paper_db, k=3, miner=probe_miner)
        assert len(calls) >= 1
        assert len(patterns) >= 3


class TestProbeSearch:
    def test_ties_at_threshold_all_returned(self):
        db = TransactionDatabase([[1, 2]] * 4)
        patterns, threshold = mine_top_k(db, k=2)
        assert threshold == 4
        assert len(patterns) == 3  # {1}, {2}, {1,2} all tie at 4

    @given(
        transactions=st.lists(
            st.lists(st.integers(0, 5), min_size=1, max_size=4),
            min_size=1,
            max_size=15,
        ),
        k=st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_threshold_maximality_property(self, transactions, k):
        db = TransactionDatabase(transactions)
        try:
            patterns, threshold = mine_top_k(db, k=k)
        except MiningError:
            assert len(mine_bruteforce(db, 1)) < k
            return
        assert len(patterns) >= k
        if threshold < len(db):
            assert len(mine_bruteforce(db, threshold + 1)) < k

    def test_probe_contract_violation_k(self):
        with pytest.raises(MiningError):
            top_k_by_probe(lambda s: None, 0, 10)
