"""Per-miner unit tests: each baseline against pinned and oracle results."""

from __future__ import annotations

import pytest

from repro.data.transactions import TransactionDatabase
from repro.errors import MiningError
from repro.metrics.counters import CostCounters
from repro.mining import BASELINE_MINERS
from repro.mining.apriori import mine_apriori
from repro.mining.bruteforce import mine_bruteforce
from repro.mining.eclat import mine_eclat
from repro.mining.fptree import mine_fpgrowth
from repro.mining.hmine import build_hstruct, mine_hmine
from repro.mining.flist import FList
from repro.mining.treeprojection import mine_treeprojection

ALL_MINERS = sorted(BASELINE_MINERS)


@pytest.mark.parametrize("name", ALL_MINERS)
class TestEveryMiner:
    def test_paper_example_at_xi3(self, name, paper_db, paper_old_patterns):
        """Example 1: the pattern set at xi_old = 3, exactly."""
        assert BASELINE_MINERS[name](paper_db, 3) == paper_old_patterns

    def test_empty_database(self, name):
        assert len(BASELINE_MINERS[name](TransactionDatabase([]), 1)) == 0

    def test_no_frequent_items(self, name, tiny_db):
        assert len(BASELINE_MINERS[name](tiny_db, 10)) == 0

    def test_min_support_one_counts_everything(self, name):
        db = TransactionDatabase([[1, 2], [2, 3]])
        patterns = BASELINE_MINERS[name](db, 1)
        assert patterns.support({1}) == 1
        assert patterns.support({2}) == 2
        assert patterns.support({1, 2}) == 1
        assert {1, 3} not in patterns

    def test_invalid_support_rejected(self, name, tiny_db):
        with pytest.raises(MiningError):
            BASELINE_MINERS[name](tiny_db, 0)

    def test_counters_populated(self, name, paper_db):
        counters = CostCounters()
        BASELINE_MINERS[name](paper_db, 2, counters)
        assert counters.patterns_emitted > 0
        assert counters.tuple_scans > 0

    def test_identical_transactions(self, name):
        db = TransactionDatabase([[1, 2, 3]] * 5)
        patterns = BASELINE_MINERS[name](db, 5)
        assert len(patterns) == 7  # all non-empty subsets of {1,2,3}
        assert all(s == 5 for _p, s in patterns.items())

    def test_singleton_transactions(self, name):
        db = TransactionDatabase([[1], [1], [2]])
        patterns = BASELINE_MINERS[name](db, 2)
        assert patterns.as_dict() == {frozenset({1}): 2}


class TestBruteForce:
    def test_matches_manual_counts(self, tiny_db):
        patterns = mine_bruteforce(tiny_db, 2)
        assert patterns.support({2, 3}) == 2
        assert {1, 3} not in patterns

    def test_rejects_long_transactions(self):
        db = TransactionDatabase([list(range(25))])
        with pytest.raises(MiningError, match="brute-force limit"):
            mine_bruteforce(db, 1)


class TestHMineInternals:
    def test_hstruct_projects_onto_flist(self, paper_db):
        flist = FList.from_database(paper_db, 2)
        hstruct = build_hstruct(paper_db, flist)
        # Tuple 200 (b,c,d,f,g) loses b and orders as d,f,g,c.
        assert (4, 6, 7, 3) in hstruct
        assert all(tx for tx in hstruct)

    def test_projection_counter(self, paper_db):
        counters = CostCounters()
        mine_hmine(paper_db, 2, counters)
        assert counters.projections > 0


class TestAlgorithmSpecificCounters:
    def test_eclat_counts_intersections(self, paper_db):
        counters = CostCounters()
        mine_eclat(paper_db, 2, counters)
        assert counters.as_dict()["tidset_intersections"] > 0

    def test_treeprojection_counts_matrix_updates(self, paper_db):
        counters = CostCounters()
        mine_treeprojection(paper_db, 2, counters)
        assert counters.as_dict()["matrix_updates"] > 0

    def test_fpgrowth_uses_single_path_shortcut(self):
        db = TransactionDatabase([[1, 2, 3, 4]] * 4)
        counters = CostCounters()
        mine_fpgrowth(db, 2, counters)
        assert counters.as_dict()["single_path_shortcuts"] >= 1


class TestAprioriDetails:
    def test_level_wise_prune(self):
        # {1,2} and {1,3} frequent but {2,3} not -> {1,2,3} never counted.
        db = TransactionDatabase([[1, 2], [1, 2], [1, 3], [1, 3], [2], [3]])
        patterns = mine_apriori(db, 2)
        assert {1, 2} in patterns
        assert {1, 3} in patterns
        assert {1, 2, 3} not in patterns
