"""Unit tests for the F-list and projection primitives (Defs. 3.1-3.3)."""

from __future__ import annotations

import pytest

from repro.errors import MiningError
from repro.mining.flist import FList, count_supports, project_transactions


class TestFList:
    def test_paper_flist_order(self, paper_db):
        """Definition 3.1's example: <d:2, f:3, g:3, a:3, e:4, c:4>.

        The paper breaks support ties arbitrarily; this library breaks
        them by item id for determinism, so a (=1) precedes f and g, and
        c (=3) precedes e — same supports, same semantics.
        """
        flist = FList.from_database(paper_db, min_support=2)
        assert flist.order == (4, 1, 6, 7, 3, 5)  # d a f g c e
        assert [flist.support(i) for i in flist.order] == [2, 3, 3, 3, 4, 4]

    def test_infrequent_items_excluded(self, paper_db):
        flist = FList.from_database(paper_db, min_support=2)
        for item in (2, 8, 9):  # b, h, i each occur once
            assert item not in flist

    def test_ranks(self, paper_db):
        flist = FList.from_database(paper_db, min_support=2)
        assert flist.rank(4) == 0
        assert flist.rank(3) == 4
        assert flist.rank(5) == 5
        assert flist.rank_or_none(2) is None

    def test_rank_of_infrequent_raises(self, paper_db):
        flist = FList.from_database(paper_db, min_support=2)
        with pytest.raises(MiningError):
            flist.rank(2)

    def test_extensions_of(self, paper_db):
        """Definition 3.3: candidate extensions = items after i."""
        flist = FList.from_database(paper_db, min_support=2)
        assert flist.extensions_of(4) == (1, 6, 7, 3, 5)
        assert flist.extensions_of(5) == ()

    def test_sort_items_matches_table2_column4(self, paper_db):
        """Table 2: outlying items {a,d,e} order to (d, a, e); b drops."""
        flist = FList.from_database(paper_db, min_support=2)
        assert flist.sort_items([1, 4, 5]) == [4, 1, 5]
        assert flist.sort_items([2, 4]) == [4]
        assert flist.sort_items([]) == []

    def test_min_support_below_one_rejected(self):
        with pytest.raises(MiningError):
            FList.from_supports({1: 5}, min_support=0)

    def test_duplicate_items_rejected(self):
        with pytest.raises(MiningError):
            FList([1, 1], {1: 3})

    def test_ties_broken_by_item_id(self):
        flist = FList.from_supports({9: 3, 2: 3, 5: 3}, min_support=2)
        assert flist.order == (2, 5, 9)


class TestProjection:
    def test_paper_a_projected_database(self, paper_db):
        """Definition 3.2's example: the a-projected database is
        {100: ec, 400: ec, 500: e} — under our tie order, tuple 100 also
        keeps f and g (they rank after a here), so the projections are
        {100: fgce, 400: ce, 500: e} with identical semantics."""
        flist = FList.from_database(paper_db, min_support=2)
        projected = project_transactions(paper_db.transactions, 1, flist)
        assert sorted(projected) == [(3, 5), (5,), (6, 7, 3, 5)]

    def test_projection_drops_empty(self, paper_db):
        flist = FList.from_database(paper_db, min_support=2)
        # e is last in the F-list: every projection is empty.
        assert project_transactions(paper_db.transactions, 5, flist) == []

    def test_count_supports(self, tiny_db):
        counts = count_supports(tiny_db.transactions)
        assert counts == {1: 2, 2: 3, 3: 3}
