"""Hypothesis property: every registry entry mines the identical PatternSet.

The correctness invariant behind the whole benchmark suite, stated once
over random databases: for any database and threshold, every baseline
miner (python and bitset backends alike) and every recycling miner (over
either compression backend) produces exactly the same pattern set.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compression import compress
from repro.data.transactions import TransactionDatabase
from repro.mining.bruteforce import mine_bruteforce
from repro.mining.registry import iter_miners

databases = st.lists(
    st.lists(st.integers(min_value=0, max_value=6), min_size=0, max_size=5),
    min_size=0,
    max_size=8,
).map(TransactionDatabase)


@settings(max_examples=40, deadline=None)
@given(db=databases, min_support=st.integers(min_value=1, max_value=3))
def test_every_baseline_matches_the_oracle(db, min_support):
    expected = mine_bruteforce(db, min_support)
    for spec in iter_miners("baseline"):
        assert spec.mine(db, min_support) == expected, spec.name


@settings(max_examples=40, deadline=None)
@given(
    db=databases,
    min_support=st.integers(min_value=1, max_value=2),
    slack=st.integers(min_value=0, max_value=2),
    strategy=st.sampled_from(["mcp", "mlp"]),
)
def test_every_recycler_matches_on_both_compression_backends(
    db, min_support, slack, strategy
):
    """Recycling never changes the answer, whatever claims the groups."""
    old_patterns = mine_bruteforce(db, min_support + slack)
    if len(old_patterns) == 0:
        return  # nothing to recycle; compress() rejects empty pattern sets
    expected = mine_bruteforce(db, min_support)
    python = compress(db, old_patterns, strategy, backend="python")
    bitset = compress(db, old_patterns, strategy, backend="bitset")
    # The bitset claiming must be bit-identical, not merely equivalent.
    assert python.compressed.groups == bitset.compressed.groups
    assert python.containment_checks == bitset.containment_checks
    for compression in (python, bitset):
        for spec in iter_miners("recycling"):
            result = spec.mine(compression.compressed, min_support)
            assert result == expected, spec.name
