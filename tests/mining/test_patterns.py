"""Unit tests for PatternSet."""

from __future__ import annotations

import pytest

from repro.errors import MiningError
from repro.mining.patterns import PatternSet, pattern


class TestBasics:
    def test_add_and_support(self):
        ps = PatternSet()
        ps.add([1, 2], 5)
        assert ps.support({2, 1}) == 5
        assert {1, 2} in ps
        assert [1, 2] in ps
        assert len(ps) == 1

    def test_empty_pattern_rejected(self):
        with pytest.raises(MiningError, match="empty pattern"):
            PatternSet().add([], 1)

    def test_negative_support_rejected(self):
        with pytest.raises(MiningError, match="negative"):
            PatternSet().add([1], -1)

    def test_readd_same_support_ok(self):
        ps = PatternSet()
        ps.add([1], 3)
        ps.add([1], 3)
        assert len(ps) == 1

    def test_conflicting_support_rejected(self):
        ps = PatternSet()
        ps.add([1], 3)
        with pytest.raises(MiningError, match="conflicting"):
            ps.add([1], 4)

    def test_support_of_missing_pattern_raises(self):
        with pytest.raises(MiningError, match="not in set"):
            PatternSet().support({1})

    def test_get_default(self):
        assert PatternSet().get({1}) is None
        assert PatternSet().get({1}, 0) == 0

    def test_equality(self):
        a = PatternSet({pattern([1]): 2})
        b = PatternSet({frozenset({1}): 2})
        assert a == b
        b.add([2], 1)
        assert a != b

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(PatternSet())


class TestStatistics:
    def test_max_length(self, paper_old_patterns):
        assert paper_old_patterns.max_length() == 3
        assert PatternSet().max_length() == 0

    def test_count_by_length(self, paper_old_patterns):
        histogram = paper_old_patterns.count_by_length()
        assert histogram == {1: 5, 2: 5, 3: 1}

    def test_sorted_patterns_deterministic(self, paper_old_patterns):
        listed = paper_old_patterns.sorted_patterns()
        assert listed == sorted(listed, key=lambda e: (len(e[0]), e[0]))
        assert len(listed) == len(paper_old_patterns)


class TestDerivedSets:
    def test_filter_min_support(self, paper_old_patterns):
        at_four = paper_old_patterns.filter_min_support(4)
        assert at_four.as_dict() == {frozenset({5}): 4, frozenset({3}): 4}

    def test_filter_is_the_tightening_path(self, paper_db, paper_old_patterns):
        """Raising support from 3 to 4 must equal re-mining at 4."""
        from repro.mining.apriori import mine_apriori

        assert paper_old_patterns.filter_min_support(4) == mine_apriori(paper_db, 4)

    def test_maximal(self, paper_old_patterns):
        maximal = {tuple(sorted(p)) for p in paper_old_patterns.maximal()}
        # fgc covers f, g, c, fg, gc; ae covers a, e; ec covers e, c.
        assert maximal == {(3, 6, 7), (1, 5), (3, 5)}

    def test_closed_keeps_distinct_support_supersets(self):
        ps = PatternSet()
        ps.add([1], 3)
        ps.add([1, 2], 3)  # same support -> 1 not closed
        ps.add([3], 2)
        closed = ps.closed()
        assert {1, 2} in closed
        assert {3} in closed
        assert {1} not in closed

    def test_filter_predicate(self, paper_old_patterns):
        long_only = paper_old_patterns.filter(lambda p, s: len(p) >= 2)
        assert len(long_only) == 6
        assert all(len(p) >= 2 for p in long_only)
