"""Property tests for PatternSet's derived views (maximal / closed).

These views are definitional — a wrong implementation silently corrupts
downstream analyses — so each is tested against a direct restatement of
its definition over hypothesis-generated pattern sets.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.transactions import TransactionDatabase
from repro.mining.bruteforce import mine_bruteforce

transactions_strategy = st.lists(
    st.lists(st.integers(0, 6), min_size=1, max_size=5),
    min_size=1,
    max_size=15,
)


@given(transactions=transactions_strategy, min_support=st.integers(1, 4))
@settings(max_examples=50, deadline=None)
def test_maximal_matches_definition(transactions, min_support):
    db = TransactionDatabase(transactions)
    patterns = mine_bruteforce(db, min_support)
    maximal = patterns.maximal()
    all_patterns = set(patterns)
    for candidate in all_patterns:
        has_frequent_superset = any(
            candidate < other for other in all_patterns
        )
        if has_frequent_superset:
            assert candidate not in maximal
        else:
            assert candidate in maximal
            assert maximal.support(candidate) == patterns.support(candidate)


@given(transactions=transactions_strategy, min_support=st.integers(1, 4))
@settings(max_examples=50, deadline=None)
def test_closed_matches_definition(transactions, min_support):
    db = TransactionDatabase(transactions)
    patterns = mine_bruteforce(db, min_support)
    closed = patterns.closed()
    for candidate, support in patterns.items():
        has_equal_support_superset = any(
            candidate < other and other_support == support
            for other, other_support in patterns.items()
        )
        assert (candidate in closed) == (not has_equal_support_superset)


@given(transactions=transactions_strategy, min_support=st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_maximal_subset_of_closed(transactions, min_support):
    """Every maximal pattern is closed (classic containment)."""
    db = TransactionDatabase(transactions)
    patterns = mine_bruteforce(db, min_support)
    closed = set(patterns.closed())
    for candidate in patterns.maximal():
        assert candidate in closed


@given(transactions=transactions_strategy, min_support=st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_closed_patterns_reconstruct_all_supports(transactions, min_support):
    """The closed set is a lossless summary: any frequent pattern's
    support is the max support among its closed supersets."""
    db = TransactionDatabase(transactions)
    patterns = mine_bruteforce(db, min_support)
    closed = patterns.closed()
    for candidate, support in patterns.items():
        reconstructed = max(
            (s for p, s in closed.items() if candidate <= p), default=None
        )
        assert reconstructed == support
