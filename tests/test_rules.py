"""Tests for association-rule generation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.transactions import TransactionDatabase
from repro.errors import MiningError
from repro.mining.bruteforce import mine_bruteforce
from repro.mining.patterns import PatternSet
from repro.rules.generation import filter_rules, generate_rules


@pytest.fixture
def patterns(paper_db):
    return mine_bruteforce(paper_db, 2)


class TestGeneration:
    def test_confidence_values(self, paper_db, patterns):
        rules = generate_rules(patterns, len(paper_db), min_confidence=0.5)
        by_key = {
            (tuple(sorted(r.antecedent)), tuple(sorted(r.consequent))): r
            for r in rules
        }
        # a -> e: sup(ae)=3, sup(a)=3 -> confidence 1.0.
        rule = by_key[((1,), (5,))]
        assert rule.confidence == pytest.approx(1.0)
        assert rule.support == 3
        # e -> a: sup(ae)=3, sup(e)=4 -> confidence 0.75.
        assert by_key[((5,), (1,))].confidence == pytest.approx(0.75)

    def test_lift_and_leverage(self, paper_db, patterns):
        rules = generate_rules(patterns, len(paper_db), min_confidence=0.5)
        rule = next(
            r for r in rules if r.antecedent == {1} and r.consequent == {5}
        )
        # lift = conf / (sup(e)/|DB|) = 1.0 / 0.8.
        assert rule.lift == pytest.approx(1.25)
        # leverage = 3/5 - (3/5)(4/5).
        assert rule.leverage == pytest.approx(0.6 - 0.6 * 0.8)

    def test_min_confidence_filters(self, paper_db, patterns):
        loose = generate_rules(patterns, len(paper_db), min_confidence=0.5)
        strict = generate_rules(patterns, len(paper_db), min_confidence=0.9)
        assert len(strict) < len(loose)
        assert all(r.confidence >= 0.9 for r in strict)

    def test_sorted_by_confidence_then_support(self, paper_db, patterns):
        rules = generate_rules(patterns, len(paper_db), min_confidence=0.5)
        keys = [(-r.confidence, -r.support) for r in rules]
        assert keys == sorted(keys)

    def test_max_consequent_size(self, paper_db, patterns):
        rules = generate_rules(
            patterns, len(paper_db), min_confidence=0.5, max_consequent_size=1
        )
        assert all(len(r.consequent) == 1 for r in rules)

    def test_antecedent_consequent_disjoint(self, paper_db, patterns):
        rules = generate_rules(patterns, len(paper_db), min_confidence=0.3)
        assert all(not (r.antecedent & r.consequent) for r in rules)
        assert all(r.antecedent and r.consequent for r in rules)

    def test_invalid_parameters(self, patterns):
        with pytest.raises(MiningError):
            generate_rules(patterns, 0)
        with pytest.raises(MiningError):
            generate_rules(patterns, 10, min_confidence=0.0)

    def test_str_rendering(self, paper_db, patterns):
        rules = generate_rules(patterns, len(paper_db), min_confidence=0.5)
        text = str(rules[0])
        assert "->" in text and "conf=" in text


class TestFilterRules:
    def test_filters_compose(self, paper_db, patterns):
        rules = generate_rules(patterns, len(paper_db), min_confidence=0.3)
        lifted = filter_rules(rules, min_lift=1.1)
        assert all(r.lift >= 1.1 for r in lifted)
        targeted = filter_rules(rules, required_consequent=frozenset({5}))
        assert all(5 in r.consequent for r in targeted)
        assert filter_rules(rules) == rules


@given(
    transactions=st.lists(
        st.lists(st.integers(0, 5), min_size=1, max_size=5),
        min_size=2,
        max_size=15,
    ),
    min_confidence=st.sampled_from([0.3, 0.6, 0.9]),
)
@settings(max_examples=40, deadline=None)
def test_rule_measures_are_consistent_properties(transactions, min_confidence):
    """Every emitted rule's numbers must re-derive from raw supports."""
    db = TransactionDatabase(transactions)
    patterns = mine_bruteforce(db, 1)
    rules = generate_rules(patterns, len(db), min_confidence=min_confidence)
    for rule in rules:
        joint = db.support(rule.items())
        antecedent = db.support(rule.antecedent)
        consequent = db.support(rule.consequent)
        assert rule.support == joint
        assert rule.confidence == pytest.approx(joint / antecedent)
        assert rule.lift == pytest.approx(
            (joint / antecedent) / (consequent / len(db))
        )
        assert rule.confidence >= min_confidence


@given(
    transactions=st.lists(
        st.lists(st.integers(0, 5), min_size=1, max_size=5),
        min_size=2,
        max_size=12,
    )
)
@settings(max_examples=30, deadline=None)
def test_consequent_pruning_loses_nothing(transactions):
    """The level-wise consequent pruning must equal exhaustive splitting."""
    from itertools import combinations

    db = TransactionDatabase(transactions)
    patterns = mine_bruteforce(db, 1)
    emitted = {
        (tuple(sorted(r.antecedent)), tuple(sorted(r.consequent)))
        for r in generate_rules(patterns, len(db), min_confidence=0.7)
    }
    expected = set()
    for items, support in patterns.items():
        if len(items) < 2:
            continue
        members = sorted(items)
        for size in range(1, len(members)):
            for consequent in combinations(members, size):
                antecedent = items - set(consequent)
                if support / patterns.support(antecedent) >= 0.7:
                    expected.add((tuple(sorted(antecedent)), consequent))
    assert emitted == expected
