"""Unit + property tests for aggregate constraints and their categories."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.aggregate import AggregateConstraint
from repro.constraints.base import Category, ChangeKind, ConstraintContext
from repro.data.items import ItemTable
from repro.errors import ConstraintError


def make_context(prices: dict[int, float]) -> ConstraintContext:
    table = ItemTable()
    for item_id, price in prices.items():
        table.add(item_id, f"item{item_id}", price=price)
    return ConstraintContext(db_size=100, item_table=table)


CONTEXT = make_context({1: 10.0, 2: 20.0, 3: 30.0, 4: 5.0})


class TestEvaluation:
    def test_sum(self):
        constraint = AggregateConstraint("sum", "price", "<=", 35)
        assert constraint.satisfied(frozenset({1, 2}), 1, CONTEXT)
        assert not constraint.satisfied(frozenset({1, 2, 3}), 1, CONTEXT)

    def test_min(self):
        constraint = AggregateConstraint("min", "price", ">=", 10)
        assert constraint.satisfied(frozenset({1, 2}), 1, CONTEXT)
        assert not constraint.satisfied(frozenset({1, 4}), 1, CONTEXT)

    def test_max(self):
        constraint = AggregateConstraint("max", "price", "<=", 20)
        assert constraint.satisfied(frozenset({1, 2}), 1, CONTEXT)
        assert not constraint.satisfied(frozenset({3}), 1, CONTEXT)

    def test_avg(self):
        constraint = AggregateConstraint("avg", "price", ">=", 15)
        assert constraint.satisfied(frozenset({1, 2}), 1, CONTEXT)
        assert not constraint.satisfied(frozenset({1, 4}), 1, CONTEXT)

    def test_missing_attribute_fails_constraint(self):
        context = make_context({1: 10.0})
        constraint = AggregateConstraint("sum", "price", "<=", 1000)
        assert not constraint.satisfied(frozenset({1, 99}), 1, context)

    def test_unknown_aggregate_or_op_rejected(self):
        with pytest.raises(ConstraintError):
            AggregateConstraint("median", "price", "<=", 10)
        with pytest.raises(ConstraintError):
            AggregateConstraint("sum", "price", "<", 10)


class TestCategories:
    @pytest.mark.parametrize(
        ("aggregate", "op", "expected"),
        [
            ("sum", "<=", Category.ANTI_MONOTONE),
            ("sum", ">=", Category.MONOTONE),
            ("min", "<=", Category.MONOTONE),
            ("min", ">=", Category.ANTI_MONOTONE),
            ("max", "<=", Category.ANTI_MONOTONE),
            ("max", ">=", Category.MONOTONE),
            ("avg", "<=", Category.CONVERTIBLE),
            ("avg", ">=", Category.CONVERTIBLE),
        ],
    )
    def test_classification_table(self, aggregate, op, expected):
        assert expected in AggregateConstraint(aggregate, "price", op, 10).categories


class TestCompare:
    def test_le_direction(self):
        base = AggregateConstraint("sum", "price", "<=", 100)
        assert base.compare(AggregateConstraint("sum", "price", "<=", 50)) is ChangeKind.TIGHTENED
        assert base.compare(AggregateConstraint("sum", "price", "<=", 200)) is ChangeKind.RELAXED

    def test_ge_direction(self):
        base = AggregateConstraint("min", "price", ">=", 10)
        assert base.compare(AggregateConstraint("min", "price", ">=", 20)) is ChangeKind.TIGHTENED
        assert base.compare(AggregateConstraint("min", "price", ">=", 5)) is ChangeKind.RELAXED

    def test_different_kinds_incomparable(self):
        base = AggregateConstraint("sum", "price", "<=", 100)
        assert base.compare(AggregateConstraint("max", "price", "<=", 100)) is ChangeKind.INCOMPARABLE
        assert base.compare(AggregateConstraint("sum", "weight", "<=", 100)) is ChangeKind.INCOMPARABLE


# Property tests: the categories must actually hold on random item sets.
price_table = {i: float(p) for i, p in enumerate([3, 7, 1, 9, 4, 8, 2, 6], start=1)}
PROPERTY_CONTEXT = make_context(price_table)
itemsets = st.frozensets(st.sampled_from(sorted(price_table)), min_size=1, max_size=6)


@given(items=itemsets, extra=st.sampled_from(sorted(price_table)), bound=st.integers(1, 40))
@settings(max_examples=80, deadline=None)
def test_anti_monotone_constraints_closed_under_supersets_violation(items, extra, bound):
    """If an anti-monotone constraint fails on X it fails on X ∪ {y}."""
    for aggregate, op in (("sum", "<="), ("max", "<="), ("min", ">=")):
        constraint = AggregateConstraint(aggregate, "price", op, bound)
        if not constraint.satisfied(items, 1, PROPERTY_CONTEXT):
            assert not constraint.satisfied(items | {extra}, 1, PROPERTY_CONTEXT), (
                f"{aggregate} {op} {bound} not anti-monotone"
            )


@given(items=itemsets, extra=st.sampled_from(sorted(price_table)), bound=st.integers(1, 40))
@settings(max_examples=80, deadline=None)
def test_monotone_constraints_closed_under_supersets_satisfaction(items, extra, bound):
    """If a monotone constraint holds on X it holds on X ∪ {y}."""
    for aggregate, op in (("sum", ">="), ("max", ">="), ("min", "<=")):
        constraint = AggregateConstraint(aggregate, "price", op, bound)
        if constraint.satisfied(items, 1, PROPERTY_CONTEXT):
            assert constraint.satisfied(items | {extra}, 1, PROPERTY_CONTEXT), (
                f"{aggregate} {op} {bound} not monotone"
            )
