"""Tests for ConstraintSet evaluation and change classification."""

from __future__ import annotations

import pytest

from repro.constraints.base import ChangeKind, ConstraintContext
from repro.constraints.engine import ConstraintSet
from repro.constraints.support import (
    ItemsWithin,
    MaxLength,
    MinLength,
    MinSupport,
)
from repro.errors import ConstraintError
from repro.mining.patterns import PatternSet

CONTEXT = ConstraintContext(db_size=100)


class TestConstruction:
    def test_requires_exactly_one_min_support(self):
        with pytest.raises(ConstraintError):
            ConstraintSet([MaxLength(3)])
        with pytest.raises(ConstraintError):
            ConstraintSet([MinSupport(2), MinSupport(3)])

    def test_min_support_shorthand(self):
        constraints = ConstraintSet.min_support(0.05)
        assert constraints.absolute_support(100) == 5

    def test_others_excludes_support(self):
        constraints = ConstraintSet.of(MinSupport(2), MaxLength(3))
        assert len(constraints.others()) == 1
        assert isinstance(constraints.others()[0], MaxLength)


class TestEvaluation:
    def test_conjunction(self):
        constraints = ConstraintSet.of(MinSupport(3), MaxLength(2))
        assert constraints.satisfied(frozenset({1, 2}), 5, CONTEXT)
        assert not constraints.satisfied(frozenset({1, 2, 3}), 5, CONTEXT)
        assert not constraints.satisfied(frozenset({1}), 2, CONTEXT)

    def test_filter_patterns(self, paper_old_patterns):
        constraints = ConstraintSet.of(MinSupport(3), MinLength(2))
        filtered = constraints.filter_patterns(paper_old_patterns, CONTEXT)
        assert len(filtered) == 6
        assert all(len(p) >= 2 for p in filtered)


class TestClassifyChange:
    def test_same(self):
        old = ConstraintSet.min_support(5)
        assert old.classify_change(ConstraintSet.min_support(5)) is ChangeKind.SAME

    def test_support_tightened_and_relaxed(self):
        old = ConstraintSet.min_support(5)
        assert old.classify_change(ConstraintSet.min_support(8)) is ChangeKind.TIGHTENED
        assert old.classify_change(ConstraintSet.min_support(3)) is ChangeKind.RELAXED

    def test_added_constraint_tightens(self):
        old = ConstraintSet.min_support(5)
        new = ConstraintSet.of(MinSupport(5), MaxLength(3))
        assert old.classify_change(new) is ChangeKind.TIGHTENED

    def test_dropped_constraint_relaxes(self):
        old = ConstraintSet.of(MinSupport(5), MaxLength(3))
        new = ConstraintSet.min_support(5)
        assert old.classify_change(new) is ChangeKind.RELAXED

    def test_mixed_changes_are_incomparable(self):
        old = ConstraintSet.of(MinSupport(5), MaxLength(3))
        new = ConstraintSet.of(MinSupport(3), MaxLength(2))  # relax + tighten
        assert old.classify_change(new) is ChangeKind.INCOMPARABLE

    def test_multiple_constraints_all_tightened(self):
        old = ConstraintSet.of(MinSupport(5), ItemsWithin({1, 2, 3}))
        new = ConstraintSet.of(MinSupport(6), ItemsWithin({1, 2}))
        assert old.classify_change(new) is ChangeKind.TIGHTENED

    def test_replaced_incomparable_constraint(self):
        old = ConstraintSet.of(MinSupport(5), ItemsWithin({1, 2}))
        new = ConstraintSet.of(MinSupport(5), ItemsWithin({3, 4}))
        # Disjoint allowed-sets: new constraint unmatched (tighten) + old
        # dropped (relax) -> incomparable.
        assert old.classify_change(new) is ChangeKind.INCOMPARABLE


class TestFilterVsRemineSemantics:
    def test_tightened_filter_equals_remine(self, paper_db):
        """The Section 2 guarantee, end to end with non-support constraints."""
        from repro.mining.hmine import mine_hmine

        context = ConstraintContext(db_size=len(paper_db))
        old_constraints = ConstraintSet.min_support(2)
        old_result = mine_hmine(paper_db, 2)

        new_constraints = ConstraintSet.of(MinSupport(3), MaxLength(2))
        filtered = new_constraints.filter_patterns(old_result, context)
        remined = new_constraints.filter_patterns(mine_hmine(paper_db, 3), context)
        assert old_constraints.classify_change(new_constraints) is ChangeKind.TIGHTENED
        assert filtered == remined
