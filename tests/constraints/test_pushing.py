"""Tests for constraint-pushed mining."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.aggregate import AggregateConstraint
from repro.constraints.base import ConstraintContext
from repro.constraints.engine import ConstraintSet
from repro.constraints.pushing import mine_constrained
from repro.constraints.support import (
    ItemsWithin,
    MaxLength,
    MinLength,
    MinSupport,
)
from repro.data.items import ItemTable
from repro.data.synthetic import random_database
from repro.data.transactions import TransactionDatabase
from repro.metrics.counters import CostCounters
from repro.mining.bruteforce import mine_bruteforce


def reference(db, constraints, context):
    """Oracle: mine unconstrained, then filter."""
    xi = constraints.absolute_support(len(db))
    return constraints.filter_patterns(mine_bruteforce(db, xi), context)


def price_context(db, prices):
    table = ItemTable()
    for item, price in prices.items():
        table.add(item, f"i{item}", price=price)
    return ConstraintContext(db_size=len(db), item_table=table)


class TestPushedEqualsFiltered:
    @pytest.mark.parametrize("seed", range(6))
    def test_items_within(self, seed):
        db = random_database(25, 8, 6, seed=seed)
        constraints = ConstraintSet.of(MinSupport(2), ItemsWithin({0, 1, 2, 3}))
        context = ConstraintContext(db_size=len(db))
        assert mine_constrained(db, constraints, context) == reference(
            db, constraints, context
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_max_price(self, seed):
        db = random_database(25, 8, 6, seed=seed)
        prices = {i: float(i) for i in range(8)}
        context = price_context(db, prices)
        constraints = ConstraintSet.of(
            MinSupport(2), AggregateConstraint("max", "price", "<=", 4.0)
        )
        assert mine_constrained(db, constraints, context) == reference(
            db, constraints, context
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_sum_anti_monotone_pruning(self, seed):
        db = random_database(25, 8, 6, seed=seed)
        prices = {i: float(i + 1) for i in range(8)}
        context = price_context(db, prices)
        constraints = ConstraintSet.of(
            MinSupport(2), AggregateConstraint("sum", "price", "<=", 9.0)
        )
        counters = CostCounters()
        result = mine_constrained(db, constraints, context, counters)
        assert result == reference(db, constraints, context)

    @pytest.mark.parametrize("seed", range(4))
    def test_monotone_and_convertible_post_checks(self, seed):
        db = random_database(25, 8, 6, seed=seed)
        prices = {i: float(i + 1) for i in range(8)}
        context = price_context(db, prices)
        constraints = ConstraintSet.of(
            MinSupport(2),
            MinLength(2),                                    # monotone
            AggregateConstraint("avg", "price", ">=", 3.0),  # convertible
        )
        assert mine_constrained(db, constraints, context) == reference(
            db, constraints, context
        )

    def test_mixed_everything(self):
        db = random_database(30, 9, 7, seed=17)
        prices = {i: float((i * 7) % 10 + 1) for i in range(9)}
        context = price_context(db, prices)
        constraints = ConstraintSet.of(
            MinSupport(3),
            ItemsWithin(set(range(7))),
            MaxLength(3),
            AggregateConstraint("sum", "price", "<=", 18.0),
        )
        assert mine_constrained(db, constraints, context) == reference(
            db, constraints, context
        )


class TestPushingActuallyPrunes:
    def test_succinct_filter_shrinks_universe(self):
        db = TransactionDatabase([[1, 2, 3, 4]] * 5)
        constraints = ConstraintSet.of(MinSupport(2), ItemsWithin({1, 2}))
        counters = CostCounters()
        result = mine_constrained(db, constraints, counters=counters)
        assert set().union(*result) == {1, 2}
        # Items 3 and 4 were never scanned past the root.
        assert counters.item_visits < 5 * 4 * 2 + 20

    def test_anti_monotone_prunes_subtrees(self):
        db = TransactionDatabase([[1, 2, 3]] * 4)
        prices = {1: 5.0, 2: 5.0, 3: 5.0}
        context = price_context(db, prices)
        constraints = ConstraintSet.of(
            MinSupport(2), AggregateConstraint("sum", "price", "<=", 10.0)
        )
        counters = CostCounters()
        result = mine_constrained(db, constraints, context, counters)
        assert all(len(p) <= 2 for p in result)
        assert counters.as_dict()["constraint_prunes"] > 0


@given(
    transactions=st.lists(
        st.lists(st.integers(0, 6), min_size=1, max_size=5),
        min_size=1,
        max_size=15,
    ),
    allowed=st.frozensets(st.integers(0, 6), min_size=1),
    max_len=st.integers(1, 4),
)
@settings(max_examples=50, deadline=None)
def test_pushed_equals_filtered_property(transactions, allowed, max_len):
    db = TransactionDatabase(transactions)
    context = ConstraintContext(db_size=len(db))
    constraints = ConstraintSet.of(MinSupport(2), ItemsWithin(allowed), MaxLength(max_len))
    assert mine_constrained(db, constraints, context) == reference(
        db, constraints, context
    )
