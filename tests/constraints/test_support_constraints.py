"""Unit tests for support / structural constraints and their comparisons."""

from __future__ import annotations

import pytest

from repro.constraints.base import Category, ChangeKind, ConstraintContext
from repro.constraints.support import (
    ItemsRequired,
    ItemsWithin,
    MaxLength,
    MaxSupport,
    MinLength,
    MinSupport,
)
from repro.errors import ConstraintError

CONTEXT = ConstraintContext(db_size=100)


class TestMinSupport:
    def test_absolute_threshold(self):
        constraint = MinSupport(5)
        assert constraint.satisfied(frozenset({1}), 5, CONTEXT)
        assert not constraint.satisfied(frozenset({1}), 4, CONTEXT)

    def test_relative_threshold_rounds_up(self):
        constraint = MinSupport(0.05)
        assert constraint.absolute(db_size=100) == 5
        assert constraint.absolute(db_size=101) == 6

    def test_category(self):
        assert MinSupport(2).is_anti_monotone()
        assert not MinSupport(2).is_monotone()

    def test_compare_tighten_and_relax(self):
        base = MinSupport(5)
        assert base.compare(MinSupport(7)) is ChangeKind.TIGHTENED
        assert base.compare(MinSupport(3)) is ChangeKind.RELAXED
        assert base.compare(MinSupport(5)) is ChangeKind.SAME
        assert base.compare(MaxSupport(5)) is ChangeKind.INCOMPARABLE

    def test_nonpositive_rejected(self):
        with pytest.raises(ConstraintError):
            MinSupport(0)


class TestMaxSupport:
    def test_satisfied(self):
        constraint = MaxSupport(10)
        assert constraint.satisfied(frozenset({1}), 10, CONTEXT)
        assert not constraint.satisfied(frozenset({1}), 11, CONTEXT)

    def test_monotone_category(self):
        assert MaxSupport(10).is_monotone()

    def test_compare_direction_inverted(self):
        # Lower max-support bound = fewer patterns = tightened.
        base = MaxSupport(10)
        assert base.compare(MaxSupport(5)) is ChangeKind.TIGHTENED
        assert base.compare(MaxSupport(20)) is ChangeKind.RELAXED


class TestLengths:
    def test_min_length(self):
        constraint = MinLength(2)
        assert constraint.satisfied(frozenset({1, 2}), 1, CONTEXT)
        assert not constraint.satisfied(frozenset({1}), 1, CONTEXT)
        assert Category.MONOTONE in constraint.categories

    def test_max_length(self):
        constraint = MaxLength(2)
        assert constraint.satisfied(frozenset({1, 2}), 1, CONTEXT)
        assert not constraint.satisfied(frozenset({1, 2, 3}), 1, CONTEXT)
        assert Category.ANTI_MONOTONE in constraint.categories

    def test_compare(self):
        assert MinLength(2).compare(MinLength(3)) is ChangeKind.TIGHTENED
        assert MaxLength(3).compare(MaxLength(2)) is ChangeKind.TIGHTENED
        assert MaxLength(3).compare(MaxLength(4)) is ChangeKind.RELAXED

    def test_invalid_rejected(self):
        with pytest.raises(ConstraintError):
            MinLength(0)
        with pytest.raises(ConstraintError):
            MaxLength(0)


class TestItemMembership:
    def test_items_within(self):
        constraint = ItemsWithin({1, 2, 3})
        assert constraint.satisfied(frozenset({1, 3}), 1, CONTEXT)
        assert not constraint.satisfied(frozenset({1, 4}), 1, CONTEXT)

    def test_items_required(self):
        constraint = ItemsRequired({1})
        assert constraint.satisfied(frozenset({1, 2}), 1, CONTEXT)
        assert not constraint.satisfied(frozenset({2}), 1, CONTEXT)

    def test_subset_comparisons(self):
        base = ItemsWithin({1, 2, 3})
        assert base.compare(ItemsWithin({1, 2})) is ChangeKind.TIGHTENED
        assert base.compare(ItemsWithin({1, 2, 3, 4})) is ChangeKind.RELAXED
        # Overlapping but incomparable item sets.
        assert base.compare(ItemsWithin({1, 9})) is ChangeKind.INCOMPARABLE

    def test_required_comparisons(self):
        base = ItemsRequired({1})
        assert base.compare(ItemsRequired({1, 2})) is ChangeKind.TIGHTENED
        assert ItemsRequired({1, 2}).compare(ItemsRequired({1})) is ChangeKind.RELAXED

    def test_empty_sets_rejected(self):
        with pytest.raises(ConstraintError):
            ItemsWithin(set())
        with pytest.raises(ConstraintError):
            ItemsRequired(set())
