"""Tests for the benchmark harness (runner, workloads, experiment dispatch).

Experiment functions run full sweeps over the calibrated datasets, which
is benchmark territory; here they are exercised on a tiny custom sweep
(or the micro Quest workload) so the tests stay fast while still
covering row shapes and the built-in consistency checks.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import (
    FIGURES,
    MEMORY_FIGURES,
    figure_series,
    memory_limited_figure,
    run_experiment,
    service_benchmark,
    service_load_rows,
    table3,
    two_step_cold_start,
)
from repro.bench.runner import run_baseline, run_recycling, speedup, timed
from repro.bench.workloads import prepare_workload
from repro.errors import BenchmarkError
from repro.mining.patterns import PatternSet


class TestRunner:
    def test_timed_returns_patterns_and_counters(self, paper_db):
        run = timed("x", lambda counters: PatternSet({frozenset({1}): 2}))
        assert run.label == "x"
        assert run.pattern_count == 1
        assert run.seconds >= 0

    def test_run_baseline(self, paper_db):
        run = run_baseline("hmine", paper_db, 2)
        assert run.pattern_count > 0
        assert run.counters.patterns_emitted == run.pattern_count

    def test_unknown_baseline_rejected(self, paper_db):
        with pytest.raises(BenchmarkError, match="unknown baseline"):
            run_baseline("quantum", paper_db, 2)

    def test_run_recycling(self, paper_db, paper_old_patterns):
        from repro.core.compression import compress

        compressed = compress(paper_db, paper_old_patterns, "mcp").compressed
        run = run_recycling("hmine", compressed, 2, "mcp")
        assert run.label == "hmine-mcp"
        baseline = run_baseline("hmine", paper_db, 2)
        assert run.patterns == baseline.patterns

    def test_speedup(self):
        fast = timed("f", lambda c: PatternSet())
        slow_run = type(fast)("s", fast.seconds * 2 + 1.0, fast.patterns, fast.counters)
        assert speedup(slow_run, fast) > 1


class TestWorkloads:
    def test_prepare_workload_cached(self):
        first = prepare_workload("connect4")
        second = prepare_workload("connect4")
        assert first is second

    def test_workload_contents(self):
        workload = prepare_workload("connect4")
        assert workload.name == "connect4"
        assert len(workload.old_patterns) > 0
        assert set(workload.compressions) == {"mcp", "mlp"}
        assert workload.absolute_support(0.5) == len(workload.db) // 2
        assert len(workload.sweep_absolute()) == len(workload.spec.xi_new_sweep)


class TestExperimentShapes:
    def test_figure_map_covers_paper(self):
        assert sorted(FIGURES) == list(range(9, 21))
        assert sorted(MEMORY_FIGURES) == list(range(21, 25))

    def test_figure_series_tiny_sweep(self):
        headers, rows = figure_series("connect4", "hmine", sweep=(0.93,))
        assert len(rows) == 1
        assert len(headers) == len(rows[0])
        assert rows[0][0] == 0.93
        assert rows[0][6] > 0  # speedup_mcp computed

    def test_memory_figure_tiny_sweep(self):
        headers, rows = memory_limited_figure(
            "connect4", budget_fractions=(0.2,), sweep=(0.93,)
        )
        assert len(rows) == 1
        assert len(headers) == len(rows[0])

    def test_table3_shape(self):
        headers, rows = table3()
        assert len(rows) == 8  # 4 datasets x 2 strategies
        assert headers[0] == "dataset"
        for row in rows:
            assert 0 < row[-1] <= 1  # compression ratio

    def test_two_step_shape(self):
        headers, rows = two_step_cold_start("connect4")
        assert [row[0] for row in rows] == ["direct", "two-step"]
        assert rows[0][5] == rows[1][5]

    def test_run_experiment_dispatch_unknown(self):
        with pytest.raises(BenchmarkError, match="unknown figure"):
            run_experiment("fig99")
        with pytest.raises(BenchmarkError, match="unknown experiment"):
            run_experiment("nonsense")

    def test_service_load_smoke(self):
        """Tiny-scale gateway load bench: the acceptance signals must
        already show at smoke scale — batching reduces work and
        computations, admission bounds the queue, nothing goes missing."""
        rows = service_load_rows(
            "connect4",
            requests=12,
            tenants=3,
            burst_length=4,
            queue_depth=4,
            pumps_per_burst=2,
            sweep=(0.93, 0.91),
        )
        by_scenario = {row["scenario"]: row for row in rows}
        assert set(by_scenario) == {
            "per-request", "batched", "no-admission", "admission",
        }
        assert (
            by_scenario["batched"]["total_work"]
            < by_scenario["per-request"]["total_work"]
        )
        assert (
            by_scenario["batched"]["computations"]
            < by_scenario["per-request"]["computations"]
        )
        assert by_scenario["admission"]["queue_high_water"] <= 4
        assert by_scenario["no-admission"]["queue_high_water"] > 4
        for row in rows:
            accounted = (
                row["served"] + row["shed"] + row["rejected"] + row["expired"]
            )
            assert accounted == row["requests"] == 12

    def test_service_load_dispatch(self, monkeypatch):
        """``service-load-<ds>`` must route past the ``service-`` prefix
        to the load benchmark (full-scale runs are bench territory)."""
        import repro.bench.experiments as experiments

        seen = {}

        def fake_rows(dataset, seed=0, **kwargs):
            seen["dataset"] = dataset
            return [
                {
                    "scenario": "per-request",
                    "served": 0,
                    "shed": 0,
                    "rejected": 0,
                    "computations": 0,
                    "merged_batches": 0,
                    "queue_high_water": 0,
                    "total_work": 0,
                    "work_per_served": 0.0,
                    "interactive_p99_work": 0.0,
                    "interactive_p99_s": 0.0,
                    "elapsed_seconds": 0.0,
                }
            ]

        monkeypatch.setattr(experiments, "service_load_rows", fake_rows)
        headers, rows = run_experiment("service-load-connect4", seed=0)
        assert seen["dataset"] == "connect4"
        assert headers[0] == "scenario"
        assert rows[0][0] == "per-request"

    def test_service_benchmark_warm_beats_cold(self):
        headers, rows = service_benchmark("connect4", tenants=2, sweep=(0.93, 0.91))
        assert headers[0] == "tenant"
        body, total = rows[:-1], rows[-1]
        assert total[0] == "TOTAL"
        warm_column = headers.index("work_warm")
        cold_column = headers.index("work_cold")
        # The acceptance claim: warm-warehouse requests are cheaper than
        # cold mining on total_work — per request and in aggregate.
        for row in body:
            assert row[warm_column] <= row[cold_column]
        assert total[warm_column] < total[cold_column]
        # The first request mines; every later tenant at the same support
        # is a filter hit off the warehouse.
        paths = [row[3] for row in body]
        assert paths[0] == "mine"
        assert "filter" in paths
