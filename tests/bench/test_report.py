"""Tests for the text-table reporter."""

from __future__ import annotations

from repro.bench.report import format_cell, format_table, render_report


class TestFormatCell:
    def test_floats(self):
        assert format_cell(0.12345) == "0.1235"
        assert format_cell(3.14159) == "3.142"
        assert format_cell(12345.6) == "12,346"
        assert format_cell(0.0) == "0"

    def test_ints(self):
        assert format_cell(42) == "42"
        assert format_cell(1234567) == "1,234,567"

    def test_bools_and_strings(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"
        assert format_cell("abc") == "abc"

    def test_non_finite_floats_render_explicitly(self):
        assert format_cell(float("nan")) == "nan"
        assert format_cell(float("inf")) == "inf"
        assert format_cell(float("-inf")) == "-inf"

    def test_negative_floats(self):
        assert format_cell(-3.14159) == "-3.142"
        assert format_cell(-12345.6) == "-12,346"
        assert format_cell(-0.12345) == "-0.1235"

    def test_tiny_magnitudes_keep_their_sign(self):
        # Below the 4-decimal resolution the ladder switches to
        # significant digits instead of collapsing to "0.0000".
        assert format_cell(1e-6) == "1e-06"
        assert format_cell(-1e-6) == "-1e-06"
        assert format_cell(-0.00004) == "-4e-05"


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["name", "value"], [["a", 1], ["longer", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        # Separator and data rows share one width; the header may be
        # shorter after trailing-space stripping.
        assert len(lines[1]) == len(lines[2]) == len(lines[3])
        assert len(lines[0]) <= len(lines[1])

    def test_header_separator(self):
        table = format_table(["x"], [[1]])
        assert set(table.splitlines()[1]) == {"-"}

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert len(table.splitlines()) == 2

    def test_no_headers_no_rows(self):
        assert format_table([], []) == "\n"

    def test_short_rows_pad_with_blanks(self):
        table = format_table(["a", "b", "c"], [["x"], ["y", 1, 2]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(lines[2].split()) == 1  # padded cells stay blank
        assert lines[3].split() == ["y", "1", "2"]

    def test_wide_rows_grow_blank_headed_columns(self):
        table = format_table(["a"], [["x", "extra"]])
        lines = table.splitlines()
        assert "extra" in lines[2]
        # The separator covers the grown column too.
        assert len(lines[1]) >= len(lines[2].rstrip())

    def test_unicode_headers(self):
        table = format_table(["ξ", "naïve-工作"], [["α", 1.5]])
        lines = table.splitlines()
        assert "ξ" in lines[0] and "naïve-工作" in lines[0]
        assert "α" in lines[2]


class TestRenderReport:
    def test_contains_title_and_table(self):
        report = render_report("My Title", ["h"], [["v"]])
        assert "My Title" in report
        assert "=" in report
        assert "v" in report
