"""Tests for the ASCII chart renderer."""

from __future__ import annotations

import pytest

from repro.bench.plotting import chart_from_figure_rows, render_chart
from repro.errors import BenchmarkError


class TestRenderChart:
    def test_basic_chart_contains_series_and_legend(self):
        chart = render_chart(
            [0.9, 0.8, 0.7],
            {"base": [1.0, 2.0, 4.0], "mcp": [0.5, 0.6, 0.7]},
            title="demo",
        )
        assert "demo" in chart
        assert "o base" in chart
        assert "x mcp" in chart
        assert "seconds" in chart

    def test_log_scale(self):
        chart = render_chart(
            [1, 2], {"a": [0.01, 100.0]}, log_y=True
        )
        assert "log scale" in chart

    def test_log_scale_rejects_non_positive(self):
        with pytest.raises(BenchmarkError, match="non-positive"):
            render_chart([1], {"a": [0.0]}, log_y=True)

    def test_empty_inputs_rejected(self):
        with pytest.raises(BenchmarkError):
            render_chart([], {"a": []})
        with pytest.raises(BenchmarkError):
            render_chart([1], {})

    def test_length_mismatch_rejected(self):
        with pytest.raises(BenchmarkError, match="points for"):
            render_chart([1, 2], {"a": [1.0]})

    def test_constant_series_does_not_crash(self):
        chart = render_chart([1, 2, 3], {"flat": [2.0, 2.0, 2.0]})
        assert chart.count("o") >= 3

    def test_unicode_series_names(self):
        chart = render_chart(
            [1, 2], {"naïve-ξ": [1.0, 2.0], "基线": [2.0, 1.0]}, title="ünicode"
        )
        assert "naïve-ξ" in chart
        assert "基线" in chart
        assert "ünicode" in chart

    def test_markers_land_in_order(self):
        """Higher values must render on higher rows (grid area only)."""
        chart = render_chart([1, 2], {"a": [0.0, 10.0]}, width=10, height=5)
        grid = [line.split("|", 1)[1] for line in chart.splitlines() if "|" in line]
        marked = [row for row, content in enumerate(grid) if "o" in content]
        assert marked == [0, 4]  # max on top row, min on bottom row


class TestFigureChart:
    def test_from_figure_rows(self):
        headers = ["xi_new", "abs", "patterns", "HM_s", "HM-MCP_s", "HM-MLP_s",
                   "s1", "s2", "w1", "w2"]
        rows = [
            [0.93, 1395, 1512, 1.5, 0.38, 0.37, 4.0, 4.1, 1, 1],
            [0.91, 1365, 2022, 2.1, 0.48, 0.46, 4.5, 4.6, 1, 1],
        ]
        chart = chart_from_figure_rows(headers, rows, title="Figure 15", log_y=True)
        assert "Figure 15" in chart
        assert "HM-MCP_s" in chart
