"""Seeded chaos runs: whatever faults fire, a returned answer is exact.

The CI ``chaos`` job runs this module across a fixed seed matrix
(``CHAOS_SEED`` ∈ 0..4) and one fault profile per matrix leg
(``CHAOS_PROFILE`` ∈ crash | slow | corrupt). Locally, with neither
variable set, every profile runs once under seed 0 — the same code path,
one leg of the matrix.

The invariant under test is the resilience layer's contract: faults may
change *how* a request is served (retries, serial fallback, quarantine,
a miss instead of a hit) — recorded on the degradation ladder — but
never *what* is returned. Every response is compared pattern-for-pattern
against the fault-free serial answer.
"""

from __future__ import annotations

import os

import pytest

from repro.data.io import write_patterns_with_support
from repro.data.synthetic import QuestParams, quest_database
from repro.mining.hmine import mine_hmine
from repro.data.versioned import DatabaseDelta, VersionedDatabase
from repro.resilience import (
    SHARD_CRASH,
    SHARD_SLOW,
    UPDATE_PATCH,
    WAREHOUSE_READ,
    WAREHOUSE_WRITE,
    FaultInjector,
    ResilienceConfig,
    RetryPolicy,
)
from repro.service import MineRequest, MiningService, PatternWarehouse

SEED = int(os.environ.get("CHAOS_SEED", "0"))
PROFILES = ("crash", "slow", "corrupt")
_selected = os.environ.get("CHAOS_PROFILE")
ACTIVE_PROFILES = (_selected,) if _selected in PROFILES else PROFILES

#: Requests replayed under every profile: two tenants relaxing support,
#: so the workload crosses the mine → filter → recycle trichotomy.
SUPPORTS = (14, 14, 9, 6)


def chaos_injector(profile: str) -> FaultInjector:
    injector = FaultInjector(seed=SEED)
    if profile == "crash":
        injector.inject(SHARD_CRASH, probability=0.4)
    elif profile == "slow":
        # Some shard attempts sleep past the engine deadline below.
        injector.inject(SHARD_SLOW, probability=0.5, delay_seconds=0.08)
    elif profile == "corrupt":
        injector.inject(WAREHOUSE_READ, probability=0.4)
        injector.inject(WAREHOUSE_WRITE, probability=0.4)
    else:  # pragma: no cover - guarded by ACTIVE_PROFILES
        raise AssertionError(profile)
    return injector


@pytest.mark.parametrize("profile", ACTIVE_PROFILES)
def test_chaos_run_returns_only_exact_answers(profile, tmp_path):
    db = quest_database(
        QuestParams(n_transactions=100, n_items=30, avg_transaction_length=6),
        seed=SEED,
    )
    expected = {support: mine_hmine(db, support) for support in set(SUPPORTS)}
    faults = chaos_injector(profile)
    retry = RetryPolicy(
        max_attempts=3,
        base_delay_seconds=0.001,
        max_delay_seconds=0.01,
        jitter_fraction=0.25,
    )

    warehouse = PatternWarehouse(directory=tmp_path, fault_injector=faults)

    def factory(jobs, shard_feedstock, on_shard_result):
        from repro.parallel import ParallelEngine

        return ParallelEngine(
            jobs,
            executor="inline",
            timeout_seconds=0.05 if profile == "slow" else None,
            shard_feedstock=shard_feedstock,
            on_shard_result=on_shard_result,
            retry_policy=retry,
            fault_injector=faults,
        )

    with MiningService(
        warehouse=warehouse,
        parallel_engine_factory=factory,
        resilience=ResilienceConfig(retry=retry, faults=faults),
    ) as service:
        for support in SUPPORTS:
            response = service.execute(
                MineRequest(db=db, support=support, jobs=2)
            )
            # The one non-negotiable: a returned answer is the exact
            # fault-free answer, whatever path produced it.
            assert response.patterns == expected[support], (
                f"profile={profile} seed={SEED} support={support} "
                f"served via {response.path} "
                f"(degradation: {response.degradation.describe() or 'none'})"
            )
        snapshot = service.stats.snapshot()
        assert snapshot["requests"] == len(SUPPORTS)


@pytest.mark.parametrize("profile", ACTIVE_PROFILES)
def test_chaos_gateway_batches_survive_faults(profile, tmp_path):
    """The gateway leg: faults firing under a non-empty queue must not
    bend batched serving — every served response still matches the
    fault-free serial answer, and nothing is silently dropped."""
    from repro.gateway import MiningGateway

    db = quest_database(
        QuestParams(n_transactions=100, n_items=30, avg_transaction_length=6),
        seed=SEED,
    )
    expected = {support: mine_hmine(db, support) for support in set(SUPPORTS)}
    faults = chaos_injector(profile)
    retry = RetryPolicy(
        max_attempts=3,
        base_delay_seconds=0.001,
        max_delay_seconds=0.01,
        jitter_fraction=0.25,
    )
    warehouse = PatternWarehouse(directory=tmp_path, fault_injector=faults)

    def factory(jobs, shard_feedstock, on_shard_result):
        from repro.parallel import ParallelEngine

        return ParallelEngine(
            jobs,
            executor="inline",
            timeout_seconds=0.05 if profile == "slow" else None,
            shard_feedstock=shard_feedstock,
            on_shard_result=on_shard_result,
            retry_policy=retry,
            fault_injector=faults,
        )

    with MiningService(
        warehouse=warehouse,
        parallel_engine_factory=factory,
        resilience=ResilienceConfig(retry=retry, faults=faults),
    ) as service:
        gateway = MiningGateway(service, start=False)
        # The whole ladder queues before anything dispatches, so faults
        # hit the shared batched computation, not isolated requests.
        futures = [
            gateway.submit(MineRequest(db=db, support=support, jobs=2))
            for support in SUPPORTS
        ]
        gateway.drain()
        for future, support in zip(futures, SUPPORTS):
            response = future.result()
            assert response.status == "served"
            assert response.patterns == expected[support], (
                f"profile={profile} seed={SEED} support={support} "
                f"batched={response.batched} "
                f"(degradation: "
                f"{response.degradation.describe() or 'none'})"
            )
        assert gateway.stats.served == len(SUPPORTS)
        gateway.close()


@pytest.mark.parametrize("profile", ACTIVE_PROFILES)
def test_chaos_update_path_degrades_to_clean_remine(profile, tmp_path):
    """The update leg: faults firing mid-patch must never surface a
    half-patched pattern set. Whatever the profile breaks — the patch
    itself (``update.patch`` crash), the ancestor lookup (warehouse-read
    corruption), or just latency (slow) — the served answer equals the
    fault-free scratch mine of the *post-update* database, and a crashed
    patch leaves its structured reason in the service stats."""
    db = quest_database(
        QuestParams(n_transactions=80, n_items=25, avg_transaction_length=5),
        seed=SEED,
    )
    v0 = VersionedDatabase.initial(db)
    # A mixed delta, so the planner picks the recycling patch engine.
    delta = DatabaseDelta(
        appends=db.transactions[:6], deletes=frozenset(db.tids[:3])
    )
    v1 = v0.apply(delta)
    expected = mine_hmine(v1.db, 10)
    faults = chaos_injector(profile)
    # Mid-update faults on every profile: crash kills the patch itself,
    # slow stretches it, corrupt (warehouse-read) starves it upstream.
    if profile == "crash":
        faults.inject(UPDATE_PATCH, probability=1.0)
    elif profile == "slow":
        faults.inject(UPDATE_PATCH, probability=1.0, delay_seconds=0.01)
    retry = RetryPolicy(
        max_attempts=3,
        base_delay_seconds=0.001,
        max_delay_seconds=0.01,
        jitter_fraction=0.25,
    )
    warehouse = PatternWarehouse(directory=tmp_path, fault_injector=faults)
    with MiningService(
        warehouse=warehouse,
        resilience=ResilienceConfig(retry=retry, faults=faults),
    ) as service:
        service.execute(MineRequest(db=db, support=10, version=v0))
        response = service.execute(MineRequest(db=v1.db, support=10, version=v1))
        assert response.patterns == expected, (
            f"profile={profile} seed={SEED} served via {response.path} "
            f"(degradation: {response.degradation.describe() or 'none'})"
        )
        if profile == "crash" and response.path == "update":
            # The patch crashed under the injector; the fallback must be
            # on the record, not silent.
            summary = service.stats.degradation_summary()
            assert any("update_failed" in label for label in summary), summary


@pytest.mark.parametrize("profile", ACTIVE_PROFILES)
def test_chaos_reload_after_corruption_serves_survivors(profile, tmp_path):
    """A warehouse directory that survived a chaos run (possibly with
    files corrupted on disk) reloads, quarantining instead of failing."""
    db = quest_database(
        QuestParams(n_transactions=80, n_items=25, avg_transaction_length=5),
        seed=SEED,
    )
    fingerprint = db.fingerprint()
    for support in (12, 8):
        write_patterns_with_support(
            mine_hmine(db, support),
            tmp_path / f"{fingerprint}-{support}.patterns",
            support,
        )
    if profile == "corrupt":
        bad = tmp_path / f"{fingerprint}-8.patterns"
        bad.write_text(bad.read_text()[:50])
    warehouse = PatternWarehouse(directory=tmp_path)
    healthy = 1 if profile == "corrupt" else 2
    assert len(warehouse) == healthy
    hit = warehouse.best_feedstock(fingerprint, 12)
    assert hit is not None
    assert hit.patterns == mine_hmine(db, 12)
