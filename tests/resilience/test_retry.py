"""Unit tests for the retry budget and the circuit breaker."""

from __future__ import annotations

import pytest

from repro.errors import ResilienceError
from repro.resilience import CLOSED, HALF_OPEN, OPEN, CircuitBreaker, RetryPolicy


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ResilienceError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ResilienceError, match="delays"):
            RetryPolicy(base_delay_seconds=-1)
        with pytest.raises(ResilienceError, match="jitter_fraction"):
            RetryPolicy(jitter_fraction=2.0)

    def test_retries_remaining_counts_the_first_try(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.retries_remaining(1) == 2
        assert policy.retries_remaining(3) == 0
        assert policy.retries_remaining(5) == 0
        assert RetryPolicy(max_attempts=1).retries_remaining(1) == 0

    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(
            base_delay_seconds=0.1, max_delay_seconds=0.5, jitter_fraction=0.0
        )
        assert policy.backoff_delay(1) == pytest.approx(0.1)
        assert policy.backoff_delay(2) == pytest.approx(0.2)
        assert policy.backoff_delay(3) == pytest.approx(0.4)
        assert policy.backoff_delay(4) == pytest.approx(0.5)  # capped
        assert policy.backoff_delay(10) == pytest.approx(0.5)

    def test_jitter_is_deterministic_and_shrinking_only(self):
        policy = RetryPolicy(
            base_delay_seconds=0.1, max_delay_seconds=2.0, jitter_fraction=0.25
        )
        for failures in (1, 2, 3):
            for salt in (0, 1, 7):
                once = policy.backoff_delay(failures, salt=salt)
                again = policy.backoff_delay(failures, salt=salt)
                raw = min(2.0, 0.1 * 2 ** (failures - 1))
                assert once == again  # same (salt, failures) → same delay
                assert raw * 0.75 <= once <= raw

    def test_salts_spread_delays(self):
        policy = RetryPolicy(base_delay_seconds=0.1, jitter_fraction=0.25)
        delays = {policy.backoff_delay(1, salt=s) for s in range(8)}
        assert len(delays) > 1

    def test_invalid_failures_rejected(self):
        with pytest.raises(ResilienceError, match="failures"):
            RetryPolicy().backoff_delay(0)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ResilienceError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ResilienceError, match="cooldown_seconds"):
            CircuitBreaker(cooldown_seconds=-1)

    def test_opens_after_consecutive_failures_only(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # resets the streak
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN and not breaker.allow()
        assert breaker.trips == 1

    def test_cooldown_transitions_to_half_open_trial(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=30.0, clock=clock
        )
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.now = 29.9
        assert not breaker.allow()
        clock.now = 30.0
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # exactly one trial is let through

    def test_half_open_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=10.0, clock=clock
        )
        breaker.record_failure()
        clock.now = 10.0
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED and breaker.allow()

    def test_half_open_failure_reopens_immediately(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=5, cooldown_seconds=10.0, clock=clock
        )
        for _ in range(5):
            breaker.record_failure()
        clock.now = 10.0
        assert breaker.state == HALF_OPEN
        breaker.record_failure()  # one failure suffices in half-open
        assert breaker.state == OPEN
        assert breaker.trips == 2

    def test_snapshot(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        snap = breaker.snapshot()
        assert snap == {
            "state": CLOSED, "trips": 0, "consecutive_failures": 1
        }
