"""Unit tests for the structured degradation ladder report."""

from __future__ import annotations

from repro.resilience import (
    REASON_CIRCUIT_OPEN,
    REASON_SHARD_FAILED,
    DegradationReport,
    DegradationStep,
)


class TestDegradationReport:
    def test_empty_report_is_falsy_and_not_degraded(self):
        report = DegradationReport()
        assert not report
        assert not report.degraded
        assert len(report) == 0
        assert report.steps == ()
        assert report.describe() == ""

    def test_record_builds_the_requested_to_served_chain(self):
        report = DegradationReport()
        report.record("parallel", "serial", REASON_SHARD_FAILED)
        report.record("recycle", "mine", "feedstock_quarantined")
        assert report.degraded and len(report) == 2
        assert report.describe() == (
            "parallel→serial: shard_failed; "
            "recycle→mine: feedstock_quarantined"
        )
        assert report.reasons() == [
            "parallel→serial: shard_failed",
            "recycle→mine: feedstock_quarantined",
        ]

    def test_steps_are_immutable_value_objects(self):
        step = DegradationStep("parallel", "serial", REASON_CIRCUIT_OPEN)
        assert step.describe() == "parallel→serial: circuit_open"
        assert step == DegradationStep("parallel", "serial", REASON_CIRCUIT_OPEN)

    def test_extend_merges_another_report_in_order(self):
        inner = DegradationReport()
        inner.record("parallel", "serial", REASON_SHARD_FAILED)
        outer = DegradationReport()
        outer.record("feedstock", "miss", "warehouse_read_failed")
        outer.extend(inner)
        assert [s.reason for s in outer.steps] == [
            "warehouse_read_failed",
            REASON_SHARD_FAILED,
        ]
        # Extending mutates the receiver only.
        assert len(inner) == 1
