"""Kill-mid-write chaos: a crash at any persistence fault point leaves
old state or new state, never torn — and roll-forward converges.

The CI ``restart`` leg runs this module across a matrix of
``CHAOS_SEED`` × ``CHAOS_PERSIST_POINT`` (persist.write | persist.rename
| persist.manifest). Locally, with neither variable set, every point
runs under seed 0.

The harness drives a :class:`DurableStore` workload with a fault armed
to fire on the k-th pass through the chosen point — the injected
``persist.write`` genuinely writes *half* the payload first, so torn
files are real, not simulated. The killed process is then abandoned
(no graceful in-process degradation is allowed to mask the crash), a
fresh store recovers the directory, the interrupted workload is
replayed from the killed step, and the final directory must be
byte-for-byte equivalent to the never-interrupted run: same entries,
same lineage, same chain records, same restored version chain.
"""

from __future__ import annotations

import os

import pytest

from repro.data.io import read_warehouse_entry
from repro.data.patterns import CondensedPatternSet
from repro.data.synthetic import QuestParams, quest_database
from repro.data.versioned import DatabaseDelta, VersionedDatabase
from repro.durability import DurableStore, record_from_node
from repro.mining.hmine import mine_hmine
from repro.errors import InjectedFaultError
from repro.resilience import PERSIST_FAULT_POINTS, FaultInjector

SEED = int(os.environ.get("CHAOS_SEED", "0"))
_selected = os.environ.get("CHAOS_PERSIST_POINT")
ACTIVE_POINTS = (
    (_selected,) if _selected in PERSIST_FAULT_POINTS else PERSIST_FAULT_POINTS
)

#: Fault-call offsets per point: enough to land the kill in every
#: distinct window (journal append, entry temp write, chain write,
#: manifest write) the workload passes through.
OFFSETS = range(1, 9)


def build_world(seed: int):
    db = quest_database(
        QuestParams(n_transactions=60, n_items=20, avg_transaction_length=5),
        seed=seed,
    )
    v0 = VersionedDatabase(db)
    v1 = v0.apply(DatabaseDelta(appends=((1, 2, 3), (2, 4))))
    v2 = v1.apply(DatabaseDelta(deletes=frozenset({0})))
    return db, v0, v1, v2


def workload_steps(db, v0, v1, v2):
    """The durable mutations one pre-crash service generation performs.

    Each step is idempotent, so replaying the killed step after recovery
    is exactly what a restarted service would do.
    """
    condensed = CondensedPatternSet.condense(mine_hmine(db, 6), 6, "closed")
    stale = CondensedPatternSet.condense(mine_hmine(db, 12), 12, "closed")
    r1 = record_from_node(v1)
    r2 = record_from_node(v2)

    return [
        lambda s: s.write_entry(v0.fingerprint(), 6, condensed),
        lambda s: s.write_entry(v0.fingerprint(), 12, stale),
        lambda s: s.write_chain(r1),
        lambda s: s.record_link(
            r1.child, r1.parent, r1.delta_fingerprint(), r1.size
        ),
        lambda s: s.write_chain(r2),
        lambda s: s.record_link(
            r2.child, r2.parent, r2.delta_fingerprint(), r2.size
        ),
        lambda s: s.remove_entry(v0.fingerprint(), 12),
    ]


def final_state(directory, store, v2):
    """Everything observable about a recovered directory, comparable."""
    entries = {}
    for path in sorted(directory.glob("*.patterns")):
        condensed, _full = read_warehouse_entry(path)
        entries[path.name] = condensed.as_dict()
    restored = store.restore_version(v2.db)
    return {
        "entries": entries,
        "lineage": store.lineage_links(),
        "chains": store.chain_records(),
        "restored": restored.fingerprint() if restored is not None else None,
        "depth": _depth(restored),
    }


def _depth(version):
    depth = 0
    while version is not None:
        depth += 1
        version = version.parent
    return depth


@pytest.mark.parametrize("point", ACTIVE_POINTS)
def test_kill_at_every_offset_recovers_to_the_uninterrupted_state(
    point, tmp_path
):
    db, v0, v1, v2 = build_world(SEED)

    # The never-interrupted run is the ground truth.
    clean_dir = tmp_path / "clean"
    clean = DurableStore(clean_dir)
    for step in workload_steps(db, v0, v1, v2):
        step(clean)
    expected = final_state(clean_dir, clean, v2)
    assert expected["restored"] == v2.fingerprint()
    assert expected["depth"] == 3

    killed_at = 0
    for offset in OFFSETS:
        crash_dir = tmp_path / f"{point.replace('.', '-')}-{offset}"
        faults = FaultInjector(seed=SEED).inject(point, on_calls=(offset,))
        dying = DurableStore(crash_dir, faults)
        steps = workload_steps(db, v0, v1, v2)
        survivor_index = len(steps)
        for index, step in enumerate(steps):
            try:
                step(dying)
            except InjectedFaultError:
                survivor_index = index
                killed_at += 1
                break
        del dying  # the process is dead; only the directory survives

        recovered = DurableStore(crash_dir)
        recovered.recover()
        # Torn-or-old-or-new: every surviving file must parse — recovery
        # quarantines nothing in this workload because atomic writes
        # never leave a half-written target.
        assert recovered.recover(apply=False).quarantined == []
        # Roll the interrupted generation forward, as a restart would.
        for step in workload_steps(db, v0, v1, v2)[survivor_index:]:
            step(recovered)
        assert final_state(crash_dir, recovered, v2) == expected, (
            f"point={point} offset={offset} seed={SEED} "
            f"killed at step {survivor_index}"
        )

    # The matrix leg is vacuous if no offset ever fired the fault.
    assert killed_at > 0, f"no kill fired for {point} at any offset"
