"""Unit tests for the seeded, deterministic fault injector."""

from __future__ import annotations

import pytest

from repro.errors import InjectedFaultError, ResilienceError
from repro.resilience import (
    FAULT_POINTS,
    MERGE_COUNT,
    PERSIST_FAULT_POINTS,
    PERSIST_MANIFEST,
    PERSIST_RENAME,
    PERSIST_WRITE,
    SHARD_CRASH,
    SHARD_SLOW,
    UPDATE_PATCH,
    WAREHOUSE_READ,
    WAREHOUSE_WRITE,
    FaultInjector,
)


class TestArming:
    def test_unknown_point_rejected(self):
        with pytest.raises(ResilienceError, match="unknown fault point"):
            FaultInjector().inject("disk.on.fire", on_calls=(1,))

    def test_rule_that_can_never_fire_rejected(self):
        with pytest.raises(ResilienceError, match="can never fire"):
            FaultInjector().inject(SHARD_CRASH)

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ResilienceError, match="probability"):
            FaultInjector().inject(SHARD_CRASH, probability=1.5)

    def test_zero_based_on_calls_rejected(self):
        with pytest.raises(ResilienceError, match="1-based"):
            FaultInjector().inject(SHARD_CRASH, on_calls=(0,))

    def test_negative_delay_rejected(self):
        with pytest.raises(ResilienceError, match="delay_seconds"):
            FaultInjector().inject(SHARD_SLOW, on_calls=(1,), delay_seconds=-1)

    def test_inject_chains(self):
        injector = (
            FaultInjector()
            .inject(SHARD_CRASH, on_calls=(1,))
            .inject(MERGE_COUNT, on_calls=(2,))
        )
        assert isinstance(injector, FaultInjector)

    def test_all_named_points_are_armable(self):
        injector = FaultInjector()
        for point in FAULT_POINTS:
            injector.inject(point, on_calls=(1,))
        assert FAULT_POINTS == {
            SHARD_CRASH, SHARD_SLOW, WAREHOUSE_READ, WAREHOUSE_WRITE,
            MERGE_COUNT, UPDATE_PATCH,
            PERSIST_WRITE, PERSIST_RENAME, PERSIST_MANIFEST,
        }

    def test_persist_points_are_ordered_and_named(self):
        # The kill-mid-write chaos harness iterates this tuple in the
        # order one persisted mutation passes the points.
        assert PERSIST_FAULT_POINTS == (
            PERSIST_WRITE, PERSIST_RENAME, PERSIST_MANIFEST,
        )
        assert set(PERSIST_FAULT_POINTS) <= FAULT_POINTS


class TestFiring:
    def test_nth_call_trigger_fires_exactly_there(self):
        injector = FaultInjector().inject(WAREHOUSE_READ, on_calls=(3,))
        assert injector.evaluate(WAREHOUSE_READ) is None
        assert injector.evaluate(WAREHOUSE_READ) is None
        fired = injector.evaluate(WAREHOUSE_READ)
        assert fired is not None and fired.call == 3
        assert injector.evaluate(WAREHOUSE_READ) is None

    def test_fire_raises_injected_fault_with_context(self):
        injector = FaultInjector().inject(
            WAREHOUSE_WRITE, on_calls=(1,), message="disk full"
        )
        with pytest.raises(InjectedFaultError, match="disk full"):
            injector.fire(WAREHOUSE_WRITE, detail="writing key")

    def test_slow_fault_returns_delay_instead_of_raising(self):
        injector = FaultInjector().inject(
            SHARD_SLOW, on_calls=(1,), delay_seconds=0.5
        )
        assert injector.fire(SHARD_SLOW) == 0.5
        assert injector.fire(SHARD_SLOW) == 0.0  # only call 1 is armed

    def test_max_fires_caps_a_repeating_rule(self):
        injector = FaultInjector().inject(
            SHARD_CRASH, probability=1.0, max_fires=2
        )
        fires = sum(
            injector.evaluate(SHARD_CRASH) is not None for _ in range(5)
        )
        assert fires == 2

    def test_points_count_calls_independently(self):
        injector = FaultInjector()
        injector.evaluate(SHARD_CRASH)
        injector.evaluate(SHARD_CRASH)
        injector.evaluate(MERGE_COUNT)
        assert injector.calls(SHARD_CRASH) == 2
        assert injector.calls(MERGE_COUNT) == 1
        assert injector.fired(SHARD_CRASH) == 0


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        def schedule(seed: int) -> list[bool]:
            injector = FaultInjector(seed).inject(SHARD_CRASH, probability=0.3)
            return [
                injector.evaluate(SHARD_CRASH) is not None for _ in range(50)
            ]

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)  # overwhelmingly likely

    def test_nth_call_rule_does_not_perturb_probabilistic_schedule(self):
        """Adding an unrelated deterministic rule must not shift the RNG
        draws of a probabilistic rule at the same point."""

        def fires(with_extra_rule: bool) -> list[int]:
            injector = FaultInjector(3).inject(SHARD_CRASH, probability=0.2)
            if with_extra_rule:
                injector.inject(SHARD_SLOW, on_calls=(1,), delay_seconds=0.1)
                injector.evaluate(SHARD_SLOW)
            result = []
            for call in range(1, 41):
                if injector.evaluate(SHARD_CRASH) is not None:
                    result.append(call)
            return result

        assert fires(False) == fires(True)

    def test_snapshot_reports_calls_and_fires(self):
        injector = FaultInjector().inject(SHARD_CRASH, on_calls=(1,))
        injector.evaluate(SHARD_CRASH)
        injector.evaluate(SHARD_CRASH)
        assert injector.snapshot() == {
            SHARD_CRASH: {"calls": 2, "fired": 1}
        }
