"""Acceptance property: faults change the path, never the patterns.

For every recycling miner × compression strategy × injected fault
profile — a shard crash on attempt 1, a slow shard blowing the engine
deadline, corrupt warehouse feedstock — the final pattern set is
identical to the fault-free serial run, and the
:class:`~repro.resilience.DegradationReport` names the path actually
taken.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.synthetic import QuestParams, quest_database
from repro.data.transactions import TransactionDatabase
from repro.mining.registry import get_miner, miner_names
from repro.parallel import ParallelEngine
from repro.resilience import (
    REASON_DEADLINE,
    REASON_FEEDSTOCK_QUARANTINED,
    SHARD_CRASH,
    SHARD_SLOW,
    FaultInjector,
    RetryPolicy,
)
from repro.service import MineRequest, MiningService, PatternWarehouse

RECYCLING = sorted(miner_names("recycling"))
STRATEGIES = ("mcp", "mlp")
PROFILES = ("crash_attempt_1", "slow_under_deadline", "corrupt_feedstock")

OLD_SUPPORT = 10
NEW_SUPPORT = 5

FAST_RETRY = RetryPolicy(
    max_attempts=3,
    base_delay_seconds=0.0,
    max_delay_seconds=0.0,
    jitter_fraction=0.0,
)


def make_db(seed: int) -> TransactionDatabase:
    return quest_database(
        QuestParams(n_transactions=60, n_items=20, avg_transaction_length=5),
        seed=seed,
    )


def serial_answer(db: TransactionDatabase, support: int):
    """The fault-free serial ground truth every chaos run must match."""
    return get_miner("hmine", kind="baseline").mine(db, support)


def run_crash_attempt_1(db, algorithm, strategy, old_patterns):
    faults = FaultInjector().inject(SHARD_CRASH, on_calls=(1,))
    engine = ParallelEngine(
        2, executor="inline", retry_policy=FAST_RETRY, fault_injector=faults
    )
    outcome = engine.recycle_mine(
        db, old_patterns, NEW_SUPPORT, algorithm=algorithm, strategy=strategy
    )
    # The retry healed the transient crash: parallel served, no ladder.
    if outcome.jobs > 1:
        assert not outcome.fallback
        assert not outcome.degradation.degraded
        assert faults.fired(SHARD_CRASH) == 1
    return outcome.patterns, outcome.degradation


def run_slow_under_deadline(db, algorithm, strategy, old_patterns):
    faults = FaultInjector().inject(
        SHARD_SLOW, probability=1.0, delay_seconds=0.2
    )
    engine = ParallelEngine(
        2,
        executor="inline",
        timeout_seconds=0.1,
        retry_policy=FAST_RETRY,
        fault_injector=faults,
    )
    outcome = engine.recycle_mine(
        db, old_patterns, NEW_SUPPORT, algorithm=algorithm, strategy=strategy
    )
    # Every shard sleeps past the deadline: the serial fallback answers
    # and the ladder names the deadline.
    if outcome.jobs > 1 or outcome.fallback:
        assert outcome.fallback
        assert outcome.degradation.reasons() == [
            f"parallel→serial: {REASON_DEADLINE}"
        ]
    return outcome.patterns, outcome.degradation


def run_corrupt_feedstock(db, algorithm, strategy, old_patterns):
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        fingerprint = db.fingerprint()
        seeded = PatternWarehouse(directory=directory)
        seeded.put(fingerprint, OLD_SUPPORT, old_patterns)
        path = directory / f"{fingerprint}-{OLD_SUPPORT}.patterns"
        # Torn write: the tail of the body is lost, so the checksum in
        # the (intact) header no longer matches.
        path.write_text(path.read_text()[:-5])
        warehouse = PatternWarehouse(directory=directory)
        assert warehouse.has_quarantined(fingerprint)
        with MiningService(warehouse=warehouse) as service:
            response = service.execute(
                MineRequest(
                    db=db,
                    support=NEW_SUPPORT,
                    algorithm=algorithm,
                    strategy=strategy,
                )
            )
        # The would-be recycle degrades to a scratch mine, by name.
        assert response.path == "mine"
        assert response.degradation.reasons() == [
            f"recycle→mine: {REASON_FEEDSTOCK_QUARANTINED}"
        ]
        return response.patterns, response.degradation


RUNNERS = {
    "crash_attempt_1": run_crash_attempt_1,
    "slow_under_deadline": run_slow_under_deadline,
    "corrupt_feedstock": run_corrupt_feedstock,
}


@settings(max_examples=25, deadline=None)
@given(
    algorithm=st.sampled_from(RECYCLING),
    strategy=st.sampled_from(STRATEGIES),
    profile=st.sampled_from(PROFILES),
    seed=st.integers(min_value=0, max_value=3),
)
def test_fault_profiles_never_change_the_answer(algorithm, strategy, profile, seed):
    db = make_db(seed)
    expected = serial_answer(db, NEW_SUPPORT)
    old_patterns = serial_answer(db, OLD_SUPPORT)
    if len(old_patterns) == 0:
        return  # nothing to recycle at this seed; vacuous
    # The service path validates baseline names; recycling-only names
    # ("naive") are exercised through the engine profiles instead.
    if profile == "corrupt_feedstock" and algorithm == "naive":
        profile = "crash_attempt_1"
    patterns, degradation = RUNNERS[profile](
        db, algorithm, strategy, old_patterns
    )
    assert patterns == expected
    assert isinstance(degradation.describe(), str)
