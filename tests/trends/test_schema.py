"""Snapshot envelope: round-trip, validation, legacy wrapping."""

from __future__ import annotations

import pytest

from repro.errors import TrendsError
from repro.trends import (
    LEGACY_FILES,
    SCHEMA_VERSION,
    Snapshot,
    snapshot_from_legacy,
)

from tests.trends.conftest import make_snapshot


class TestRoundTrip:
    def test_to_dict_from_dict_is_lossless(self, snapshot):
        restored = Snapshot.from_dict(snapshot.to_dict())
        assert restored == snapshot

    def test_to_dict_stamps_schema_version(self, snapshot):
        assert snapshot.to_dict()["schema_version"] == SCHEMA_VERSION

    def test_commit_short(self):
        snap = make_snapshot(commit="0123456789abcdef")
        assert snap.commit_short == "0123456789"

    def test_rows_filters_non_dicts(self):
        snap = make_snapshot(rows=[{"a": 1}, "junk", 3, {"b": 2}])
        assert snap.rows() == [{"a": 1}, {"b": 2}]

    def test_rows_tolerates_missing_results(self):
        snap = Snapshot(
            bench="b", commit="c", timestamp="2026-01-01T00:00:00+00:00",
            seed=None, python="p", platform="p", payload={"seed": 0},
        )
        assert snap.rows() == []
        snap_bad = Snapshot(
            bench="b", commit="c", timestamp="2026-01-01T00:00:00+00:00",
            seed=None, python="p", platform="p",
            payload={"results": "not-a-list"},
        )
        assert snap_bad.rows() == []

    def test_sort_time_orders_and_defaults(self):
        early = make_snapshot(timestamp="2026-01-01T00:00:00+00:00")
        late = make_snapshot(timestamp="2026-06-01T00:00:00+00:00")
        naive = make_snapshot(timestamp="2026-06-01T00:00:00")
        broken = make_snapshot(timestamp="not-a-time")
        assert early.sort_time() < late.sort_time()
        assert naive.sort_time() == late.sort_time()  # naive assumed UTC
        assert broken.sort_time() == 0.0


class TestValidation:
    def test_rejects_non_mapping(self):
        with pytest.raises(TrendsError, match="not a JSON object"):
            Snapshot.from_dict(["nope"])

    def test_rejects_missing_schema_version(self, snapshot):
        data = snapshot.to_dict()
        del data["schema_version"]
        with pytest.raises(TrendsError, match="schema_version"):
            Snapshot.from_dict(data)

    def test_rejects_future_schema_version(self, snapshot):
        data = snapshot.to_dict()
        data["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(TrendsError, match="reads up to"):
            Snapshot.from_dict(data)

    @pytest.mark.parametrize("key", ["bench", "commit", "timestamp"])
    def test_rejects_missing_stamps(self, snapshot, key):
        data = snapshot.to_dict()
        data[key] = ""
        with pytest.raises(TrendsError, match=key.replace("_", " ")):
            Snapshot.from_dict(data)

    def test_rejects_non_integer_seed(self, snapshot):
        data = snapshot.to_dict()
        data["seed"] = "zero"
        with pytest.raises(TrendsError, match="seed"):
            Snapshot.from_dict(data)

    def test_rejects_missing_payload(self, snapshot):
        data = snapshot.to_dict()
        data["payload"] = None
        with pytest.raises(TrendsError, match="payload"):
            Snapshot.from_dict(data)

    def test_source_appears_in_errors(self, snapshot):
        with pytest.raises(TrendsError, match="here.json"):
            Snapshot.from_dict({}, source="here.json")

    def test_unknown_python_platform_default(self, snapshot):
        data = snapshot.to_dict()
        del data["python"], data["platform"]
        restored = Snapshot.from_dict(data)
        assert restored.python == "unknown"
        assert restored.platform == "unknown"


class TestLegacyWrap:
    def test_lifts_seed_and_keeps_payload(self):
        payload = {"seed": 7, "results": [{"x": 1}]}
        snap = snapshot_from_legacy("backends", payload, commit="c" * 40)
        assert snap.seed == 7
        assert snap.payload == payload
        assert snap.bench == "backends"
        assert snap.commit == "c" * 40

    def test_defaults_are_unknown(self):
        snap = snapshot_from_legacy("parallel", {"results": []})
        assert snap.commit == "unknown"
        assert snap.python == "unknown"
        assert snap.platform == "unknown"
        assert snap.seed is None
        assert snap.timestamp  # stamped with now() when omitted

    def test_rejects_non_mapping_payload(self):
        with pytest.raises(TrendsError, match="not a JSON object"):
            snapshot_from_legacy("backends", [1, 2, 3])

    def test_legacy_file_map_covers_the_five_benches(self):
        assert sorted(LEGACY_FILES) == [
            "backends", "incremental", "parallel", "service_load", "warehouse",
        ]
        assert all(v.startswith("BENCH_") for v in LEGACY_FILES.values())
