"""The counter-based regression gate and its policy parser."""

from __future__ import annotations

import textwrap

import pytest

from repro.errors import TrendsError
from repro.trends import (
    GatePolicy,
    PolicyMetric,
    TrendMetric,
    evaluate_gate,
    format_gate,
    load_policy,
    parse_minimal_toml,
)

from tests.trends.conftest import make_snapshot


def _history(older_work: float, newer_work: float) -> list:
    """Two service-load snapshots at different commits, counters only differing."""
    return [
        make_snapshot(
            commit="a" * 40,
            timestamp="2026-01-01T00:00:00+00:00",
            rows=[{"dataset": "connect4", "scenario": "batched",
                   "total_work": older_work, "wall_s": 1.0}],
        ),
        make_snapshot(
            commit="b" * 40,
            timestamp="2026-02-01T00:00:00+00:00",
            rows=[{"dataset": "connect4", "scenario": "batched",
                   "total_work": newer_work, "wall_s": 50.0}],
        ),
    ]


def _work_policy(budget: float = 10.0) -> GatePolicy:
    metric = TrendMetric(
        name="work", bench="service_load", field="total_work",
        where={"scenario": "batched"}, direction="lower",
    )
    return GatePolicy(budget, (PolicyMetric(metric, budget),))


class TestEvaluateGate:
    def test_counter_regression_over_budget_fails(self):
        # 25% more machine-independent work against a 10% budget.
        result = evaluate_gate(_history(1000, 1250), _work_policy(10.0))
        assert not result.ok
        verdict = result.verdicts[0]
        assert verdict.status == "regressed"
        assert verdict.change_pct == pytest.approx(25.0)
        assert verdict.baseline_commit == "a" * 10
        assert verdict.candidate_commit == "b" * 10

    def test_regression_within_budget_passes(self):
        result = evaluate_gate(_history(1000, 1050), _work_policy(10.0))
        assert result.ok
        assert result.verdicts[0].status == "ok"

    def test_improvement_passes(self):
        result = evaluate_gate(_history(1000, 800), _work_policy(10.0))
        assert result.ok
        assert result.verdicts[0].change_pct == pytest.approx(-20.0)

    def test_wall_clock_regression_alone_never_fails(self):
        # The newer snapshot's wall time exploded 50x; an advisory
        # wall-clock metric flags it but the gate still passes.
        metric = TrendMetric(
            name="wall", bench="service_load", field="wall_s",
            where={"scenario": "batched"}, direction="lower", advisory=True,
        )
        policy = GatePolicy(10.0, (PolicyMetric(metric, 10.0),))
        result = evaluate_gate(_history(1000, 1000), policy)
        assert result.ok
        assert result.verdicts[0].status == "advisory-regressed"
        assert not result.verdicts[0].fails

    def test_direction_higher(self):
        metric = TrendMetric(
            name="hit rate", bench="service_load", field="total_work",
            where={"scenario": "batched"}, direction="higher",
        )
        policy = GatePolicy(10.0, (PolicyMetric(metric, 10.0),))
        # Dropping from 1000 to 700 is a 30% regression when higher is better.
        result = evaluate_gate(_history(1000, 700), policy)
        assert not result.ok
        assert result.verdicts[0].change_pct == pytest.approx(30.0)
        # And rising passes.
        assert evaluate_gate(_history(1000, 1500), policy).ok

    def test_baseline_is_the_best_older_value_not_the_previous(self):
        history = _history(1000, 1050)
        history.insert(1, make_snapshot(
            commit="c" * 40,
            timestamp="2026-01-15T00:00:00+00:00",
            rows=[{"dataset": "connect4", "scenario": "batched",
                   "total_work": 2000, "wall_s": 1.0}],
        ))
        result = evaluate_gate(history, _work_policy(10.0))
        # Compared against the best (1000), not the sloppier middle run.
        assert result.verdicts[0].baseline == 1000.0
        assert result.ok

    def test_no_baseline_passes(self):
        result = evaluate_gate(_history(1000, 1250)[-1:], _work_policy(10.0))
        assert result.ok
        assert result.verdicts[0].status == "no-baseline"

    def test_missing_metric_fails(self):
        history = _history(1000, 1000)
        history[-1].payload["results"][0].pop("total_work")
        result = evaluate_gate(history, _work_policy(10.0))
        assert not result.ok
        assert result.verdicts[0].status == "missing"

    def test_missing_bench_fails(self):
        result = evaluate_gate([], _work_policy(10.0))
        assert not result.ok
        assert result.verdicts[0].status == "missing"

    def test_zero_baseline_edges(self):
        assert evaluate_gate(_history(0, 0), _work_policy(10.0)).ok
        worse = evaluate_gate(_history(0, 5), _work_policy(10.0))
        assert not worse.ok
        assert worse.verdicts[0].change_pct == float("inf")


class TestFormatGate:
    def test_pass_and_fail_lines(self):
        passing = format_gate(evaluate_gate(_history(1000, 900), _work_policy()))
        assert "gate: PASS" in passing
        failing = format_gate(evaluate_gate(_history(1000, 1500), _work_policy()))
        assert "gate: FAIL (1 metric(s) regressed)" in failing
        assert "+50.0% worse" in failing

    def test_advisory_is_labelled(self):
        metric = TrendMetric(
            name="wall", bench="service_load", field="wall_s",
            where={"scenario": "batched"}, direction="lower", advisory=True,
        )
        policy = GatePolicy(10.0, (PolicyMetric(metric, 10.0),))
        out = format_gate(evaluate_gate(_history(1000, 1000), policy))
        assert "[advisory]" in out
        assert "gate: PASS" in out


POLICY_TEXT = textwrap.dedent(
    """
    # counters gate; wall clock is advisory
    [gate]
    max_regression_pct = 10.0

    [[metric]]
    name = "batched work"
    bench = "service_load"
    field = "total_work"
    where = { dataset = "connect4", scenario = "batched" }
    direction = "lower"

    [[metric]]
    name = "jobs=4 speedup"  # wall clock
    bench = "parallel"
    field = "speedup"
    where = { jobs = 4 }
    direction = "higher"
    advisory = true
    max_regression_pct = 25.5
    """
)


class TestPolicyParsing:
    def test_load_policy(self, tmp_path):
        path = tmp_path / "policy.toml"
        path.write_text(POLICY_TEXT, encoding="utf-8")
        policy = load_policy(path)
        assert policy.max_regression_pct == 10.0
        assert len(policy.metrics) == 2
        first, second = policy.metrics
        assert first.metric.where == {"dataset": "connect4", "scenario": "batched"}
        assert first.max_regression_pct == 10.0
        assert second.metric.advisory
        assert second.max_regression_pct == 25.5

    def test_minimal_parser_matches_policy_shape(self):
        data = parse_minimal_toml(POLICY_TEXT)
        assert data["gate"]["max_regression_pct"] == 10.0
        assert len(data["metric"]) == 2
        assert data["metric"][0]["where"] == {
            "dataset": "connect4", "scenario": "batched",
        }
        assert data["metric"][1]["advisory"] is True
        assert data["metric"][1]["max_regression_pct"] == 25.5

    def test_minimal_parser_against_tomllib(self):
        tomllib = pytest.importorskip("tomllib")
        assert parse_minimal_toml(POLICY_TEXT) == tomllib.loads(POLICY_TEXT)

    def test_minimal_parser_respects_strings_with_hashes(self):
        data = parse_minimal_toml('[t]\nk = "a # not a comment"')
        assert data["t"]["k"] == "a # not a comment"

    def test_minimal_parser_rejects_garbage(self):
        with pytest.raises(TrendsError, match="cannot parse line"):
            parse_minimal_toml("just words")
        with pytest.raises(TrendsError, match="cannot parse value"):
            parse_minimal_toml("k = unquoted")
        with pytest.raises(TrendsError, match="inline table"):
            parse_minimal_toml("k = { broken }")

    def test_policy_validation(self, tmp_path):
        path = tmp_path / "policy.toml"
        path.write_text("[gate]\nmax_regression_pct = 5.0\n", encoding="utf-8")
        with pytest.raises(TrendsError, match="no \\[\\[metric\\]\\]"):
            load_policy(path)
        path.write_text(
            '[[metric]]\nname = "x"\nfield = "f"\n', encoding="utf-8"
        )
        with pytest.raises(TrendsError, match="'bench'"):
            load_policy(path)

    def test_missing_policy_file(self, tmp_path):
        with pytest.raises(TrendsError, match="cannot read gate policy"):
            load_policy(tmp_path / "absent.toml")

    def test_repo_policy_file_loads(self):
        from pathlib import Path

        repo_policy = Path(__file__).resolve().parents[2] / "trends" / "policy.toml"
        policy = load_policy(repo_policy)
        assert policy.metrics
        # Both parsers must accept the shipped policy, whatever python
        # version is running the suite.
        data = parse_minimal_toml(repo_policy.read_text("utf-8"))
        assert len(data["metric"]) == len(policy.metrics)
        # Wall-clock metrics must all be advisory in the shipped policy.
        for entry in policy.metrics:
            if "wall" in entry.metric.name or entry.metric.field == "speedup":
                assert entry.metric.advisory
