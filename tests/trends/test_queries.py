"""Dataframe-free selection, aggregation, and series extraction."""

from __future__ import annotations

import pytest

from repro.errors import TrendsError
from repro.trends import (
    TREND_METRICS,
    TrendMetric,
    aggregate,
    category_bars,
    metric_value,
    select,
    series,
    speedup_vs_jobs,
    work_by_churn,
)

from tests.trends.conftest import make_snapshot


class TestSelect:
    def test_subset_equality_match(self):
        rows = [
            {"dataset": "connect4", "jobs": 1, "v": 1},
            {"dataset": "connect4", "jobs": 4, "v": 2},
            {"dataset": "pumsb", "jobs": 4, "v": 3},
        ]
        assert [r["v"] for r in select(rows, {"jobs": 4})] == [2, 3]
        assert [r["v"] for r in select(rows, {"dataset": "connect4", "jobs": 4})] == [2]
        assert select(rows, {"missing_key": 1}) == []

    def test_no_clause_copies_everything(self):
        rows = [{"a": 1}]
        out = select(rows)
        assert out == rows
        out[0]["a"] = 2
        assert rows[0]["a"] == 1  # copies, not aliases


class TestAggregate:
    def test_all_aggregations(self):
        values = [4.0, 1.0, 3.0]
        assert aggregate(values, "mean") == pytest.approx(8 / 3)
        assert aggregate(values, "sum") == 8.0
        assert aggregate(values, "min") == 1.0
        assert aggregate(values, "max") == 4.0
        assert aggregate(values, "first") == 4.0

    def test_empty_is_none(self):
        assert aggregate([], "mean") is None

    def test_unknown_aggregation_rejected(self):
        with pytest.raises(TrendsError, match="unknown aggregation"):
            aggregate([1.0], "median")


class TestMetricValue:
    def test_filters_and_aggregates(self, snapshot):
        assert metric_value(snapshot, "total_work") == 1000.0
        assert metric_value(
            snapshot, "total_work", where={"scenario": "per-request"}
        ) is None

    def test_skips_non_numeric_and_non_finite(self):
        snap = make_snapshot(rows=[
            {"v": 1.0}, {"v": "text"}, {"v": True},
            {"v": float("nan")}, {"v": float("inf")}, {"v": 3.0},
        ])
        assert metric_value(snap, "v") == 2.0
        assert metric_value(snap, "v", agg="sum") == 4.0


class TestSeries:
    def test_points_carry_commit_identity(self):
        snaps = [
            make_snapshot(commit="a" * 40, timestamp="2026-01-01T00:00:00+00:00"),
            make_snapshot(commit="b" * 40, timestamp="2026-02-01T00:00:00+00:00"),
        ]
        points = series(snaps, "total_work")
        assert [p["commit_short"] for p in points] == ["a" * 10, "b" * 10]
        assert all(p["value"] == 1000.0 for p in points)

    def test_snapshots_missing_the_metric_are_skipped(self):
        snaps = [make_snapshot(), make_snapshot(rows=[{"other": 1}])]
        assert len(series(snaps, "total_work")) == 1


class TestTrendMetric:
    def test_validation(self):
        with pytest.raises(TrendsError, match="direction"):
            TrendMetric(name="x", bench="b", field="f", direction="sideways")
        with pytest.raises(TrendsError, match="aggregation"):
            TrendMetric(name="x", bench="b", field="f", agg="median")

    def test_value_and_trend(self, snapshot):
        metric = TrendMetric(
            name="work", bench="service_load", field="total_work",
            where={"scenario": "batched"},
        )
        assert metric.value(snapshot) == 1000.0
        assert metric.trend([snapshot])[0]["value"] == 1000.0

    def test_default_set_is_wall_clock_safe(self):
        # Every advisory default is a wall-clock-derived speedup; every
        # gating default is a counter or gauge.
        advisory = {m.field for m in TREND_METRICS if m.advisory}
        assert advisory == {"speedup"}
        assert all(
            m.field != "speedup" for m in TREND_METRICS if not m.advisory
        )


class TestChartExtractors:
    def test_speedup_vs_jobs(self):
        snap = make_snapshot(bench="parallel", rows=[
            {"dataset": "connect4", "task": "mine", "jobs": 1, "speedup": 1.0},
            {"dataset": "connect4", "task": "mine", "jobs": 4, "speedup": 2.5},
            {"dataset": "pumsb", "task": "mine", "jobs": 4, "speedup": 1.9},
        ])
        xs, curves = speedup_vs_jobs(snap)
        assert xs == [1.0, 4.0]
        assert curves["connect4 mine"] == [1.0, 2.5]
        assert curves["pumsb mine"] == [None, 1.9]  # gap where jobs=1 missing

    def test_work_by_churn(self):
        snap = make_snapshot(bench="incremental", rows=[
            {"dataset": "connect4", "churn": 0.01, "scratch_work": 100,
             "fup_work": 10, "recycle_work": 20},
            {"dataset": "connect4", "churn": 0.1, "scratch_work": 100,
             "fup_work": None, "recycle_work": 60},
        ])
        xs, curves = work_by_churn(snap)
        assert xs == [0.01, 0.1]
        assert curves["connect4 scratch"] == [100.0, 100.0]
        assert curves["connect4 fup"] == [10.0, None]  # null fup at high churn
        assert curves["connect4 recycle"] == [20.0, 60.0]

    def test_category_bars(self):
        snap = make_snapshot(bench="warehouse", rows=[
            {"dataset": "connect4", "representation": "full",
             "warm_hit_rate": 0.2},
            {"dataset": "connect4", "representation": "closed",
             "warm_hit_rate": 0.9},
            {"dataset": "connect4", "representation": "broken",
             "warm_hit_rate": "n/a"},
        ])
        labels, values = category_bars(
            snap, "warm_hit_rate", ("dataset", "representation")
        )
        assert labels == ["connect4 full", "connect4 closed"]
        assert values == [0.2, 0.9]
