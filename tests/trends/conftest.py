"""Shared snapshot builders for the trend-pipeline tests."""

from __future__ import annotations

import pytest

from repro.trends import Snapshot


def make_snapshot(
    bench: str = "service_load",
    commit: str = "a" * 40,
    timestamp: str = "2026-08-01T00:00:00+00:00",
    rows: list[dict] | None = None,
    **payload_extra,
) -> Snapshot:
    rows = rows if rows is not None else [
        {
            "dataset": "connect4",
            "scenario": "batched",
            "total_work": 1000,
            "computations": 4,
            "interactive_p99_work": 500.0,
            "wall_s": 1.25,
        }
    ]
    return Snapshot(
        bench=bench,
        commit=commit,
        timestamp=timestamp,
        seed=0,
        python="3.11.0",
        platform="test",
        payload={"seed": 0, "results": rows, **payload_extra},
    )


@pytest.fixture
def snapshot() -> Snapshot:
    return make_snapshot()
