"""Archive write/load ordering, the shared bench writer, legacy ingestion."""

from __future__ import annotations

import json
import subprocess

import pytest

from repro.errors import TrendsError
from repro.trends import (
    SnapshotArchive,
    ingest_legacy,
    write_benchmark_snapshot,
)

from tests.trends.conftest import make_snapshot


class TestSnapshotArchive:
    def test_write_then_load_round_trips(self, tmp_path):
        archive = SnapshotArchive(tmp_path / "hist")
        snap = make_snapshot()
        path = archive.write(snap)
        assert path == tmp_path / "hist" / snap.commit / "service_load.json"
        assert archive.load_all() == [snap]

    def test_load_all_orders_by_timestamp(self, tmp_path):
        archive = SnapshotArchive(tmp_path)
        late = make_snapshot(commit="b" * 40, timestamp="2026-06-01T00:00:00+00:00")
        early = make_snapshot(commit="c" * 40, timestamp="2026-01-01T00:00:00+00:00")
        archive.write(late)
        archive.write(early)
        assert [s.commit for s in archive.load_all()] == [early.commit, late.commit]

    def test_missing_root_loads_empty(self, tmp_path):
        assert SnapshotArchive(tmp_path / "absent").load_all() == []

    def test_unreadable_snapshot_raises(self, tmp_path):
        bad = tmp_path / "deadbeef" / "service_load.json"
        bad.parent.mkdir(parents=True)
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(TrendsError, match="unreadable snapshot"):
            SnapshotArchive(tmp_path).load_all()

    def test_by_bench_and_benches(self, tmp_path):
        archive = SnapshotArchive(tmp_path)
        archive.write(make_snapshot(bench="parallel", commit="d" * 40))
        archive.write(make_snapshot(bench="warehouse", commit="d" * 40))
        assert archive.benches() == ["parallel", "warehouse"]
        grouped = archive.by_bench()
        assert set(grouped) == {"parallel", "warehouse"}
        assert archive.load_bench("parallel") == grouped["parallel"]


class TestWriteBenchmarkSnapshot:
    def test_double_writes_legacy_and_archive(self, tmp_path):
        payload = {"seed": 3, "results": [{"dataset": "connect4", "work": 10}]}
        legacy_path, archive_path = write_benchmark_snapshot(
            "warehouse", payload, repo_root=tmp_path
        )
        assert legacy_path == tmp_path / "BENCH_warehouse.json"
        # Legacy body is the bare payload, byte-for-byte as before the
        # archive existed: two-space JSON plus trailing newline.
        assert legacy_path.read_text("utf-8") == json.dumps(payload, indent=2) + "\n"
        snap = SnapshotArchive(tmp_path / ".bench_history").load_all()[0]
        assert archive_path.is_file()
        assert snap.payload == payload
        assert snap.seed == 3
        assert snap.bench == "warehouse"
        assert snap.python != "unknown"
        assert snap.timestamp

    def test_legacy_false_skips_root_file(self, tmp_path):
        legacy_path, _ = write_benchmark_snapshot(
            "parallel", {"seed": 0, "results": []}, repo_root=tmp_path,
            legacy=False,
        )
        assert legacy_path is None
        assert not (tmp_path / "BENCH_parallel.json").exists()

    def test_unknown_bench_rejected(self, tmp_path):
        with pytest.raises(TrendsError, match="unknown bench"):
            write_benchmark_snapshot("mystery", {}, repo_root=tmp_path)

    def test_outside_git_commit_is_unknown(self, tmp_path):
        _, archive_path = write_benchmark_snapshot(
            "backends", {"seed": 0, "results": []}, repo_root=tmp_path
        )
        assert "unknown" in str(archive_path)


def _git(cwd, *args):
    subprocess.run(
        ["git", "-C", str(cwd), *args], check=True, capture_output=True,
        env={
            "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t",
            "GIT_AUTHOR_DATE": "2026-01-01T00:00:00+00:00",
            "GIT_COMMITTER_DATE": "2026-01-01T00:00:00+00:00",
            "PATH": "/usr/bin:/bin:/usr/local/bin",
            "HOME": str(cwd),
        },
    )


@pytest.fixture
def git_repo(tmp_path):
    _git(tmp_path, "init", "-q")
    legacy = tmp_path / "BENCH_backends.json"
    legacy.write_text(
        json.dumps({"seed": 0, "results": [{"dataset": "connect4", "speedup": 2.0}]})
    )
    _git(tmp_path, "add", "-A")
    _git(tmp_path, "commit", "-q", "-m", "first")
    legacy.write_text(
        json.dumps({"seed": 0, "results": [{"dataset": "connect4", "speedup": 3.0}]})
    )
    _git(tmp_path, "add", "-A")
    _git(tmp_path, "commit", "-q", "-m", "second")
    return tmp_path


class TestIngestLegacy:
    def test_ingests_head_version_by_default(self, git_repo):
        written = ingest_legacy(git_repo, benches=["backends"])
        assert len(written) == 1
        snap = written[0]
        assert snap.bench == "backends"
        assert snap.commit not in ("", "unknown")
        assert snap.rows()[0]["speedup"] == 3.0
        assert snap.python == "unknown"  # history never recorded it

    def test_git_history_replays_every_version(self, git_repo):
        written = ingest_legacy(git_repo, benches=["backends"], git_history=True)
        assert len(written) == 2
        assert len({s.commit for s in written}) == 2
        speedups = sorted(s.rows()[0]["speedup"] for s in written)
        assert speedups == [2.0, 3.0]

    def test_reingestion_is_idempotent(self, git_repo):
        ingest_legacy(git_repo, benches=["backends"], git_history=True)
        archive_root = git_repo / ".bench_history"
        before = {
            p.relative_to(archive_root): p.read_bytes()
            for p in archive_root.glob("*/*.json")
        }
        ingest_legacy(git_repo, benches=["backends"], git_history=True)
        after = {
            p.relative_to(archive_root): p.read_bytes()
            for p in archive_root.glob("*/*.json")
        }
        assert before == after

    def test_outside_git_falls_back_to_unknown(self, tmp_path):
        (tmp_path / "BENCH_parallel.json").write_text(
            json.dumps({"seed": 1, "results": []})
        )
        written = ingest_legacy(tmp_path, benches=["parallel"])
        assert len(written) == 1
        assert written[0].commit == "unknown"
        assert written[0].timestamp  # mtime fallback

    def test_missing_files_are_skipped(self, tmp_path):
        assert ingest_legacy(tmp_path) == []

    def test_unknown_bench_rejected(self, tmp_path):
        with pytest.raises(TrendsError, match="unknown bench"):
            ingest_legacy(tmp_path, benches=["mystery"])

    def test_non_json_legacy_raises(self, git_repo):
        (git_repo / "BENCH_parallel.json").write_text("{oops")
        with pytest.raises(TrendsError, match="not JSON"):
            ingest_legacy(git_repo, benches=["parallel"])
