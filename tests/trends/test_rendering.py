"""Markdown/HTML report rendering and the inline SVG charts."""

from __future__ import annotations

import pytest

from repro.errors import TrendsError
from repro.trends import (
    bar_chart,
    build_report_data,
    line_chart,
    render_html,
    render_markdown,
    write_report,
)

from tests.trends.conftest import make_snapshot


def _two_commit_history():
    return [
        make_snapshot(
            commit="a" * 40,
            timestamp="2026-01-01T00:00:00+00:00",
            rows=[{"dataset": "connect4", "scenario": "batched",
                   "total_work": 1000, "computations": 4,
                   "interactive_p99_work": 500.0}],
        ),
        make_snapshot(
            commit="b" * 40,
            timestamp="2026-02-01T00:00:00+00:00",
            rows=[{"dataset": "connect4", "scenario": "batched",
                   "total_work": 900, "computations": 4,
                   "interactive_p99_work": 450.0}],
        ),
        make_snapshot(
            bench="parallel",
            commit="b" * 40,
            timestamp="2026-02-01T00:01:00+00:00",
            rows=[{"dataset": "connect4", "task": "mine", "jobs": 1,
                   "speedup": 1.0},
                  {"dataset": "connect4", "task": "mine", "jobs": 4,
                   "speedup": 2.2}],
        ),
    ]


class TestBuildReportData:
    def test_empty_archive_rejected(self):
        with pytest.raises(TrendsError, match="no archived snapshots"):
            build_report_data([])

    def test_shape(self):
        data = build_report_data(_two_commit_history())
        assert data["snapshot_count"] == 3
        assert data["commits"] == ["a" * 10, "b" * 10]
        assert set(data["benches"]) == {"parallel", "service_load"}
        section = data["benches"]["service_load"]
        assert section["snapshot_count"] == 2
        assert section["latest"].commit == "b" * 40
        # Trend points span both commits of the service-load history.
        work_trend = next(
            e for e in data["trends"]
            if e["metric"].field == "total_work"
        )
        assert [p["value"] for p in work_trend["points"]] == [1000.0, 900.0]

    def test_headers_follow_first_row_then_extras(self):
        snap = make_snapshot(rows=[
            {"b_col": 1, "a_col": 2},
            {"b_col": 1, "z_extra": 3, "c_extra": 4},
        ])
        data = build_report_data([snap])
        headers = data["benches"]["service_load"]["headers"]
        assert headers == ["b_col", "a_col", "c_extra", "z_extra"]


class TestRenderers:
    def test_markdown_from_two_commits(self):
        md = render_markdown(build_report_data(_two_commit_history()))
        assert md.startswith("# Benchmark trends")
        assert "`aaaaaaaaaa`" in md and "`bbbbbbbbbb`" in md
        assert "## service_load" in md
        assert "## parallel" in md
        assert "| commit | timestamp | value |" in md
        assert "advisory" in md  # wall-clock series are labelled

    def test_html_is_self_contained_with_inline_svg(self):
        html = render_html(build_report_data(_two_commit_history()))
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html
        assert "</html>" in html
        # Self-contained: no external scripts, stylesheets or images.
        assert "<script" not in html
        assert "<link" not in html
        assert "<img" not in html

    def test_markdown_pipe_escaping(self):
        snap = make_snapshot(rows=[{"name": "a|b", "v": 1}])
        md = render_markdown(build_report_data([snap]))
        assert "a\\|b" in md

    def test_write_report(self, tmp_path):
        data = build_report_data(_two_commit_history())
        md_path, html_path = write_report(data, tmp_path / "report")
        assert md_path.read_text("utf-8").startswith("# Benchmark trends")
        assert "<svg" in html_path.read_text("utf-8")


class TestSvg:
    def test_line_chart_basics(self):
        svg = line_chart(
            ["c1", "c2", "c3"],
            {"work": [3.0, None, 1.0], "other": [1.0, 2.0, 3.0]},
            title="t", y_label="y",
        )
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "t</text>" in svg
        assert "work" in svg and "other" in svg
        # The None gap splits the first series into point markers without
        # a connecting polyline through the gap.
        assert "<circle" in svg

    def test_line_chart_empty(self):
        svg = line_chart([], {})
        assert svg.startswith("<svg") and svg.endswith("</svg>")

    def test_bar_chart_labels_and_values(self):
        svg = bar_chart(["a", "b"], [1.0, 4.0], title="bars", y_label="v")
        assert svg.count("<rect") >= 2
        assert "bars" in svg
        assert ">a<" in svg and ">b<" in svg

    def test_bar_chart_handles_constant_and_empty(self):
        assert "<svg" in bar_chart(["x"], [0.0])
        assert "<svg" in bar_chart([], [])

    def test_svg_escapes_labels(self):
        svg = bar_chart(["<&>"], [1.0], title='a "quoted" <title>')
        assert "<&>" not in svg.replace("&lt;&amp;&gt;", "")
        assert "&lt;title&gt;" in svg
