"""Tests for the naive RP-Mine algorithm (Figure 3) and group machinery."""

from __future__ import annotations

import pytest

from repro.core.compression import compress
from repro.core.groups import Group, to_grouped
from repro.core.naive import (
    count_group_supports,
    mine_rp,
    normalize_groups,
    project_groups,
)
from repro.errors import MiningError
from repro.metrics.counters import CostCounters
from repro.mining.apriori import mine_apriori

A, B, C, D, E, F, G, H, I = 1, 2, 3, 4, 5, 6, 7, 8, 9


@pytest.fixture
def paper_compressed(paper_db, paper_old_patterns):
    return compress(paper_db, paper_old_patterns, "mcp").compressed


class TestPaperExample3:
    """Example 3 mines the compressed database of Table 2 at xi_new = 2."""

    def test_full_result_matches_uncompressed_mining(
        self, paper_db, paper_compressed
    ):
        assert mine_rp(paper_compressed, 2) == mine_apriori(paper_db, 2)

    def test_d_extension_patterns(self, paper_compressed):
        """Step 1 of Example 3: the patterns containing d, all support 2:
        {dc, df, dg, dcf, dgc, dfg, dcfg}."""
        patterns = mine_rp(paper_compressed, 2)
        for items in ((D, C), (D, F), (D, G), (D, C, F), (D, G, C), (D, F, G), (D, C, F, G)):
            assert patterns.support(items) == 2, f"missing d-pattern {items}"

    def test_f_extension_patterns(self, paper_compressed):
        """Step 2: fg:3, fe:2, fc:3, fge:2, fgc:3, fec:2, fgec:2."""
        patterns = mine_rp(paper_compressed, 2)
        assert patterns.support({F, G}) == 3
        assert patterns.support({F, E}) == 2
        assert patterns.support({F, C}) == 3
        assert patterns.support({F, G, E}) == 2
        assert patterns.support({F, G, C}) == 3
        assert patterns.support({F, E, C}) == 2
        assert patterns.support({F, G, E, C}) == 2

    def test_a_extension_patterns(self, paper_compressed):
        """Step 4: ae:3, aec:2, ac:2."""
        patterns = mine_rp(paper_compressed, 2)
        assert patterns.support({A, E}) == 3
        assert patterns.support({A, E, C}) == 2
        assert patterns.support({A, C}) == 2

    def test_single_group_shortcut_fires_on_d_projection(self, paper_compressed):
        """In the d-projected database every frequent occurrence sits in
        group fgc — Lemma 3.1 must kick in at least once."""
        counters = CostCounters()
        mine_rp(paper_compressed, 2, counters)
        assert counters.single_group_enumerations >= 1

    def test_shortcut_disabled_gives_identical_result(self, paper_compressed):
        fast = mine_rp(paper_compressed, 2)
        slow = mine_rp(paper_compressed, 2, single_group_shortcut=False)
        assert fast == slow


class TestGroupHelpers:
    def test_uncompressed_database_roundtrip_mining(self, paper_db):
        """Mining an uncompressed database wrapped as residual groups
        equals plain mining — the degenerate recycling case."""
        groups = to_grouped(paper_db).mining_groups()
        assert mine_rp(groups, 2) == mine_apriori(paper_db, 2)

    def test_count_group_supports_uses_group_counts(self):
        stats = {"group_counts": 0, "tuple_scans": 0, "item_visits": 0}
        groups = [Group((1, 2), 5, ((3,),))]
        counts = count_group_supports(groups, stats)
        assert counts[1] == 5
        assert counts[2] == 5
        assert counts[3] == 1
        assert stats["group_counts"] == 1

    def test_normalize_drops_infrequent_and_merges(self):
        stats = {"group_counts": 0, "tuple_scans": 0, "item_visits": 0}
        rank = {1: 0, 2: 1}
        groups = [
            Group((1, 9), 2, ((2, 9),)),
            Group((1,), 3, ()),
        ]
        normalized = normalize_groups(groups, rank, stats)
        assert len(normalized) == 1
        merged = normalized[0]
        assert merged.pattern == (1,)
        assert merged.count == 5
        assert merged.tails == ((2,),)

    def test_project_on_pattern_item_keeps_whole_group(self):
        stats = dict.fromkeys(
            ("group_counts", "tuple_scans", "item_visits", "projections"), 0
        )
        rank = {1: 0, 2: 1, 3: 2}
        groups = [Group((1, 2), 4, ((3,), ()))]
        projected = project_groups(groups, 1, rank, stats)
        assert projected == [Group((2,), 4, ((3,),))]

    def test_project_on_tail_item_moves_matching_tails_only(self):
        stats = dict.fromkeys(
            ("group_counts", "tuple_scans", "item_visits", "projections"), 0
        )
        rank = {1: 0, 2: 1, 3: 2}
        groups = [Group((2,), 3, ((1, 3), (3,), (1,)))]
        projected = project_groups(groups, 1, rank, stats)
        # Tails (1,3) and (1,) contain item 1; both keep pattern {2}.
        assert len(projected) == 1
        group = projected[0]
        assert group.pattern == (2,)
        assert group.count == 2
        assert group.tails == ((3,),)

    def test_invalid_support_rejected(self, paper_compressed):
        with pytest.raises(MiningError):
            mine_rp(paper_compressed, 0)


class TestCountersAccounting:
    def test_group_counting_cheaper_than_tuple_counting(self, paper_db, paper_old_patterns):
        """The compressed run must touch fewer individual items (that is
        the whole point of Section 3.1)."""
        from repro.mining.hmine import mine_hmine

        baseline = CostCounters()
        mine_hmine(paper_db, 2, baseline)
        recycled = CostCounters()
        compressed = compress(paper_db, paper_old_patterns, "mcp").compressed
        mine_rp(compressed, 2, recycled)
        assert recycled.item_visits < baseline.item_visits
        assert recycled.group_counts > 0
