"""Tests for the one-call recycle_mine API."""

from __future__ import annotations

import pytest

from repro.core.recycle import (
    RECYCLING_MINERS,
    get_recycling_miner,
    recycle_mine,
    recycle_mine_detailed,
)
from repro.errors import RecycleError
from repro.metrics.counters import CostCounters
from repro.mining.apriori import mine_apriori
from repro.mining.patterns import PatternSet


class TestRecycleMine:
    def test_end_to_end(self, paper_db, paper_old_patterns):
        result = recycle_mine(paper_db, paper_old_patterns, 2)
        assert result == mine_apriori(paper_db, 2)

    @pytest.mark.parametrize("algorithm", sorted(RECYCLING_MINERS))
    def test_every_algorithm(self, paper_db, paper_old_patterns, algorithm):
        result = recycle_mine(paper_db, paper_old_patterns, 2, algorithm=algorithm)
        assert result == mine_apriori(paper_db, 2)

    def test_detailed_outcome(self, paper_db, paper_old_patterns):
        outcome = recycle_mine_detailed(paper_db, paper_old_patterns, 2)
        assert outcome.patterns == mine_apriori(paper_db, 2)
        assert outcome.compression.strategy == "mcp"
        assert 0 < outcome.compression.ratio <= 1

    def test_counters_cover_both_phases(self, paper_db, paper_old_patterns):
        counters = CostCounters()
        recycle_mine(paper_db, paper_old_patterns, 2, counters=counters)
        assert counters.containment_checks > 0  # compression phase
        assert counters.patterns_emitted > 0    # mining phase

    def test_empty_patterns_rejected(self, paper_db):
        with pytest.raises(RecycleError, match="no patterns to recycle"):
            recycle_mine(paper_db, PatternSet(), 2)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(RecycleError, match="unknown recycling algorithm"):
            get_recycling_miner("quantum")

    def test_strategy_object_accepted(self, paper_db, paper_old_patterns):
        from repro.core.utility import MLP

        result = recycle_mine(paper_db, paper_old_patterns, 2, strategy=MLP)
        assert result == mine_apriori(paper_db, 2)
