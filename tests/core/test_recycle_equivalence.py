"""THE load-bearing invariant (DESIGN.md §5):

    every recycling miner returns exactly the same (pattern, support)
    set as mining the uncompressed database.

Exercised over randomized databases, hypothesis-generated databases, and
adversarial corner cases, for all four recycling miners under both paper
strategies and both ablation strategies.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compression import compress
from repro.core.naive import mine_rp
from repro.core.recycle import RECYCLING_MINERS
from repro.core.recycle_fptree import mine_recycle_fptree
from repro.core.recycle_hmine import mine_recycle_hmine
from repro.core.recycle_treeprojection import mine_recycle_treeprojection
from repro.data.synthetic import QuestParams, quest_database, random_database
from repro.data.transactions import TransactionDatabase
from repro.mining.apriori import mine_apriori
from repro.mining.bruteforce import mine_bruteforce

ALL_RECYCLERS = sorted(RECYCLING_MINERS)


def assert_equivalent(db, old_patterns, min_support, strategy="mcp"):
    reference = mine_apriori(db, min_support)
    compressed = compress(db, old_patterns, strategy).compressed
    for name, miner in RECYCLING_MINERS.items():
        result = miner(compressed, min_support)
        assert result == reference, (
            f"{name}/{strategy}: {len(result)} patterns vs "
            f"{len(reference)} expected"
        )


@pytest.mark.parametrize("strategy", ["mcp", "mlp"])
@pytest.mark.parametrize("seed", range(8))
def test_randomized_databases(seed, strategy):
    db = random_database(n_transactions=30, n_items=10, max_transaction_length=8, seed=seed)
    old_patterns = mine_apriori(db, 4)
    if len(old_patterns) == 0:
        pytest.skip("no patterns to recycle at this seed")
    assert_equivalent(db, old_patterns, 2, strategy)


@pytest.mark.parametrize("strategy", ["mcp", "mlp", "arrival", "random"])
def test_quest_database_all_strategies(strategy):
    db = quest_database(
        QuestParams(n_transactions=120, n_items=30, avg_transaction_length=6), seed=11
    )
    old_patterns = mine_apriori(db, 18)
    assert len(old_patterns) > 0
    assert_equivalent(db, old_patterns, 8, strategy)


@given(
    transactions=st.lists(
        st.lists(st.integers(0, 7), min_size=1, max_size=6),
        min_size=1,
        max_size=20,
    ),
    xi_old=st.integers(2, 5),
    xi_new=st.integers(1, 3),
    strategy=st.sampled_from(["mcp", "mlp"]),
)
@settings(max_examples=80, deadline=None)
def test_recycling_equivalence_property(transactions, xi_old, xi_new, strategy):
    db = TransactionDatabase(transactions)
    old_patterns = mine_bruteforce(db, max(xi_old, xi_new))
    if len(old_patterns) == 0:
        return
    reference = mine_bruteforce(db, xi_new)
    compressed = compress(db, old_patterns, strategy).compressed
    for name, miner in RECYCLING_MINERS.items():
        assert miner(compressed, xi_new) == reference, f"{name} diverged"


class TestCornerCases:
    def test_whole_database_is_one_group(self):
        """Every tuple identical -> one group, empty tails, pure Lemma 3.1."""
        db = TransactionDatabase([[1, 2, 3]] * 6)
        old_patterns = mine_apriori(db, 6)
        assert_equivalent(db, old_patterns, 3)

    def test_pattern_equals_whole_tuple(self):
        """Tails can be completely empty after compression."""
        db = TransactionDatabase([[1, 2], [1, 2], [1, 2, 3]])
        old_patterns = mine_apriori(db, 2)
        assert_equivalent(db, old_patterns, 1)

    def test_xi_new_equal_to_xi_old(self):
        """Relaxation by zero: recycling must still be exact."""
        db = random_database(25, 8, 6, seed=3)
        old_patterns = mine_apriori(db, 3)
        if len(old_patterns) == 0:
            pytest.skip("no patterns at seed")
        assert_equivalent(db, old_patterns, 3)

    def test_xi_new_of_one(self):
        """Every item becomes frequent — the hardest relaxation."""
        db = random_database(12, 6, 5, seed=9)
        old_patterns = mine_apriori(db, 3)
        if len(old_patterns) == 0:
            pytest.skip("no patterns at seed")
        assert_equivalent(db, old_patterns, 1)

    def test_stale_supports_do_not_break_recycling(self):
        """Compression utilities may be computed from wrong supports
        (e.g. patterns from a different database version) — results must
        still be exact because mining recounts everything."""
        db = random_database(30, 8, 6, seed=5)
        from repro.mining.patterns import PatternSet

        stale = PatternSet()
        for items, support in mine_apriori(db, 4).items():
            stale.add(items, support + 17)  # deliberately wrong supports
        if len(stale) == 0:
            pytest.skip("no patterns at seed")
        reference = mine_apriori(db, 2)
        compressed = compress(db, stale, "mcp").compressed
        for name, miner in RECYCLING_MINERS.items():
            assert miner(compressed, 2) == reference, f"{name} diverged"

    def test_patterns_absent_from_database(self):
        """Recycled patterns that no longer occur anywhere must be inert."""
        from repro.mining.patterns import PatternSet

        db = TransactionDatabase([[1, 2], [2, 3], [1, 3]])
        ghost = PatternSet({frozenset({7, 8, 9}): 3, frozenset({1, 2}): 1})
        reference = mine_apriori(db, 2)
        compressed = compress(db, ghost, "mcp").compressed
        assert mine_rp(compressed, 2) == reference
        assert mine_recycle_hmine(compressed, 2) == reference
        assert mine_recycle_fptree(compressed, 2) == reference
        assert mine_recycle_treeprojection(compressed, 2) == reference

    def test_nothing_frequent_at_xi_new(self):
        db = TransactionDatabase([[1, 2], [3, 4]])
        from repro.mining.patterns import PatternSet

        patterns = PatternSet({frozenset({1, 2}): 1})
        compressed = compress(db, patterns, "mcp").compressed
        for miner in RECYCLING_MINERS.values():
            assert len(miner(compressed, 5)) == 0
