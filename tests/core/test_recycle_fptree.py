"""Unit tests specific to Recycle-FP (group heads as FP-tree tokens, §4.2)."""

from __future__ import annotations

import pytest

from repro.core.compression import compress
from repro.core.groups import Group
from repro.core.recycle_fptree import mine_recycle_fptree
from repro.errors import MiningError
from repro.metrics.counters import CostCounters
from repro.mining.apriori import mine_apriori


class TestAgainstPaperExample:
    def test_matches_uncompressed_mining(self, paper_db, paper_old_patterns):
        compressed = compress(paper_db, paper_old_patterns, "mcp").compressed
        assert mine_recycle_fptree(compressed, 2) == mine_apriori(paper_db, 2)

    def test_group_counts_charged(self, paper_db, paper_old_patterns):
        compressed = compress(paper_db, paper_old_patterns, "mcp").compressed
        counters = CostCounters()
        mine_recycle_fptree(compressed, 2, counters)
        assert counters.group_counts > 0


class TestTokenMechanics:
    def test_pure_token_tree_enumerates(self):
        """All tuples identical -> one token node -> direct enumeration."""
        groups = [Group((1, 2, 3), 5, ())]
        counters = CostCounters()
        patterns = mine_recycle_fptree(groups, 3, counters)
        assert len(patterns) == 7
        assert all(s == 5 for _p, s in patterns.items())
        assert counters.single_group_enumerations >= 1

    def test_token_plus_chain_single_branch(self):
        """A token with one shared tail chain hits the generalized
        single-path shortcut: subsets of implied x chain items."""
        groups = [Group((1, 2), 4, ((3,), (3,), (3,)))]
        patterns = mine_recycle_fptree(groups, 3, CostCounters())
        assert patterns.support({1}) == 4
        assert patterns.support({1, 2}) == 4
        assert patterns.support({3}) == 3
        assert patterns.support({1, 2, 3}) == 3

    def test_short_group_patterns_folded_into_path(self):
        """Length-1 group heads are inlined (no token), results identical."""
        groups = [Group((1,), 3, ((2,), (2,), ()))]
        patterns = mine_recycle_fptree(groups, 2)
        assert patterns.support({1}) == 3
        assert patterns.support({1, 2}) == 2

    def test_item_frequent_only_via_tokens(self):
        """An item that never appears as an explicit node must still be
        counted and extended through the token registry."""
        groups = [
            Group((1, 2), 3, ()),
            Group((1, 3), 3, ()),
        ]
        patterns = mine_recycle_fptree(groups, 3)
        assert patterns.support({1}) == 6
        assert patterns.support({1, 2}) == 3
        assert patterns.support({1, 3}) == 3
        assert {2, 3} not in patterns

    def test_mixed_tokens_and_residual_tuples(self):
        groups = [
            Group((1, 2), 2, ((4,),)),
            Group((), 3, ((1, 4), (2, 4), (4,))),
        ]
        patterns = mine_recycle_fptree(groups, 3)
        assert patterns.support({4}) == 4
        assert patterns.support({1}) == 3

    def test_invalid_support_rejected(self):
        with pytest.raises(MiningError):
            mine_recycle_fptree([], 0)

    def test_empty_groups(self):
        assert len(mine_recycle_fptree([], 1)) == 0
