"""Tests for recycling across database change (incremental mining)."""

from __future__ import annotations

import pytest

from repro.core.incremental import apply_deletions, apply_insertions, incremental_mine
from repro.data.synthetic import quest_database, QuestParams
from repro.errors import RecycleError
from repro.mining.apriori import mine_apriori
from repro.mining.hmine import mine_hmine
from repro.mining.patterns import PatternSet


@pytest.fixture
def db():
    return quest_database(
        QuestParams(n_transactions=120, n_items=30, avg_transaction_length=6), seed=4
    )


class TestGrownDatabase:
    def test_insertions_recycled_exactly(self, db):
        old_patterns = mine_hmine(db, 12)
        grown = apply_insertions(db, [[1, 2, 3], [2, 3, 4], [1, 2, 3, 4]])
        result = incremental_mine(grown, old_patterns, 10)
        assert result == mine_hmine(grown, 10)

    def test_large_growth_with_distribution_shift(self, db):
        """Incremental techniques struggle when the delta is drastic;
        recycling must stay exact regardless."""
        old_patterns = mine_hmine(db, 12)
        shifted = quest_database(
            QuestParams(n_transactions=120, n_items=30, avg_transaction_length=6),
            seed=99,
        )
        grown = apply_insertions(db, shifted.transactions)
        result = incremental_mine(grown, old_patterns, 15)
        assert result == mine_hmine(grown, 15)


class TestShrunkDatabase:
    def test_deletions_recycled_exactly(self, db):
        """Existing incremental techniques 'become awkward when the data
        set reduces' (Section 6) — recycling does not care."""
        old_patterns = mine_hmine(db, 12)
        shrunk = apply_deletions(db, tids=list(range(0, 60)))
        result = incremental_mine(shrunk, old_patterns, 6)
        assert result == mine_hmine(shrunk, 6)

    def test_unknown_tid_rejected(self, db):
        with pytest.raises(RecycleError, match="unknown tids"):
            apply_deletions(db, tids=[10_000])

    def test_deletion_keeps_remaining_tids(self, db):
        shrunk = apply_deletions(db, tids=[0, 2])
        assert 0 not in shrunk.tids
        assert 1 in shrunk.tids
        assert len(shrunk) == len(db) - 2


class TestBothChanged:
    def test_constraint_and_data_change_together(self, db):
        """Section 2 extension case (2): constraints and database both
        change between iterations."""
        old_patterns = mine_hmine(db, 15)
        changed = apply_insertions(
            apply_deletions(db, tids=list(range(20))), [[5, 6, 7]] * 10
        )
        result = incremental_mine(changed, old_patterns, 4)
        assert result == mine_apriori(changed, 4)

    def test_empty_old_patterns_rejected(self, db):
        with pytest.raises(RecycleError, match="no old patterns"):
            incremental_mine(db, PatternSet(), 5)

    @pytest.mark.parametrize("algorithm", ["naive", "hmine", "fpgrowth", "treeprojection", "eclat"])
    def test_all_algorithms(self, db, algorithm):
        old_patterns = mine_hmine(db, 12)
        grown = apply_insertions(db, [[1, 2, 3]] * 5)
        result = incremental_mine(grown, old_patterns, 8, algorithm=algorithm)
        assert result == mine_hmine(grown, 8)
