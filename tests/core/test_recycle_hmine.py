"""Unit tests specific to Recycle-HM / RP-Struct (Section 4.1)."""

from __future__ import annotations

import pytest

from repro.core.compression import compress
from repro.core.groups import Group
from repro.core.recycle_hmine import cgroups_to_records, mine_recycle_hmine
from repro.errors import MiningError
from repro.metrics.counters import CostCounters
from repro.mining.apriori import mine_apriori

A, B, C, D, E, F, G, H, I = 1, 2, 3, 4, 5, 6, 7, 8, 9


class TestPaperExample5:
    """Example 5 walks Recycle-HM over the RP-Struct of Figure 4."""

    @pytest.fixture
    def compressed(self, paper_db, paper_old_patterns):
        return compress(paper_db, paper_old_patterns, "mcp").compressed

    def test_matches_uncompressed_mining(self, paper_db, compressed):
        assert mine_recycle_hmine(compressed, 2) == mine_apriori(paper_db, 2)

    def test_d_projection_uses_single_group_enumeration(self, compressed):
        """Example 5 step 1: d's frequent items {f,g,c} all live in group
        fgc, so the combinations are enumerated without recursion."""
        counters = CostCounters()
        mine_recycle_hmine(compressed, 2, counters)
        assert counters.single_group_enumerations >= 1

    def test_group_links_save_item_visits(self, paper_db, compressed):
        from repro.mining.hmine import mine_hmine

        baseline = CostCounters()
        mine_hmine(paper_db, 2, baseline)
        recycled = CostCounters()
        mine_recycle_hmine(compressed, 2, recycled)
        assert recycled.group_counts > 0
        assert recycled.item_visits < baseline.item_visits


class TestRecordConstruction:
    def test_infrequent_items_dropped_from_records(self):
        grank = {1: 0, 2: 1}
        groups = [Group((1, 9), 2, ((2, 8), (8,)))]
        records = cgroups_to_records(groups, grank)
        assert len(records) == 1
        record = records[0]
        assert record.pattern == (1,)
        assert record.count == 2
        assert record.tails == [((2,), 0)]

    def test_fully_infrequent_group_dropped(self):
        grank = {5: 0}
        groups = [Group((9,), 3, ((8,),))]
        assert cgroups_to_records(groups, grank) == []

    def test_patterns_sorted_by_rank_not_id(self):
        grank = {3: 0, 1: 1}
        groups = [Group((1, 3), 2, ())]
        records = cgroups_to_records(groups, grank)
        assert records[0].pattern == (3, 1)


class TestEdgeCases:
    def test_invalid_support_rejected(self, paper_db, paper_old_patterns):
        compressed = compress(paper_db, paper_old_patterns, "mcp").compressed
        with pytest.raises(MiningError):
            mine_recycle_hmine(compressed, 0)

    def test_accepts_raw_group_list(self, paper_db, paper_old_patterns):
        from repro.core.groups import to_grouped

        compressed = compress(paper_db, paper_old_patterns, "mcp").compressed
        groups = list(to_grouped(compressed).mining_groups())
        assert mine_recycle_hmine(groups, 2) == mine_recycle_hmine(compressed, 2)

    def test_tail_items_interleaved_with_pattern_items(self):
        """Tails holding items that rank between pattern items exercise
        the item-link / group-link re-threading rules of Fill-RPHeader."""
        # Craft supports so rank order interleaves pattern {10, 30} with
        # tail items 20 and 40: tuples contain 10<20<30<40 by rank.
        from repro.data.transactions import TransactionDatabase

        db = TransactionDatabase(
            [
                [10, 20, 30, 40],
                [10, 20, 30],
                [10, 30, 40],
                [10, 30],
                [20, 40],
                [40],
            ]
        )
        old_patterns = mine_apriori(db, 4)  # includes {10, 30}: support 4
        assert {10, 30} in old_patterns
        compressed = compress(db, old_patterns, "mcp").compressed
        assert mine_recycle_hmine(compressed, 2) == mine_apriori(db, 2)
