"""Property tests for the session's path-selection invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.session import MiningSession
from repro.data.synthetic import random_database
from repro.mining.hmine import mine_hmine

_DB = random_database(n_transactions=60, n_items=12, max_transaction_length=8, seed=7)


@given(
    supports=st.lists(st.integers(min_value=2, max_value=30), min_size=1, max_size=6),
    algorithm=st.sampled_from(["naive", "hmine", "fpgrowth", "treeprojection", "eclat"]),
)
@settings(max_examples=25, deadline=None)
def test_any_support_walk_is_exact(supports, algorithm):
    """Whatever order the user wanders through thresholds, every answer
    equals a from-scratch mine at that threshold."""
    session = MiningSession(_DB, algorithm=algorithm)
    for support in supports:
        assert session.mine(support) == mine_hmine(_DB, support)


@given(supports=st.lists(st.integers(min_value=2, max_value=30), min_size=2, max_size=6))
@settings(max_examples=25, deadline=None)
def test_path_choice_matches_support_direction(supports):
    """After the initial run: raising (or keeping) the support filters,
    lowering it recycles."""
    session = MiningSession(_DB)
    session.mine(supports[0])
    previous = supports[0]
    for support in supports[1:]:
        had_feedstock = len(session.exported_patterns()) > 0
        session.mine(support)
        if support >= previous:
            expected = "filter"
        elif had_feedstock:
            expected = "recycle"
        else:
            expected = "initial"  # nothing to recycle -> scratch fallback
        assert session.last_report.path == expected, (
            f"{previous} -> {support} took {session.last_report.path}"
        )
        previous = support


@given(supports=st.lists(st.integers(min_value=2, max_value=30), min_size=1, max_size=5))
@settings(max_examples=15, deadline=None)
def test_history_is_append_only_and_indexed(supports):
    session = MiningSession(_DB)
    for support in supports:
        session.mine(support)
    assert [r.index for r in session.history] == list(range(len(supports)))
    assert session.history[0].path == "initial"
