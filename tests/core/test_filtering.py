"""Tests for the tightened-constraints filter path (Section 2)."""

from __future__ import annotations

import pytest

from repro.constraints.base import ConstraintContext
from repro.constraints.engine import ConstraintSet
from repro.constraints.support import MaxLength, MinSupport
from repro.core.filtering import can_filter, filter_min_support, filter_tightened
from repro.errors import RecycleError
from repro.mining.apriori import mine_apriori


class TestCanFilter:
    def test_tightened_and_same(self):
        old = ConstraintSet.min_support(3)
        assert can_filter(old, ConstraintSet.min_support(5))
        assert can_filter(old, ConstraintSet.min_support(3))

    def test_relaxed_cannot_filter(self):
        old = ConstraintSet.min_support(3)
        assert not can_filter(old, ConstraintSet.min_support(2))

    def test_mixed_cannot_filter(self):
        old = ConstraintSet.of(MinSupport(3), MaxLength(3))
        new = ConstraintSet.of(MinSupport(2), MaxLength(2))
        assert not can_filter(old, new)


class TestFilterTightened:
    def test_equals_remining(self, paper_db, paper_old_patterns):
        context = ConstraintContext(db_size=len(paper_db))
        old = ConstraintSet.min_support(3)
        new = ConstraintSet.min_support(4)
        filtered = filter_tightened(paper_old_patterns, old, new, context)
        assert filtered == mine_apriori(paper_db, 4)

    def test_non_support_constraints_apply(self, paper_db, paper_old_patterns):
        context = ConstraintContext(db_size=len(paper_db))
        old = ConstraintSet.min_support(3)
        new = ConstraintSet.of(MinSupport(3), MaxLength(1))
        filtered = filter_tightened(paper_old_patterns, old, new, context)
        assert len(filtered) == 5
        assert all(len(p) == 1 for p in filtered)

    def test_relaxation_raises(self, paper_old_patterns):
        old = ConstraintSet.min_support(3)
        new = ConstraintSet.min_support(2)
        with pytest.raises(RecycleError, match="not a tightening"):
            filter_tightened(paper_old_patterns, old, new, ConstraintContext(db_size=5))


class TestFilterMinSupport:
    def test_absolute(self, paper_db, paper_old_patterns):
        assert filter_min_support(paper_old_patterns, len(paper_db), 4) == mine_apriori(
            paper_db, 4
        )

    def test_relative(self, paper_db, paper_old_patterns):
        # 0.8 of 5 tuples -> absolute 4.
        assert filter_min_support(paper_old_patterns, len(paper_db), 0.8) == mine_apriori(
            paper_db, 4
        )
