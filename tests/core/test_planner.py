"""Tests for the shared filter/recycle/mine planner."""

from __future__ import annotations

import pytest

from repro.core.planner import (
    PATH_FILTER,
    PATH_MINE,
    PATH_RECYCLE,
    execute_plan,
    plan_support_path,
    resolve_baseline_algorithm,
    resolve_recycling_algorithm,
)
from repro.data.synthetic import QuestParams, quest_database
from repro.mining.hmine import mine_hmine
from repro.mining.patterns import PatternSet


@pytest.fixture
def db():
    return quest_database(
        QuestParams(n_transactions=120, n_items=30, avg_transaction_length=5), seed=4
    )


class TestPlanning:
    def test_no_feedstock_mines(self):
        assert plan_support_path(10, None, None).path == PATH_MINE

    def test_equal_or_higher_support_filters(self, db):
        feedstock = mine_hmine(db, 8)
        assert plan_support_path(8, feedstock, 8).path == PATH_FILTER
        assert plan_support_path(12, feedstock, 8).path == PATH_FILTER

    def test_lower_support_recycles(self, db):
        feedstock = mine_hmine(db, 8)
        plan = plan_support_path(5, feedstock, 8)
        assert plan.path == PATH_RECYCLE
        assert plan.feedstock is feedstock
        assert plan.feedstock_support == 8

    def test_empty_feedstock_mines(self):
        assert plan_support_path(5, PatternSet(), 200).path == PATH_MINE

    def test_empty_feedstock_at_exact_support_filters_to_empty(self, db):
        """Feedstock mined at exactly the requested support, but empty:
        the equal-support rule wins, the plan filters, and the (correct)
        answer is the empty set — no remining."""
        barren_support = len(db) + 1
        feedstock = mine_hmine(db, barren_support)
        assert len(feedstock) == 0
        plan = plan_support_path(barren_support, feedstock, barren_support)
        assert plan.path == PATH_FILTER
        result = execute_plan(plan, db, barren_support)
        assert len(result) == 0
        assert result == mine_hmine(db, barren_support)


class TestExecution:
    @pytest.mark.parametrize("new_support", [4, 8, 15])
    def test_every_path_is_exact(self, db, new_support):
        feedstock = mine_hmine(db, 8)
        plan = plan_support_path(new_support, feedstock, 8)
        result = execute_plan(plan, db, new_support)
        assert result == mine_hmine(db, new_support)

    def test_mine_path_honors_algorithm(self, db):
        plan = plan_support_path(6, None, None)
        result = execute_plan(plan, db, 6, algorithm="eclat")
        assert result == mine_hmine(db, 6)


class TestAlgorithmResolution:
    def test_naive_initializes_with_hmine(self):
        assert resolve_baseline_algorithm("naive") == "hmine"
        assert resolve_baseline_algorithm("fpgrowth") == "fpgrowth"

    def test_exact_recycling_match(self):
        assert resolve_recycling_algorithm("hmine") == "hmine"

    def test_backend_suffix_falls_back_to_base(self):
        assert resolve_recycling_algorithm("eclat-bitset") == "eclat"

    def test_unknown_falls_back_to_hmine(self):
        assert resolve_recycling_algorithm("apriori") == "hmine"
