"""Unit tests for the MCP / MLP utility functions (Section 3.2)."""

from __future__ import annotations

import pytest

from repro.core.utility import (
    ARRIVAL,
    MCP,
    MLP,
    RANDOM,
    get_strategy,
    mcp_utility,
    mlp_utility,
)
from repro.errors import CompressionError
from repro.mining.patterns import PatternSet


class TestUtilityValues:
    def test_mcp_paper_example(self):
        """Example 2: U(fgc:3) = (2^3 - 1) * 3 = 21."""
        assert mcp_utility(frozenset({3, 6, 7}), 3, 5) == 21.0

    def test_mcp_pairs(self):
        """Example 2: fg, gc, ae, ec at support 3 all score (2^2-1)*3 = 9."""
        assert mcp_utility(frozenset({6, 7}), 3, 5) == 9.0

    def test_mlp_length_dominates(self):
        """|X|*|DB| + X.C: a longer pattern always beats a shorter one,
        because support can never exceed |DB|."""
        short_max_support = mlp_utility(frozenset({1}), 100, 100)
        long_min_support = mlp_utility(frozenset({1, 2}), 1, 100)
        assert long_min_support > short_max_support

    def test_mlp_support_breaks_ties(self):
        a = mlp_utility(frozenset({1, 2}), 5, 100)
        b = mlp_utility(frozenset({3, 4}), 9, 100)
        assert b > a


class TestRanking:
    def test_mcp_ranking_matches_example2(self, paper_old_patterns):
        """Example 2's order: fgc first, then the support-3 pairs, then
        the singletons e and c (utility 4), then the rest."""
        ranked = MCP.rank_patterns(paper_old_patterns, db_size=5)
        assert ranked[0][0] == frozenset({3, 6, 7})  # fgc
        utilities = [mcp_utility(p, s, 5) for p, s in ranked]
        assert utilities == sorted(utilities, reverse=True)

    def test_mlp_puts_longest_first(self, paper_old_patterns):
        ranked = MLP.rank_patterns(paper_old_patterns, db_size=5)
        lengths = [len(p) for p, _s in ranked]
        assert lengths[0] == max(lengths)

    def test_ranking_is_deterministic(self, paper_old_patterns):
        first = MCP.rank_patterns(paper_old_patterns, db_size=5)
        second = MCP.rank_patterns(paper_old_patterns, db_size=5)
        assert first == second

    def test_arrival_preserves_insertion_order(self):
        patterns = PatternSet()
        patterns.add([5], 1)
        patterns.add([1, 2], 9)
        ranked = ARRIVAL.rank_patterns(patterns, db_size=10)
        assert [p for p, _s in ranked] == [frozenset({5}), frozenset({1, 2})]

    def test_random_is_seeded(self, paper_old_patterns):
        a = RANDOM.rank_patterns(paper_old_patterns, db_size=5, seed=42)
        b = RANDOM.rank_patterns(paper_old_patterns, db_size=5, seed=42)
        c = RANDOM.rank_patterns(paper_old_patterns, db_size=5, seed=43)
        assert a == b
        assert a != c


class TestRegistry:
    def test_lookup(self):
        assert get_strategy("mcp") is MCP
        assert get_strategy("mlp") is MLP

    def test_unknown_rejected(self):
        with pytest.raises(CompressionError, match="unknown compression strategy"):
            get_strategy("zip")
