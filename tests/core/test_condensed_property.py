"""Property tests for the condensed representations (PR satellite).

The load-bearing invariants, over hypothesis-generated databases:

1. **Losslessness** — ``expand(condense(S)) == S`` for every
   representation, and support queries answer exactly.
2. **Feedstock equivalence** — every recycling miner, under every
   strategy and backend, produces bit-identical results whether its
   feedstock is the exact frequent set or its closed/NDI condensation.
3. **Condensed miners** — the registry's condensed miners (python and
   bitset backends) equal condensing a from-scratch full mine.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.recycle import recycle_mine
from repro.data.patterns import CondensedPatternSet
from repro.data.transactions import TransactionDatabase
from repro.mining.bruteforce import mine_bruteforce
from repro.mining.registry import get_miner, iter_miners

RECYCLING_NAMES = sorted(spec.name for spec in iter_miners("recycling"))
CONDENSED_NAMES = sorted(spec.name for spec in iter_miners("condensed"))

small_databases = st.lists(
    st.lists(st.integers(0, 7), min_size=1, max_size=6),
    min_size=1,
    max_size=16,
)


@given(
    transactions=small_databases,
    xi=st.integers(1, 5),
    representation=st.sampled_from(["full", "closed", "ndi"]),
)
@settings(max_examples=60, deadline=None)
def test_expand_of_condense_is_identity(transactions, xi, representation):
    db = TransactionDatabase(transactions)
    full = mine_bruteforce(db, xi)
    condensed = CondensedPatternSet.condense(
        full, xi, representation, n_transactions=len(db)
    )
    assert condensed.expand() == full
    for items, support in full.items():
        assert condensed.support_of(items) == support


@given(
    transactions=small_databases,
    xi_old=st.integers(2, 5),
    xi_new=st.integers(1, 3),
    strategy=st.sampled_from(["mcp", "mlp"]),
    backend=st.sampled_from(["bitset", "python"]),
    representation=st.sampled_from(["closed", "ndi"]),
)
@settings(max_examples=60, deadline=None)
def test_condensed_feedstock_is_bit_identical_to_exact(
    transactions, xi_old, xi_new, strategy, backend, representation
):
    db = TransactionDatabase(transactions)
    old_patterns = mine_bruteforce(db, max(xi_old, xi_new))
    if len(old_patterns) == 0:
        return
    condensed = CondensedPatternSet.condense(
        old_patterns, max(xi_old, xi_new), representation, n_transactions=len(db)
    )
    reference = mine_bruteforce(db, xi_new)
    for name in RECYCLING_NAMES:
        exact = recycle_mine(
            db, old_patterns, xi_new,
            algorithm=name, strategy=strategy, backend=backend,
        )
        from_condensed = recycle_mine(
            db, condensed, xi_new,
            algorithm=name, strategy=strategy, backend=backend,
        )
        assert exact == reference, f"{name}/{strategy}/{backend} diverged"
        assert from_condensed == reference, (
            f"{name}/{strategy}/{backend}/{representation} diverged on "
            "condensed feedstock"
        )


@given(transactions=small_databases, xi=st.integers(1, 5))
@settings(max_examples=60, deadline=None)
def test_condensed_miners_match_condensing_a_full_mine(transactions, xi):
    db = TransactionDatabase(transactions)
    full = mine_bruteforce(db, xi)
    for name in CONDENSED_NAMES:
        spec = get_miner(name, kind="condensed")
        mined = spec.fn(db, xi, None)
        expected = CondensedPatternSet.condense(
            full, xi, mined.representation, n_transactions=len(db)
        )
        assert mined == expected, f"{name} diverged from condense(full)"
        assert mined.expand() == full, f"{name} expansion diverged"
