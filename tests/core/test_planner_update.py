"""Unit tests for the planner's update path and its FUP gate."""

from __future__ import annotations

import pytest

from repro.core.fup import fup_applicable, fup_update_delta
from repro.core.planner import (
    PATH_FILTER,
    PATH_MINE,
    PATH_UPDATE,
    UPDATE_CHURN_CUTOFF,
    UPDATE_FUP,
    UPDATE_RECYCLE,
    execute_plan,
    plan_update_path,
)
from repro.data.transactions import TransactionDatabase
from repro.data.versioned import DatabaseDelta
from repro.errors import MiningError
from repro.metrics.counters import CostCounters
from repro.mining.hmine import mine_hmine
from repro.resilience import (
    REASON_FUP_INSERT_ONLY,
    REASON_UPDATE_FAILED,
    UPDATE_PATCH,
    DegradationReport,
    FaultInjector,
    ResilienceConfig,
)


@pytest.fixture
def db():
    return TransactionDatabase(
        [[1, 2, 3], [1, 2], [2, 3], [1, 3], [1, 2, 3], [4, 5], [1, 4]]
    )


def _setup(db, xi=2, appends=((1, 2),), deletes=()):
    old_patterns = mine_hmine(db, xi)
    delta = DatabaseDelta(appends=tuple(appends), deletes=frozenset(deletes))
    new_db = delta.apply(db)
    return old_patterns, delta, new_db


class TestPlanUpdatePath:
    def test_no_feedstock_or_no_ancestor_means_mine(self, db):
        delta = DatabaseDelta.append([[1]])
        assert plan_update_path(2, None, None, db, delta, 8).path == PATH_MINE
        patterns = mine_hmine(db, 2)
        assert plan_update_path(2, patterns, 2, None, delta, 8).path == PATH_MINE
        assert plan_update_path(2, patterns, 2, db, None, 8).path == PATH_MINE

    def test_empty_delta_falls_back_to_support_trichotomy(self, db):
        patterns = mine_hmine(db, 2)
        plan = plan_update_path(3, patterns, 2, db, DatabaseDelta(), len(db))
        assert plan.path == PATH_FILTER  # same db, higher support

    def test_churn_above_cutoff_remines(self, db):
        patterns = mine_hmine(db, 2)
        appends = tuple((1, 2) for _ in range(2 * len(db)))
        delta = DatabaseDelta.append(appends)
        new_size = len(db) + len(appends)
        assert len(appends) / new_size > UPDATE_CHURN_CUTOFF
        plan = plan_update_path(2, patterns, 2, db, delta, new_size)
        assert plan.path == PATH_MINE

    def test_small_insert_only_delta_picks_fup(self, db):
        patterns, delta, new_db = _setup(db)
        plan = plan_update_path(2, patterns, 2, db, delta, len(new_db))
        assert plan.path == PATH_UPDATE and plan.update_mode == UPDATE_FUP
        assert plan.delta is delta and plan.ancestor_db is db
        assert plan.distance == delta.size

    def test_deletion_delta_picks_recycle_mode(self, db):
        patterns, delta, new_db = _setup(db, deletes=(0,))
        plan = plan_update_path(2, patterns, 2, db, delta, len(new_db))
        assert plan.path == PATH_UPDATE and plan.update_mode == UPDATE_RECYCLE

    def test_update_plans_execute_bit_identically(self, db):
        for deletes in ((), (0, 5)):
            patterns, delta, new_db = _setup(db, deletes=deletes)
            plan = plan_update_path(2, patterns, 2, db, delta, len(new_db))
            assert plan.path == PATH_UPDATE
            assert execute_plan(plan, new_db, 2) == mine_hmine(new_db, 2)


class TestFupGate:
    def test_constant_absolute_support_growth_is_admitted(self):
        # The warehouse scenario: threshold fixed, tiny increment. The
        # textbook relative condition fails here; the exact bar admits it.
        delta = DatabaseDelta.append([[1, 2], [2, 3]])
        assert fup_applicable(delta, 100, 100, old_size=1000)

    def test_large_increment_at_constant_absolute_support_is_refused(self):
        delta = DatabaseDelta.append([(1, 2)] * 500)
        assert not fup_applicable(delta, 100, 100, old_size=1000)

    def test_deletions_and_support_drops_are_refused(self):
        assert not fup_applicable(DatabaseDelta.delete([0]), 100, 100, 1000)
        drop = DatabaseDelta.append([[1]])
        assert not fup_applicable(drop, 100, 50, 1000)

    def test_fup_update_delta_rejects_deletions_with_structured_reason(self, db):
        """Satellite: the refusal is an exception plus a machine-readable
        degradation step, not a silent wrong answer."""
        patterns = mine_hmine(db, 2)
        delta = DatabaseDelta.delete([0])
        degradation = DegradationReport()
        with pytest.raises(MiningError, match="insert"):
            fup_update_delta(db, delta, patterns, 2, degradation=degradation)
        assert degradation.degraded
        step = degradation.steps[-1]
        assert step.requested == "update" and step.served == "mine"
        assert step.reason == REASON_FUP_INSERT_ONLY


class TestUpdateFaultFallback:
    def test_crashed_patch_degrades_to_clean_scratch_mine(self, db):
        patterns, delta, new_db = _setup(db, deletes=(0,))
        plan = plan_update_path(2, patterns, 2, db, delta, len(new_db))
        assert plan.path == PATH_UPDATE
        faults = FaultInjector(seed=0)
        faults.inject(UPDATE_PATCH, probability=1.0)
        counters = CostCounters()
        degradation = DegradationReport()
        result = execute_plan(
            plan, new_db, 2,
            counters=counters,
            resilience=ResilienceConfig(faults=faults),
            degradation=degradation,
        )
        assert result == mine_hmine(new_db, 2)
        assert counters.as_dict().get("update_fallbacks") == 1
        step = degradation.steps[-1]
        assert step.requested == PATH_UPDATE and step.served == PATH_MINE
        assert step.reason == REASON_UPDATE_FAILED

    def test_slow_patch_still_serves_exactly(self, db):
        patterns, delta, new_db = _setup(db)
        plan = plan_update_path(2, patterns, 2, db, delta, len(new_db))
        faults = FaultInjector(seed=0)
        faults.inject(UPDATE_PATCH, probability=1.0, delay_seconds=0.001)
        result = execute_plan(
            plan, new_db, 2, resilience=ResilienceConfig(faults=faults)
        )
        assert result == mine_hmine(new_db, 2)
