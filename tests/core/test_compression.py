"""Tests for the compression phase (Figure 1 / Table 2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compression import compress
from repro.data.transactions import TransactionDatabase
from repro.errors import CompressionError
from repro.metrics.counters import CostCounters
from repro.mining.apriori import mine_apriori
from repro.mining.patterns import PatternSet

# Paper item encoding (see tests/conftest.py).
A, B, C, D, E, F, G, H, I = 1, 2, 3, 4, 5, 6, 7, 8, 9


class TestPaperTable2:
    """The worked example: compressing Table 1 with MCP yields Table 2."""

    def test_groups_match_table2(self, paper_db, paper_old_patterns):
        result = compress(paper_db, paper_old_patterns, "mcp")
        by_pattern = {group.pattern: group for group in result.compressed}

        fgc = by_pattern[(C, F, G)]
        assert fgc.count == 3
        assert set(fgc.tids) == {100, 200, 300}
        tails = dict(zip(fgc.tids, fgc.tails))
        assert set(tails[100]) == {A, D, E}
        assert set(tails[200]) == {B, D}
        assert set(tails[300]) == {E}

        ae = by_pattern[(A, E)]
        assert ae.count == 2
        assert set(ae.tids) == {400, 500}
        ae_tails = dict(zip(ae.tids, ae.tails))
        assert set(ae_tails[400]) == {C, I}
        assert set(ae_tails[500]) == {H}

    def test_every_tuple_is_grouped(self, paper_db, paper_old_patterns):
        result = compress(paper_db, paper_old_patterns, "mcp")
        assert result.compressed.grouped_tuple_count() == 5
        assert result.compressed.tuple_count() == 5

    def test_decompression_restores_table1(self, paper_db, paper_old_patterns):
        result = compress(paper_db, paper_old_patterns, "mcp")
        assert result.compressed.decompress() == paper_db

    def test_statistics(self, paper_db, paper_old_patterns):
        result = compress(paper_db, paper_old_patterns, "mcp")
        assert result.pattern_count == 11
        assert result.max_pattern_length == 3
        assert result.containment_checks > 0
        # Stored: fgc(3) + tails(3+2+1) + ae(2) + tails(2+1) = 14 slots
        # vs 22 original occurrences.
        assert result.compressed.size() == 14
        assert result.ratio == pytest.approx(14 / 22)


class TestGeneralBehaviour:
    def test_unmatched_tuples_go_to_residual_group(self):
        db = TransactionDatabase([[1, 2], [3, 4], [5, 6]])
        patterns = PatternSet({frozenset({1, 2}): 1})
        compressed = compress(db, patterns, "mcp").compressed
        residual = [g for g in compressed if not g.pattern]
        assert len(residual) == 1
        assert residual[0].count == 2
        assert compressed.decompress() == db

    def test_empty_pattern_set_rejected(self, tiny_db):
        with pytest.raises(CompressionError, match="empty pattern set"):
            compress(tiny_db, PatternSet(), "mcp")

    def test_pattern_not_in_db_is_ignored(self, tiny_db):
        patterns = PatternSet({frozenset({7, 8}): 2, frozenset({1, 2}): 2})
        compressed = compress(tiny_db, patterns, "mcp").compressed
        assert all(g.pattern != (7, 8) for g in compressed)
        assert compressed.decompress() == tiny_db

    def test_counters(self, paper_db, paper_old_patterns):
        counters = CostCounters()
        compress(paper_db, paper_old_patterns, "mcp", counters)
        assert counters.containment_checks > 0
        assert counters.tuple_scans == len(paper_db)

    def test_first_match_in_utility_order_wins(self):
        """A tuple containing two patterns goes to the higher-utility one."""
        db = TransactionDatabase([[1, 2, 3, 4]])
        patterns = PatternSet({frozenset({1, 2, 3}): 1, frozenset({3, 4}): 1})
        compressed = compress(db, patterns, "mcp").compressed
        assert compressed.groups[0].pattern == (1, 2, 3)

    def test_group_ordering_largest_first_residual_last(self):
        db = TransactionDatabase([[1, 2]] * 3 + [[3, 4]] * 5 + [[9]])
        patterns = PatternSet({frozenset({1, 2}): 3, frozenset({3, 4}): 5})
        compressed = compress(db, patterns, "mlp").compressed
        assert compressed.groups[0].pattern == (3, 4)
        assert compressed.groups[-1].pattern == ()

    def test_strategy_accepts_object_or_name(self, tiny_db, paper_old_patterns):
        from repro.core.utility import MLP

        patterns = mine_apriori(tiny_db, 2)
        by_name = compress(tiny_db, patterns, "mlp")
        by_object = compress(tiny_db, patterns, MLP)
        assert by_name.compressed.groups == by_object.compressed.groups


@st.composite
def database_and_patterns(draw):
    transactions = draw(
        st.lists(
            st.lists(st.integers(0, 7), min_size=1, max_size=6),
            min_size=1,
            max_size=18,
        )
    )
    db = TransactionDatabase(transactions)
    xi_old = draw(st.integers(2, 4))
    return db, mine_apriori(db, xi_old)


@given(data=database_and_patterns(), strategy=st.sampled_from(["mcp", "mlp", "arrival", "random"]))
@settings(max_examples=60, deadline=None)
def test_compression_is_always_lossless(data, strategy):
    """Property: decompress(compress(db)) == db under every strategy."""
    db, patterns = data
    if len(patterns) == 0:
        return
    compressed = compress(db, patterns, strategy).compressed
    assert compressed.decompress() == db
    assert compressed.tuple_count() == len(db)


@given(data=database_and_patterns())
@settings(max_examples=40, deadline=None)
def test_compression_never_grows_the_database(data):
    """Property: the stored-size ratio is at most 1 (patterns only ever
    replace their own items)."""
    db, patterns = data
    if len(patterns) == 0:
        return
    result = compress(db, patterns, "mlp")
    assert result.ratio <= 1.0 + 1e-9
