"""Unit tests specific to Recycle-TP (group-aware matrix counting, §4.2)."""

from __future__ import annotations

import pytest

from repro.core.compression import compress
from repro.core.groups import Group
from repro.core.recycle_treeprojection import mine_recycle_treeprojection
from repro.errors import MiningError
from repro.metrics.counters import CostCounters
from repro.mining.apriori import mine_apriori


class TestAgainstPaperExample:
    def test_matches_uncompressed_mining(self, paper_db, paper_old_patterns):
        compressed = compress(paper_db, paper_old_patterns, "mcp").compressed
        assert mine_recycle_treeprojection(compressed, 2) == mine_apriori(paper_db, 2)


class TestMatrixCounting:
    def test_pattern_pairs_counted_once_per_group(self):
        """A k-item group pattern contributes k*(k-1)/2 matrix updates
        regardless of its count — the group saving."""
        groups = [Group((1, 2, 3), 100, ())]
        counters = CostCounters()
        patterns = mine_recycle_treeprojection(groups, 50, counters)
        assert patterns.support({1, 2, 3}) == 100
        # With the Lemma 3.1 shortcut the matrix may not even be built;
        # either way the per-tuple cost must not scale with count=100.
        assert counters.tuple_scans < 10

    def test_tail_pattern_cross_pairs(self):
        groups = [Group((1,), 2, ((2,), (3,)))]
        # Content: (1,2) and (1,3).
        patterns = mine_recycle_treeprojection(groups, 1)
        assert patterns.support({1, 2}) == 1
        assert patterns.support({1, 3}) == 1
        assert {2, 3} not in patterns

    def test_single_group_shortcut(self):
        groups = [Group((4, 5, 6, 7), 9, ())]
        counters = CostCounters()
        patterns = mine_recycle_treeprojection(groups, 5, counters)
        assert len(patterns) == 15
        assert counters.single_group_enumerations >= 1

    def test_matrix_updates_counted(self, paper_db, paper_old_patterns):
        compressed = compress(paper_db, paper_old_patterns, "mcp").compressed
        counters = CostCounters()
        mine_recycle_treeprojection(compressed, 2, counters)
        assert counters.as_dict()["matrix_updates"] > 0

    def test_invalid_support_rejected(self):
        with pytest.raises(MiningError):
            mine_recycle_treeprojection([], 0)

    def test_empty_groups(self):
        assert len(mine_recycle_treeprojection([], 1)) == 0

    def test_groups_merged_at_root(self):
        """Two groups with the same frequent-filtered pattern merge."""
        groups = [
            Group((1, 2, 9), 2, ()),   # 9 infrequent at xi=3
            Group((1, 2), 2, ()),
        ]
        patterns = mine_recycle_treeprojection(groups, 3)
        assert patterns.support({1, 2}) == 4
