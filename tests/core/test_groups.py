"""The unified group representation (repro.core.groups).

Covers the Group dataclass (legacy positional compatibility, the byte
size model, compaction), the GroupedDatabase container (constructors,
size model, bitset eligibility, decompression) and the to_grouped
coercion point, plus the deprecation shims left behind in
repro.core.naive. The empty/all-residual edge cases pinned here are
regression tests: compression_ratio must be 1.0 (not ZeroDivisionError)
for an empty database, and an all-residual compression must round-trip.
"""

from __future__ import annotations

import pytest

from repro.core.compression import CompressedDatabase, compress
from repro.core.groups import (
    ITEM_BYTES,
    RECORD_OVERHEAD_BYTES,
    Group,
    GroupedDatabase,
    to_grouped,
)
from repro.data.transactions import TransactionDatabase
from repro.errors import DataError
from repro.mining.patterns import PatternSet


class TestGroup:
    def test_legacy_positional_construction(self):
        """The old CGroup calling convention (pattern, count, tails)."""
        group = Group((1, 2), 3, ((4,), (5, 6)))
        assert group.pattern == (1, 2)
        assert group.count == 3
        assert group.tails == ((4,), (5, 6))
        assert group.tids == ()
        assert group.mask == 0

    def test_equality_ignores_nothing(self):
        assert Group((1,), 2, ()) == Group((1,), 2, ())
        assert Group((1,), 2, (), mask=0b11) != Group((1,), 2, ())

    def test_stored_items(self):
        group = Group((1, 2), 3, ((4,), (), (5, 6)))
        assert group.stored_items() == 2 + 3

    def test_byte_size_model(self):
        """pattern items + (pattern, count) headers + per-tail framing."""
        group = Group((1, 2), 3, ((4,), (), (5, 6)))
        expected = (
            2 * ITEM_BYTES
            + 2 * RECORD_OVERHEAD_BYTES
            + (1 * ITEM_BYTES + RECORD_OVERHEAD_BYTES)
            + (0 * ITEM_BYTES + RECORD_OVERHEAD_BYTES)
            + (2 * ITEM_BYTES + RECORD_OVERHEAD_BYTES)
        )
        assert group.byte_size == expected

    def test_compact_drops_empty_tails_and_tids_keeps_count_and_mask(self):
        group = Group((1,), 3, ((2,), (), (3,)), tids=(10, 20, 30), mask=0b111)
        compacted = group.compact()
        assert compacted.tails == ((2,), (3,))
        assert compacted.count == 3  # the empty-tail member still counts
        assert compacted.mask == 0b111
        assert compacted.tids == ()

    def test_compact_is_identity_when_already_compact(self):
        group = Group((1,), 2, ((2,), (3,)))
        assert group.compact() is group

    def test_item_bitmap(self):
        db = TransactionDatabase([[1, 2], [1, 3], [2, 3]])
        enc = db.encoded()
        group = Group((1,), 2, ((2,), (3,)), mask=0b011)
        # Pattern item: the whole group's mask.
        assert group.item_bitmap(enc, 1) == 0b011
        # Tail item: narrowed by the item's vertical bitmap.
        assert group.item_bitmap(enc, 3) == enc.bitmap_for_item(3) & 0b011
        # Absent item: empty.
        assert group.item_bitmap(enc, 99) == 0


class TestGroupedDatabase:
    def test_compressed_database_is_an_alias(self):
        assert CompressedDatabase is GroupedDatabase

    def test_from_database_single_residual_group(self, tiny_db):
        grouped = GroupedDatabase.from_database(tiny_db)
        assert len(grouped) == 1
        (residual,) = grouped
        assert residual.pattern == ()
        assert residual.count == len(tiny_db)
        assert residual.mask == tiny_db.encoded().universe
        assert grouped.supports_bitset

    def test_from_empty_database(self):
        empty = TransactionDatabase([])
        grouped = GroupedDatabase.from_database(empty)
        assert len(grouped) == 0
        assert grouped.tuple_count() == 0
        assert grouped.size() == 0
        assert grouped.compression_ratio() == 1.0  # no ZeroDivisionError
        assert grouped.decompress() == empty

    def test_empty_bare_groups_ratio_is_one(self):
        assert GroupedDatabase.from_groups(()).compression_ratio() == 1.0

    def test_size_model_against_paper_example(self, paper_db, paper_old_patterns):
        compressed = compress(paper_db, paper_old_patterns, "mcp").compressed
        assert compressed.tuple_count() == len(paper_db)
        assert compressed.original_size() == paper_db.total_items()
        assert compressed.size() <= compressed.original_size()
        ratio = compressed.compression_ratio()
        assert 0 < ratio < 1
        assert compressed.byte_size == sum(g.byte_size for g in compressed.groups)

    def test_all_residual_compression(self):
        """Ghost patterns claim nothing: everything lands in the residual
        group and the ratio is exactly 1 (nothing saved, nothing added)."""
        db = TransactionDatabase([[1, 2], [2, 3]])
        ghost = PatternSet({frozenset({8, 9}): 2})
        compressed = compress(db, ghost, "mcp").compressed
        assert [g.pattern for g in compressed.groups] == [()]
        assert compressed.compression_ratio() == 1.0
        assert compressed.decompress() == db

    def test_decompress_round_trips(self, paper_db, paper_old_patterns):
        for strategy in ("mcp", "mlp"):
            compressed = compress(paper_db, paper_old_patterns, strategy).compressed
            assert compressed.decompress() == paper_db

    def test_decompress_rejects_projected_groups(self):
        projected = GroupedDatabase.from_groups([Group((1,), 2, ((2,),))])
        with pytest.raises(DataError):
            projected.decompress()

    def test_bare_groups_do_not_support_bitset(self):
        grouped = GroupedDatabase.from_groups([Group((1,), 2, ((2,), (3,)))])
        assert not grouped.supports_bitset
        assert grouped.encoded() is None

    def test_partial_masks_disable_bitset(self, paper_db, paper_old_patterns):
        compressed = compress(paper_db, paper_old_patterns, "mcp").compressed
        assert compressed.supports_bitset
        stripped = GroupedDatabase(
            [
                Group(g.pattern, g.count, g.tails, g.tids, mask=0)
                for g in compressed.groups
            ],
            compressed.original,
        )
        assert not stripped.supports_bitset

    def test_mining_groups_are_compacted(self, paper_db, paper_old_patterns):
        compressed = compress(paper_db, paper_old_patterns, "mcp").compressed
        for group in compressed.mining_groups():
            assert all(group.tails)
            assert group.tids == ()
            assert group.mask.bit_count() == group.count


class TestToGrouped:
    def test_grouped_database_passes_through(self, tiny_db):
        grouped = GroupedDatabase.from_database(tiny_db)
        assert to_grouped(grouped) is grouped

    def test_transaction_database_wraps(self, tiny_db):
        grouped = to_grouped(tiny_db)
        assert isinstance(grouped, GroupedDatabase)
        assert grouped.tuple_count() == len(tiny_db)

    def test_single_group_and_group_list(self):
        group = Group((1,), 2, ((2,), (3,)))
        assert to_grouped(group).groups == (group,)
        assert to_grouped([group, group]).groups == (group, group)

    def test_rejects_non_groups(self):
        with pytest.raises(DataError):
            to_grouped(42)
        with pytest.raises(DataError):
            to_grouped([("not", "a", "group")])


class TestRetiredShims:
    """The CGroup-era compatibility shims are gone, not just deprecated."""

    def test_retired_names_are_absent(self):
        import repro.core
        import repro.core.naive as naive

        for name in ("CGroup", "compressed_to_cgroups", "database_to_cgroups"):
            with pytest.raises(AttributeError):
                getattr(naive, name)
            with pytest.raises(AttributeError):
                getattr(repro.core, name)
            assert name not in repro.core.__all__
