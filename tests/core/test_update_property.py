"""Property tests for the update planner path (PR tentpole).

The load-bearing invariant, over hypothesis-generated databases and
deltas: a pattern set produced by patching warehoused feedstock across a
:class:`~repro.data.versioned.DatabaseDelta` — whatever update mode the
planner picks, whatever miner/strategy/backend carries it out, whatever
representation the feedstock is cached in — is **bit-identical** to
mining the post-update database from scratch. Covered delta shapes:
insert-only (FUP territory), delete-only, mixed, and the session's
sliding-window slide (append + expire in one delta).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.planner import (
    PATH_MINE,
    PATH_UPDATE,
    UPDATE_FUP,
    execute_plan,
    plan_update_path,
)
from repro.core.session import MiningSession
from repro.data.patterns import CondensedPatternSet
from repro.data.transactions import TransactionDatabase
from repro.data.versioned import DatabaseDelta, VersionedDatabase
from repro.mining.bruteforce import mine_bruteforce
from repro.mining.registry import iter_miners

RECYCLING_NAMES = sorted(spec.name for spec in iter_miners("recycling"))

small_databases = st.lists(
    st.lists(st.integers(0, 7), min_size=1, max_size=6),
    min_size=1,
    max_size=16,
)
small_batches = st.lists(
    st.lists(st.integers(0, 7), min_size=1, max_size=6),
    min_size=0,
    max_size=6,
)


def _condensed(patterns, support, representation, db_size):
    if representation == "full":
        return patterns
    return CondensedPatternSet.condense(
        patterns, support, representation, n_transactions=db_size
    )


@given(
    transactions=small_databases,
    appends=small_batches,
    delete_count=st.integers(0, 4),
    xi_old=st.integers(1, 5),
    xi_new=st.integers(1, 5),
    strategy=st.sampled_from(["mcp", "mlp"]),
    backend=st.sampled_from(["bitset", "python"]),
    representation=st.sampled_from(["full", "closed", "ndi"]),
)
@settings(max_examples=60, deadline=None)
def test_update_path_is_bit_identical_to_scratch(
    transactions, appends, delete_count, xi_old, xi_new,
    strategy, backend, representation,
):
    db = TransactionDatabase(transactions)
    v0 = VersionedDatabase.initial(db)
    deletes = db.tids[: min(delete_count, len(db) - 1)]
    delta = DatabaseDelta(appends=tuple(tuple(tx) for tx in appends),
                          deletes=frozenset(deletes))
    if delta.is_empty:
        return
    v1 = v0.apply(delta)
    old_patterns = mine_bruteforce(db, xi_old)
    if len(old_patterns) == 0:
        return
    feedstock = _condensed(old_patterns, xi_old, representation, len(db))
    reference = mine_bruteforce(v1.db, xi_new)
    for name in RECYCLING_NAMES:
        plan = plan_update_path(
            xi_new, feedstock, xi_old, db, delta, len(v1.db)
        )
        assert plan.path in (PATH_UPDATE, PATH_MINE)
        if plan.path == PATH_UPDATE and plan.update_mode == UPDATE_FUP:
            assert delta.is_insert_only
        result = execute_plan(
            plan, v1.db, xi_new,
            algorithm=name, strategy=strategy, backend=backend,
        )
        assert result == reference, (
            f"{name}/{strategy}/{backend}/{representation} diverged on "
            f"{plan.path}:{plan.update_mode} "
            f"(+{len(delta.appends)}/-{len(delta.deletes)})"
        )


@given(
    transactions=small_databases,
    batches=st.lists(
        st.lists(st.lists(st.integers(0, 7), min_size=1, max_size=5),
                 min_size=1, max_size=4),
        min_size=1,
        max_size=3,
    ),
    xi=st.integers(1, 4),
    strategy=st.sampled_from(["mcp", "mlp"]),
    backend=st.sampled_from(["bitset", "python"]),
    representation=st.sampled_from(["full", "closed", "ndi"]),
)
@settings(max_examples=40, deadline=None)
def test_sliding_window_session_is_bit_identical(
    transactions, batches, xi, strategy, backend, representation,
):
    db = TransactionDatabase(transactions)
    session = MiningSession(
        db, strategy=strategy, backend=backend,
        representation=representation, window=2,
    )
    assert session.mine(xi) == mine_bruteforce(session.db, xi)
    for batch in batches:
        session.append_batch(batch)
        result = session.mine(xi)
        assert result == mine_bruteforce(session.db, xi), (
            f"window slide diverged on {session.last_report.path}:"
            f"{session.last_report.update_mode}"
        )
    # The window never holds more than 2 live batches.
    assert len(session._batches) <= 2


@given(
    transactions=small_databases,
    delete_count=st.integers(1, 4),
    appends=small_batches,
    xi=st.integers(1, 4),
)
@settings(max_examples=40, deadline=None)
def test_session_delta_methods_track_scratch(
    transactions, delete_count, appends, xi
):
    """Explicit append/delete calls (no window) stay scratch-identical."""
    db = TransactionDatabase(transactions)
    session = MiningSession(db)
    session.mine(xi)
    if len(db) > delete_count:
        session.delete_tids(db.tids[:delete_count])
        assert session.mine(xi) == mine_bruteforce(session.db, xi)
    if appends:
        session.append_batch(appends)
        assert session.mine(xi) == mine_bruteforce(session.db, xi)
