"""Tests for the interactive MiningSession (the paper's motivating loop)."""

from __future__ import annotations

import pytest

from repro.constraints.engine import ConstraintSet
from repro.constraints.support import MaxLength, MinSupport
from repro.core.session import MiningSession
from repro.data.synthetic import quest_database, QuestParams
from repro.errors import RecycleError
from repro.mining.apriori import mine_apriori
from repro.mining.hmine import mine_hmine


@pytest.fixture
def db():
    return quest_database(
        QuestParams(n_transactions=150, n_items=40, avg_transaction_length=6), seed=2
    )


class TestPathSelection:
    def test_initial_then_filter_then_recycle(self, db):
        session = MiningSession(db)
        session.mine(10)
        session.mine(20)   # tightened
        session.mine(5)    # relaxed
        assert [report.path for report in session.history] == [
            "initial", "filter", "recycle",
        ]

    def test_same_constraints_take_filter_path(self, db):
        session = MiningSession(db)
        session.mine(10)
        session.mine(10)
        assert session.history[-1].path == "filter"

    def test_every_path_gives_exact_results(self, db):
        session = MiningSession(db)
        for support in (12, 20, 6, 9, 4):
            result = session.mine(support)
            assert result == mine_hmine(db, support), f"wrong result at {support}"

    def test_relative_supports_accepted(self, db):
        session = MiningSession(db)
        result = session.mine(0.1)
        absolute = session.history[-1].absolute_support
        assert absolute == 15  # ceil(0.1 * 150)
        assert result == mine_hmine(db, absolute)

    def test_mixed_change_recycles_then_filters(self, db):
        session = MiningSession(db)
        session.mine(ConstraintSet.min_support(10))
        # Lower support (relax) + add max-length (tighten) = incomparable.
        result = session.mine(ConstraintSet.of(MinSupport(6), MaxLength(2)))
        assert session.history[-1].path == "recycle"
        expected = mine_apriori(db, 6).filter(lambda p, s: len(p) <= 2)
        assert result == expected

    def test_non_support_constraints_do_not_poison_cache(self, db):
        """A constrained result must not shrink the recycling feedstock."""
        session = MiningSession(db)
        session.mine(ConstraintSet.of(MinSupport(10), MaxLength(1)))
        assert session.exported_patterns() == mine_hmine(db, 10)
        result = session.mine(ConstraintSet.min_support(10))
        assert result == mine_hmine(db, 10)


class TestAlgorithms:
    @pytest.mark.parametrize("algorithm", ["naive", "hmine", "fpgrowth", "treeprojection", "eclat"])
    @pytest.mark.parametrize("strategy", ["mcp", "mlp"])
    def test_all_combinations_exact(self, db, algorithm, strategy):
        session = MiningSession(db, algorithm=algorithm, strategy=strategy)
        session.mine(12)
        result = session.mine(5)
        assert session.history[-1].path == "recycle"
        assert result == mine_hmine(db, 5)

    def test_unknown_algorithm_rejected(self, db):
        with pytest.raises(RecycleError, match="unknown algorithm"):
            MiningSession(db, algorithm="magic")


class TestMultiUser:
    def test_seeded_patterns_enable_recycling(self, db):
        """Section 2: one user's output recycles for another."""
        alice = MiningSession(db)
        alice.mine(12)

        bob = MiningSession(db)
        bob.seed_patterns(alice.exported_patterns(), absolute_support=12)
        result = bob.mine(5)
        assert bob.history[-1].path == "recycle"
        assert result == mine_hmine(db, 5)

    def test_seeding_empty_patterns_rejected(self, db):
        from repro.mining.patterns import PatternSet

        with pytest.raises(RecycleError, match="empty"):
            MiningSession(db).seed_patterns(PatternSet(), 10)

    def test_export_before_mining_rejected(self, db):
        with pytest.raises(RecycleError, match="nothing mined"):
            MiningSession(db).exported_patterns()

    def test_save_and_load_patterns(self, db, tmp_path):
        """Cross-process recycling: save in one session, load in another."""
        path = str(tmp_path / "session.patterns")
        alice = MiningSession(db)
        alice.mine(12)
        alice.save_patterns(path)

        bob = MiningSession(db)
        bob.load_patterns(path)
        result = bob.mine(5)
        assert bob.history[-1].path == "recycle"
        assert result == mine_hmine(db, 5)

    def test_load_rejects_headerless_file(self, db, tmp_path):
        path = tmp_path / "raw.patterns"
        path.write_text("1 2 : 3\n", encoding="utf-8")
        with pytest.raises(RecycleError, match="absolute_support header"):
            MiningSession(db).load_patterns(str(path))

    def test_round_trip_preserves_pattern_set_exactly(self, db, tmp_path):
        """save -> load must reproduce the identical PatternSet (and the
        threshold), so the loaded session recycles from equal feedstock."""
        path = str(tmp_path / "feedstock.patterns")
        alice = MiningSession(db)
        alice.mine(12)
        alice.save_patterns(path)

        bob = MiningSession(db)
        bob.load_patterns(path)
        assert bob.exported_patterns() == alice.exported_patterns()
        assert bob._absolute_support == alice._absolute_support
        assert bob.mine(5) == alice.mine(5)

    def test_save_is_atomic_single_write(self, db, tmp_path):
        """No temp files survive and the header is the first line of a
        single complete write."""
        path = tmp_path / "out.patterns"
        session = MiningSession(db)
        session.mine(12)
        session.save_patterns(str(path))
        assert [p.name for p in tmp_path.iterdir()] == ["out.patterns"]
        first_line = path.read_text(encoding="utf-8").splitlines()[0]
        assert first_line == "# absolute_support=12"

    def test_load_rejects_empty_file(self, db, tmp_path):
        path = tmp_path / "empty.patterns"
        path.write_text("", encoding="utf-8")
        with pytest.raises(RecycleError, match="absolute_support header"):
            MiningSession(db).load_patterns(str(path))

    def test_empty_set_round_trip_fails_at_seed_time(self, db, tmp_path):
        """Saving a barren threshold produces a loadable file, but seeding
        from its empty pattern set is rejected like any empty seed."""
        path = str(tmp_path / "barren.patterns")
        alice = MiningSession(db)
        alice.mine(len(db) + 1)  # nothing frequent
        alice.save_patterns(path)
        with pytest.raises(RecycleError, match="empty"):
            MiningSession(db).load_patterns(path)

    def test_seeded_patterns_survive_relaxed_then_tightened_walk(self, db, tmp_path):
        """Seeded feedstock must behave exactly like home-grown feedstock
        across a relax -> tighten walk."""
        alice = MiningSession(db)
        alice.mine(15)
        bob = MiningSession(db)
        bob.seed_patterns(alice.exported_patterns(), absolute_support=15)
        assert bob.mine(6) == mine_hmine(db, 6)
        assert bob.history[-1].path == "recycle"
        assert bob.mine(10) == mine_hmine(db, 10)
        assert bob.history[-1].path == "filter"


class TestReporting:
    def test_last_report(self, db):
        session = MiningSession(db)
        with pytest.raises(RecycleError):
            _ = session.last_report
        session.mine(10)
        report = session.last_report
        assert report.index == 0
        assert report.path == "initial"
        assert report.elapsed_seconds >= 0
        assert report.pattern_count == len(mine_hmine(db, 10))

    def test_recycle_reports_counters(self, db):
        session = MiningSession(db)
        session.mine(12)
        session.mine(5)
        assert session.last_report.counters.patterns_emitted > 0


class TestEmptyFeedstockFallback:
    def test_relaxing_from_a_patternless_threshold_remines(self, db):
        """If the previous threshold admitted no patterns, relaxing must
        fall back to scratch mining instead of failing to recycle."""
        session = MiningSession(db)
        session.mine(len(db) + 1)   # nothing frequent
        assert len(session.exported_patterns()) == 0
        result = session.mine(5)
        assert session.last_report.path == "initial"
        assert result == mine_hmine(db, 5)


class TestRepresentationKnob:
    def test_unknown_representation_rejected(self, db):
        with pytest.raises(RecycleError, match="unknown representation"):
            MiningSession(db, representation="compact")

    @pytest.mark.parametrize("representation", ["closed", "ndi"])
    def test_condensed_sessions_mine_exactly(self, db, representation):
        session = MiningSession(db, representation=representation)
        for support in (12, 20, 6, 9):
            assert session.mine(support) == mine_hmine(db, support)
        assert [r.path for r in session.history] == [
            "initial", "filter", "recycle", "filter",
        ]

    def test_reports_carry_condensation_gauges(self, db):
        session = MiningSession(db, representation="closed")
        session.mine(10)
        report = session.last_report
        assert report.representation == "closed"
        assert 0 < report.feedstock_entries <= report.pattern_count
        assert report.condensation_ratio >= 1.0

    def test_full_sessions_report_unit_ratio(self, db):
        session = MiningSession(db)
        session.mine(10)
        report = session.last_report
        assert report.representation == "full"
        assert report.feedstock_entries == report.pattern_count
        assert report.condensation_ratio == 1.0

    def test_exported_feedstock_is_condensed(self, db):
        from repro.data.patterns import CondensedPatternSet

        session = MiningSession(db, representation="closed")
        session.mine(10)
        feedstock = session.exported_feedstock()
        assert isinstance(feedstock, CondensedPatternSet)
        assert feedstock.representation == "closed"
        # The public export is always the exact full set.
        assert session.exported_patterns() == mine_hmine(db, 10)

    def test_save_records_representation(self, db, tmp_path):
        path = tmp_path / "closed.patterns"
        session = MiningSession(db, representation="closed")
        session.mine(12)
        session.save_patterns(str(path))
        header = path.read_text(encoding="utf-8").splitlines()
        assert "# repr=closed" in header

    @pytest.mark.parametrize("saver_rep", ["full", "closed", "ndi"])
    @pytest.mark.parametrize("loader_rep", ["full", "closed", "ndi"])
    def test_cross_representation_round_trip(self, db, tmp_path, saver_rep, loader_rep):
        """Any session can load any session's save file and recycle from
        it exactly — the representation is a cache format, not a
        contract between users."""
        path = str(tmp_path / "handoff.patterns")
        alice = MiningSession(db, representation=saver_rep)
        alice.mine(12)
        alice.save_patterns(path)

        bob = MiningSession(db, representation=loader_rep)
        bob.load_patterns(path)
        assert bob.exported_patterns() == alice.exported_patterns()
        result = bob.mine(5)
        assert bob.history[-1].path == "recycle"
        assert result == mine_hmine(db, 5)
