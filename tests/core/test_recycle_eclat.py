"""Tests for the grouped-Eclat recycling extension."""

from __future__ import annotations

import pytest

from repro.core.compression import compress
from repro.core.groups import Group
from repro.core.recycle_eclat import ALL, _intersect, _vertical_layout, mine_recycle_eclat
from repro.errors import MiningError
from repro.metrics.counters import CostCounters
from repro.mining.apriori import mine_apriori


class TestAgainstPaperExample:
    def test_matches_uncompressed_mining(self, paper_db, paper_old_patterns):
        compressed = compress(paper_db, paper_old_patterns, "mcp").compressed
        assert mine_recycle_eclat(compressed, 2) == mine_apriori(paper_db, 2)


class TestGroupedTidsets:
    def test_vertical_layout(self):
        groups = [Group((1, 2), 3, ((3,), (4,)))]
        tidsets, counts = _vertical_layout(groups)
        assert counts == [3]
        assert tidsets[1] == {0: ALL}
        assert tidsets[3] == {0: frozenset({0})}
        assert tidsets[4] == {0: frozenset({1})}

    def test_all_all_intersection_is_one_op(self):
        stats = {"group_counts": 0, "item_visits": 0}
        result = _intersect({0: ALL, 1: ALL}, {0: ALL}, stats)
        assert result == {0: ALL}
        assert stats["group_counts"] == 1
        assert stats["item_visits"] == 0

    def test_all_set_intersection(self):
        stats = {"group_counts": 0, "item_visits": 0}
        members = frozenset({1, 2})
        assert _intersect({0: ALL}, {0: members}, stats) == {0: members}
        assert _intersect({0: members}, {0: ALL}, stats) == {0: members}

    def test_set_set_intersection_drops_empty_groups(self):
        stats = {"group_counts": 0, "item_visits": 0}
        result = _intersect(
            {0: frozenset({1}), 1: frozenset({5})},
            {0: frozenset({2}), 1: frozenset({5, 6})},
            stats,
        )
        assert result == {1: frozenset({5})}

    def test_pattern_pair_support_without_touching_tuples(self):
        """Two pattern items of a 1000-tuple group intersect in O(1)."""
        groups = [Group((1, 2), 1000, ())]
        counters = CostCounters()
        patterns = mine_recycle_eclat(groups, 500, counters)
        assert patterns.support({1, 2}) == 1000
        assert counters.item_visits == 0
        assert counters.group_counts >= 1

    def test_mixed_groups_and_residual(self):
        groups = [
            Group((1, 2), 2, ((3,),)),
            Group((), 3, ((1, 3), (2,), (3,))),
        ]
        # Content: (1,2,3), (1,2), (1,3), (2,), (3,).
        patterns = mine_recycle_eclat(groups, 2)
        assert patterns.support({1}) == 3
        assert patterns.support({1, 3}) == 2
        assert patterns.support({1, 2}) == 2

    def test_invalid_support_rejected(self):
        with pytest.raises(MiningError):
            mine_recycle_eclat([], 0)

    def test_empty(self):
        assert len(mine_recycle_eclat([], 1)) == 0
