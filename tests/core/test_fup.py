"""Tests for the FUP incremental baseline."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fup import fup_update
from repro.data.synthetic import random_database
from repro.data.transactions import TransactionDatabase
from repro.errors import MiningError
from repro.mining.apriori import mine_apriori
from repro.mining.bruteforce import mine_bruteforce


def grown(old_db, increment):
    return TransactionDatabase(
        list(old_db.transactions) + list(increment.transactions)
    )


class TestFUPCorrectness:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_remining_same_relative_support(self, seed):
        old_db = random_database(30, 8, 6, seed=seed)
        increment = random_database(10, 8, 6, seed=seed + 100)
        total = grown(old_db, increment)
        # Keep the relative threshold constant: 10% of each size.
        xi_old = max(1, len(old_db) // 10)
        xi_new = max(1, len(total) // 10)
        old_patterns = mine_apriori(old_db, xi_old)
        updated = fup_update(old_db, increment, old_patterns, xi_new)
        assert updated == mine_apriori(total, xi_new)

    def test_pattern_frequent_only_after_increment(self):
        """A newcomer concentrated in the increment must be found."""
        old_db = TransactionDatabase([[1, 2]] * 8 + [[3]] * 2)
        increment = TransactionDatabase([[4, 5]] * 6)
        old_patterns = mine_apriori(old_db, 2)
        updated = fup_update(old_db, increment, old_patterns, 4)
        assert updated.support({4, 5}) == 6
        assert updated == mine_apriori(grown(old_db, increment), 4)

    def test_old_winner_that_loses(self):
        """An old frequent pattern diluted below threshold must drop."""
        old_db = TransactionDatabase([[1, 2]] * 3 + [[9]] * 2)
        increment = TransactionDatabase([[7, 8]] * 15)
        old_patterns = mine_apriori(old_db, 3)
        assert {1, 2} in old_patterns
        updated = fup_update(old_db, increment, old_patterns, 6)
        assert {1, 2} not in updated
        assert updated == mine_apriori(grown(old_db, increment), 6)

    def test_empty_increment(self):
        old_db = random_database(20, 6, 5, seed=1)
        increment = TransactionDatabase([])
        old_patterns = mine_apriori(old_db, 2)
        assert fup_update(old_db, increment, old_patterns, 2) == old_patterns

    def test_invalid_support_rejected(self, tiny_db):
        from repro.mining.patterns import PatternSet

        with pytest.raises(MiningError):
            fup_update(tiny_db, tiny_db, PatternSet(), 0)


class TestFUPEfficiencyContract:
    def test_winner_counting_scans_increment_only(self):
        """Winners must not trigger old-database rescans: the tuple-scan
        count stays well below |old| * levels."""
        from repro.metrics.counters import CostCounters

        old_db = TransactionDatabase([[1, 2, 3]] * 50)
        increment = TransactionDatabase([[1, 2, 3]] * 5)
        old_patterns = mine_apriori(old_db, 25)
        counters = CostCounters()
        fup_update(old_db, increment, old_patterns, 27, counters)
        # 3 levels of winners x 5 increment tuples plus level-1 newcomer
        # handling; nothing close to 50-tuple old-db scans per level.
        assert counters.tuple_scans < 50


@given(
    old_transactions=st.lists(
        st.lists(st.integers(0, 6), min_size=1, max_size=5), min_size=4, max_size=20
    ),
    new_transactions=st.lists(
        st.lists(st.integers(0, 6), min_size=1, max_size=5), min_size=0, max_size=10
    ),
    relative=st.sampled_from([0.2, 0.34, 0.5]),
)
@settings(max_examples=50, deadline=None)
def test_fup_equals_remine_property(old_transactions, new_transactions, relative):
    old_db = TransactionDatabase(old_transactions)
    increment = TransactionDatabase(new_transactions)
    total = grown(old_db, increment)
    xi_old = max(1, int(relative * len(old_db)))
    xi_new = max(1, int(relative * len(total)))
    # FUP's precondition: the old run must be at least as permissive
    # relative to the old database.
    if xi_old / len(old_db) > xi_new / len(total):
        xi_old = max(1, int(xi_new * len(old_db) / len(total)))
    old_patterns = mine_bruteforce(old_db, xi_old)
    assert fup_update(old_db, increment, old_patterns, xi_new) == mine_bruteforce(
        total, xi_new
    )
