"""Property tests for the unified grouped core (satellite of the refactor).

Three invariants, each over hypothesis-generated databases:

1. **Backend-closed equivalence** — every registered recycling miner,
   under both compression strategies and both claiming backends,
   produces exactly the from-scratch pattern set.
2. **Kernel backend equality** — the shared Phase 2 kernel
   (:func:`repro.storage.projection.mine_grouped`) is bit-identical
   between its python and bitset engines, with the Lemma 3.1 shortcut
   on or off.
3. **Lossless compression** — compress -> decompress round-trips the
   database's (tid, tuple) multiset under every strategy x backend.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compression import compress
from repro.core.recycle import recycle_mine
from repro.data.transactions import TransactionDatabase
from repro.mining.bruteforce import mine_bruteforce
from repro.mining.registry import iter_miners
from repro.storage.projection import mine_grouped

RECYCLING_NAMES = sorted(spec.name for spec in iter_miners("recycling"))

small_databases = st.lists(
    st.lists(st.integers(0, 7), min_size=1, max_size=6),
    min_size=1,
    max_size=16,
)


@given(
    transactions=small_databases,
    xi_old=st.integers(2, 5),
    xi_new=st.integers(1, 3),
    strategy=st.sampled_from(["mcp", "mlp"]),
    backend=st.sampled_from(["bitset", "python"]),
)
@settings(max_examples=60, deadline=None)
def test_every_miner_strategy_backend_matches_scratch(
    transactions, xi_old, xi_new, strategy, backend
):
    db = TransactionDatabase(transactions)
    old_patterns = mine_bruteforce(db, max(xi_old, xi_new))
    if len(old_patterns) == 0:
        return
    reference = mine_bruteforce(db, xi_new)
    for name in RECYCLING_NAMES:
        result = recycle_mine(
            db, old_patterns, xi_new,
            algorithm=name, strategy=strategy, backend=backend,
        )
        assert result == reference, f"{name}/{strategy}/{backend} diverged"


@given(
    transactions=small_databases,
    xi_old=st.integers(2, 5),
    xi_new=st.integers(1, 3),
    strategy=st.sampled_from(["mcp", "mlp"]),
    shortcut=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_kernel_backends_are_bit_identical(
    transactions, xi_old, xi_new, strategy, shortcut
):
    db = TransactionDatabase(transactions)
    old_patterns = mine_bruteforce(db, max(xi_old, xi_new))
    if len(old_patterns) == 0:
        return
    compressed = compress(db, old_patterns, strategy).compressed
    python_result = mine_grouped(
        compressed, xi_new, single_group_shortcut=shortcut, backend="python"
    )
    bitset_result = mine_grouped(
        compressed, xi_new, single_group_shortcut=shortcut, backend="bitset"
    )
    assert python_result == bitset_result
    assert python_result == mine_bruteforce(db, xi_new)


@given(
    transactions=small_databases,
    xi_old=st.integers(2, 5),
    strategy=st.sampled_from(["mcp", "mlp"]),
    backend=st.sampled_from(["bitset", "python"]),
)
@settings(max_examples=60, deadline=None)
def test_compress_decompress_round_trips(transactions, xi_old, strategy, backend):
    db = TransactionDatabase(transactions)
    old_patterns = mine_bruteforce(db, xi_old)
    if len(old_patterns) == 0:
        return
    compressed = compress(db, old_patterns, strategy, backend=backend).compressed
    restored = compressed.decompress()
    assert restored == db
    assert sorted(zip(restored.tids, map(tuple, restored))) == sorted(
        zip(db.tids, map(tuple, db))
    )
