"""Smoke tests: the shipped examples must run end to end.

Each example is imported as a module and its ``main()`` executed with
stdout captured — the cheapest guarantee that the README's promised
walkthroughs don't rot. The two heaviest examples (full benchmark-scale
sweeps) are exercised through their building blocks elsewhere and skipped
here to keep the suite fast.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "interactive_session",
    "rule_tuning",
    "quickstart",
    "constrained_search",
]


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 100, f"{name} produced suspiciously little output"


def test_quickstart_reports_identical_results(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "identical    : True" in out


def test_interactive_session_paths(capsys):
    load_example("interactive_session").main()
    out = capsys.readouterr().out
    assert "filter" in out and "recycle" in out


def test_all_examples_exist_and_have_main():
    expected = {
        "quickstart", "interactive_session", "market_basket",
        "incremental_update", "memory_limited", "rule_tuning",
        "constrained_search",
    }
    found = {path.stem for path in EXAMPLES_DIR.glob("*.py")}
    assert expected <= found
    for name in expected:
        source = (EXAMPLES_DIR / f"{name}.py").read_text(encoding="utf-8")
        assert "def main()" in source, f"{name} lacks a main()"
        assert '__main__' in source, f"{name} lacks a __main__ guard"
