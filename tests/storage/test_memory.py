"""Tests for memory-footprint estimation."""

from __future__ import annotations

import pytest

from repro.core.groups import Group
from repro.errors import StorageError
from repro.storage.memory import (
    ENTRY_BYTES,
    estimate_hstruct_bytes,
    estimate_rpstruct_bytes,
    estimate_transactions_bytes,
    megabytes,
)


class TestHStructEstimate:
    def test_scales_with_occurrences(self):
        small = estimate_hstruct_bytes(100, 10, 5)
        large = estimate_hstruct_bytes(200, 10, 5)
        assert large - small == 100 * ENTRY_BYTES

    def test_from_transactions(self):
        explicit = estimate_transactions_bytes([(1, 2), (3,)], item_count=3)
        assert explicit == estimate_hstruct_bytes(3, 2, 3)

    def test_negative_inputs_rejected(self):
        with pytest.raises(StorageError):
            estimate_hstruct_bytes(-1, 0, 0)


class TestRPStructEstimate:
    def test_group_pattern_amortized(self):
        """The same content costs less as a group: pattern stored once."""
        grouped = estimate_rpstruct_bytes(
            [Group((1, 2, 3), 50, tuple((9,) for _ in range(50)))], item_count=4
        )
        flat = estimate_transactions_bytes([(1, 2, 3, 9)] * 50, item_count=4)
        assert grouped < flat

    def test_monotone_in_tail_length(self):
        short = estimate_rpstruct_bytes([Group((1,), 2, ((2,),))], 2)
        long = estimate_rpstruct_bytes([Group((1,), 2, ((2, 3, 4),))], 2)
        assert long > short


class TestMegabytes:
    def test_value(self):
        assert megabytes(4) == 4 * 1024 * 1024

    def test_nonpositive_rejected(self):
        with pytest.raises(StorageError):
            megabytes(0)
