"""Tests for memory-limited mining with parallel projection (Section 5.3)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compression import compress
from repro.data.synthetic import random_database
from repro.data.transactions import TransactionDatabase
from repro.errors import MiningError
from repro.metrics.counters import CostCounters
from repro.mining.apriori import mine_apriori
from repro.mining.bruteforce import mine_bruteforce
from repro.storage.disk import SimulatedDisk
from repro.storage.projection import (
    mine_hmine_with_memory_budget,
    mine_rp_with_memory_budget,
)

HUGE = 10**12


class TestHMineBudget:
    @pytest.mark.parametrize("budget", [150, 800, 5000, HUGE])
    @pytest.mark.parametrize("seed", range(4))
    def test_exact_at_any_budget(self, budget, seed):
        db = random_database(25, 9, 7, seed=seed)
        reference = mine_bruteforce(db, 2)
        assert mine_hmine_with_memory_budget(db, 2, budget) == reference

    def test_large_budget_never_touches_disk(self):
        db = random_database(20, 8, 6, seed=1)
        counters = CostCounters()
        disk = SimulatedDisk(counters=counters)
        mine_hmine_with_memory_budget(db, 2, HUGE, disk=disk, counters=counters)
        assert counters.bytes_written == 0

    def test_tiny_budget_spills(self):
        db = random_database(30, 8, 6, seed=2)
        counters = CostCounters()
        disk = SimulatedDisk(counters=counters)
        mine_hmine_with_memory_budget(db, 2, 100, disk=disk, counters=counters)
        assert counters.bytes_written > 0
        assert counters.bytes_read == counters.bytes_written
        assert disk.stored_bytes() == 0  # partitions freed after mining

    def test_invalid_parameters_rejected(self, tiny_db):
        with pytest.raises(MiningError):
            mine_hmine_with_memory_budget(tiny_db, 0, 100)
        with pytest.raises(MiningError):
            mine_hmine_with_memory_budget(tiny_db, 1, 0)


class TestRPBudget:
    @pytest.mark.parametrize("budget", [120, 1000, HUGE])
    @pytest.mark.parametrize("seed", range(4))
    def test_exact_at_any_budget(self, budget, seed):
        db = random_database(25, 9, 7, seed=seed)
        old_patterns = mine_apriori(db, 4)
        if len(old_patterns) == 0:
            pytest.skip("no patterns at seed")
        compressed = compress(db, old_patterns, "mcp").compressed
        reference = mine_bruteforce(db, 2)
        assert mine_rp_with_memory_budget(compressed, 2, budget) == reference

    def test_rp_writes_fewer_bytes_than_hmine(self):
        """The recycling advantage persists on disk: projected compressed
        databases are smaller (group patterns stored once)."""
        db = TransactionDatabase([[1, 2, 3, 4, extra] for extra in range(5, 25)] * 3)
        old_patterns = mine_apriori(db, 50)
        compressed = compress(db, old_patterns, "mcp").compressed

        base_counters = CostCounters()
        mine_hmine_with_memory_budget(db, 3, 200, counters=base_counters)
        rp_counters = CostCounters()
        mine_rp_with_memory_budget(compressed, 3, 200, counters=rp_counters)
        assert (
            mine_hmine_with_memory_budget(db, 3, 200)
            == mine_rp_with_memory_budget(compressed, 3, 200)
        )
        assert rp_counters.bytes_written < base_counters.bytes_written

    def test_invalid_parameters_rejected(self):
        with pytest.raises(MiningError):
            mine_rp_with_memory_budget([], 1, 0)


@given(
    transactions=st.lists(
        st.lists(st.integers(0, 6), min_size=1, max_size=5),
        min_size=1,
        max_size=15,
    ),
    budget=st.sampled_from([80, 400, HUGE]),
)
@settings(max_examples=40, deadline=None)
def test_budget_never_changes_answers(transactions, budget):
    db = TransactionDatabase(transactions)
    reference = mine_bruteforce(db, 2)
    assert mine_hmine_with_memory_budget(db, 2, budget) == reference
    old_patterns = mine_bruteforce(db, 3)
    if len(old_patterns) > 0:
        compressed = compress(db, old_patterns, "mcp").compressed
        assert mine_rp_with_memory_budget(compressed, 2, budget) == reference


class TestPartitionMode:
    """Section 3.3's space-saving alternative to parallel projection."""

    @pytest.mark.parametrize("seed", range(5))
    def test_partition_mode_is_exact(self, seed):
        db = random_database(25, 9, 7, seed=seed)
        reference = mine_bruteforce(db, 2)
        got = mine_hmine_with_memory_budget(db, 2, 150, mode="partition")
        assert got == reference

    def test_partition_mode_needs_less_peak_disk(self):
        """The paper's §3.3 trade-off: partition-based projection "saves
        disk space" — peak residency must be lower than parallel's."""
        db = random_database(40, 8, 7, seed=3)
        parallel_disk = SimulatedDisk()
        mine_hmine_with_memory_budget(db, 2, 100, disk=parallel_disk, mode="parallel")
        partition_disk = SimulatedDisk()
        mine_hmine_with_memory_budget(db, 2, 100, disk=partition_disk, mode="partition")
        assert partition_disk.peak_stored_bytes < parallel_disk.peak_stored_bytes
        # ... and everything is freed at the end either way.
        assert partition_disk.stored_bytes() == 0
        assert parallel_disk.stored_bytes() == 0

    def test_unknown_mode_rejected(self, tiny_db):
        with pytest.raises(MiningError, match="unknown projection mode"):
            mine_hmine_with_memory_budget(tiny_db, 1, 100, mode="zigzag")

    @given(
        transactions=st.lists(
            st.lists(st.integers(0, 6), min_size=1, max_size=5),
            min_size=1,
            max_size=15,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_partition_and_parallel_agree(self, transactions):
        db = TransactionDatabase(transactions)
        a = mine_hmine_with_memory_budget(db, 2, 120, mode="parallel")
        b = mine_hmine_with_memory_budget(db, 2, 120, mode="partition")
        assert a == b
