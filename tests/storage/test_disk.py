"""Tests for the simulated disk."""

from __future__ import annotations

import pytest

from repro.core.groups import Group
from repro.errors import StorageError
from repro.metrics.counters import CostCounters
from repro.storage.disk import (
    ITEM_BYTES,
    RECORD_OVERHEAD_BYTES,
    DiskModel,
    SimulatedDisk,
    cgroups_byte_size,
    transactions_byte_size,
)


class TestByteSizing:
    def test_transactions(self):
        size = transactions_byte_size([(1, 2, 3), (4,)])
        assert size == 4 * ITEM_BYTES + 2 * RECORD_OVERHEAD_BYTES

    def test_cgroups_store_pattern_once(self):
        grouped = cgroups_byte_size([Group((1, 2), 3, ((3,), (4,), ()))])
        # Pattern(2 items) + 2 record headers + tails: (1+1 items + 2
        # headers) + one empty tail header.
        flat = transactions_byte_size([(1, 2, 3), (1, 2, 4), (1, 2)])
        assert grouped < flat


class TestSimulatedDisk:
    def test_write_read_roundtrip(self):
        disk = SimulatedDisk()
        disk.write("k", [1, 2, 3], 12)
        assert disk.read("k") == [1, 2, 3]
        assert "k" in disk

    def test_read_missing_raises(self):
        with pytest.raises(StorageError, match="no object"):
            SimulatedDisk().read("ghost")

    def test_negative_size_rejected(self):
        with pytest.raises(StorageError, match="negative"):
            SimulatedDisk().write("k", None, -1)

    def test_io_accounting(self):
        counters = CostCounters()
        disk = SimulatedDisk(counters=counters)
        disk.write("a", "x", 100)
        disk.write("b", "y", 50)
        disk.read("a")
        assert counters.bytes_written == 150
        assert counters.bytes_read == 100
        assert counters.disk_writes == 2
        assert counters.disk_reads == 1
        assert disk.total_bytes_written == 150
        assert disk.total_bytes_read == 100

    def test_simulated_time_uses_model(self):
        model = DiskModel(seek_seconds=1.0, bytes_per_second=100.0)
        disk = SimulatedDisk(model=model)
        disk.write("k", "x", 200)
        assert disk.simulated_seconds == pytest.approx(1.0 + 2.0)

    def test_delete_frees_without_io(self):
        disk = SimulatedDisk()
        disk.write("k", "x", 10)
        assert disk.stored_bytes() == 10
        disk.delete("k")
        assert disk.stored_bytes() == 0
        assert "k" not in disk
        assert disk.total_bytes_read == 0
