"""Tests for the exception hierarchy contract."""

from __future__ import annotations

import pytest

from repro.errors import (
    BenchmarkError,
    CompressionError,
    ConstraintError,
    DataError,
    MiningError,
    RecycleError,
    ReproError,
    StorageError,
)

ALL_ERRORS = [
    BenchmarkError,
    CompressionError,
    ConstraintError,
    DataError,
    MiningError,
    RecycleError,
    StorageError,
]


@pytest.mark.parametrize("error", ALL_ERRORS)
def test_every_error_derives_from_repro_error(error):
    assert issubclass(error, ReproError)
    assert issubclass(error, Exception)


def test_single_except_clause_catches_library_failures(tiny_db):
    """The documented contract: one except ReproError suffices."""
    from repro.data.io import read_transactions
    from repro.mining.hmine import mine_hmine

    with pytest.raises(ReproError):
        mine_hmine(tiny_db, 0)
    with pytest.raises(ReproError):
        read_transactions("/nonexistent/path/db.dat")


def test_programming_errors_are_not_masked(tiny_db):
    """Genuine bugs (wrong types) must not come out as ReproError."""
    from repro.mining.hmine import mine_hmine

    with pytest.raises(TypeError):
        mine_hmine(tiny_db, None)  # type: ignore[arg-type]
