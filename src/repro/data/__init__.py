"""Transaction data substrate: databases, catalogs, I/O and generators."""

from repro.data.encoded import EncodedDatabase, bit_positions
from repro.data.datasets import (
    DATASETS,
    DatasetSpec,
    connect4_like,
    forest_like,
    get_dataset,
    pumsb_like,
    weather_like,
)
from repro.data.io import (
    read_patterns,
    read_transactions,
    write_patterns,
    write_transactions,
)
from repro.data.items import Item, ItemTable
from repro.data.patterns import (
    NDI_RULE_DEPTH,
    REPRESENTATIONS,
    CondensedPatternSet,
    Pattern,
    PatternSet,
    derivability_bounds,
    pattern,
)
from repro.data.synthetic import (
    QuestParams,
    attribute_value_database,
    quest_database,
    random_database,
)
from repro.data.transactions import TransactionDatabase
from repro.data.versioned import DatabaseDelta, VersionedDatabase

__all__ = [
    "DATASETS",
    "CondensedPatternSet",
    "DatabaseDelta",
    "DatasetSpec",
    "EncodedDatabase",
    "Item",
    "ItemTable",
    "NDI_RULE_DEPTH",
    "Pattern",
    "PatternSet",
    "QuestParams",
    "REPRESENTATIONS",
    "TransactionDatabase",
    "VersionedDatabase",
    "attribute_value_database",
    "bit_positions",
    "connect4_like",
    "derivability_bounds",
    "pattern",
    "forest_like",
    "get_dataset",
    "pumsb_like",
    "quest_database",
    "random_database",
    "read_patterns",
    "read_transactions",
    "weather_like",
    "write_patterns",
    "write_transactions",
]
