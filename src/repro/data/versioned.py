"""Versioned database chains: deltas, lineage and fingerprint links.

The paper's Section 2 extended problem statement covers recycling when
*the database itself changes*. This module gives that scenario an
identity model: a tenant database is not a single fingerprint but a
**chain of versions**, each linked to its parent by the delta that
produced it.

:class:`DatabaseDelta` is a batch of appended transactions plus a batch
of deleted transaction ids, normalized and content-addressed.
:class:`VersionedDatabase` wraps a :class:`TransactionDatabase` with its
position in the chain — ``fingerprint`` (the content hash of this
version), ``parent_fingerprint`` (the version it was derived from) and
``delta_fingerprint`` (the change between them).

Two invariants make the chain usable as a cache-key lineage:

* **Tids are stable and never reused.** Applying a delta preserves the
  tids of surviving transactions and assigns appended transactions fresh
  tids past the chain-wide maximum, so a tid means the same tuple in
  every version that contains it. (Contrast
  :meth:`TransactionDatabase.extend`, which renumbers.)
* **Append-only growth is fingerprint-compatible with direct
  construction.** A fresh database uses tids ``0..n-1``; appending ``m``
  transactions yields tids ``0..n+m-1`` — exactly what building the
  grown database directly would produce, so the two share a fingerprint
  and warehouse entries transfer.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable

from repro.data.transactions import TransactionDatabase
from repro.errors import DataError


@dataclass(frozen=True)
class DatabaseDelta:
    """One batch of changes: transactions to append, tids to delete.

    ``appends`` is normalized like :class:`TransactionDatabase`
    transactions (sorted tuples of distinct non-negative ints);
    ``deletes`` is a frozenset of transaction ids. A delta may carry
    both — deletions are applied first, then appends, matching the
    paper's ``DB - db- ∪ db+`` composition.
    """

    appends: tuple[tuple[int, ...], ...] = ()
    deletes: frozenset[int] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        normalized: list[tuple[int, ...]] = []
        for raw in self.appends:
            tx = tuple(sorted(set(raw)))
            if any((not isinstance(i, int)) or i < 0 for i in tx):
                raise DataError(f"appended transaction {raw!r} has bad items")
            normalized.append(tx)
        object.__setattr__(self, "appends", tuple(normalized))
        doomed = frozenset(self.deletes)
        if any((not isinstance(t, int)) or t < 0 for t in doomed):
            raise DataError(f"deleted tids must be non-negative ints: {self.deletes!r}")
        object.__setattr__(self, "deletes", doomed)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def append(cls, transactions: Iterable[Iterable[int]]) -> "DatabaseDelta":
        """An insert-only delta."""
        return cls(appends=tuple(tuple(tx) for tx in transactions))

    @classmethod
    def delete(cls, tids: Iterable[int]) -> "DatabaseDelta":
        """A delete-only delta (by transaction id)."""
        return cls(deletes=frozenset(tids))

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return not self.appends and not self.deletes

    @property
    def is_insert_only(self) -> bool:
        """True when FUP-style patching is even a candidate."""
        return not self.deletes

    @property
    def size(self) -> int:
        """Rows touched — the delta-distance unit used by the planner."""
        return len(self.appends) + len(self.deletes)

    def delta_fingerprint(self) -> str:
        """A stable content hash of the change itself."""
        digest = hashlib.sha256()
        for tx in self.appends:
            digest.update(b"+")
            digest.update(" ".join(map(str, tx)).encode("ascii"))
            digest.update(b"\n")
        for tid in sorted(self.deletes):
            digest.update(b"-")
            digest.update(str(tid).encode("ascii"))
            digest.update(b"\n")
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------
    def apply(
        self, db: TransactionDatabase, next_tid: int | None = None
    ) -> TransactionDatabase:
        """The database after this delta: deletions first, then appends.

        Surviving transactions keep their tids; appended transactions get
        fresh consecutive tids starting at ``next_tid`` (default: one
        past the largest current tid). Deleting an unknown tid is a
        :class:`DataError` — silently ignoring it would desynchronize the
        fingerprint chain from the caller's view of the data.
        """
        unknown = self.deletes - set(db.tids)
        if unknown:
            raise DataError(f"delta deletes unknown tids {sorted(unknown)[:10]}")
        kept_tx: list[tuple[int, ...]] = []
        kept_tids: list[int] = []
        for tid, tx in zip(db.tids, db.transactions):
            if tid not in self.deletes:
                kept_tx.append(tx)
                kept_tids.append(tid)
        if next_tid is None:
            next_tid = (max(db.tids) + 1) if db.tids else 0
        append_tids = range(next_tid, next_tid + len(self.appends))
        return TransactionDatabase(
            kept_tx + list(self.appends), tids=kept_tids + list(append_tids)
        )


class VersionedDatabase:
    """A database plus its position in a fingerprint chain.

    Versions form a singly-linked chain back to the initial load; each
    link carries the :class:`DatabaseDelta` that produced it, so any
    descendant can reconstruct the exact change relative to any chain
    ancestor (:meth:`delta_from`) — the quantity the planner's update
    path patches from.
    """

    def __init__(
        self,
        db: TransactionDatabase,
        *,
        version: int = 0,
        parent: "VersionedDatabase | None" = None,
        delta: DatabaseDelta | None = None,
        next_tid: int | None = None,
    ) -> None:
        self._db = db
        self._version = version
        self._parent = parent
        self._delta = delta
        if next_tid is None:
            next_tid = (max(db.tids) + 1) if db.tids else 0
        self._next_tid = next_tid

    @classmethod
    def initial(cls, db: TransactionDatabase) -> "VersionedDatabase":
        """Version 0 of a chain: no parent, no delta."""
        return cls(db)

    # ------------------------------------------------------------------
    # chain identity
    # ------------------------------------------------------------------
    @property
    def db(self) -> TransactionDatabase:
        return self._db

    @property
    def version(self) -> int:
        return self._version

    @property
    def parent(self) -> "VersionedDatabase | None":
        return self._parent

    @property
    def delta(self) -> DatabaseDelta | None:
        """The delta that produced this version (None at the root)."""
        return self._delta

    @property
    def next_tid(self) -> int:
        """The chain-wide fresh-tid high-water mark at this version.

        What :meth:`apply` hands the next delta; durable chain records
        carry it so a restored chain keeps assigning tids exactly where
        the pre-crash chain would have.
        """
        return self._next_tid

    def fingerprint(self) -> str:
        """This version's content hash (same key the warehouse uses)."""
        return self._db.fingerprint()

    @property
    def parent_fingerprint(self) -> str | None:
        return self._parent.fingerprint() if self._parent is not None else None

    @property
    def delta_fingerprint(self) -> str | None:
        return self._delta.delta_fingerprint() if self._delta is not None else None

    def __repr__(self) -> str:
        return (
            f"VersionedDatabase(version={self._version}, n={len(self._db)}, "
            f"fingerprint={self.fingerprint()[:12]})"
        )

    # ------------------------------------------------------------------
    # evolution
    # ------------------------------------------------------------------
    def apply(self, delta: DatabaseDelta) -> "VersionedDatabase":
        """The child version after ``delta``; this version is unchanged.

        Appended transactions receive tids past the chain-wide maximum,
        so a tid deleted in one version can never be reincarnated with
        different content later in the chain — which is what makes
        :meth:`delta_from` an exact tid-diff.
        """
        new_db = delta.apply(self._db, next_tid=self._next_tid)
        return VersionedDatabase(
            new_db,
            version=self._version + 1,
            parent=self,
            delta=delta,
            next_tid=self._next_tid + len(delta.appends),
        )

    # ------------------------------------------------------------------
    # lineage queries
    # ------------------------------------------------------------------
    def chain(self) -> tuple["VersionedDatabase", ...]:
        """This version first, then ancestors back to the root."""
        out: list[VersionedDatabase] = []
        node: VersionedDatabase | None = self
        while node is not None:
            out.append(node)
            node = node._parent
        return tuple(out)

    def lineage(self) -> tuple[tuple[str, int], ...]:
        """``(fingerprint, delta_distance_from_self)`` pairs, self first.

        Distance is the cumulative number of appended/deleted rows along
        the chain — the cost unit :meth:`PatternWarehouse
        <repro.service.PatternWarehouse>` ranks ancestor feedstock by.
        """
        out: list[tuple[str, int]] = []
        node: VersionedDatabase | None = self
        distance = 0
        while node is not None:
            out.append((node.fingerprint(), distance))
            if node._delta is not None:
                distance += node._delta.size
            node = node._parent
        return tuple(out)

    def ancestor(self, fingerprint: str) -> "VersionedDatabase | None":
        """The chain member with ``fingerprint`` (possibly self), or None."""
        for node in self.chain():
            if node.fingerprint() == fingerprint:
                return node
        return None

    def delta_from(self, ancestor: "VersionedDatabase") -> DatabaseDelta:
        """The exact change from ``ancestor``'s database to this one.

        Computed as a tid-diff, which is exact within a chain because
        tids are never reused: a tid present in both versions is the same
        tuple; one only in the ancestor was deleted; one only here was
        appended. (Defensively, a tid whose content differs is treated as
        delete + append, so the result is correct even for databases
        built outside this chain's tid discipline.)

        The patch is content-exact: applying the result to ``ancestor``
        yields a database with the same transactions and supports, though
        appended rows may carry different tids than this version's.
        """
        adb = ancestor.db if isinstance(ancestor, VersionedDatabase) else ancestor
        theirs = dict(zip(adb.tids, adb.transactions))
        mine = dict(zip(self._db.tids, self._db.transactions))
        deletes = {
            tid for tid, tx in theirs.items() if mine.get(tid, None) != tx
        }
        appends = tuple(
            tx
            for tid, tx in zip(self._db.tids, self._db.transactions)
            if theirs.get(tid, None) != tx
        )
        return DatabaseDelta(appends=appends, deletes=frozenset(deletes))
