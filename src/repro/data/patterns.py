"""Frequent patterns and pattern sets.

A *pattern* (itemset) is represented as a ``frozenset[int]``.
:class:`PatternSet` is the universal result type of every miner in this
library and the input to the recycling pipeline: the patterns mined at the
old constraints are exactly what gets recycled into compression.

This lives in the data layer — it is a pure value object with no mining
logic — so that pattern I/O (:mod:`repro.data.io`) stays inside the
layer. :mod:`repro.mining.patterns` re-exports it under its historical
name.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping

from repro.errors import MiningError

Pattern = frozenset[int]


def pattern(items: Iterable[int]) -> Pattern:
    """Build a pattern from any iterable of item ids."""
    return frozenset(items)


class PatternSet:
    """A mapping from pattern to absolute support.

    Supports the operations the recycling pipeline needs: filtering on new
    constraints (the *tighten* path), utility-ordered iteration (the
    compression phase), and set-equality comparison (the correctness
    invariant in the test suite).

    >>> ps = PatternSet({frozenset({1}): 3, frozenset({1, 2}): 2})
    >>> ps.support(frozenset({1, 2}))
    2
    >>> len(ps.filter_min_support(3))
    1
    """

    def __init__(self, patterns: Mapping[Pattern, int] | None = None) -> None:
        self._supports: dict[Pattern, int] = {}
        if patterns:
            for items, support in patterns.items():
                self.add(items, support)

    # ------------------------------------------------------------------
    # construction & mutation
    # ------------------------------------------------------------------
    def add(self, items: Iterable[int], support: int) -> None:
        """Record a pattern. Re-adding must agree on the support."""
        key = frozenset(items)
        if not key:
            raise MiningError("the empty pattern cannot be stored")
        if support < 0:
            raise MiningError(f"negative support {support} for {sorted(key)}")
        existing = self._supports.get(key)
        if existing is not None and existing != support:
            raise MiningError(
                f"conflicting supports for {sorted(key)}: {existing} vs {support}"
            )
        self._supports[key] = support

    # ------------------------------------------------------------------
    # mapping protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._supports)

    def __iter__(self) -> Iterator[Pattern]:
        return iter(self._supports)

    def __contains__(self, items: object) -> bool:
        if isinstance(items, frozenset):
            return items in self._supports
        if isinstance(items, Iterable):
            return frozenset(items) in self._supports  # type: ignore[arg-type]
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PatternSet):
            return NotImplemented
        return self._supports == other._supports

    def __hash__(self) -> int:  # pragma: no cover - not hashable by design
        raise TypeError("PatternSet is mutable and unhashable")

    def __repr__(self) -> str:
        return f"PatternSet(n={len(self)}, max_len={self.max_length()})"

    def support(self, items: Iterable[int]) -> int:
        """Support of a stored pattern; raises if the pattern is absent."""
        key = frozenset(items)
        try:
            return self._supports[key]
        except KeyError:
            raise MiningError(f"pattern {sorted(key)} not in set") from None

    def get(self, items: Iterable[int], default: int | None = None) -> int | None:
        """Support of a pattern, or ``default`` when absent."""
        return self._supports.get(frozenset(items), default)

    def items(self) -> Iterator[tuple[Pattern, int]]:
        """Iterate ``(pattern, support)`` pairs."""
        return iter(self._supports.items())

    def as_dict(self) -> dict[Pattern, int]:
        """A shallow copy of the underlying mapping."""
        return dict(self._supports)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def max_length(self) -> int:
        """Length of the longest pattern (0 when empty). Table 3 reports this."""
        return max((len(p) for p in self._supports), default=0)

    def count_by_length(self) -> dict[int, int]:
        """Histogram ``{pattern_length: count}``."""
        histogram: dict[int, int] = {}
        for p in self._supports:
            histogram[len(p)] = histogram.get(len(p), 0) + 1
        return dict(sorted(histogram.items()))

    # ------------------------------------------------------------------
    # derived sets
    # ------------------------------------------------------------------
    def filter(self, predicate: Callable[[Pattern, int], bool]) -> "PatternSet":
        """Patterns satisfying ``predicate(pattern, support)``.

        This is the paper's *tightened constraints* path: when the new
        constraint set only shrinks the solution space, the new result is
        a filter over the old one — no mining required.
        """
        result = PatternSet()
        for items, support in self._supports.items():
            if predicate(items, support):
                result._supports[items] = support
        return result

    def filter_min_support(self, min_support: int) -> "PatternSet":
        """Patterns whose support is at least ``min_support``."""
        return self.filter(lambda _items, support: support >= min_support)

    def maximal(self) -> "PatternSet":
        """The maximal patterns (no frequent superset in this set)."""
        by_length = sorted(self._supports, key=len, reverse=True)
        maximal: list[Pattern] = []
        result = PatternSet()
        for candidate in by_length:
            if not any(candidate < kept for kept in maximal):
                maximal.append(candidate)
                result._supports[candidate] = self._supports[candidate]
        return result

    def closed(self) -> "PatternSet":
        """The closed patterns (no superset with identical support)."""
        result = PatternSet()
        for items, support in self._supports.items():
            is_closed = not any(
                items < other and other_support == support
                for other, other_support in self._supports.items()
            )
            if is_closed:
                result._supports[items] = support
        return result

    def sorted_patterns(self) -> list[tuple[tuple[int, ...], int]]:
        """Deterministically ordered ``(sorted_items, support)`` list."""
        return sorted(
            ((tuple(sorted(p)), s) for p, s in self._supports.items()),
            key=lambda entry: (len(entry[0]), entry[0]),
        )
