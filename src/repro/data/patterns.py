"""Frequent patterns and pattern sets.

A *pattern* (itemset) is represented as a ``frozenset[int]``.
:class:`PatternSet` is the universal result type of every miner in this
library and the input to the recycling pipeline: the patterns mined at the
old constraints are exactly what gets recycled into compression.

This lives in the data layer — it is a pure value object with no mining
logic — so that pattern I/O (:mod:`repro.data.io`) stays inside the
layer. :mod:`repro.mining.patterns` re-exports it under its historical
name.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, Iterable, Iterator, Mapping

from repro.errors import MiningError

Pattern = frozenset[int]


def pattern(items: Iterable[int]) -> Pattern:
    """Build a pattern from any iterable of item ids."""
    return frozenset(items)


class PatternSet:
    """A mapping from pattern to absolute support.

    Supports the operations the recycling pipeline needs: filtering on new
    constraints (the *tighten* path), utility-ordered iteration (the
    compression phase), and set-equality comparison (the correctness
    invariant in the test suite).

    >>> ps = PatternSet({frozenset({1}): 3, frozenset({1, 2}): 2})
    >>> ps.support(frozenset({1, 2}))
    2
    >>> len(ps.filter_min_support(3))
    1
    """

    def __init__(self, patterns: Mapping[Pattern, int] | None = None) -> None:
        self._supports: dict[Pattern, int] = {}
        if patterns:
            for items, support in patterns.items():
                self.add(items, support)

    # ------------------------------------------------------------------
    # construction & mutation
    # ------------------------------------------------------------------
    def add(self, items: Iterable[int], support: int) -> None:
        """Record a pattern. Re-adding must agree on the support."""
        key = frozenset(items)
        if not key:
            raise MiningError("the empty pattern cannot be stored")
        if support < 0:
            raise MiningError(f"negative support {support} for {sorted(key)}")
        existing = self._supports.get(key)
        if existing is not None and existing != support:
            raise MiningError(
                f"conflicting supports for {sorted(key)}: {existing} vs {support}"
            )
        self._supports[key] = support

    # ------------------------------------------------------------------
    # mapping protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._supports)

    def __iter__(self) -> Iterator[Pattern]:
        return iter(self._supports)

    def __contains__(self, items: object) -> bool:
        if isinstance(items, frozenset):
            return items in self._supports
        if isinstance(items, Iterable):
            return frozenset(items) in self._supports  # type: ignore[arg-type]
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PatternSet):
            return NotImplemented
        return self._supports == other._supports

    def __hash__(self) -> int:  # pragma: no cover - not hashable by design
        raise TypeError("PatternSet is mutable and unhashable")

    def __repr__(self) -> str:
        return f"PatternSet(n={len(self)}, max_len={self.max_length()})"

    def support(self, items: Iterable[int]) -> int:
        """Support of a stored pattern; raises if the pattern is absent."""
        key = frozenset(items)
        try:
            return self._supports[key]
        except KeyError:
            raise MiningError(f"pattern {sorted(key)} not in set") from None

    def get(self, items: Iterable[int], default: int | None = None) -> int | None:
        """Support of a pattern, or ``default`` when absent."""
        return self._supports.get(frozenset(items), default)

    def items(self) -> Iterator[tuple[Pattern, int]]:
        """Iterate ``(pattern, support)`` pairs."""
        return iter(self._supports.items())

    def as_dict(self) -> dict[Pattern, int]:
        """A shallow copy of the underlying mapping."""
        return dict(self._supports)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def max_length(self) -> int:
        """Length of the longest pattern (0 when empty). Table 3 reports this."""
        return max((len(p) for p in self._supports), default=0)

    def count_by_length(self) -> dict[int, int]:
        """Histogram ``{pattern_length: count}``."""
        histogram: dict[int, int] = {}
        for p in self._supports:
            histogram[len(p)] = histogram.get(len(p), 0) + 1
        return dict(sorted(histogram.items()))

    # ------------------------------------------------------------------
    # derived sets
    # ------------------------------------------------------------------
    def filter(self, predicate: Callable[[Pattern, int], bool]) -> "PatternSet":
        """Patterns satisfying ``predicate(pattern, support)``.

        This is the paper's *tightened constraints* path: when the new
        constraint set only shrinks the solution space, the new result is
        a filter over the old one — no mining required.
        """
        result = PatternSet()
        for items, support in self._supports.items():
            if predicate(items, support):
                result._supports[items] = support
        return result

    def filter_min_support(self, min_support: int) -> "PatternSet":
        """Patterns whose support is at least ``min_support``."""
        return self.filter(lambda _items, support: support >= min_support)

    def maximal(self) -> "PatternSet":
        """The maximal patterns (no frequent superset in this set)."""
        by_length = sorted(self._supports, key=len, reverse=True)
        maximal: list[Pattern] = []
        result = PatternSet()
        for candidate in by_length:
            if not any(candidate < kept for kept in maximal):
                maximal.append(candidate)
                result._supports[candidate] = self._supports[candidate]
        return result

    def closed(self) -> "PatternSet":
        """The closed patterns (no superset with identical support)."""
        result = PatternSet()
        for items, support in self._supports.items():
            is_closed = not any(
                items < other and other_support == support
                for other, other_support in self._supports.items()
            )
            if is_closed:
                result._supports[items] = support
        return result

    def sorted_patterns(self) -> list[tuple[tuple[int, ...], int]]:
        """Deterministically ordered ``(sorted_items, support)`` list."""
        return sorted(
            ((tuple(sorted(p)), s) for p, s in self._supports.items()),
            key=lambda entry: (len(entry[0]), entry[0]),
        )


# ---------------------------------------------------------------------------
# condensed representations
# ---------------------------------------------------------------------------

#: Representations a warehouse entry (or pattern file) can use. ``full``
#: stores every frequent pattern; ``closed`` stores only patterns with no
#: superset of identical support; ``ndi`` stores only the non-derivable
#: patterns of Calders & Goethals, whose supports cannot be deduced from
#: their subsets' supports.
REPRESENTATIONS = ("full", "closed", "ndi")

#: Default deduction-rule depth for the ``ndi`` representation. Depth d
#: evaluates the inclusion–exclusion rules that remove up to d items from
#: the target set: depth 1 is the subset upper bound
#: ``supp(I) <= supp(I \ {a})``, depth 2 adds the pair lower bound
#: ``supp(I) >= supp(I\a) + supp(I\b) - supp(I\ab)`` — the same bound
#: ``PatternWarehouse.verify_entry`` audits. Full Calders–Goethals rules
#: cost 3^|I| dictionary probes per itemset; depth 2 keeps condensation
#: linear in |I|^2 while still collapsing most dense-data redundancy.
#: Condensing and expanding with the *same* depth is what makes the
#: representation lossless, so the depth travels with the object and is
#: recorded in the file header.
NDI_RULE_DEPTH = 2


def derivability_bounds(
    items: Iterable[int],
    lookup: Callable[[Pattern], int],
    depth: int = NDI_RULE_DEPTH,
) -> tuple[int, int]:
    """Calders–Goethals deduction bounds ``(lower, upper)`` for a pattern.

    ``lookup`` must return the exact support of every proper subset the
    rules touch (sets obtained by removing at most ``depth`` items), with
    ``lookup(frozenset())`` answering the transaction count. Removing an
    odd number of items yields an upper bound, an even number a lower
    bound; the pattern's support is *derivable* exactly when the two
    bounds meet.
    """
    itemset = frozenset(items)
    lower, upper = 0, lookup(frozenset())
    ordered = sorted(itemset)
    for d in range(1, min(depth, len(itemset)) + 1):
        for removed in combinations(ordered, d):
            delta = 0
            for size in range(1, d + 1):
                sign = 1 if size % 2 == 1 else -1
                for gone in combinations(removed, size):
                    delta += sign * lookup(itemset.difference(gone))
            if d % 2 == 1:
                upper = min(upper, delta)
            else:
                lower = max(lower, delta)
    return max(lower, 0), upper


class CondensedPatternSet:
    """A frequent-pattern set stored through a condensed representation.

    The object is a drop-in warehouse payload: it remembers only the
    *entries* of its representation (all patterns for ``full``, the
    closed patterns for ``closed``, the non-derivable patterns for
    ``ndi``) plus the metadata needed to reconstruct the exact frequent
    set — the mining threshold, and for ``ndi`` the transaction count and
    rule depth. :meth:`expand` is lossless and cached; :meth:`support_of`
    answers point queries without materializing the expansion.

    Both condensations are *threshold independent*: whether a pattern is
    closed (or derivable) does not change when the support threshold is
    raised, so :meth:`filter_min_support` can tighten the threshold by
    filtering the entries alone — the warehouse filter path never needs
    the full set.

    >>> full = PatternSet({frozenset({1}): 3, frozenset({2}): 3,
    ...                    frozenset({1, 2}): 3})
    >>> condensed = CondensedPatternSet.condense(full, 2, "closed")
    >>> len(condensed)  # {1,2} subsumes both singletons
    1
    >>> condensed.expand() == full
    True
    """

    def __init__(
        self,
        representation: str,
        entries: "Mapping[Pattern, int] | PatternSet",
        absolute_support: int,
        *,
        n_transactions: int | None = None,
        ndi_depth: int = NDI_RULE_DEPTH,
        expanded_count: int | None = None,
    ) -> None:
        if representation not in REPRESENTATIONS:
            raise MiningError(
                f"unknown representation {representation!r}; "
                f"expected one of {REPRESENTATIONS}"
            )
        if absolute_support < 0:
            raise MiningError(f"negative absolute_support {absolute_support}")
        if representation == "ndi":
            if n_transactions is None:
                raise MiningError(
                    "the ndi representation needs n_transactions: the "
                    "empty-set deduction rules use supp({}) = |D|"
                )
            if ndi_depth < 1:
                raise MiningError(f"ndi_depth must be >= 1, got {ndi_depth}")
        self.representation = representation
        self.absolute_support = absolute_support
        self.n_transactions = n_transactions
        self.ndi_depth = ndi_depth
        self._entries: dict[Pattern, int] = {}
        for items, support in entries.items():
            key = frozenset(items)
            if not key:
                raise MiningError("the empty pattern cannot be a condensed entry")
            if support < 0:
                raise MiningError(f"negative support {support} for {sorted(key)}")
            # Entries below the threshold are tolerated here (so corrupt
            # stored sets can be held and audited); file reads reject
            # them up front and quarantine the file.
            self._entries[key] = support
        self._expanded: PatternSet | None = None
        self._expanded_count = expanded_count
        self._support_cache: dict[Pattern, int | None] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def condense(
        cls,
        patterns: PatternSet,
        absolute_support: int,
        representation: str,
        *,
        n_transactions: int | None = None,
        ndi_depth: int = NDI_RULE_DEPTH,
    ) -> "CondensedPatternSet":
        """Condense an exact frequent set into the chosen representation.

        ``patterns`` must be a complete (downward-closed) frequent set at
        ``absolute_support`` — exactly what every miner in the registry
        produces. For ``ndi`` the caller must supply ``n_transactions``.
        """
        if representation == "full":
            entries: Mapping[Pattern, int] = patterns.as_dict()
        elif representation == "closed":
            entries = cls._closed_entries(patterns)
        elif representation == "ndi":
            if n_transactions is None:
                raise MiningError(
                    "condensing to ndi requires n_transactions"
                )
            entries = cls._ndi_entries(patterns, n_transactions, ndi_depth)
        else:
            raise MiningError(
                f"unknown representation {representation!r}; "
                f"expected one of {REPRESENTATIONS}"
            )
        return cls(
            representation,
            entries,
            absolute_support,
            n_transactions=n_transactions,
            ndi_depth=ndi_depth,
            expanded_count=len(patterns),
        )

    @staticmethod
    def _closed_entries(patterns: PatternSet) -> dict[Pattern, int]:
        """Closed patterns via immediate-superset marking, O(N * maxlen).

        A pattern is non-closed iff some superset shares its support, and
        support is antitone along the subset chain to that superset, so
        checking *immediate* supersets inside the frequent set suffices.
        """
        supports = patterns.as_dict()
        non_closed: set[Pattern] = set()
        for items, support in supports.items():
            for item in items:
                sub = items.difference((item,))
                if sub and supports.get(sub) == support:
                    non_closed.add(sub)
        return {p: s for p, s in supports.items() if p not in non_closed}

    @staticmethod
    def _ndi_entries(
        patterns: PatternSet, n_transactions: int, ndi_depth: int
    ) -> dict[Pattern, int]:
        """Non-derivable patterns under depth-limited deduction rules."""
        supports = patterns.as_dict()

        def lookup(subset: Pattern) -> int:
            if not subset:
                return n_transactions
            try:
                return supports[subset]
            except KeyError:
                raise MiningError(
                    f"cannot condense to ndi: subset {sorted(subset)} is "
                    "missing — the input is not a downward-closed frequent set"
                ) from None

        entries: dict[Pattern, int] = {}
        for items, support in supports.items():
            if len(items) == 1:
                entries[items] = support
                continue
            lower, upper = derivability_bounds(items, lookup, ndi_depth)
            if lower != upper:
                entries[items] = support
        return entries

    # ------------------------------------------------------------------
    # mapping-ish protocol over the condensed entries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of condensed *entries* (not expanded patterns)."""
        return len(self._entries)

    def __iter__(self) -> Iterator[Pattern]:
        return iter(self._entries)

    def items(self) -> Iterator[tuple[Pattern, int]]:
        """Iterate the condensed ``(pattern, support)`` entries.

        Byte accounting (``patterns_byte_size``) charges what this
        yields, so an entry's budget cost is its condensed size.
        """
        return iter(self._entries.items())

    def as_dict(self) -> dict[Pattern, int]:
        return dict(self._entries)

    def entry_patterns(self) -> PatternSet:
        """The condensed entries as a plain :class:`PatternSet`.

        Every entry is a genuine frequent pattern with its exact support,
        which is all the compression phase requires of recycling
        feedstock — so this view feeds ``recycle_mine`` directly, no
        expansion needed.
        """
        result = PatternSet()
        result._supports = dict(self._entries)
        return result

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CondensedPatternSet):
            return NotImplemented
        return (
            self.representation == other.representation
            and self.absolute_support == other.absolute_support
            and self.n_transactions == other.n_transactions
            and self.ndi_depth == other.ndi_depth
            and self._entries == other._entries
        )

    def __hash__(self) -> int:  # pragma: no cover - not hashable by design
        raise TypeError("CondensedPatternSet is unhashable")

    def __repr__(self) -> str:
        return (
            f"CondensedPatternSet(repr={self.representation!r}, "
            f"entries={len(self._entries)}, "
            f"absolute_support={self.absolute_support})"
        )

    def __getstate__(self) -> dict:
        """Pickle without the caches (shard feedstock crosses processes)."""
        state = self.__dict__.copy()
        state["_expanded"] = None
        state["_support_cache"] = {}
        return state

    # ------------------------------------------------------------------
    # gauges
    # ------------------------------------------------------------------
    def expanded_count(self) -> int:
        """Number of patterns in the exact frequent set (expands if unknown)."""
        if self._expanded_count is None:
            self._expanded_count = len(self.expand())
        return self._expanded_count

    def known_expanded_count(self) -> int | None:
        """The expanded count if already known, without forcing expansion."""
        if self._expanded is not None:
            return len(self._expanded)
        return self._expanded_count

    def condensation_ratio(self) -> float:
        """``expanded patterns / condensed entries`` (1.0 when empty)."""
        if not self._entries:
            return 1.0
        return self.expanded_count() / len(self._entries)

    # ------------------------------------------------------------------
    # lossless expansion
    # ------------------------------------------------------------------
    def expand(self) -> PatternSet:
        """Materialize the exact frequent set. Cached after first call."""
        if self._expanded is None:
            if self.representation == "full":
                expanded = PatternSet()
                expanded._supports = dict(self._entries)
            elif self.representation == "closed":
                expanded = self._expand_closed()
            else:
                expanded = self._expand_ndi()
            self._expanded = expanded
            self._expanded_count = len(expanded)
        return self._expanded

    def _expand_closed(self) -> PatternSet:
        """Every subset of a closed set, support = max over closed supersets.

        Iterating entries by descending support makes the first writer
        the maximum, so each subset is assigned exactly once.
        """
        expanded: dict[Pattern, int] = {}
        by_support = sorted(self._entries.items(), key=lambda kv: -kv[1])
        for entry, support in by_support:
            ordered = sorted(entry)
            for size in range(1, len(ordered) + 1):
                for combo in combinations(ordered, size):
                    expanded.setdefault(frozenset(combo), support)
        result = PatternSet()
        result._supports = expanded
        return result

    def _expand_ndi(self) -> PatternSet:
        """Level-wise reconstruction: derive where possible, look up the rest.

        Apriori candidate generation over the already-reconstructed
        level; a candidate whose depth-limited bounds meet is derivable
        (support = the bound), otherwise its support must be stored — and
        a non-derivable candidate absent from the entries was infrequent,
        which is what prunes the search.
        """
        n = self.n_transactions
        assert n is not None  # enforced in __init__
        threshold = self.absolute_support
        supports: dict[Pattern, int] = {}

        def lookup(subset: Pattern) -> int:
            return n if not subset else supports[subset]

        current = {
            p: s
            for p, s in self._entries.items()
            if len(p) == 1 and s >= threshold
        }
        supports.update(current)
        while current:
            next_level: dict[Pattern, int] = {}
            rows = sorted(tuple(sorted(p)) for p in current)
            candidates: set[Pattern] = set()
            for i, head in enumerate(rows):
                for j in range(i + 1, len(rows)):
                    if rows[j][:-1] != head[:-1]:
                        break
                    candidates.add(frozenset(head) | frozenset(rows[j]))
            for cand in candidates:
                if any(cand.difference((x,)) not in current for x in cand):
                    continue
                lower, upper = derivability_bounds(cand, lookup, self.ndi_depth)
                if lower == upper:
                    support = lower
                else:
                    stored = self._entries.get(cand)
                    if stored is None:
                        continue
                    support = stored
                if support >= threshold:
                    next_level[cand] = support
            supports.update(next_level)
            current = next_level
        result = PatternSet()
        result._supports = supports
        return result

    # ------------------------------------------------------------------
    # point queries & filtering
    # ------------------------------------------------------------------
    def support_of(self, items: Iterable[int]) -> int | None:
        """Exact support of a frequent pattern, ``None`` if not frequent.

        Answers from the condensed entries directly — closed via the
        max-support superset, ndi via memoized deduction — without
        materializing the expansion (unless it is already cached).
        """
        key = frozenset(items)
        if not key:
            return None
        if self._expanded is not None:
            return self._expanded.get(key)
        if self.representation == "full":
            return self._entries.get(key)
        if self.representation == "closed":
            best: int | None = None
            for entry, support in self._entries.items():
                if key <= entry and (best is None or support > best):
                    best = support
            return best
        return self._ndi_support_of(key)

    def _ndi_support_of(self, key: Pattern) -> int | None:
        n = self.n_transactions
        assert n is not None
        threshold = self.absolute_support
        cache = self._support_cache

        def resolve(subset: Pattern) -> int | None:
            if subset in cache:
                return cache[subset]
            if len(subset) == 1:
                stored = self._entries.get(subset)
                value = stored if stored is not None and stored >= threshold else None
            elif any(resolve(subset.difference((x,))) is None for x in subset):
                value = None  # an infrequent subset makes the set infrequent
            else:
                lower, upper = derivability_bounds(
                    subset, lambda s: n if not s else cache[s], self.ndi_depth
                )
                if lower == upper:
                    value = lower if lower >= threshold else None
                else:
                    value = self._entries.get(subset)
            cache[subset] = value
            return value

        return resolve(key)

    def __contains__(self, items: object) -> bool:
        if isinstance(items, Iterable):
            return self.support_of(items) is not None  # type: ignore[arg-type]
        return False

    def filter_min_support(self, min_support: int) -> "CondensedPatternSet":
        """The condensed representation at a tightened threshold.

        Closedness and derivability do not depend on the threshold, so
        filtering the entries yields exactly the condensed form of the
        filtered full set — the warm filter path stays condensed
        end-to-end.
        """
        threshold = max(min_support, self.absolute_support)
        entries = {p: s for p, s in self._entries.items() if s >= threshold}
        return CondensedPatternSet(
            self.representation,
            entries,
            threshold,
            n_transactions=self.n_transactions,
            ndi_depth=self.ndi_depth,
        )
