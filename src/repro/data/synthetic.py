"""Synthetic transaction generators.

Two families:

* :func:`quest_database` — the IBM Quest market-basket generator (the
  T10I4D100K family used throughout the frequent-pattern literature):
  transactions are unions of corrupted "potential patterns" drawn from a
  skewed distribution.
* :func:`attribute_value_database` — relational-style data where every
  transaction has one item per attribute, with per-attribute value skew
  and a latent-class mixture that induces cross-attribute correlation.
  This is the shape of the paper's four evaluation datasets (Weather,
  Forest/Covertype, Connect-4, Pumsb are all attribute-value tables), so
  the calibrated stand-ins in :mod:`repro.data.datasets` build on it.

All generators take an explicit seed and are fully deterministic.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence

from repro.data.transactions import TransactionDatabase
from repro.errors import DataError


def _poisson(rng: random.Random, mean: float) -> int:
    """Knuth's poisson sampler (small means only, which is all we need)."""
    threshold = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


def _zipf_weights(n: int, skew: float) -> list[float]:
    """Normalized Zipf(``skew``) weights over ranks 1..n."""
    weights = [1.0 / (rank**skew) for rank in range(1, n + 1)]
    total = sum(weights)
    return [w / total for w in weights]


@dataclass(frozen=True)
class QuestParams:
    """Parameters of the Quest generator (defaults ≈ T10I4).

    ``n_items`` is the item-universe size, ``avg_transaction_length`` the
    mean basket size, ``n_patterns``/``avg_pattern_length`` shape the pool
    of potential frequent patterns, ``correlation`` the fraction of items
    a pattern inherits from its predecessor and ``corruption_mean`` the
    average per-pattern item-drop rate.
    """

    n_transactions: int = 1000
    n_items: int = 200
    avg_transaction_length: float = 10.0
    n_patterns: int = 50
    avg_pattern_length: float = 4.0
    correlation: float = 0.5
    corruption_mean: float = 0.5
    item_skew: float = 1.0


def quest_database(params: QuestParams | None = None, seed: int = 0) -> TransactionDatabase:
    """Generate a market-basket database in the style of IBM Quest."""
    params = params or QuestParams()
    if params.n_items < 2 or params.n_transactions < 1:
        raise DataError(f"degenerate Quest parameters: {params}")
    rng = random.Random(seed)

    item_weights = _zipf_weights(params.n_items, params.item_skew)
    items = list(range(params.n_items))

    # Potential patterns: each inherits `correlation` of the previous one.
    patterns: list[list[int]] = []
    corruptions: list[float] = []
    previous: list[int] = []
    for _ in range(params.n_patterns):
        length = max(1, _poisson(rng, params.avg_pattern_length))
        inherited_count = min(len(previous), int(round(length * params.correlation)))
        chosen = set(rng.sample(previous, inherited_count)) if inherited_count else set()
        while len(chosen) < length:
            chosen.add(rng.choices(items, weights=item_weights, k=1)[0])
        pattern_items = sorted(chosen)
        patterns.append(pattern_items)
        corruptions.append(min(0.95, max(0.0, rng.gauss(params.corruption_mean, 0.1))))
        previous = pattern_items

    # Exponential pattern weights, as in the original generator.
    pattern_weights = [rng.expovariate(1.0) for _ in patterns]
    total_weight = sum(pattern_weights)
    pattern_weights = [w / total_weight for w in pattern_weights]

    transactions: list[list[int]] = []
    for _ in range(params.n_transactions):
        target = max(1, _poisson(rng, params.avg_transaction_length))
        basket: set[int] = set()
        attempts = 0
        while len(basket) < target and attempts < 8 * target:
            attempts += 1
            index = rng.choices(range(len(patterns)), weights=pattern_weights, k=1)[0]
            for item in patterns[index]:
                if rng.random() >= corruptions[index]:
                    basket.add(item)
        if not basket:
            basket.add(rng.choices(items, weights=item_weights, k=1)[0])
        transactions.append(sorted(basket))
    return TransactionDatabase(transactions)


def attribute_value_database(
    n_transactions: int,
    domain_sizes: Sequence[int],
    value_skew: float | Sequence[float] = 1.2,
    n_classes: int = 4,
    class_coherence: float = 0.5,
    missing_rate: float = 0.0,
    seed: int = 0,
    implications: Sequence[tuple[int, int]] = (),
) -> TransactionDatabase:
    """Generate relational attribute-value transactions.

    Each transaction holds one item per attribute (minus a ``missing_rate``
    fraction). Item ids are ``offset(attribute) + value``. Values follow a
    per-attribute Zipf distribution (``value_skew`` may be a scalar or one
    skew per attribute — heterogeneous skews model datasets like Connect-4
    where some attributes are near-constant). With probability
    ``class_coherence`` an attribute instead takes the value preferred by
    the transaction's latent class; preferences are themselves drawn from
    the attribute's value distribution, so coherence correlates attributes
    *on top of* the marginal skew — the combination that yields the long
    frequent patterns characteristic of the paper's dense datasets.

    ``implications`` lists deterministic ``(source, derived)`` attribute
    rules: whenever ``source`` takes its dominant value 0, ``derived`` is
    forced to 0 as well (no random draw). This is how real relational
    data acquires *exact* support ties — Connect-4's board physics make
    "square blank" force "square above blank" — and exact ties are what
    closed-pattern condensation feeds on. Probabilistic correlation
    alone, however strong, almost never produces them. Rules cascade in
    attribute order, so a chain models a column of a board. The empty
    tuple (default) leaves the generator's stream untouched.
    """
    if not domain_sizes:
        raise DataError("domain_sizes must be non-empty")
    if any(d < 1 for d in domain_sizes):
        raise DataError(f"domain sizes must be >= 1: {domain_sizes}")
    if not 0.0 <= class_coherence <= 1.0:
        raise DataError(f"class_coherence must be in [0, 1]: {class_coherence}")
    n_attributes = len(domain_sizes)
    for source, derived in implications:
        if not (0 <= source < n_attributes and 0 <= derived < n_attributes):
            raise DataError(
                f"implication ({source}, {derived}) references an unknown "
                f"attribute (have {n_attributes})"
            )
        if source >= derived:
            raise DataError(
                f"implication ({source}, {derived}) must point forward so "
                "rules cascade in attribute order"
            )
    forced_by = {derived: source for source, derived in implications}
    if isinstance(value_skew, (int, float)):
        skews = [float(value_skew)] * len(domain_sizes)
    else:
        skews = [float(s) for s in value_skew]
        if len(skews) != len(domain_sizes):
            raise DataError(
                f"{len(skews)} skews supplied for {len(domain_sizes)} attributes"
            )
    rng = random.Random(seed)

    offsets: list[int] = []
    running = 0
    for size in domain_sizes:
        offsets.append(running)
        running += size

    per_attribute_weights = [
        _zipf_weights(size, skew) for size, skew in zip(domain_sizes, skews)
    ]
    # Each latent class prefers one concrete value per attribute, drawn
    # from the attribute's own distribution (classes agree on dominant
    # values, diverge on the tail).
    preferred = [
        [
            rng.choices(range(size), weights=per_attribute_weights[attr], k=1)[0]
            for attr, size in enumerate(domain_sizes)
        ]
        for _ in range(max(1, n_classes))
    ]
    class_weights = _zipf_weights(max(1, n_classes), 1.0)

    transactions: list[list[int]] = []
    for _ in range(n_transactions):
        klass = rng.choices(range(len(preferred)), weights=class_weights, k=1)[0]
        tx: list[int] = []
        values: dict[int, int] = {}
        for attr, size in enumerate(domain_sizes):
            if missing_rate and rng.random() < missing_rate:
                continue
            source = forced_by.get(attr)
            if source is not None and values.get(source) == 0:
                value = 0  # deterministic rule, no draw
            elif rng.random() < class_coherence:
                value = preferred[klass][attr]
            else:
                value = rng.choices(range(size), weights=per_attribute_weights[attr], k=1)[0]
            values[attr] = value
            tx.append(offsets[attr] + value)
        if tx:
            transactions.append(tx)
    return TransactionDatabase(transactions)


def random_database(
    n_transactions: int,
    n_items: int,
    max_transaction_length: int,
    seed: int = 0,
) -> TransactionDatabase:
    """Uniformly random small databases — used by randomized tests."""
    if n_items < 1 or max_transaction_length < 1:
        raise DataError("need at least one item and positive length")
    rng = random.Random(seed)
    transactions = []
    for _ in range(n_transactions):
        length = rng.randint(1, max_transaction_length)
        transactions.append(rng.sample(range(n_items), min(length, n_items)))
    return TransactionDatabase(transactions)
