"""The shared encoded (vertical-bitmap) view of a transaction database.

Every vertical miner in the seed rebuilt its own ``{item: tidset}`` index
from the horizontal tuples on every call, and every compression pass did
the same for group claiming. :class:`EncodedDatabase` factors that work
out: it is built once per :class:`~repro.data.transactions.TransactionDatabase`
(memoized by :meth:`TransactionDatabase.encoded`) and gives every miner

* a dense item encoding — items interned to codes ``0..m-1`` ordered by
  *descending* support (ties broken by ascending item id), the order
  projection-based miners want for their F-lists;
* vertical tid-bitmaps — one Python big int per item, bit ``p`` set when
  transaction at position ``p`` contains the item, so support counting is
  ``int.bit_count()`` and tidset intersection is ``&`` — both word
  parallel in CPython rather than per-element Python loops;
* cached per-item supports, shared with
  :meth:`TransactionDatabase.item_supports`.

Bit positions index *positions* in the database (0-based), not the
user-facing ``tids``; translate through ``db.tids`` when the original ids
matter.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

from repro.errors import DataError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.data.transactions import TransactionDatabase


def bit_positions(mask: int) -> Iterator[int]:
    """Yield the set bit indexes of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class EncodedDatabase:
    """Dense item codes plus vertical tid-bitmaps for one database.

    >>> from repro.data.transactions import TransactionDatabase
    >>> enc = TransactionDatabase([[5, 9], [5], [9, 7]]).encoded()
    >>> enc.item_of(0), enc.item_of(1), enc.item_of(2)
    (5, 9, 7)
    >>> bin(enc.bitmap_for_item(5))
    '0b11'
    >>> enc.support_of_items([5, 9])
    1
    """

    __slots__ = ("_db", "_item_of", "_code_of", "_bitmaps", "_supports", "_universe")

    def __init__(self, db: "TransactionDatabase") -> None:
        self._db = db
        supports = db.item_supports()
        items = sorted(supports, key=lambda item: (-supports[item], item))
        self._item_of: tuple[int, ...] = tuple(items)
        self._code_of: dict[int, int] = {item: code for code, item in enumerate(items)}
        bitmaps = [0] * len(items)
        code_of = self._code_of
        for position, tx in enumerate(db):
            bit = 1 << position
            for item in tx:
                bitmaps[code_of[item]] |= bit
        self._bitmaps: tuple[int, ...] = tuple(bitmaps)
        self._supports: tuple[int, ...] = tuple(supports[item] for item in items)
        self._universe: int = (1 << len(db)) - 1 if len(db) else 0

    # ------------------------------------------------------------------
    # container protocol (over item codes)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of transactions (bit width of every bitmap)."""
        return len(self._db)

    def __contains__(self, item: object) -> bool:
        return item in self._code_of

    def __repr__(self) -> str:
        return f"EncodedDatabase(n={len(self)}, items={self.item_count()})"

    @property
    def db(self) -> "TransactionDatabase":
        """The horizontal database this encoding was built from."""
        return self._db

    @property
    def universe(self) -> int:
        """Bitmap with one set bit per transaction (the empty pattern's tidset)."""
        return self._universe

    def item_count(self) -> int:
        """Number of distinct items (= number of codes)."""
        return len(self._item_of)

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    def code_of(self, item: int) -> int:
        """Dense code of ``item`` (codes ascend as support descends)."""
        try:
            return self._code_of[item]
        except KeyError:
            raise DataError(f"item {item!r} does not occur in the database") from None

    def item_of(self, code: int) -> int:
        """The original item id behind ``code``."""
        return self._item_of[code]

    def encode(self, items: Iterable[int]) -> tuple[int, ...]:
        """Codes of ``items`` in ascending code (descending support) order."""
        return tuple(sorted(self.code_of(item) for item in items))

    def decode(self, codes: Iterable[int]) -> tuple[int, ...]:
        """Item ids behind ``codes``, sorted by item id."""
        return tuple(sorted(self._item_of[code] for code in codes))

    # ------------------------------------------------------------------
    # vertical counting
    # ------------------------------------------------------------------
    def bitmap(self, code: int) -> int:
        """The tid-bitmap of the item with dense code ``code``."""
        return self._bitmaps[code]

    def bitmap_for_item(self, item: int) -> int:
        """The tid-bitmap of ``item`` (0 when the item never occurs)."""
        code = self._code_of.get(item)
        return 0 if code is None else self._bitmaps[code]

    def support(self, code: int) -> int:
        """Cached support of the item with dense code ``code``."""
        return self._supports[code]

    def support_for_item(self, item: int) -> int:
        """Support of ``item`` (0 when the item never occurs)."""
        code = self._code_of.get(item)
        return 0 if code is None else self._supports[code]

    def pattern_bitmap(self, items: Iterable[int]) -> int:
        """Intersection of the item bitmaps: the pattern's tidset.

        Items are intersected in ascending-support order so the working
        mask narrows as fast as possible; an item that never occurs
        short-circuits to 0. The empty pattern maps to :attr:`universe`.
        """
        codes = []
        for item in items:
            code = self._code_of.get(item)
            if code is None:
                return 0
            codes.append(code)
        if not codes:
            return self._universe
        codes.sort(reverse=True)  # highest code = lowest support first
        mask = self._bitmaps[codes[0]]
        for code in codes[1:]:
            mask &= self._bitmaps[code]
            if not mask:
                break
        return mask

    def support_of_items(self, items: Iterable[int]) -> int:
        """Absolute support of an itemset via one bitmap intersection."""
        return self.pattern_bitmap(items).bit_count()
