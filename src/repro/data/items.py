"""Item vocabulary and item attributes.

Transactions in this library are sequences of integer *item ids*. This
module provides the optional bookkeeping around those ids:

* :class:`ItemTable` maps ids to human-readable names and numeric
  attributes (price, weight, ...). The constraint framework
  (:mod:`repro.constraints`) evaluates aggregate constraints against these
  attributes.

Item ids do not have to be dense or start at zero, but the synthetic
generators produce dense ids because that keeps array-based counting fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.errors import DataError


@dataclass(frozen=True)
class Item:
    """A single catalog entry: id, display name, and numeric attributes."""

    item_id: int
    name: str
    attributes: Mapping[str, float] = field(default_factory=dict)

    def attribute(self, key: str) -> float:
        """Return attribute ``key`` or raise :class:`DataError` if absent."""
        try:
            return self.attributes[key]
        except KeyError:
            raise DataError(
                f"item {self.item_id} ({self.name!r}) has no attribute {key!r}"
            ) from None


class ItemTable:
    """A catalog of :class:`Item` rows keyed by item id.

    The table is append-only; ids must be unique. Lookup by id is O(1).

    >>> table = ItemTable()
    >>> table.add(1, "milk", price=2.5)
    >>> table[1].name
    'milk'
    """

    def __init__(self, items: Iterable[Item] = ()) -> None:
        self._items: dict[int, Item] = {}
        for item in items:
            self.add_item(item)

    def add(self, item_id: int, name: str, **attributes: float) -> None:
        """Register an item by components. Raises on duplicate ids."""
        self.add_item(Item(item_id, name, dict(attributes)))

    def add_item(self, item: Item) -> None:
        """Register an :class:`Item` row. Raises on duplicate ids."""
        if item.item_id in self._items:
            raise DataError(f"duplicate item id {item.item_id}")
        self._items[item.item_id] = item

    def __getitem__(self, item_id: int) -> Item:
        try:
            return self._items[item_id]
        except KeyError:
            raise DataError(f"unknown item id {item_id}") from None

    def __contains__(self, item_id: int) -> bool:
        return item_id in self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Item]:
        return iter(self._items.values())

    def get(self, item_id: int) -> Item | None:
        """Return the item row or ``None`` when the id is unknown."""
        return self._items.get(item_id)

    def attribute_vector(self, key: str) -> dict[int, float]:
        """Return ``{item_id: attribute}`` for every item that has ``key``."""
        return {
            item.item_id: item.attributes[key]
            for item in self._items.values()
            if key in item.attributes
        }

    def names(self, item_ids: Iterable[int]) -> list[str]:
        """Translate a sequence of ids into display names."""
        return [self[item_id].name for item_id in item_ids]
