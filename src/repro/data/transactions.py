"""The horizontal transaction database.

:class:`TransactionDatabase` is the substrate every miner in this library
operates on. It stores transactions in the classic horizontal layout — one
tuple of item ids per transaction — plus a handful of derived statistics
(item supports, average length) that the paper's Table 3 reports.

Transactions are stored deduplicated *per transaction* (an item appears at
most once in a tuple) and sorted by item id, which makes containment tests
and set operations cheap and deterministic.
"""

from __future__ import annotations

import hashlib
import math
from collections import Counter
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.errors import DataError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.data.encoded import EncodedDatabase


class TransactionDatabase:
    """An immutable horizontal database of transactions.

    Parameters
    ----------
    transactions:
        Any iterable of item-id iterables. Each transaction is normalized
        to a sorted tuple of distinct non-negative ints.
    tids:
        Optional explicit transaction ids (parallel to ``transactions``).
        Defaults to ``0..n-1``.

    >>> db = TransactionDatabase([[3, 1, 2], [2, 3]])
    >>> db[0]
    (1, 2, 3)
    >>> db.support((2, 3))
    2
    """

    def __init__(
        self,
        transactions: Iterable[Iterable[int]],
        tids: Sequence[int] | None = None,
    ) -> None:
        normalized: list[tuple[int, ...]] = []
        for raw in transactions:
            tx = tuple(sorted(set(raw)))
            if any((not isinstance(i, int)) or i < 0 for i in tx):
                raise DataError(f"transaction {raw!r} has non-int or negative items")
            normalized.append(tx)
        self._transactions: tuple[tuple[int, ...], ...] = tuple(normalized)
        if tids is None:
            self._tids: tuple[int, ...] = tuple(range(len(normalized)))
        else:
            if len(tids) != len(normalized):
                raise DataError(
                    f"{len(tids)} tids supplied for {len(normalized)} transactions"
                )
            self._tids = tuple(tids)
        self._item_supports: Counter[int] | None = None
        self._encoded: "EncodedDatabase | None" = None
        self._fingerprint: str | None = None

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._transactions)

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self._transactions)

    def __getitem__(self, index: int) -> tuple[int, ...]:
        return self._transactions[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TransactionDatabase):
            return NotImplemented
        return self._transactions == other._transactions and self._tids == other._tids

    def __hash__(self) -> int:
        return hash((self._transactions, self._tids))

    def __repr__(self) -> str:
        return (
            f"TransactionDatabase(n={len(self)}, items={self.item_count()}, "
            f"avg_len={self.average_length():.2f})"
        )

    # ------------------------------------------------------------------
    # accessors & statistics
    # ------------------------------------------------------------------
    @property
    def transactions(self) -> tuple[tuple[int, ...], ...]:
        """The normalized transactions, in insertion order."""
        return self._transactions

    @property
    def tids(self) -> tuple[int, ...]:
        """Transaction ids, parallel to :attr:`transactions`."""
        return self._tids

    def item_supports(self) -> Counter[int]:
        """Support (absolute count) of every item; computed once, cached."""
        if self._item_supports is None:
            counts: Counter[int] = Counter()
            for tx in self._transactions:
                counts.update(tx)
            self._item_supports = counts
        return self._item_supports

    def items(self) -> set[int]:
        """The set of distinct items that occur in the database."""
        return set(self.item_supports())

    def item_count(self) -> int:
        """Number of distinct items."""
        return len(self.item_supports())

    def average_length(self) -> float:
        """Average transaction length (0.0 for an empty database)."""
        if not self._transactions:
            return 0.0
        return sum(len(tx) for tx in self._transactions) / len(self._transactions)

    def total_items(self) -> int:
        """Total item occurrences across all transactions ("size" S_o)."""
        return sum(len(tx) for tx in self._transactions)

    def encoded(self) -> "EncodedDatabase":
        """The vertical-bitmap encoding of this database; built once.

        Every miner and the compression pass share this one instance, so
        the dense item interning and the tid-bitmaps are paid for a
        single time per database no matter how many mining rounds run.
        """
        if self._encoded is None:
            from repro.data.encoded import EncodedDatabase

            self._encoded = EncodedDatabase(self)
        return self._encoded

    def fingerprint(self) -> str:
        """A stable content hash of this database; computed once, cached.

        Two databases with the same transactions and tids share a
        fingerprint regardless of object identity or process, which is
        what makes it usable as a persistent cache key (the pattern
        warehouse keys stored results by it). The digest covers both the
        normalized transactions and the explicit tids.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            for tid, tx in zip(self._tids, self._transactions):
                digest.update(str(tid).encode("ascii"))
                digest.update(b":")
                digest.update(" ".join(map(str, tx)).encode("ascii"))
                digest.update(b"\n")
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def support(self, itemset: Iterable[int]) -> int:
        """Absolute support of ``itemset`` (exhaustive scan; use in tests)."""
        target = frozenset(itemset)
        if not target:
            return len(self._transactions)
        return sum(1 for tx in self._transactions if target.issubset(tx))

    # ------------------------------------------------------------------
    # derived databases
    # ------------------------------------------------------------------
    def restrict_to_items(self, keep: Iterable[int]) -> "TransactionDatabase":
        """A copy keeping only items in ``keep`` (empty tuples retained)."""
        keep_set = frozenset(keep)
        return TransactionDatabase(
            ([i for i in tx if i in keep_set] for tx in self._transactions),
            tids=self._tids,
        )

    def sample(self, indices: Sequence[int]) -> "TransactionDatabase":
        """A sub-database containing the transactions at ``indices``."""
        return TransactionDatabase(
            [self._transactions[i] for i in indices],
            tids=[self._tids[i] for i in indices],
        )

    def extend(self, more: Iterable[Iterable[int]]) -> "TransactionDatabase":
        """A new database with ``more`` transactions appended (fresh tids)."""
        combined = list(self._transactions)
        combined.extend(tuple(sorted(set(tx))) for tx in more)
        return TransactionDatabase(combined)

    def relative_to_absolute(self, min_support: float) -> int:
        """Convert a relative min-support in (0, 1] to an absolute count.

        The type disambiguates the boundary: a *float* in ``(0, 1]`` is a
        relative fraction (``1.0`` means 100% — every transaction), while
        an *int* is an absolute count (``1`` means one transaction).
        Floats above 1 and all other ints pass through as absolute
        counts, so callers can use either convention. The absolute
        threshold is rounded up, matching the usual "support greater than
        or equal to" semantics on fractions.
        """
        if min_support <= 0:
            raise DataError(f"min_support must be positive, got {min_support}")
        if isinstance(min_support, float) and min_support <= 1.0:
            return max(1, math.ceil(min_support * len(self)))
        return int(min_support)
