"""Reading and writing datasets and pattern sets.

Two on-disk formats are supported:

* **FIMI transaction format** — one transaction per line, space-separated
  integer item ids. This is the format the FIMI repository distributes
  Connect-4, Pumsb, etc. in, so real datasets drop straight in when
  available.
* **Pattern set format** — one frequent pattern per line as
  ``item item ... : support``. Persisting pattern sets is what makes
  recycling work *across* mining sessions and across users (Section 2 of
  the paper): one user's saved output is another user's recycling input.
"""

from __future__ import annotations

import hashlib
import io
import os
import tempfile
from pathlib import Path
from typing import TextIO

from repro.data.transactions import TransactionDatabase
from repro.errors import DataError
from repro.data.patterns import PatternSet


def read_transactions(path: str | Path) -> TransactionDatabase:
    """Load a FIMI-format transaction file into a database.

    Blank lines and ``#`` comment lines are skipped.
    """
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as handle:
            return parse_transactions(handle)
    except OSError as exc:
        raise DataError(f"cannot read transaction file {path}: {exc}") from exc


def parse_transactions(handle: TextIO) -> TransactionDatabase:
    """Parse FIMI-format transactions from an open text stream."""
    transactions: list[list[int]] = []
    for line_no, line in enumerate(handle, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        try:
            transactions.append([int(token) for token in stripped.split()])
        except ValueError as exc:
            raise DataError(f"line {line_no}: non-integer item in {stripped!r}") from exc
    return TransactionDatabase(transactions)


def write_transactions(db: TransactionDatabase, path: str | Path) -> None:
    """Write a database in FIMI format."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for tx in db:
            handle.write(" ".join(str(i) for i in tx))
            handle.write("\n")


def transactions_to_string(db: TransactionDatabase) -> str:
    """Render a database as FIMI text (round-trips via :func:`parse_transactions`)."""
    buffer = io.StringIO()
    for tx in db:
        buffer.write(" ".join(str(i) for i in tx))
        buffer.write("\n")
    return buffer.getvalue()


def read_patterns(path: str | Path) -> PatternSet:
    """Load a pattern set written by :func:`write_patterns`."""
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as handle:
            return parse_patterns(handle)
    except OSError as exc:
        raise DataError(f"cannot read pattern file {path}: {exc}") from exc


def parse_patterns(handle: TextIO) -> PatternSet:
    """Parse ``item item ... : support`` lines from an open text stream."""
    patterns = PatternSet()
    for line_no, line in enumerate(handle, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        head, sep, tail = stripped.rpartition(":")
        if not sep:
            raise DataError(f"line {line_no}: missing ': support' in {stripped!r}")
        try:
            items = frozenset(int(token) for token in head.split())
            support = int(tail.strip())
        except ValueError as exc:
            raise DataError(f"line {line_no}: malformed pattern {stripped!r}") from exc
        if not items:
            raise DataError(f"line {line_no}: empty pattern")
        patterns.add(items, support)
    return patterns


def canonical_pattern_rows(patterns: PatternSet) -> list[tuple[tuple[int, ...], int]]:
    """``(sorted_items, support)`` rows in the canonical file order.

    Sorted by items first, then support — the one ordering every pattern
    writer uses, so shard-merged outputs, warehouse dumps and golden
    files diff cleanly regardless of mining backend or job count.
    """
    return sorted(
        ((tuple(sorted(items)), support) for items, support in patterns.items()),
        key=lambda row: (row[0], row[1]),
    )


def write_patterns(patterns: PatternSet, path: str | Path) -> None:
    """Persist a pattern set in canonical order (items, then support)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for items, support in canonical_pattern_rows(patterns):
            handle.write(" ".join(str(i) for i in items))
            handle.write(f" : {support}\n")


#: Header line prefix recording the threshold a pattern file was mined at.
SUPPORT_HEADER_PREFIX = "# absolute_support="

#: Header line prefix recording the SHA-256 of the pattern body. Written
#: after the support header; files predating the checksum (or written by
#: other tools) simply omit it and are read without verification.
CHECKSUM_HEADER_PREFIX = "# sha256="


def _pattern_body(patterns: PatternSet) -> str:
    """The canonical pattern lines as one string — what gets checksummed."""
    buffer = io.StringIO()
    for items, support in canonical_pattern_rows(patterns):
        buffer.write(" ".join(str(i) for i in items))
        buffer.write(f" : {support}\n")
    return buffer.getvalue()


def pattern_body_checksum(body: str) -> str:
    """SHA-256 hex digest of a pattern-file body (the non-header lines)."""
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def write_patterns_with_support(
    patterns: PatternSet, path: str | Path, absolute_support: int
) -> None:
    """Atomically persist a pattern set with its mining threshold.

    The plain pattern format prefixed with a ``# absolute_support=N``
    header and a ``# sha256=<hex>`` body checksum, written once into a
    sibling temp file and moved into place with :func:`os.replace` — a
    concurrent reader (or a crash mid-write) never observes a partial or
    header-less file, and bit rot or truncation that slips past the
    atomic rename is caught by the checksum on read.
    """
    path = Path(path)
    body = _pattern_body(patterns)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(f"{SUPPORT_HEADER_PREFIX}{absolute_support}\n")
            handle.write(f"{CHECKSUM_HEADER_PREFIX}{pattern_body_checksum(body)}\n")
            handle.write(body)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def read_patterns_with_support(path: str | Path) -> tuple[PatternSet, int]:
    """Load a pattern set written by :func:`write_patterns_with_support`.

    The support header is required; the checksum header is verified when
    present and skipped when absent, so pre-checksum files stay
    readable. A checksum mismatch (bit rot, truncation, tampering)
    raises :class:`~repro.errors.DataError` — the warehouse turns that
    into quarantine instead of serving corrupt feedstock.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise DataError(f"cannot read pattern file {path}: {exc}") from exc
    lines = text.splitlines(keepends=True)
    if not lines or not lines[0].startswith(SUPPORT_HEADER_PREFIX):
        raise DataError(
            f"{path} has no absolute_support header — was it written by "
            "write_patterns_with_support()?"
        )
    try:
        absolute_support = int(lines[0][len(SUPPORT_HEADER_PREFIX):])
    except ValueError as exc:
        raise DataError(f"{path}: malformed absolute_support header") from exc
    body_start = 1
    if len(lines) > 1 and lines[1].startswith(CHECKSUM_HEADER_PREFIX):
        body_start = 2
        expected = lines[1][len(CHECKSUM_HEADER_PREFIX):].strip()
        actual = pattern_body_checksum("".join(lines[2:]))
        if actual != expected:
            raise DataError(
                f"{path}: body checksum mismatch (expected {expected}, got "
                f"{actual}) — the file is corrupt or truncated"
            )
    return parse_patterns(io.StringIO("".join(lines[body_start:]))), absolute_support
