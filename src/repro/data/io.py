"""Reading and writing datasets and pattern sets.

Two on-disk formats are supported:

* **FIMI transaction format** — one transaction per line, space-separated
  integer item ids. This is the format the FIMI repository distributes
  Connect-4, Pumsb, etc. in, so real datasets drop straight in when
  available.
* **Pattern set format** — one frequent pattern per line as
  ``item item ... : support``. Persisting pattern sets is what makes
  recycling work *across* mining sessions and across users (Section 2 of
  the paper): one user's saved output is another user's recycling input.
"""

from __future__ import annotations

import hashlib
import io
import os
import tempfile
from pathlib import Path
from typing import TextIO

from repro.data.transactions import TransactionDatabase
from repro.errors import DataError, MiningError
from repro.data.patterns import (
    NDI_RULE_DEPTH,
    REPRESENTATIONS,
    CondensedPatternSet,
    PatternSet,
)


def read_transactions(path: str | Path) -> TransactionDatabase:
    """Load a FIMI-format transaction file into a database.

    Blank lines and ``#`` comment lines are skipped.
    """
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as handle:
            return parse_transactions(handle)
    except OSError as exc:
        raise DataError(f"cannot read transaction file {path}: {exc}") from exc


def parse_transactions(handle: TextIO) -> TransactionDatabase:
    """Parse FIMI-format transactions from an open text stream."""
    transactions: list[list[int]] = []
    for line_no, line in enumerate(handle, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        try:
            transactions.append([int(token) for token in stripped.split()])
        except ValueError as exc:
            raise DataError(f"line {line_no}: non-integer item in {stripped!r}") from exc
    return TransactionDatabase(transactions)


def write_transactions(db: TransactionDatabase, path: str | Path) -> None:
    """Write a database in FIMI format."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for tx in db:
            handle.write(" ".join(str(i) for i in tx))
            handle.write("\n")


def transactions_to_string(db: TransactionDatabase) -> str:
    """Render a database as FIMI text (round-trips via :func:`parse_transactions`)."""
    buffer = io.StringIO()
    for tx in db:
        buffer.write(" ".join(str(i) for i in tx))
        buffer.write("\n")
    return buffer.getvalue()


def read_patterns(path: str | Path) -> PatternSet:
    """Load a pattern set written by :func:`write_patterns`."""
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as handle:
            return parse_patterns(handle)
    except OSError as exc:
        raise DataError(f"cannot read pattern file {path}: {exc}") from exc


def parse_patterns(handle: TextIO) -> PatternSet:
    """Parse ``item item ... : support`` lines from an open text stream."""
    patterns = PatternSet()
    for line_no, line in enumerate(handle, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        head, sep, tail = stripped.rpartition(":")
        if not sep:
            raise DataError(f"line {line_no}: missing ': support' in {stripped!r}")
        try:
            items = frozenset(int(token) for token in head.split())
            support = int(tail.strip())
        except ValueError as exc:
            raise DataError(f"line {line_no}: malformed pattern {stripped!r}") from exc
        if not items:
            raise DataError(f"line {line_no}: empty pattern")
        patterns.add(items, support)
    return patterns


def canonical_pattern_rows(patterns: PatternSet) -> list[tuple[tuple[int, ...], int]]:
    """``(sorted_items, support)`` rows in the canonical file order.

    Sorted by items first, then support — the one ordering every pattern
    writer uses, so shard-merged outputs, warehouse dumps and golden
    files diff cleanly regardless of mining backend or job count.
    """
    return sorted(
        ((tuple(sorted(items)), support) for items, support in patterns.items()),
        key=lambda row: (row[0], row[1]),
    )


def write_patterns(patterns: PatternSet, path: str | Path) -> None:
    """Persist a pattern set in canonical order (items, then support)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for items, support in canonical_pattern_rows(patterns):
            handle.write(" ".join(str(i) for i in items))
            handle.write(f" : {support}\n")


#: Header line prefix recording the threshold a pattern file was mined at.
SUPPORT_HEADER_PREFIX = "# absolute_support="

#: Header line prefix recording the SHA-256 of the pattern body. Written
#: after the support header; files predating the checksum (or written by
#: other tools) simply omit it and are read without verification.
CHECKSUM_HEADER_PREFIX = "# sha256="

#: Header recording which representation the body's rows are: ``full``
#: (every frequent pattern), ``closed`` or ``ndi`` (condensed entries
#: only). Absent on files predating condensation, which are read as
#: ``full`` — the original format unchanged.
REPR_HEADER_PREFIX = "# repr="

#: Transaction count of the mined database; required by ``repr=ndi``
#: (the empty-set deduction rules use ``supp({}) = |D|``).
NTRANS_HEADER_PREFIX = "# n_transactions="

#: Deduction-rule depth an ``ndi`` body was condensed with. Expansion
#: must replay the same depth, so it travels in the file.
NDI_DEPTH_HEADER_PREFIX = "# ndi_depth="

#: Byte-model size of the *expanded* set at write time — a gauge header
#: so warehouses can report condensation ratios without expanding.
FULL_BYTES_HEADER_PREFIX = "# full_bytes="


def _pattern_body(patterns: PatternSet) -> str:
    """The canonical pattern lines as one string — what gets checksummed."""
    buffer = io.StringIO()
    for items, support in canonical_pattern_rows(patterns):
        buffer.write(" ".join(str(i) for i in items))
        buffer.write(f" : {support}\n")
    return buffer.getvalue()


def pattern_body_checksum(body: str) -> str:
    """SHA-256 hex digest of a pattern-file body (the non-header lines)."""
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def write_patterns_with_support(
    patterns: PatternSet, path: str | Path, absolute_support: int
) -> None:
    """Atomically persist a pattern set with its mining threshold.

    The plain pattern format prefixed with a ``# absolute_support=N``
    header and a ``# sha256=<hex>`` body checksum, written once into a
    sibling temp file and moved into place with :func:`os.replace` — a
    concurrent reader (or a crash mid-write) never observes a partial or
    header-less file, and bit rot or truncation that slips past the
    atomic rename is caught by the checksum on read.
    """
    path = Path(path)
    body = _pattern_body(patterns)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(f"{SUPPORT_HEADER_PREFIX}{absolute_support}\n")
            handle.write(f"{CHECKSUM_HEADER_PREFIX}{pattern_body_checksum(body)}\n")
            handle.write(body)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def warehouse_entry_text(
    condensed: CondensedPatternSet,
    *,
    full_bytes: int | None = None,
) -> str:
    """The full file text of a warehouse entry (headers + body).

    Extends the :func:`write_patterns_with_support` layout with the
    representation headers: ``# repr=`` names how to read the body's
    rows, ``ndi`` entries carry ``# n_transactions=`` and
    ``# ndi_depth=`` (both needed to replay the deduction rules
    losslessly), and an optional ``# full_bytes=`` gauge records the
    expanded set's byte-model size. Metadata headers sit *between* the
    support header and the checksum, so the checksum still covers
    exactly the body rows. Split out of :func:`write_warehouse_entry`
    so the durability layer can render the same bytes and route them
    through its own journaled atomic writer.
    """
    body = _pattern_body(condensed.entry_patterns())
    headers = [
        f"{SUPPORT_HEADER_PREFIX}{condensed.absolute_support}",
        f"{REPR_HEADER_PREFIX}{condensed.representation}",
    ]
    if condensed.n_transactions is not None:
        headers.append(f"{NTRANS_HEADER_PREFIX}{condensed.n_transactions}")
    if condensed.representation == "ndi":
        headers.append(f"{NDI_DEPTH_HEADER_PREFIX}{condensed.ndi_depth}")
    if full_bytes is not None:
        headers.append(f"{FULL_BYTES_HEADER_PREFIX}{full_bytes}")
    headers.append(f"{CHECKSUM_HEADER_PREFIX}{pattern_body_checksum(body)}")
    return "".join(f"{line}\n" for line in headers) + body


def write_warehouse_entry(
    condensed: CondensedPatternSet,
    path: str | Path,
    *,
    full_bytes: int | None = None,
) -> None:
    """Atomically persist a (possibly condensed) warehouse entry.

    Renders :func:`warehouse_entry_text` once into a sibling temp file
    and moves it into place with :func:`os.replace`, exactly like
    :func:`write_patterns_with_support`.
    """
    path = Path(path)
    text = warehouse_entry_text(condensed, full_bytes=full_bytes)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def read_warehouse_entry(
    path: str | Path,
) -> tuple[CondensedPatternSet, int | None]:
    """Load a warehouse entry without expanding it.

    Returns ``(condensed, full_bytes)`` where ``full_bytes`` is the
    gauge header when present. Files predating condensation — with or
    without the checksum header — parse as ``repr=full``, so every
    pre-existing ``.patterns`` file remains readable. Any malformed or
    inconsistent header, checksum mismatch, or entry below the threshold
    raises :class:`~repro.errors.DataError`; the warehouse turns that
    into quarantine instead of serving corrupt feedstock.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise DataError(f"cannot read pattern file {path}: {exc}") from exc
    lines = text.splitlines(keepends=True)
    if not lines or not lines[0].startswith(SUPPORT_HEADER_PREFIX):
        raise DataError(
            f"{path} has no absolute_support header — was it written by "
            "write_patterns_with_support()?"
        )
    try:
        absolute_support = int(lines[0][len(SUPPORT_HEADER_PREFIX):])
    except ValueError as exc:
        raise DataError(f"{path}: malformed absolute_support header") from exc

    representation = "full"
    n_transactions: int | None = None
    ndi_depth = NDI_RULE_DEPTH
    full_bytes: int | None = None
    checksum: str | None = None
    metadata_seen = False
    body_start = 1

    def int_header(line: str, prefix: str) -> int:
        try:
            return int(line[len(prefix):])
        except ValueError as exc:
            raise DataError(f"{path}: malformed {prefix.strip('# =')} header") from exc

    for index in range(1, len(lines)):
        line = lines[index].rstrip("\n")
        if line.startswith(REPR_HEADER_PREFIX):
            representation = line[len(REPR_HEADER_PREFIX):].strip()
            metadata_seen = True
        elif line.startswith(NTRANS_HEADER_PREFIX):
            n_transactions = int_header(line, NTRANS_HEADER_PREFIX)
            metadata_seen = True
        elif line.startswith(NDI_DEPTH_HEADER_PREFIX):
            ndi_depth = int_header(line, NDI_DEPTH_HEADER_PREFIX)
            metadata_seen = True
        elif line.startswith(FULL_BYTES_HEADER_PREFIX):
            full_bytes = int_header(line, FULL_BYTES_HEADER_PREFIX)
            metadata_seen = True
        elif line.startswith(CHECKSUM_HEADER_PREFIX):
            checksum = line[len(CHECKSUM_HEADER_PREFIX):].strip()
            body_start = index + 1
            break
        else:
            body_start = index
            break
    else:
        body_start = len(lines)

    if metadata_seen and checksum is None:
        # The condensed writer always closes the header block with the
        # checksum; metadata without it means the file was truncated in
        # the header region (where a body checksum cannot catch it).
        raise DataError(
            f"{path}: representation headers present but no checksum — "
            "the file is corrupt or truncated"
        )
    body = "".join(lines[body_start:])
    if checksum is not None:
        actual = pattern_body_checksum(body)
        if actual != checksum:
            raise DataError(
                f"{path}: body checksum mismatch (expected {checksum}, got "
                f"{actual}) — the file is corrupt or truncated"
            )
    if representation not in REPRESENTATIONS:
        raise DataError(
            f"{path}: unknown representation {representation!r} in repr header"
        )
    entries = parse_patterns(io.StringIO(body))
    for items, support in entries.items():
        if support < absolute_support:
            raise DataError(
                f"{path}: entry {sorted(items)} has support {support} below "
                f"the header threshold {absolute_support}"
            )
    try:
        condensed = CondensedPatternSet(
            representation,
            entries.as_dict(),
            absolute_support,
            n_transactions=n_transactions,
            ndi_depth=ndi_depth,
        )
    except MiningError as exc:
        raise DataError(f"{path}: invalid condensed entry: {exc}") from exc
    return condensed, full_bytes


def read_patterns_with_support(path: str | Path) -> tuple[PatternSet, int]:
    """Load a pattern file as the *exact frequent set* plus its threshold.

    Built on :func:`read_warehouse_entry`: condensed bodies are expanded
    before being returned, so legacy callers (sessions seeding from a
    saved file, scripts diffing pattern sets) always see the full set no
    matter which representation the file used. The support header is
    required; the checksum header is verified when present and skipped
    when absent, so pre-checksum files stay readable.
    """
    condensed, _ = read_warehouse_entry(path)
    return condensed.expand(), condensed.absolute_support
