"""A simulated disk with I/O accounting.

The paper's Section 5.3 enforces 4/8 MB memory limits on a 2004 PC and
measures the cost of projecting databases to secondary storage. We have
neither the machine nor a reason to hit a real filesystem, so this module
models the part that matters: *how many bytes move*. Objects are kept in
memory; every write and read charges byte and operation counters (into a
:class:`~repro.metrics.counters.CostCounters`) plus a simple seek+transfer
time model that experiments can report.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.groups import ITEM_BYTES, RECORD_OVERHEAD_BYTES
from repro.errors import StorageError
from repro.metrics.counters import CostCounters

__all__ = [
    "CONDENSED_HEADER_BYTES",
    "DiskModel",
    "ITEM_BYTES",
    "RECORD_OVERHEAD_BYTES",
    "SimulatedDisk",
    "cgroups_byte_size",
    "patterns_byte_size",
    "transactions_byte_size",
]


@dataclass(frozen=True)
class DiskModel:
    """Timing model: per-operation seek cost plus linear transfer cost."""

    seek_seconds: float = 0.005
    bytes_per_second: float = 40_000_000.0

    def transfer_time(self, total_bytes: int, operations: int) -> float:
        return operations * self.seek_seconds + total_bytes / self.bytes_per_second


def transactions_byte_size(transactions: list[tuple[int, ...]]) -> int:
    """Modelled on-disk size of a list of plain transactions."""
    return sum(
        len(tx) * ITEM_BYTES + RECORD_OVERHEAD_BYTES for tx in transactions
    )


#: Fixed charge for a condensed set's metadata (representation tag,
#: threshold, transaction count / rule depth) — one record's worth of
#: framing, mirroring the header lines in the on-disk format.
CONDENSED_HEADER_BYTES = 3 * ITEM_BYTES + RECORD_OVERHEAD_BYTES


def patterns_byte_size(patterns) -> int:
    """Modelled on-disk size of a pattern set, full or condensed.

    Each *stored row* charges its items plus a support count and
    per-record framing — the same int-based model as raw transactions,
    which is what the pattern warehouse charges against its byte budget.
    For a :class:`~repro.data.patterns.CondensedPatternSet` the stored
    rows are the condensed entries (``items()`` iterates entries, never
    the expansion), plus a fixed metadata-header charge — so the LRU
    budget reflects the real cost of a condensed entry, not the size of
    the full set it can reconstruct.
    """
    from repro.data.patterns import CondensedPatternSet

    total = sum(
        len(items) * ITEM_BYTES + ITEM_BYTES + RECORD_OVERHEAD_BYTES
        for items, _support in patterns.items()
    )
    if (
        isinstance(patterns, CondensedPatternSet)
        and patterns.representation != "full"
    ):
        total += CONDENSED_HEADER_BYTES
    return total


def cgroups_byte_size(groups) -> int:
    """Modelled on-disk size of a compressed (projected) database.

    Each group stores its pattern once plus a count, then its tails —
    the canonical model now lives on
    :attr:`repro.core.groups.Group.byte_size` (memoized per group); this
    helper just sums it over a (projected) group list.
    """
    return sum(group.byte_size for group in groups)


class SimulatedDisk:
    """Keyed object store that charges simulated I/O.

    ``write``/``read`` take an explicit byte size (computed by the caller
    with the helpers above) so the accounting matches the representation
    actually being "stored", not Python object overhead.
    """

    def __init__(self, model: DiskModel | None = None, counters: CostCounters | None = None) -> None:
        self.model = model or DiskModel()
        self.counters = counters
        self._store: dict[str, object] = {}
        self._sizes: dict[str, int] = {}
        self.simulated_seconds = 0.0
        self.total_bytes_written = 0
        self.total_bytes_read = 0
        self.write_ops = 0
        self.read_ops = 0
        self.peak_stored_bytes = 0

    def write(self, key: str, payload: object, byte_size: int) -> None:
        """Store ``payload`` under ``key``, charging ``byte_size`` bytes."""
        if byte_size < 0:
            raise StorageError(f"negative byte size {byte_size} for {key!r}")
        self._store[key] = payload
        self._sizes[key] = byte_size
        self.simulated_seconds += self.model.transfer_time(byte_size, 1)
        self.total_bytes_written += byte_size
        self.write_ops += 1
        self.peak_stored_bytes = max(self.peak_stored_bytes, self.stored_bytes())
        if self.counters is not None:
            self.counters.disk_writes += 1
            self.counters.bytes_written += byte_size

    def read(self, key: str) -> object:
        """Fetch ``payload`` for ``key``, charging its stored size."""
        try:
            payload = self._store[key]
        except KeyError:
            raise StorageError(f"no object stored under {key!r}") from None
        byte_size = self._sizes[key]
        self.simulated_seconds += self.model.transfer_time(byte_size, 1)
        self.total_bytes_read += byte_size
        self.read_ops += 1
        if self.counters is not None:
            self.counters.disk_reads += 1
            self.counters.bytes_read += byte_size
        return payload

    def delete(self, key: str) -> None:
        """Drop a stored object (no I/O charge — it models a free)."""
        self._store.pop(key, None)
        self._sizes.pop(key, None)

    def stored_bytes(self) -> int:
        """Total bytes currently resident on the simulated disk."""
        return sum(self._sizes.values())

    def __contains__(self, key: str) -> bool:
        return key in self._store
