"""Memory-usage estimation for mining structures.

H-Mine's defining systems feature (and the reason the paper can enforce
memory limits on it but not on FP-tree or Tree Projection, Section 5.3)
is that its structure size is *predictable*: one fixed-size entry per
frequent-item occurrence plus headers. The RP-Struct inherits this —
group patterns are stored once, tails entry-per-occurrence.

Estimates use 2004-flavoured entry sizes so the 4/8 MB budgets of
Figures 21–24 translate meaningfully onto the scaled-down datasets.
"""

from __future__ import annotations

from repro.errors import StorageError

#: An H-struct entry: item id + hyper-link pointer.
ENTRY_BYTES = 8
#: A header-table slot: item, count, item-link (+ group-link for RP).
HEADER_BYTES = 16
#: Per-transaction / per-tail framing.
TUPLE_OVERHEAD_BYTES = 8
#: Per-group framing: pattern pointer, count, tail pointer.
GROUP_OVERHEAD_BYTES = 16


def estimate_hstruct_bytes(
    frequent_occurrences: int, tuple_count: int, frequent_item_count: int
) -> int:
    """Estimated H-struct footprint (Pei et al.'s accounting).

    ``frequent_occurrences`` is the total number of frequent-item
    occurrences across transactions — each becomes one linked entry.
    """
    if min(frequent_occurrences, tuple_count, frequent_item_count) < 0:
        raise StorageError("negative size inputs")
    return (
        frequent_occurrences * ENTRY_BYTES
        + tuple_count * TUPLE_OVERHEAD_BYTES
        + frequent_item_count * HEADER_BYTES
    )


def estimate_transactions_bytes(transactions: list[tuple[int, ...]], item_count: int) -> int:
    """H-struct estimate for an explicit (projected) transaction list."""
    occurrences = sum(len(tx) for tx in transactions)
    return estimate_hstruct_bytes(occurrences, len(transactions), item_count)


def estimate_rpstruct_bytes(groups, item_count: int) -> int:
    """Estimated RP-Struct footprint for a compressed (projected) database.

    Pattern items are stored once per group; every tail occurrence costs
    a linked entry exactly like H-Mine (Section 4.1's group-tail reuse of
    the H-Mine structure).
    """
    total = item_count * HEADER_BYTES
    for group in groups:
        total += GROUP_OVERHEAD_BYTES + len(group.pattern) * ENTRY_BYTES
        for tail in group.tails:
            total += TUPLE_OVERHEAD_BYTES + len(tail) * ENTRY_BYTES
    return total


def megabytes(n: float) -> int:
    """Convenience: ``megabytes(4)`` -> the paper's 4 MB budget in bytes."""
    if n <= 0:
        raise StorageError(f"memory budget must be positive, got {n}")
    return int(n * 1024 * 1024)
