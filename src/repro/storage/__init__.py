"""Simulated disk, memory estimation and memory-limited mining drivers."""

from repro.storage.disk import (
    DiskModel,
    SimulatedDisk,
    cgroups_byte_size,
    transactions_byte_size,
)
from repro.storage.memory import (
    estimate_hstruct_bytes,
    estimate_rpstruct_bytes,
    estimate_transactions_bytes,
    megabytes,
)
from repro.storage.projection import (
    mine_hmine_with_memory_budget,
    mine_rp_with_memory_budget,
    mine_with_memory_budget,
)

__all__ = [
    "DiskModel",
    "SimulatedDisk",
    "cgroups_byte_size",
    "estimate_hstruct_bytes",
    "estimate_rpstruct_bytes",
    "estimate_transactions_bytes",
    "megabytes",
    "mine_hmine_with_memory_budget",
    "mine_rp_with_memory_budget",
    "mine_with_memory_budget",
    "transactions_byte_size",
]
