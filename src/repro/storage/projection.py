"""The shared group-aware mining kernel and the memory-limited drivers.

This module is the single Phase 2 engine room. The first half is the
**group kernel**: counting, normalization, projection and the Lemma 3.1
single-group enumeration over the unified
:class:`~repro.core.groups.Group` representation, exposed through
:func:`mine_grouped` with two backends selected like
``compress(..., backend=...)``:

``"python"``
    The reference projected-database engine (Figure 3): explicit group
    rows, per-item loops. Works on any group list, including bare
    hand-built rows.
``"bitset"``
    A vertical engine over the shared
    :class:`~repro.data.encoded.EncodedDatabase`: each group is just
    *(pattern set, member-position mask)*; counting an item inside a
    group is one big-int ``&`` + ``bit_count()`` and projection narrows
    the mask — the same word-parallel trick PR 1 gave Eclat, now applied
    to group counting. Requires a :class:`~repro.core.groups.GroupedDatabase`
    with an attached original (``supports_bitset``).

Both backends produce bit-identical pattern sets; ``backend=None``
auto-selects bitset when the source supports it. Every recycling miner
(`naive`, Recycle-HM/FP/TP/Eclat) routes its shared pieces — global
F-list counting, root normalization, the single-group enumerator —
through this kernel instead of private copies.

The second half is the memory-limited *parallel projection* machinery of
Sections 3.3 and 5.3: when the mining structure exceeds the budget, one
pass writes every tuple into the projected database of **each** frequent
item on (simulated) disk, and partitions are mined independently.
:func:`mine_hmine_with_memory_budget` (plain H-Mine) and
:func:`mine_rp_with_memory_budget` (recycling over groups) are the
Figures 21-24 pairing, registered as ``budget_fn`` capabilities in the
miner registry.
"""

from __future__ import annotations

from collections import Counter
from itertools import combinations

from repro.core.groups import Group, GroupedDatabase, to_grouped
from repro.data.encoded import EncodedDatabase
from repro.data.transactions import TransactionDatabase
from repro.errors import MiningError
from repro.metrics.counters import CostCounters
from repro.mining.flist import FList
from repro.mining.hmine import build_hstruct, mine_hmine_suffixes
from repro.mining.patterns import PatternSet
from repro.storage.disk import SimulatedDisk, cgroups_byte_size, transactions_byte_size
from repro.storage.memory import estimate_rpstruct_bytes, estimate_transactions_bytes

#: Backends accepted by :func:`mine_grouped` (``None`` auto-selects).
GROUP_KERNEL_BACKENDS = ("bitset", "python")

#: The stat keys every kernel pass charges (flushed into CostCounters).
KERNEL_STAT_KEYS = (
    "group_counts",
    "tuple_scans",
    "item_visits",
    "projections",
    "single_group_enumerations",
)


def new_kernel_stats() -> dict[str, int]:
    """A fresh zeroed stats dict with the kernel's counter keys."""
    return dict.fromkeys(KERNEL_STAT_KEYS, 0)


# ----------------------------------------------------------------------
# the horizontal (python) group kernel
# ----------------------------------------------------------------------
def count_group_supports(
    groups: list[Group], stats: dict[str, int]
) -> Counter[int]:
    """Item supports over a (projected) grouped database.

    A group's pattern items are counted once with the group count
    instead of tuple by tuple (Section 3.1's group-count saving); tails
    are scanned per occurrence.
    """
    counts: Counter[int] = Counter()
    for group in groups:
        if group.pattern:
            stats["group_counts"] += 1
            for item in group.pattern:
                counts[item] += group.count
        for tail in group.tails:
            stats["tuple_scans"] += 1
            stats["item_visits"] += len(tail)
            counts.update(tail)
    return counts


def normalize_groups(
    groups: list[Group], frequent_rank: dict[int, int], stats: dict[str, int]
) -> list[Group]:
    """Drop infrequent items, rank-sort, and merge groups by pattern."""
    merged: dict[tuple[int, ...], list] = {}
    for group in groups:
        pattern = tuple(
            sorted(
                (i for i in group.pattern if i in frequent_rank),
                key=frequent_rank.__getitem__,
            )
        )
        tails = []
        for tail in group.tails:
            filtered = tuple(
                sorted(
                    (i for i in tail if i in frequent_rank),
                    key=frequent_rank.__getitem__,
                )
            )
            if filtered:
                tails.append(filtered)
        if not pattern and not tails:
            continue
        slot = merged.setdefault(pattern, [0, []])
        slot[0] += group.count
        slot[1].extend(tails)
    return [
        Group(pattern, count, tuple(tails))
        for pattern, (count, tails) in merged.items()
    ]


def project_groups(
    groups: list[Group], item: int, rank: dict[int, int], stats: dict[str, int]
) -> list[Group]:
    """The ``item``-projected grouped database.

    Keeps, for every tuple containing ``item``, the items ranked strictly
    after it. Groups whose pattern contains ``item`` move wholesale
    (their count is preserved); otherwise only tails containing ``item``
    move, regrouped under their truncated pattern.
    """
    pivot = rank[item]
    merged: dict[tuple[int, ...], list] = {}
    stats["projections"] += 1
    for group in groups:
        if item in group.pattern:
            stats["group_counts"] += 1
            new_pattern = tuple(i for i in group.pattern if rank[i] > pivot)
            new_tails = []
            for tail in group.tails:
                stats["tuple_scans"] += 1
                truncated = tuple(i for i in tail if rank[i] > pivot)
                stats["item_visits"] += len(truncated)
                if truncated:
                    new_tails.append(truncated)
            if not new_pattern and not new_tails:
                continue
            slot = merged.setdefault(new_pattern, [0, []])
            slot[0] += group.count
            slot[1].extend(new_tails)
        else:
            truncated_pattern: tuple[int, ...] | None = None
            for tail in group.tails:
                stats["tuple_scans"] += 1
                if item not in tail:
                    continue
                if truncated_pattern is None:
                    truncated_pattern = tuple(
                        i for i in group.pattern if rank[i] > pivot
                    )
                truncated_tail = tuple(i for i in tail if rank[i] > pivot)
                stats["item_visits"] += len(truncated_tail)
                if not truncated_pattern and not truncated_tail:
                    continue
                slot = merged.setdefault(truncated_pattern, [0, []])
                slot[0] += 1
                if truncated_tail:
                    slot[1].append(truncated_tail)
    return [
        Group(pattern, count, tuple(tails))
        for pattern, (count, tails) in merged.items()
    ]


def find_single_group(
    groups: list[Group], frequent: list[int], min_support: int
) -> Group | None:
    """Return the lone group when Lemma 3.1 applies, else ``None``.

    The lemma requires every occurrence of every (locally) frequent item
    to lie in a single group's pattern: one group, no tails, and the
    pattern covering all frequent items.
    """
    if len(groups) != 1:
        return None
    group = groups[0]
    if group.tails or group.count < min_support:
        return None
    if group.pattern_set != set(frequent):
        return None
    return group


def enumerate_single_group(
    items: tuple[int, ...],
    count: int,
    prefix: tuple[int, ...],
    result: PatternSet,
    min_size: int = 1,
) -> None:
    """Lemma 3.1's enumeration: every combination of ``items`` (of size
    at least ``min_size``) extends ``prefix`` with support ``count``.

    All five recycling miners share this — it is the one place subset
    enumeration replaces recursion.
    """
    for size in range(min_size, len(items) + 1):
        for combo in combinations(items, size):
            result.add(prefix + combo, count)


class _PythonGroupEngine:
    """RP-InMemory (Figure 3) over explicit group rows."""

    def __init__(self, min_support: int, single_group_shortcut: bool = True) -> None:
        self.min_support = min_support
        self.single_group_shortcut = single_group_shortcut
        self.result = PatternSet()
        self.stats = new_kernel_stats()

    def mine(self, groups: list[Group], prefix: tuple[int, ...]) -> None:
        """Mine all frequent extensions of ``prefix``."""
        counts = count_group_supports(groups, self.stats)
        frequent = [i for i, c in counts.items() if c >= self.min_support]
        if not frequent:
            return
        # Local F-list: ascending support, ties by item id.
        frequent.sort(key=lambda i: (counts[i], i))
        rank = {item: pos for pos, item in enumerate(frequent)}
        normalized = normalize_groups(groups, rank, self.stats)

        shortcut = (
            find_single_group(normalized, frequent, self.min_support)
            if self.single_group_shortcut
            else None
        )
        if shortcut is not None:
            self.stats["single_group_enumerations"] += 1
            enumerate_single_group(
                shortcut.pattern, shortcut.count, prefix, self.result
            )
            return

        for item in frequent:
            new_prefix = prefix + (item,)
            self.result.add(new_prefix, counts[item])
            projected = project_groups(normalized, item, rank, self.stats)
            if projected:
                self.mine(projected, new_prefix)


class _BitsetGroupEngine:
    """The vertical group kernel: groups as (pattern set, position mask).

    Counting item ``i`` in a group is ``popcount(bitmap(i) & mask)`` for
    tail items and ``popcount(mask)`` outright for pattern items (the
    group-count saving); projecting on a pivot narrows each mask with one
    ``&``. Masks of distinct groups partition the prefix's tidset, so
    every emitted support is the exact support — bit-identical to the
    python engine.
    """

    def __init__(
        self,
        enc: EncodedDatabase,
        min_support: int,
        single_group_shortcut: bool = True,
    ) -> None:
        self.enc = enc
        self.min_support = min_support
        self.single_group_shortcut = single_group_shortcut
        self.result = PatternSet()
        self.stats = new_kernel_stats()

    def mine(
        self,
        states: list[tuple[frozenset[int], int]],
        candidates: list[int],
        prefix: tuple[int, ...],
    ) -> None:
        bitmap_for_item = self.enc.bitmap_for_item
        stats = self.stats
        counts: dict[int, int] = {}
        for item in candidates:
            bitmap = None
            total = 0
            for pattern_set, mask in states:
                if item in pattern_set:
                    stats["group_counts"] += 1
                    total += mask.bit_count()
                else:
                    if bitmap is None:
                        bitmap = bitmap_for_item(item)
                    stats["item_visits"] += 1
                    total += (bitmap & mask).bit_count()
            if total >= self.min_support:
                counts[item] = total
        if not counts:
            return
        frequent = sorted(counts, key=lambda i: (counts[i], i))

        # Lemma 3.1, vertically: when every frequent item is a pattern
        # item of every live state, the states merge into one tail-free
        # group under normalization (exactly the python engine's merged
        # single-group condition), with count = total live members.
        if self.single_group_shortcut and all(
            frequent_item in pattern_set
            for pattern_set, _mask in states
            for frequent_item in frequent
        ):
            stats["single_group_enumerations"] += 1
            total_members = sum(mask.bit_count() for _pattern, mask in states)
            enumerate_single_group(
                tuple(frequent), total_members, prefix, self.result
            )
            return

        for position, item in enumerate(frequent):
            new_prefix = prefix + (item,)
            self.result.add(new_prefix, counts[item])
            rest = frequent[position + 1 :]
            if not rest:
                continue
            stats["projections"] += 1
            bitmap = bitmap_for_item(item)
            children = [
                (pattern_set, child_mask)
                for pattern_set, mask in states
                if (
                    child_mask := (mask if item in pattern_set else bitmap & mask)
                )
            ]
            if children:
                self.mine(children, rest, new_prefix)


def _flush_kernel_stats(
    counters: CostCounters, stats: dict[str, int], result: PatternSet
) -> None:
    counters.group_counts += stats["group_counts"]
    counters.tuple_scans += stats["tuple_scans"]
    counters.item_visits += stats["item_visits"]
    counters.projections += stats["projections"]
    counters.single_group_enumerations += stats["single_group_enumerations"]
    counters.patterns_emitted += len(result)


def mine_grouped(
    source: GroupedDatabase | TransactionDatabase | list[Group],
    min_support: int,
    counters: CostCounters | None = None,
    single_group_shortcut: bool = True,
    backend: str | None = None,
) -> PatternSet:
    """All patterns with support >= ``min_support`` from a grouped source.

    The one Phase 2 entry point every consumer shares. ``backend`` is
    ``"bitset"``, ``"python"`` or ``None`` (auto: bitset whenever the
    source carries an encoded original and full member masks).
    ``single_group_shortcut=False`` disables the Lemma 3.1 enumeration —
    an ablation knob; results are identical either way.
    """
    if min_support < 1:
        raise MiningError(f"min_support must be >= 1, got {min_support}")
    if backend is not None and backend not in GROUP_KERNEL_BACKENDS:
        raise MiningError(
            f"unknown group-kernel backend {backend!r} "
            f"(known: {', '.join(GROUP_KERNEL_BACKENDS)})"
        )
    grouped = to_grouped(source)
    if backend is None:
        backend = "bitset" if grouped.supports_bitset else "python"
    elif backend == "bitset" and not grouped.supports_bitset:
        raise MiningError(
            "bitset backend needs a GroupedDatabase with an encoded "
            "original and full member masks (got bare groups)"
        )

    groups = list(grouped.mining_groups())
    if backend == "bitset":
        enc = grouped.encoded()
        assert enc is not None  # guaranteed by supports_bitset
        bitset_engine = _BitsetGroupEngine(enc, min_support, single_group_shortcut)
        states = [(g.pattern_set, g.mask) for g in groups if g.mask]
        bitset_engine.mine(states, [enc.item_of(c) for c in range(enc.item_count())], ())
        result, stats = bitset_engine.result, bitset_engine.stats
    else:
        python_engine = _PythonGroupEngine(min_support, single_group_shortcut)
        python_engine.mine(groups, ())
        result, stats = python_engine.result, python_engine.stats
    if counters is not None:
        _flush_kernel_stats(counters, stats, result)
    return result


# ----------------------------------------------------------------------
# memory-limited drivers (Sections 3.3 / 5.3, Figures 21-24)
# ----------------------------------------------------------------------
def mine_with_memory_budget(
    algorithm: str,
    kind: str,
    source: TransactionDatabase | GroupedDatabase | list[Group],
    min_support: int,
    memory_budget_bytes: int,
    **kwargs: object,
) -> PatternSet:
    """Run the memory-limited driver of a registered miner.

    Resolves ``(kind, algorithm)`` through the miner registry and invokes
    the spec's ``budget_fn``; raises :class:`~repro.errors.MiningError`
    for miners without the memory-budget capability.
    """
    from repro.mining.registry import mine_with_budget

    return mine_with_budget(
        algorithm, kind, source, min_support, memory_budget_bytes, **kwargs
    )


def mine_hmine_with_memory_budget(
    db: TransactionDatabase,
    min_support: int,
    memory_budget_bytes: int,
    disk: SimulatedDisk | None = None,
    counters: CostCounters | None = None,
    mode: str = "parallel",
) -> PatternSet:
    """H-Mine under a memory budget, spilling projections to disk.

    ``mode`` selects between the two projection schemes Section 3.3
    weighs: ``"parallel"`` (the paper's choice — one pass writes each
    tuple into *every* frequent item's partition, trading disk space for
    speed) and ``"partition"`` (each tuple is written only to its first
    item's partition, and partitions re-project forward after mining —
    less disk space, more passes).
    """
    if min_support < 1:
        raise MiningError(f"min_support must be >= 1, got {min_support}")
    if memory_budget_bytes < 1:
        raise MiningError(f"memory budget must be positive, got {memory_budget_bytes}")
    if mode not in ("parallel", "partition"):
        raise MiningError(f"unknown projection mode {mode!r}")
    disk = disk or SimulatedDisk(counters=counters)
    flist = FList.from_database(db, min_support)
    rank = {item: flist.rank(item) for item in flist}
    result = PatternSet()
    transactions = build_hstruct(db, flist)
    if mode == "parallel":
        _mine_transaction_block(
            transactions,
            (),
            min_support,
            rank,
            memory_budget_bytes,
            disk,
            result,
            counters,
            depth_key="h",
        )
    else:
        _mine_partitioned(
            transactions, min_support, rank, memory_budget_bytes, disk, result, counters
        )
    if counters is not None:
        counters.patterns_emitted += len(result)
    return result


def _mine_partitioned(
    transactions: list[tuple[int, ...]],
    min_support: int,
    rank: dict[int, int],
    budget: int,
    disk: SimulatedDisk,
    result: PatternSet,
    counters: CostCounters | None,
) -> None:
    """Partition-based projection (Section 3.3's space-saving variant).

    Each tuple lives in exactly one partition at a time — that of its
    first live item. Mining partition ``i`` handles every pattern
    containing ``i``; afterwards the partition's suffixes migrate
    (append-only chunks, so only delta bytes are charged) to their next
    item's partition. Disk holds each tuple once.
    """
    counts: Counter[int] = Counter()
    for tx in transactions:
        counts.update(tx)
    frequent = [i for i, c in counts.items() if c >= min_support]
    if not frequent:
        return
    frequent.sort(key=rank.__getitem__)
    frequent_set = set(frequent)

    partitions: dict[int, list[tuple[int, ...]]] = {i: [] for i in frequent}
    for tx in transactions:
        live = tuple(i for i in tx if i in frequent_set)
        if live:
            partitions[live[0]].append(live[1:])
    chunk_counts: dict[int, int] = {}
    for item in frequent:
        disk.write(
            f"part/{item}/0", partitions[item], transactions_byte_size(partitions[item])
        )
        chunk_counts[item] = 1
    partitions.clear()

    for item in frequent:
        suffixes: list[tuple[int, ...]] = []
        for chunk in range(chunk_counts[item]):
            key = f"part/{item}/{chunk}"
            suffixes.extend(disk.read(key))  # type: ignore[arg-type]
            disk.delete(key)
        result.add((item,), counts[item])
        live_suffixes = [tx for tx in suffixes if tx]
        if not live_suffixes:
            continue
        # Mine all extensions of `item` from its partition; the
        # in-memory/recurse decision reuses the parallel block.
        _mine_transaction_block(
            live_suffixes,
            (item,),
            min_support,
            rank,
            budget,
            disk,
            result,
            counters,
            depth_key=f"part-sub/{item}",
        )
        # Re-project forward: each suffix appends to its head's partition.
        forward: dict[int, list[tuple[int, ...]]] = {}
        for tx in live_suffixes:
            forward.setdefault(tx[0], []).append(tx[1:])
        for successor, rows in forward.items():
            chunk = chunk_counts[successor]
            disk.write(
                f"part/{successor}/{chunk}", rows, transactions_byte_size(rows)
            )
            chunk_counts[successor] = chunk + 1


def _mine_transaction_block(
    transactions: list[tuple[int, ...]],
    prefix: tuple[int, ...],
    min_support: int,
    rank: dict[int, int],
    budget: int,
    disk: SimulatedDisk,
    result: PatternSet,
    counters: CostCounters | None,
    depth_key: str,
) -> None:
    counts: Counter[int] = Counter()
    for tx in transactions:
        counts.update(tx)
    frequent = [i for i, c in counts.items() if c >= min_support]
    if not frequent:
        return
    frequent.sort(key=rank.__getitem__)

    estimate = estimate_transactions_bytes(transactions, len(frequent))
    if estimate <= budget:
        mined = mine_hmine_suffixes(transactions, min_support, prefix, rank, counters)
        for items, support in mined.items():
            result.add(items, support)
        return

    # Parallel projection: one pass writes each transaction into every
    # frequent item's projected database.
    frequent_set = set(frequent)
    partitions: dict[int, list[tuple[int, ...]]] = {i: [] for i in frequent}
    for tx in transactions:
        live = [i for i in tx if i in frequent_set]
        for position, item in enumerate(live):
            suffix = tuple(live[position + 1 :])
            if suffix:
                partitions[item].append(suffix)
    for item in frequent:
        key = f"{depth_key}/{'.'.join(map(str, prefix))}/{item}"
        disk.write(key, partitions[item], transactions_byte_size(partitions[item]))
    # Free the in-memory copy conceptually; mine partitions one at a time.
    for item in frequent:
        key = f"{depth_key}/{'.'.join(map(str, prefix))}/{item}"
        projected = disk.read(key)
        disk.delete(key)
        new_prefix = prefix + (item,)
        result.add(new_prefix, counts[item])
        _mine_transaction_block(
            projected,  # type: ignore[arg-type]
            new_prefix,
            min_support,
            rank,
            budget,
            disk,
            result,
            counters,
            depth_key,
        )


def mine_rp_with_memory_budget(
    compressed: GroupedDatabase | list[Group],
    min_support: int,
    memory_budget_bytes: int,
    disk: SimulatedDisk | None = None,
    counters: CostCounters | None = None,
) -> PatternSet:
    """RP-Mine under a memory budget (Figure 3, lines 1–6).

    The recycling advantage persists on disk: projected *compressed*
    databases store group patterns once, so both the bytes written and
    the per-partition mining shrink relative to plain H-Mine.
    """
    if min_support < 1:
        raise MiningError(f"min_support must be >= 1, got {min_support}")
    if memory_budget_bytes < 1:
        raise MiningError(f"memory budget must be positive, got {memory_budget_bytes}")
    disk = disk or SimulatedDisk(counters=counters)
    groups = list(to_grouped(compressed).mining_groups())
    result = PatternSet()
    _mine_group_block(
        groups, (), min_support, memory_budget_bytes, disk, result, counters
    )
    if counters is not None:
        counters.patterns_emitted += len(result)
    return result


def _mine_group_block(
    groups: list[Group],
    prefix: tuple[int, ...],
    min_support: int,
    budget: int,
    disk: SimulatedDisk,
    result: PatternSet,
    counters: CostCounters | None,
) -> None:
    stats = new_kernel_stats()
    counts = count_group_supports(groups, stats)
    frequent = [i for i, c in counts.items() if c >= min_support]
    if counters is not None:
        counters.group_counts += stats["group_counts"]
        counters.tuple_scans += stats["tuple_scans"]
        counters.item_visits += stats["item_visits"]
    if not frequent:
        return
    frequent.sort(key=lambda i: (counts[i], i))
    rank = {item: pos for pos, item in enumerate(frequent)}

    # Estimate on the frequent-filtered structure — infrequent tail items
    # never enter the RP-Struct, exactly as H-Mine's estimate only counts
    # frequent occurrences.
    stats2 = new_kernel_stats()
    normalized = normalize_groups(groups, rank, stats2)
    estimate = estimate_rpstruct_bytes(normalized, len(frequent))
    if estimate <= budget:
        mined = mine_grouped(normalized, min_support, counters)
        for items, support in mined.items():
            result.add(prefix + tuple(items), support)
        return
    for item in frequent:
        projected = project_groups(normalized, item, rank, stats2)
        key = f"rp/{'.'.join(map(str, prefix))}/{item}"
        disk.write(key, projected, cgroups_byte_size(projected))
    if counters is not None:
        counters.group_counts += stats2["group_counts"]
        counters.tuple_scans += stats2["tuple_scans"]
        counters.item_visits += stats2["item_visits"]
        counters.projections += stats2["projections"]
    for item in frequent:
        key = f"rp/{'.'.join(map(str, prefix))}/{item}"
        projected = disk.read(key)
        disk.delete(key)
        new_prefix = prefix + (item,)
        result.add(new_prefix, counts[item])
        _mine_group_block(
            projected,  # type: ignore[arg-type]
            new_prefix,
            min_support,
            budget,
            disk,
            result,
            counters,
        )
