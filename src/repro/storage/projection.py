"""Memory-limited mining via parallel projection (Sections 3.3 and 5.3).

When the (compressed) database's mining structure exceeds the memory
budget, it is *parallel-projected*: one pass writes every tuple into the
projected database of **each** of its frequent items on (simulated) disk
— the approach the paper adopts over partition-based projection, trading
disk space for a single projection pass. Each projected database is then
read back and mined independently, recursing if it still does not fit.

Two drivers share this logic: :func:`mine_hmine_with_memory_budget` for
the plain H-Mine baseline and :func:`mine_rp_with_memory_budget` for the
recycling miner over compressed groups — the H-Mine vs HM-MCP pairing of
Figures 21–24. Both are registered as ``budget_fn`` capabilities in the
miner registry; callers resolve them by name through
:func:`mine_with_memory_budget` (a thin alias of
:func:`repro.mining.registry.mine_with_budget`) instead of hard-coding
the pairing.
"""

from __future__ import annotations

from collections import Counter

from repro.core.naive import (
    CGroup,
    compressed_to_cgroups,
    count_group_supports,
    mine_rp,
    normalize_groups,
    project_groups,
)
from repro.core.compression import CompressedDatabase
from repro.data.transactions import TransactionDatabase
from repro.errors import MiningError
from repro.metrics.counters import CostCounters
from repro.mining.flist import FList
from repro.mining.hmine import build_hstruct, mine_hmine_suffixes
from repro.mining.patterns import PatternSet
from repro.storage.disk import SimulatedDisk, cgroups_byte_size, transactions_byte_size
from repro.storage.memory import estimate_rpstruct_bytes, estimate_transactions_bytes


def mine_with_memory_budget(
    algorithm: str,
    kind: str,
    source: TransactionDatabase | CompressedDatabase | list[CGroup],
    min_support: int,
    memory_budget_bytes: int,
    **kwargs: object,
) -> PatternSet:
    """Run the memory-limited driver of a registered miner.

    Resolves ``(kind, algorithm)`` through the miner registry and invokes
    the spec's ``budget_fn``; raises :class:`~repro.errors.MiningError`
    for miners without the memory-budget capability.
    """
    from repro.mining.registry import mine_with_budget

    return mine_with_budget(
        algorithm, kind, source, min_support, memory_budget_bytes, **kwargs
    )


def mine_hmine_with_memory_budget(
    db: TransactionDatabase,
    min_support: int,
    memory_budget_bytes: int,
    disk: SimulatedDisk | None = None,
    counters: CostCounters | None = None,
    mode: str = "parallel",
) -> PatternSet:
    """H-Mine under a memory budget, spilling projections to disk.

    ``mode`` selects between the two projection schemes Section 3.3
    weighs: ``"parallel"`` (the paper's choice — one pass writes each
    tuple into *every* frequent item's partition, trading disk space for
    speed) and ``"partition"`` (each tuple is written only to its first
    item's partition, and partitions re-project forward after mining —
    less disk space, more passes).
    """
    if min_support < 1:
        raise MiningError(f"min_support must be >= 1, got {min_support}")
    if memory_budget_bytes < 1:
        raise MiningError(f"memory budget must be positive, got {memory_budget_bytes}")
    if mode not in ("parallel", "partition"):
        raise MiningError(f"unknown projection mode {mode!r}")
    disk = disk or SimulatedDisk(counters=counters)
    flist = FList.from_database(db, min_support)
    rank = {item: flist.rank(item) for item in flist}
    result = PatternSet()
    transactions = build_hstruct(db, flist)
    if mode == "parallel":
        _mine_transaction_block(
            transactions,
            (),
            min_support,
            rank,
            memory_budget_bytes,
            disk,
            result,
            counters,
            depth_key="h",
        )
    else:
        _mine_partitioned(
            transactions, min_support, rank, memory_budget_bytes, disk, result, counters
        )
    if counters is not None:
        counters.patterns_emitted += len(result)
    return result


def _mine_partitioned(
    transactions: list[tuple[int, ...]],
    min_support: int,
    rank: dict[int, int],
    budget: int,
    disk: SimulatedDisk,
    result: PatternSet,
    counters: CostCounters | None,
) -> None:
    """Partition-based projection (Section 3.3's space-saving variant).

    Each tuple lives in exactly one partition at a time — that of its
    first live item. Mining partition ``i`` handles every pattern
    containing ``i``; afterwards the partition's suffixes migrate
    (append-only chunks, so only delta bytes are charged) to their next
    item's partition. Disk holds each tuple once.
    """
    counts: Counter[int] = Counter()
    for tx in transactions:
        counts.update(tx)
    frequent = [i for i, c in counts.items() if c >= min_support]
    if not frequent:
        return
    frequent.sort(key=rank.__getitem__)
    frequent_set = set(frequent)

    partitions: dict[int, list[tuple[int, ...]]] = {i: [] for i in frequent}
    for tx in transactions:
        live = tuple(i for i in tx if i in frequent_set)
        if live:
            partitions[live[0]].append(live[1:])
    chunk_counts: dict[int, int] = {}
    for item in frequent:
        disk.write(
            f"part/{item}/0", partitions[item], transactions_byte_size(partitions[item])
        )
        chunk_counts[item] = 1
    partitions.clear()

    for item in frequent:
        suffixes: list[tuple[int, ...]] = []
        for chunk in range(chunk_counts[item]):
            key = f"part/{item}/{chunk}"
            suffixes.extend(disk.read(key))  # type: ignore[arg-type]
            disk.delete(key)
        result.add((item,), counts[item])
        live_suffixes = [tx for tx in suffixes if tx]
        if not live_suffixes:
            continue
        # Mine all extensions of `item` from its partition; the
        # in-memory/recurse decision reuses the parallel block.
        _mine_transaction_block(
            live_suffixes,
            (item,),
            min_support,
            rank,
            budget,
            disk,
            result,
            counters,
            depth_key=f"part-sub/{item}",
        )
        # Re-project forward: each suffix appends to its head's partition.
        forward: dict[int, list[tuple[int, ...]]] = {}
        for tx in live_suffixes:
            forward.setdefault(tx[0], []).append(tx[1:])
        for successor, rows in forward.items():
            chunk = chunk_counts[successor]
            disk.write(
                f"part/{successor}/{chunk}", rows, transactions_byte_size(rows)
            )
            chunk_counts[successor] = chunk + 1


def _mine_transaction_block(
    transactions: list[tuple[int, ...]],
    prefix: tuple[int, ...],
    min_support: int,
    rank: dict[int, int],
    budget: int,
    disk: SimulatedDisk,
    result: PatternSet,
    counters: CostCounters | None,
    depth_key: str,
) -> None:
    counts: Counter[int] = Counter()
    for tx in transactions:
        counts.update(tx)
    frequent = [i for i, c in counts.items() if c >= min_support]
    if not frequent:
        return
    frequent.sort(key=rank.__getitem__)

    estimate = estimate_transactions_bytes(transactions, len(frequent))
    if estimate <= budget:
        mined = mine_hmine_suffixes(transactions, min_support, prefix, rank, counters)
        for items, support in mined.items():
            result.add(items, support)
        return

    # Parallel projection: one pass writes each transaction into every
    # frequent item's projected database.
    frequent_set = set(frequent)
    partitions: dict[int, list[tuple[int, ...]]] = {i: [] for i in frequent}
    for tx in transactions:
        live = [i for i in tx if i in frequent_set]
        for position, item in enumerate(live):
            suffix = tuple(live[position + 1 :])
            if suffix:
                partitions[item].append(suffix)
    for item in frequent:
        key = f"{depth_key}/{'.'.join(map(str, prefix))}/{item}"
        disk.write(key, partitions[item], transactions_byte_size(partitions[item]))
    # Free the in-memory copy conceptually; mine partitions one at a time.
    for item in frequent:
        key = f"{depth_key}/{'.'.join(map(str, prefix))}/{item}"
        projected = disk.read(key)
        disk.delete(key)
        new_prefix = prefix + (item,)
        result.add(new_prefix, counts[item])
        _mine_transaction_block(
            projected,  # type: ignore[arg-type]
            new_prefix,
            min_support,
            rank,
            budget,
            disk,
            result,
            counters,
            depth_key,
        )


def mine_rp_with_memory_budget(
    compressed: CompressedDatabase | list[CGroup],
    min_support: int,
    memory_budget_bytes: int,
    disk: SimulatedDisk | None = None,
    counters: CostCounters | None = None,
) -> PatternSet:
    """RP-Mine under a memory budget (Figure 3, lines 1–6).

    The recycling advantage persists on disk: projected *compressed*
    databases store group patterns once, so both the bytes written and
    the per-partition mining shrink relative to plain H-Mine.
    """
    if min_support < 1:
        raise MiningError(f"min_support must be >= 1, got {min_support}")
    if memory_budget_bytes < 1:
        raise MiningError(f"memory budget must be positive, got {memory_budget_bytes}")
    disk = disk or SimulatedDisk(counters=counters)
    if isinstance(compressed, CompressedDatabase):
        groups = compressed_to_cgroups(compressed)
    else:
        groups = list(compressed)
    result = PatternSet()
    _mine_group_block(
        groups, (), min_support, memory_budget_bytes, disk, result, counters
    )
    if counters is not None:
        counters.patterns_emitted += len(result)
    return result


def _mine_group_block(
    groups: list[CGroup],
    prefix: tuple[int, ...],
    min_support: int,
    budget: int,
    disk: SimulatedDisk,
    result: PatternSet,
    counters: CostCounters | None,
) -> None:
    stats = {
        "group_counts": 0,
        "tuple_scans": 0,
        "item_visits": 0,
        "projections": 0,
        "single_group_enumerations": 0,
    }
    counts = count_group_supports(groups, stats)
    frequent = [i for i, c in counts.items() if c >= min_support]
    if counters is not None:
        counters.group_counts += stats["group_counts"]
        counters.tuple_scans += stats["tuple_scans"]
        counters.item_visits += stats["item_visits"]
    if not frequent:
        return
    frequent.sort(key=lambda i: (counts[i], i))
    rank = {item: pos for pos, item in enumerate(frequent)}

    # Estimate on the frequent-filtered structure — infrequent tail items
    # never enter the RP-Struct, exactly as H-Mine's estimate only counts
    # frequent occurrences.
    stats2 = dict.fromkeys(stats, 0)
    normalized = normalize_groups(groups, rank, stats2)
    estimate = estimate_rpstruct_bytes(normalized, len(frequent))
    if estimate <= budget:
        mined = mine_rp(normalized, min_support, counters)
        for items, support in mined.items():
            result.add(prefix + tuple(items), support)
        return
    for item in frequent:
        projected = project_groups(normalized, item, rank, stats2)
        key = f"rp/{'.'.join(map(str, prefix))}/{item}"
        disk.write(key, projected, cgroups_byte_size(projected))
    if counters is not None:
        counters.group_counts += stats2["group_counts"]
        counters.tuple_scans += stats2["tuple_scans"]
        counters.item_visits += stats2["item_visits"]
        counters.projections += stats2["projections"]
    for item in frequent:
        key = f"rp/{'.'.join(map(str, prefix))}/{item}"
        projected = disk.read(key)
        disk.delete(key)
        new_prefix = prefix + (item,)
        result.add(new_prefix, counts[item])
        _mine_group_block(
            projected,  # type: ignore[arg-type]
            new_prefix,
            min_support,
            budget,
            disk,
            result,
            counters,
        )
