"""Baseline frequent-pattern miners (the substrate the paper adapts).

All miners share one contract::

    mine_*(db, min_support, counters=None) -> PatternSet

with absolute ``min_support`` (support >= threshold is frequent) and
optional :class:`~repro.metrics.counters.CostCounters` accounting.
"""

from repro.mining.apriori import mine_apriori
from repro.mining.bruteforce import mine_bruteforce
from repro.mining.eclat import mine_eclat, mine_eclat_bitset
from repro.mining.flist import FList, count_supports, project_transactions
from repro.mining.fptree import FPNode, FPTree, mine_fpgrowth
from repro.mining.hmine import build_hstruct, mine_hmine, mine_hmine_suffixes
from repro.mining.patterns import Pattern, PatternSet, pattern
from repro.mining.registry import (
    MINERS,
    MinerSpec,
    MinerView,
    get_miner,
    has_miner,
    iter_miners,
    miner_names,
    register,
)
from repro.mining.topk import mine_top_k, top_k_by_probe
from repro.mining.treeprojection import mine_treeprojection

#: Deprecated: live name->fn view over the registry's baseline miners.
#: Use :func:`repro.mining.registry.get_miner` in new code.
BASELINE_MINERS = MinerView("baseline")

__all__ = [
    "BASELINE_MINERS",
    "FList",
    "MINERS",
    "MinerSpec",
    "MinerView",
    "FPNode",
    "FPTree",
    "Pattern",
    "PatternSet",
    "build_hstruct",
    "count_supports",
    "get_miner",
    "has_miner",
    "iter_miners",
    "mine_apriori",
    "mine_bruteforce",
    "mine_eclat",
    "mine_eclat_bitset",
    "mine_fpgrowth",
    "mine_hmine",
    "mine_hmine_suffixes",
    "mine_top_k",
    "mine_treeprojection",
    "miner_names",
    "pattern",
    "register",
    "top_k_by_probe",
    "project_transactions",
]
