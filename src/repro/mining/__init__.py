"""Baseline frequent-pattern miners (the substrate the paper adapts).

All miners share one contract::

    mine_*(db, min_support, counters=None) -> PatternSet

with absolute ``min_support`` (support >= threshold is frequent) and
optional :class:`~repro.metrics.counters.CostCounters` accounting.
"""

from repro.mining.apriori import mine_apriori
from repro.mining.bruteforce import mine_bruteforce
from repro.mining.eclat import mine_eclat
from repro.mining.flist import FList, count_supports, project_transactions
from repro.mining.fptree import FPNode, FPTree, mine_fpgrowth
from repro.mining.hmine import build_hstruct, mine_hmine, mine_hmine_suffixes
from repro.mining.patterns import Pattern, PatternSet, pattern
from repro.mining.topk import mine_top_k, top_k_by_probe
from repro.mining.treeprojection import mine_treeprojection

#: Non-recycling miners keyed by the names used in benchmark output.
BASELINE_MINERS = {
    "apriori": mine_apriori,
    "eclat": mine_eclat,
    "hmine": mine_hmine,
    "fpgrowth": mine_fpgrowth,
    "treeprojection": mine_treeprojection,
}

__all__ = [
    "BASELINE_MINERS",
    "FList",
    "FPNode",
    "FPTree",
    "Pattern",
    "PatternSet",
    "build_hstruct",
    "count_supports",
    "mine_apriori",
    "mine_bruteforce",
    "mine_eclat",
    "mine_fpgrowth",
    "mine_hmine",
    "mine_hmine_suffixes",
    "mine_top_k",
    "mine_treeprojection",
    "pattern",
    "top_k_by_probe",
    "project_transactions",
]
