"""The capability-aware miner registry: one dispatch surface for all miners.

The seed dispatched through two disjoint ad-hoc dicts (``BASELINE_MINERS``
and ``RECYCLING_MINERS``). This module replaces both with a single
:data:`MINERS` registry of :class:`MinerSpec` entries. A spec records
everything a driver needs to pick a miner:

``name``
    CLI-facing identifier, unique per kind.
``kind``
    ``"baseline"`` (mines a :class:`TransactionDatabase` from scratch),
    ``"recycling"`` (mines a :class:`CompressedDatabase` — the paper's
    phase 2), or ``"condensed"`` (mines a :class:`TransactionDatabase`
    directly into a
    :class:`~repro.data.patterns.CondensedPatternSet` — closed or
    non-derivable entries, the warehouse's storage representation).
``fn``
    ``fn(source, min_support, counters=None) -> PatternSet`` (a
    ``CondensedPatternSet`` for the ``"condensed"`` kind).
``needs_compressed``
    Whether ``source`` must be in group representation. When set,
    :meth:`MinerSpec.mine` coerces any legacy source (a
    ``TransactionDatabase``, a bare group list) through
    :func:`repro.core.groups.to_grouped` — the registry, not each miner,
    owns the conversion.
``backend``
    ``"python"`` (per-element loops) or ``"bitset"`` (word-parallel
    big-int bitmaps over the shared
    :class:`~repro.data.encoded.EncodedDatabase`).
``budget_fn``
    Optional memory-limited driver
    ``budget_fn(source, min_support, budget_bytes, *, disk=None,
    counters=None, ...)`` for miners that can spill projections to disk
    (Section 3.3 / Figures 21-24).

Registration is idempotent per ``(kind, name)`` and open: downstream code
registers a new miner with :func:`register` and every driver — CLI,
:class:`MiningSession`, ``recycle_mine``, the benchmark harness — picks
it up without further wiring.

The built-in miners live in :mod:`repro.mining` and :mod:`repro.core`;
to avoid import cycles they are registered lazily on first lookup
(:func:`_bootstrap`), so importing this module stays cheap and safe from
anywhere in the package.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator, Mapping

from repro.errors import MiningError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.metrics.counters import CostCounters
    from repro.mining.patterns import PatternSet

KINDS = ("baseline", "recycling", "condensed")
BACKENDS = ("python", "bitset")

#: Uniform miner signature: (source, min_support, counters) -> PatternSet.
MinerFn = Callable[..., "PatternSet"]


@dataclass(frozen=True)
class MinerSpec:
    """One registered miner and its capabilities."""

    name: str
    kind: str
    fn: MinerFn
    needs_compressed: bool = False
    backend: str = "python"
    budget_fn: MinerFn | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise MiningError(f"unknown miner kind {self.kind!r} (known: {KINDS})")
        if self.backend not in BACKENDS:
            raise MiningError(
                f"unknown miner backend {self.backend!r} (known: {BACKENDS})"
            )

    @property
    def supports_memory_budget(self) -> bool:
        """Whether this miner has a memory-limited (spill-to-disk) driver."""
        return self.budget_fn is not None

    def mine(
        self, source: object, min_support: int, counters: "CostCounters | None" = None
    ) -> "PatternSet":
        """Run the miner with the uniform contract.

        For recycling miners (``needs_compressed``) the source is first
        coerced into a :class:`~repro.core.groups.GroupedDatabase` — the
        one capability-flagged conversion point that replaced the old
        per-miner ``isinstance`` unions.
        """
        if self.needs_compressed:
            from repro.core.groups import to_grouped

            source = to_grouped(source)
        return self.fn(source, min_support, counters)


_MINERS: dict[tuple[str, str], MinerSpec] = {}
_bootstrapped = False


def register(spec: MinerSpec) -> MinerSpec:
    """Add ``spec`` to the registry; duplicate (kind, name) is an error."""
    key = (spec.kind, spec.name)
    if key in _MINERS:
        raise MiningError(f"{spec.kind} miner {spec.name!r} is already registered")
    _MINERS[key] = spec
    return spec


def get_miner(name: str, kind: str = "baseline") -> MinerSpec:
    """Look up a miner by name and kind, raising :class:`MiningError`."""
    _bootstrap()
    spec = _MINERS.get((kind, name))
    if spec is None:
        known = ", ".join(miner_names(kind))
        raise MiningError(f"unknown {kind} miner {name!r} (known: {known})")
    return spec


def has_miner(name: str, kind: str = "baseline") -> bool:
    """Whether a miner is registered under ``(kind, name)``."""
    _bootstrap()
    return (kind, name) in _MINERS


def miner_names(kind: str) -> list[str]:
    """Sorted names of all miners of one kind."""
    _bootstrap()
    return sorted(name for k, name in _MINERS if k == kind)


def iter_miners(kind: str | None = None) -> list[MinerSpec]:
    """All registered specs (optionally one kind), sorted by (kind, name)."""
    _bootstrap()
    return [
        _MINERS[key]
        for key in sorted(_MINERS)
        if kind is None or key[0] == kind
    ]


class _Registry(Mapping[tuple[str, str], MinerSpec]):
    """Read-only mapping view over the full registry, keyed (kind, name)."""

    def __getitem__(self, key: tuple[str, str]) -> MinerSpec:
        _bootstrap()
        return _MINERS[key]

    def __iter__(self) -> Iterator[tuple[str, str]]:
        _bootstrap()
        return iter(sorted(_MINERS))

    def __len__(self) -> int:
        _bootstrap()
        return len(_MINERS)

    def __repr__(self) -> str:
        return f"MINERS({len(self)} registered)"


#: The single registry every dispatch surface resolves through.
MINERS = _Registry()


class MinerView(Mapping[str, MinerFn]):
    """Deprecated name->fn view over one kind, for the legacy dict API.

    ``BASELINE_MINERS`` and ``RECYCLING_MINERS`` are instances; they stay
    importable and dict-like but read through the live registry. New code
    should use :func:`get_miner` / :func:`iter_miners`.
    """

    def __init__(self, kind: str) -> None:
        if kind not in KINDS:
            raise MiningError(f"unknown miner kind {kind!r} (known: {KINDS})")
        self._kind = kind

    def __getitem__(self, name: str) -> MinerFn:
        _bootstrap()
        spec = _MINERS.get((self._kind, name))
        if spec is None:
            raise KeyError(name)
        return spec.fn

    def __iter__(self) -> Iterator[str]:
        return iter(miner_names(self._kind))

    def __len__(self) -> int:
        return len(miner_names(self._kind))

    def __repr__(self) -> str:
        return f"MinerView({self._kind}: {', '.join(miner_names(self._kind))})"


def mine_with_budget(
    name: str,
    kind: str,
    source: object,
    min_support: int,
    memory_budget_bytes: int,
    **kwargs: object,
) -> "PatternSet":
    """Resolve a memory-budget-capable miner and run its budget driver.

    Extra keyword arguments (``disk``, ``counters``, ``mode``) pass
    through to the driver. Raises :class:`MiningError` when the miner has
    no memory-limited capability.
    """
    spec = get_miner(name, kind)
    if spec.budget_fn is None:
        raise MiningError(
            f"{kind} miner {name!r} has no memory-budget driver "
            "(see MinerSpec.supports_memory_budget)"
        )
    return spec.budget_fn(source, min_support, memory_budget_bytes, **kwargs)


def _bootstrap() -> None:
    """Register the built-in miners once, on first registry access.

    Deferred so that ``repro.mining.registry`` can be imported from
    anywhere (including the modules being registered) without cycles.
    """
    global _bootstrapped
    if _bootstrapped:
        return
    _bootstrapped = True

    from repro.core.naive import mine_rp
    from repro.core.recycle_eclat import mine_recycle_eclat
    from repro.core.recycle_fptree import mine_recycle_fptree
    from repro.core.recycle_hmine import mine_recycle_hmine
    from repro.core.recycle_treeprojection import mine_recycle_treeprojection
    from repro.mining.apriori import mine_apriori
    from repro.mining.bruteforce import mine_bruteforce
    from repro.mining.condensed import (
        mine_closed,
        mine_closed_bitset,
        mine_ndi,
        mine_ndi_bitset,
    )
    from repro.mining.eclat import mine_eclat, mine_eclat_bitset
    from repro.mining.fptree import mine_fpgrowth
    from repro.mining.hmine import mine_hmine
    from repro.mining.treeprojection import mine_treeprojection
    from repro.storage.projection import (
        mine_hmine_with_memory_budget,
        mine_rp_with_memory_budget,
    )

    for spec in (
        MinerSpec(
            name="apriori",
            kind="baseline",
            fn=mine_apriori,
            description="level-wise candidate generation (Agrawal & Srikant)",
        ),
        MinerSpec(
            name="bruteforce",
            kind="baseline",
            fn=mine_bruteforce,
            description="exhaustive subset enumeration (test oracle)",
        ),
        MinerSpec(
            name="eclat",
            kind="baseline",
            fn=mine_eclat,
            description="vertical tidset intersection",
        ),
        MinerSpec(
            name="eclat-bitset",
            kind="baseline",
            fn=mine_eclat_bitset,
            backend="bitset",
            description="eclat over shared encoded-database bitmaps",
        ),
        MinerSpec(
            name="fpgrowth",
            kind="baseline",
            fn=mine_fpgrowth,
            description="FP-tree pattern growth",
        ),
        MinerSpec(
            name="hmine",
            kind="baseline",
            fn=mine_hmine,
            budget_fn=mine_hmine_with_memory_budget,
            description="H-struct hyperlink mining (the paper's workhorse)",
        ),
        MinerSpec(
            name="treeprojection",
            kind="baseline",
            fn=mine_treeprojection,
            description="lexicographic tree with count matrices",
        ),
        MinerSpec(
            name="naive",
            kind="recycling",
            fn=mine_rp,
            needs_compressed=True,
            budget_fn=mine_rp_with_memory_budget,
            description="RP-Mine over compressed groups (Figure 3)",
        ),
        MinerSpec(
            name="hmine",
            kind="recycling",
            fn=mine_recycle_hmine,
            needs_compressed=True,
            description="Recycle-HM: H-Mine with group links (Section 4.1)",
        ),
        MinerSpec(
            name="fpgrowth",
            kind="recycling",
            fn=mine_recycle_fptree,
            needs_compressed=True,
            description="Recycle-FP: FP-growth with group counts (Section 4.2)",
        ),
        MinerSpec(
            name="treeprojection",
            kind="recycling",
            fn=mine_recycle_treeprojection,
            needs_compressed=True,
            description="Recycle-TP: TreeProjection on groups (Section 4.3)",
        ),
        MinerSpec(
            name="eclat",
            kind="recycling",
            fn=mine_recycle_eclat,
            needs_compressed=True,
            description="Recycle-Eclat: grouped tidsets (our extension)",
        ),
        MinerSpec(
            name="closed",
            kind="condensed",
            fn=mine_closed,
            description="closed itemsets via LCM-style closure extension",
        ),
        MinerSpec(
            name="closed-bitset",
            kind="condensed",
            fn=mine_closed_bitset,
            backend="bitset",
            description="closed itemsets over encoded-database bitmaps",
        ),
        MinerSpec(
            name="ndi",
            kind="condensed",
            fn=mine_ndi,
            description="non-derivable itemsets (Calders-Goethals rules)",
        ),
        MinerSpec(
            name="ndi-bitset",
            kind="condensed",
            fn=mine_ndi_bitset,
            backend="bitset",
            description="non-derivable itemsets over encoded bitmaps",
        ),
    ):
        register(spec)
