"""FP-growth (Han, Pei & Yin, SIGMOD 2000).

Transactions are inserted into a prefix tree (the FP-tree) in
descending-support order so common prefixes share nodes; a header table
threads all nodes of an item together. Mining grows patterns from the
least frequent item upward by building *conditional* FP-trees from each
item's prefix paths.

The recycling adaptation (Section 4.2 of the paper) reuses this module's
:class:`FPTree` machinery, inserting each compressed group's head as a
special item at the top of its branch — see
:mod:`repro.core.recycle_fptree`.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from repro.data.transactions import TransactionDatabase
from repro.errors import MiningError
from repro.metrics.counters import CostCounters
from repro.mining.patterns import PatternSet


class FPNode:
    """One node of an FP-tree: an item, a count, tree links and the
    header-table side link."""

    __slots__ = ("item", "count", "parent", "children", "next_node")

    def __init__(self, item: int | None, parent: "FPNode | None") -> None:
        self.item = item
        self.count = 0
        self.parent = parent
        self.children: dict[int, FPNode] = {}
        self.next_node: FPNode | None = None


class FPTree:
    """An FP-tree with a header table of side-linked item nodes.

    ``order`` maps item -> sort key; transactions are inserted sorted by
    ascending ``order`` value, so smaller keys sit nearer the root. The
    conventional choice (used by :func:`mine_fpgrowth`) is descending
    support, i.e. key = -support.
    """

    def __init__(self, order: dict[int, int]) -> None:
        self.root = FPNode(None, None)
        self.order = order
        self.header: dict[int, FPNode] = {}
        self.node_count = 0

    def insert(self, items: Sequence[int], count: int = 1) -> None:
        """Insert a transaction (pre-filtered to tree items), ``count`` times."""
        path = sorted(items, key=lambda i: (self.order[i], i))
        node = self.root
        for item in path:
            child = node.children.get(item)
            if child is None:
                child = FPNode(item, node)
                node.children[item] = child
                child.next_node = self.header.get(item)
                self.header[item] = child
                self.node_count += 1
            child.count += count
            node = child

    def item_nodes(self, item: int) -> Iterable[FPNode]:
        """All nodes of ``item`` via the header side links."""
        node = self.header.get(item)
        while node is not None:
            yield node
            node = node.next_node

    def prefix_paths(self, item: int) -> list[tuple[list[int], int]]:
        """The conditional pattern base of ``item``.

        Each element is ``(path_items_root_to_parent, count)`` where count
        is the item node's count.
        """
        paths: list[tuple[list[int], int]] = []
        for node in self.item_nodes(item):
            path: list[int] = []
            parent = node.parent
            while parent is not None and parent.item is not None:
                path.append(parent.item)
                parent = parent.parent
            path.reverse()
            paths.append((path, node.count))
        return paths

    def single_path(self) -> list[tuple[int, int]] | None:
        """If the tree is one chain, return ``[(item, count), ...]``; else None."""
        chain: list[tuple[int, int]] = []
        node = self.root
        while node.children:
            if len(node.children) > 1:
                return None
            node = next(iter(node.children.values()))
            chain.append((node.item, node.count))  # type: ignore[arg-type]
        return chain


def _conditional_tree(
    paths: list[tuple[list[int], int]], min_support: int
) -> "FPTree | None":
    """Build the conditional FP-tree from a pattern base, or None if empty."""
    counts: Counter[int] = Counter()
    for path, count in paths:
        for item in path:
            counts[item] += count
    frequent = {i for i, c in counts.items() if c >= min_support}
    if not frequent:
        return None
    order = {i: -counts[i] for i in frequent}
    tree = FPTree(order)
    for path, count in paths:
        filtered = [i for i in path if i in frequent]
        if filtered:
            tree.insert(filtered, count)
    return tree if tree.header else None


def _subsets_of_chain(chain: list[tuple[int, int]]) -> Iterable[tuple[tuple[int, ...], int]]:
    """All non-empty subsets of a single path with their supports.

    The support of a subset is the count of its deepest (least-count)
    member, since counts are non-increasing along the chain.
    """
    n = len(chain)
    for mask in range(1, 1 << n):
        items: list[int] = []
        support = None
        for bit in range(n):
            if mask & (1 << bit):
                items.append(chain[bit][0])
                support = chain[bit][1]
        assert support is not None
        yield tuple(items), support


def _fp_growth(
    tree: FPTree,
    prefix: tuple[int, ...],
    min_support: int,
    result: PatternSet,
    stats: dict[str, int],
) -> None:
    chain = tree.single_path()
    if chain is not None:
        stats["single_path_shortcuts"] += 1
        for items, support in _subsets_of_chain(chain):
            result.add(prefix + items, support)
        return
    # Mine items from least frequent (deepest) upward for the classic
    # bottom-up pattern growth.
    items = sorted(tree.header, key=lambda i: (tree.order[i], i), reverse=True)
    for item in items:
        support = sum(node.count for node in tree.item_nodes(item))
        if support < min_support:
            continue
        new_prefix = prefix + (item,)
        result.add(new_prefix, support)
        paths = tree.prefix_paths(item)
        stats["conditional_bases"] += 1
        stats["path_items"] += sum(len(p) for p, _count in paths)
        conditional = _conditional_tree(paths, min_support)
        if conditional is not None:
            _fp_growth(conditional, new_prefix, min_support, result, stats)


def mine_fpgrowth(
    db: TransactionDatabase,
    min_support: int,
    counters: CostCounters | None = None,
) -> PatternSet:
    """All patterns with support >= ``min_support`` using FP-growth."""
    if min_support < 1:
        raise MiningError(f"min_support must be >= 1, got {min_support}")
    supports = db.item_supports()
    frequent = {i for i, c in supports.items() if c >= min_support}
    result = PatternSet()
    if not frequent:
        return result
    order = {i: -supports[i] for i in frequent}
    tree = FPTree(order)
    for tx in db:
        filtered = [i for i in tx if i in frequent]
        if filtered:
            tree.insert(filtered)
    stats = {"conditional_bases": 0, "path_items": 0, "single_path_shortcuts": 0}
    _fp_growth(tree, (), min_support, result, stats)
    if counters is not None:
        counters.tuple_scans += 2 * len(db)
        counters.item_visits += db.total_items() + stats["path_items"]
        counters.projections += stats["conditional_bases"]
        counters.add("single_path_shortcuts", stats["single_path_shortcuts"])
        counters.patterns_emitted += len(result)
    return result
