"""Exhaustive reference miner.

Enumerates every subset of every transaction and counts supports in a
dictionary. Exponential in transaction length — strictly a test oracle for
small databases, used to validate every other miner in the suite.
"""

from __future__ import annotations

from itertools import combinations

from repro.data.transactions import TransactionDatabase
from repro.errors import MiningError
from repro.metrics.counters import CostCounters
from repro.mining.patterns import PatternSet


def mine_bruteforce(
    db: TransactionDatabase,
    min_support: int,
    counters: CostCounters | None = None,
    max_transaction_length: int = 20,
) -> PatternSet:
    """All frequent patterns by exhaustive subset enumeration.

    Raises :class:`MiningError` when a transaction is longer than
    ``max_transaction_length`` — the 2^n blow-up past that point means the
    caller almost certainly wanted a real miner.
    """
    if min_support < 1:
        raise MiningError(f"min_support must be >= 1, got {min_support}")
    supports: dict[frozenset[int], int] = {}
    scans = 0
    for tx in db:
        if len(tx) > max_transaction_length:
            raise MiningError(
                f"transaction of length {len(tx)} exceeds brute-force limit "
                f"{max_transaction_length}"
            )
        scans += 1
        for size in range(1, len(tx) + 1):
            for combo in combinations(tx, size):
                key = frozenset(combo)
                supports[key] = supports.get(key, 0) + 1
    result = PatternSet()
    for items, support in supports.items():
        if support >= min_support:
            result.add(items, support)
    if counters is not None:
        counters.tuple_scans += scans
        counters.patterns_emitted += len(result)
    return result
