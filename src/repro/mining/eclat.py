"""Eclat (Zaki, 1997): vertical-format mining by tidset intersection.

Each item maps to the set of transaction ids containing it; a pattern's
support is the size of the intersection of its items' tidsets. Depth-first
extension in ascending-support order keeps intersections small.

Not one of the three algorithms the paper adapts, but a useful independent
baseline: it shares neither layout (vertical vs. horizontal) nor traversal
code with the projected-database miners, which makes cross-checking
results meaningful.

Two backends implement the identical search:

* :func:`mine_eclat` — the original pure-Python loops over ``set[int]``
  tidsets (registry backend ``"python"``);
* :func:`mine_eclat_bitset` — the same traversal over the shared
  :class:`~repro.data.encoded.EncodedDatabase` big-int bitmaps, where an
  intersection is one ``&`` and a support count one ``bit_count()``
  (registry backend ``"bitset"``).
"""

from __future__ import annotations

from repro.data.transactions import TransactionDatabase
from repro.errors import MiningError
from repro.metrics.counters import CostCounters
from repro.mining.patterns import PatternSet


def _vertical_layout(db: TransactionDatabase) -> dict[int, set[int]]:
    """Build ``{item: tidset}`` over transaction positions."""
    tidsets: dict[int, set[int]] = {}
    for tid, tx in enumerate(db):
        for item in tx:
            tidsets.setdefault(item, set()).add(tid)
    return tidsets


def mine_eclat(
    db: TransactionDatabase,
    min_support: int,
    counters: CostCounters | None = None,
) -> PatternSet:
    """All patterns with support >= ``min_support`` via tidset intersection."""
    if min_support < 1:
        raise MiningError(f"min_support must be >= 1, got {min_support}")

    tidsets = _vertical_layout(db)
    frequent_items = sorted(
        (item for item, tids in tidsets.items() if len(tids) >= min_support),
        key=lambda item: (len(tidsets[item]), item),
    )
    result = PatternSet()
    stats = {"intersections": 0}

    def extend(prefix: tuple[int, ...], candidates: list[tuple[int, set[int]]]) -> None:
        for pos, (item, tids) in enumerate(candidates):
            new_prefix = prefix + (item,)
            result.add(new_prefix, len(tids))
            narrowed: list[tuple[int, set[int]]] = []
            for other, other_tids in candidates[pos + 1 :]:
                intersection = tids & other_tids
                stats["intersections"] += 1
                if len(intersection) >= min_support:
                    narrowed.append((other, intersection))
            if narrowed:
                extend(new_prefix, narrowed)

    extend((), [(item, tidsets[item]) for item in frequent_items])

    if counters is not None:
        counters.tuple_scans += len(db)
        counters.item_visits += db.total_items()
        counters.add("tidset_intersections", stats["intersections"])
        counters.patterns_emitted += len(result)
    return result


def mine_eclat_bitset(
    db: TransactionDatabase,
    min_support: int,
    counters: CostCounters | None = None,
) -> PatternSet:
    """Eclat over the shared encoded database's vertical bitmaps.

    Bit-identical output to :func:`mine_eclat`; the tidsets are big-int
    bitmaps from :meth:`TransactionDatabase.encoded`, so intersections and
    support counts run word-parallel instead of element by element.
    """
    if min_support < 1:
        raise MiningError(f"min_support must be >= 1, got {min_support}")

    enc = db.encoded()
    # Ascending support (ties by item id), as in the python backend.
    order = sorted(
        (code for code in range(enc.item_count()) if enc.support(code) >= min_support),
        key=lambda code: (enc.support(code), enc.item_of(code)),
    )
    result = PatternSet()
    stats = {"intersections": 0}

    def extend(prefix: tuple[int, ...], candidates: list[tuple[int, int]]) -> None:
        for pos, (item, bits) in enumerate(candidates):
            new_prefix = prefix + (item,)
            result.add(new_prefix, bits.bit_count())
            narrowed: list[tuple[int, int]] = []
            for other, other_bits in candidates[pos + 1 :]:
                intersection = bits & other_bits
                stats["intersections"] += 1
                if intersection.bit_count() >= min_support:
                    narrowed.append((other, intersection))
            if narrowed:
                extend(new_prefix, narrowed)

    extend((), [(enc.item_of(code), enc.bitmap(code)) for code in order])

    if counters is not None:
        counters.tuple_scans += len(db)
        counters.item_visits += db.total_items()
        counters.add("tidset_intersections", stats["intersections"])
        counters.patterns_emitted += len(result)
    return result
