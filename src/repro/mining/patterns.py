"""Historical home of :class:`PatternSet` — now :mod:`repro.data.patterns`.

The pattern types are pure value objects, so they live in the data layer
(which lets :mod:`repro.data.io` read and write them without importing
upward). Every existing ``repro.mining.patterns`` import keeps working
through this re-export.
"""

from __future__ import annotations

from repro.data.patterns import Pattern, PatternSet, pattern

__all__ = ["Pattern", "PatternSet", "pattern"]
