"""H-Mine (Pei et al., ICDM 2001): hyper-structure mining.

H-Mine stores each transaction once (restricted to frequent items, sorted
in F-list order) and mines projected databases as *queues of pointers*
into those transactions instead of physical copies. Processing item ``i``
walks ``i``'s queue; afterwards each entry is re-threaded to the next
frequent item in its transaction, so the structure is traversed, never
rebuilt.

This module implements that queue discipline faithfully over Python
tuples: an "entry" is ``(transaction, position)`` and re-threading advances
the position. The same engine is reused by the memory-limited driver in
:mod:`repro.storage.projection`.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from repro.data.transactions import TransactionDatabase
from repro.errors import MiningError
from repro.metrics.counters import CostCounters
from repro.mining.flist import FList
from repro.mining.patterns import PatternSet

# An H-struct entry: a transaction (sorted by F-list rank) and the offset
# where its live suffix begins.
Entry = tuple[tuple[int, ...], int]


class _HMineEngine:
    """Recursive queue-based miner over suffix entries."""

    def __init__(self, min_support: int, rank: dict[int, int]) -> None:
        self.min_support = min_support
        self.rank = rank
        self.result = PatternSet()
        self.item_visits = 0
        self.tuple_scans = 0
        self.projections = 0

    def mine(self, entries: list[Entry], prefix: tuple[int, ...]) -> None:
        """Mine all frequent extensions of ``prefix`` within ``entries``."""
        counts: Counter[int] = Counter()
        for tx, pos in entries:
            self.tuple_scans += 1
            self.item_visits += len(tx) - pos
            counts.update(tx[pos:])
        local = [i for i, c in counts.items() if c >= self.min_support]
        if not local:
            return
        local.sort(key=self.rank.__getitem__)
        local_set = set(local)

        # Thread every entry onto the queue of its first locally frequent
        # item. Queues for later items are filled by re-threading.
        queues: dict[int, list[Entry]] = {i: [] for i in local}
        for tx, pos in entries:
            advanced = self._advance(tx, pos, local_set)
            if advanced is not None:
                queues[tx[advanced]].append((tx, advanced))

        for item in local:
            new_prefix = prefix + (item,)
            self.result.add(new_prefix, counts[item])
            queue = queues[item]
            sub_entries = [(tx, pos + 1) for tx, pos in queue if pos + 1 < len(tx)]
            if sub_entries:
                self.projections += 1
                self.mine(sub_entries, new_prefix)
            # Re-thread: each consumed entry moves to its next locally
            # frequent item, which (transactions being rank-sorted) always
            # lies strictly after ``item`` and is therefore unprocessed.
            for tx, pos in queue:
                advanced = self._advance(tx, pos + 1, local_set)
                if advanced is not None:
                    queues[tx[advanced]].append((tx, advanced))

    @staticmethod
    def _advance(tx: tuple[int, ...], pos: int, local_set: set[int]) -> int | None:
        """First position >= ``pos`` holding a locally frequent item."""
        for p in range(pos, len(tx)):
            if tx[p] in local_set:
                return p
        return None


def build_hstruct(
    db: TransactionDatabase, flist: FList
) -> list[tuple[int, ...]]:
    """Project a database onto its F-list: frequent items only, rank order.

    This is the in-memory H-struct payload; empty projections are dropped.
    """
    hstruct: list[tuple[int, ...]] = []
    for tx in db:
        projected = tuple(flist.sort_items(tx))
        if projected:
            hstruct.append(projected)
    return hstruct


def mine_hmine(
    db: TransactionDatabase,
    min_support: int,
    counters: CostCounters | None = None,
) -> PatternSet:
    """All patterns with support >= ``min_support`` using H-Mine.

    For the memory-limited variant the paper evaluates in Section 5.3, use
    :func:`repro.storage.projection.mine_with_memory_budget`.
    """
    if min_support < 1:
        raise MiningError(f"min_support must be >= 1, got {min_support}")
    flist = FList.from_database(db, min_support)
    engine = _HMineEngine(min_support, {i: flist.rank(i) for i in flist})
    entries: list[Entry] = [(tx, 0) for tx in build_hstruct(db, flist)]
    engine.mine(entries, ())
    if counters is not None:
        counters.tuple_scans += engine.tuple_scans + len(db)
        counters.item_visits += engine.item_visits + db.total_items()
        counters.projections += engine.projections
        counters.patterns_emitted += len(engine.result)
    return engine.result


def mine_hmine_suffixes(
    transactions: Sequence[tuple[int, ...]],
    min_support: int,
    prefix: tuple[int, ...],
    rank: dict[int, int],
    counters: CostCounters | None = None,
) -> PatternSet:
    """Mine pre-projected transactions for extensions of ``prefix``.

    Used by the memory-limited driver, which projects partitions to disk
    and mines each partition separately. ``transactions`` must already be
    sorted by ``rank``. Only proper extensions are emitted — the caller
    is responsible for the ``prefix`` pattern itself, whose support the
    projected list (empty suffixes dropped) cannot reconstruct.
    """
    engine = _HMineEngine(min_support, rank)
    engine.mine([(tx, 0) for tx in transactions if tx], prefix)
    if counters is not None:
        counters.tuple_scans += engine.tuple_scans
        counters.item_visits += engine.item_visits
        counters.projections += engine.projections
        counters.patterns_emitted += len(engine.result)
    return engine.result
