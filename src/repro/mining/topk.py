"""Top-k frequent pattern mining.

Interactive users often do not know a good support threshold — which is
exactly the iterate-and-refine loop that motivates recycling. Asking for
"the k most frequent patterns (of at least some length)" sidesteps the
guessing. This module finds the largest threshold that yields at least
``k`` qualifying patterns by a support-space binary search, each probe
being one ordinary mining run — so probes compose with recycling: pass a
``miner`` bound to a compressed database to make every probe recycled.
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.data.transactions import TransactionDatabase
from repro.errors import MiningError
from repro.mining.fptree import mine_fpgrowth
from repro.mining.patterns import PatternSet


class _Miner(Protocol):
    def __call__(self, min_support: int) -> PatternSet: ...


def mine_top_k(
    db: TransactionDatabase,
    k: int,
    min_length: int = 1,
    miner: Callable[[TransactionDatabase, int], PatternSet] | None = None,
) -> tuple[PatternSet, int]:
    """The ``k`` most frequent patterns with at least ``min_length`` items.

    Returns ``(patterns, threshold)`` where ``threshold`` is the largest
    support for which at least ``k`` patterns of the required length
    exist, and ``patterns`` is the **complete** pattern set at that
    threshold restricted to ``min_length`` (which may exceed ``k`` — ties
    at the threshold are all returned rather than broken arbitrarily).
    """
    if k < 1:
        raise MiningError(f"k must be >= 1, got {k}")
    if min_length < 1:
        raise MiningError(f"min_length must be >= 1, got {min_length}")
    mine = miner or mine_fpgrowth

    def qualifying(min_support: int) -> PatternSet:
        return mine(db, min_support).filter(
            lambda pattern, _support: len(pattern) >= min_length
        )

    return top_k_by_probe(lambda s: qualifying(s), k, upper=max(1, len(db)))


def top_k_by_probe(
    probe: Callable[[int], PatternSet], k: int, upper: int
) -> tuple[PatternSet, int]:
    """Binary-search the largest threshold yielding >= ``k`` patterns.

    ``probe(s)`` must return the qualifying pattern set at absolute
    support ``s``; pattern counts are non-increasing in ``s``. Raises
    when even ``probe(1)`` has fewer than ``k`` patterns.
    """
    if k < 1:
        raise MiningError(f"k must be >= 1, got {k}")
    low, high = 1, max(1, upper)  # invariant: answer in [low, high]
    best: PatternSet | None = None
    best_threshold = 1
    while low <= high:
        mid = (low + high) // 2
        patterns = probe(mid)
        if len(patterns) >= k:
            best, best_threshold = patterns, mid
            low = mid + 1
        else:
            high = mid - 1
    if best is None:
        raise MiningError(
            f"fewer than k={k} qualifying patterns exist even at support 1"
        )
    return best, best_threshold
