"""The frequent list (F-list) and projected-database primitives.

Definition 3.1 of the paper: the *F-list* of a database is the list of
frequent items ordered by **ascending support**. Every projected-database
miner here (naive, H-Mine, Tree Projection, and all recycling variants)
shares this ordering convention, so it lives in one place.

The F-list induces, for each frequent item ``i``:

* the *i-projected database* (Definition 3.2): the transactions containing
  ``i``, restricted to items strictly **after** ``i`` in the F-list, and
* the *candidate extensions* ``C_i`` (Definition 3.3): the items after
  ``i`` in the F-list.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Mapping, Sequence

from repro.data.transactions import TransactionDatabase
from repro.errors import MiningError


class FList:
    """Frequent items in ascending-support order, with rank lookup.

    Ties in support are broken by item id so that the order — and therefore
    every miner's traversal — is deterministic.

    >>> flist = FList.from_supports({5: 2, 7: 4, 9: 2}, min_support=2)
    >>> flist.order
    (5, 9, 7)
    >>> flist.rank(9)
    1
    >>> flist.extensions_of(5)
    (9, 7)
    """

    def __init__(self, ordered_items: Sequence[int], supports: Mapping[int, int]) -> None:
        self._order: tuple[int, ...] = tuple(ordered_items)
        if len(set(self._order)) != len(self._order):
            raise MiningError("F-list contains duplicate items")
        self._supports: dict[int, int] = {i: supports[i] for i in self._order}
        self._rank: dict[int, int] = {item: pos for pos, item in enumerate(self._order)}

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_supports(cls, supports: Mapping[int, int], min_support: int) -> "FList":
        """Build from an item-support mapping, keeping frequent items only."""
        if min_support < 1:
            raise MiningError(f"min_support must be >= 1, got {min_support}")
        frequent = [i for i, s in supports.items() if s >= min_support]
        frequent.sort(key=lambda i: (supports[i], i))
        return cls(frequent, supports)

    @classmethod
    def from_database(cls, db: TransactionDatabase, min_support: int) -> "FList":
        """Build from a database's cached item supports."""
        return cls.from_supports(db.item_supports(), min_support)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def order(self) -> tuple[int, ...]:
        """Items in ascending-support order."""
        return self._order

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, item: int) -> bool:
        return item in self._rank

    def __iter__(self):
        return iter(self._order)

    def __repr__(self) -> str:
        entries = ", ".join(f"{i}:{self._supports[i]}" for i in self._order)
        return f"FList(<{entries}>)"

    def support(self, item: int) -> int:
        """Support of a frequent item."""
        try:
            return self._supports[item]
        except KeyError:
            raise MiningError(f"item {item} is not in the F-list") from None

    def rank(self, item: int) -> int:
        """Position of ``item`` in the F-list (0-based)."""
        try:
            return self._rank[item]
        except KeyError:
            raise MiningError(f"item {item} is not in the F-list") from None

    def rank_or_none(self, item: int) -> int | None:
        """Position of ``item``, or ``None`` when infrequent."""
        return self._rank.get(item)

    def extensions_of(self, item: int) -> tuple[int, ...]:
        """Candidate extensions ``C_i``: items strictly after ``item``."""
        return self._order[self.rank(item) + 1 :]

    def sort_items(self, items: Iterable[int]) -> list[int]:
        """Filter to frequent items and sort by F-list rank.

        This is exactly the "(Ordered) Frequent Outlying Items" column of
        the paper's Table 2.
        """
        frequent = [i for i in items if i in self._rank]
        frequent.sort(key=self._rank.__getitem__)
        return frequent


def count_supports(transactions: Iterable[Sequence[int]]) -> Counter[int]:
    """Count item supports over raw transactions."""
    counts: Counter[int] = Counter()
    for tx in transactions:
        counts.update(tx)
    return counts


def project_transactions(
    transactions: Iterable[Sequence[int]],
    item: int,
    flist: FList,
) -> list[tuple[int, ...]]:
    """The ``item``-projected database of plain transactions.

    Keeps transactions containing ``item`` and, within each, only the
    items ranked strictly after ``item`` in ``flist`` (Definition 3.2).
    Empty projections are dropped — they cannot contribute extensions.
    """
    pivot = flist.rank(item)
    projected: list[tuple[int, ...]] = []
    for tx in transactions:
        if item not in tx:
            continue
        suffix = tuple(
            i for i in flist.sort_items(tx) if flist.rank(i) > pivot
        )
        if suffix:
            projected.append(suffix)
    return projected
