"""Condensed-representation miners: closed and non-derivable itemsets.

Two families, each with a python and a bitset backend, both returning a
:class:`~repro.data.patterns.CondensedPatternSet` directly — the object
the warehouse stores — instead of the expanded frequent set:

* **Closed** (``mine_closed`` / ``mine_closed_bitset``): LCM-style
  prefix-preserving closure extension (Uno et al.). Runtime is linear in
  the number of *closed* sets, so on dense data it never touches the
  exponentially larger full set it represents.
* **NDI** (``mine_ndi`` / ``mine_ndi_bitset``): Calders–Goethals
  level-wise search with depth-limited deduction rules. A candidate whose
  bounds meet is *derivable*: its support is forced by its subsets, so
  the database is never scanned for it — the same saving the condensed
  warehouse entry realizes at rest.

Both miners are exact: ``mine_closed(db, s).expand()`` (resp. ndi) is
bit-identical to any baseline miner's output, and their entries equal
``CondensedPatternSet.condense(full, s, ...)`` — the property suite pins
both equalities across backends.
"""

from __future__ import annotations

from repro.data.patterns import (
    NDI_RULE_DEPTH,
    CondensedPatternSet,
    Pattern,
    derivability_bounds,
)
from repro.data.transactions import TransactionDatabase
from repro.errors import MiningError
from repro.metrics.counters import CostCounters

__all__ = [
    "mine_closed",
    "mine_closed_bitset",
    "mine_ndi",
    "mine_ndi_bitset",
]


# ---------------------------------------------------------------------------
# closed itemsets (LCM-style prefix-preserving closure extension)
# ---------------------------------------------------------------------------


def _closed_search(
    items: list[int],
    tids_of,
    covers,
    tid_size,
    full_tidset,
    n_transactions: int,
    min_support: int,
    stats: dict[str, int],
) -> dict[Pattern, int]:
    """Backend-generic LCM traversal.

    ``tids_of(item)`` yields the item's tidset, ``covers(item, m)`` tests
    whether the item occurs in every transaction of tidset ``m`` (the
    closure membership test), ``tid_size`` counts a tidset.
    """
    entries: dict[Pattern, int] = {}

    def closure(tidset) -> list[int]:
        stats["closure_scans"] += 1
        return [i for i in items if covers(i, tidset)]

    def extend(closed: list[int], tidset, core: float) -> None:
        if closed:
            entries[frozenset(closed)] = tid_size(tidset)
        member = set(closed)
        for item in items:
            if item <= core or item in member:
                continue
            narrowed = tids_of(item) & tidset
            if tid_size(narrowed) < min_support:
                continue
            new_closed = closure(narrowed)
            # Prefix-preserving check: the closure may only add items
            # beyond the extension item, otherwise this closed set is
            # reached (once) from a smaller extension.
            if any(j < item and j not in member for j in new_closed):
                continue
            extend(new_closed, narrowed, item)

    if n_transactions >= min_support:
        extend(closure(full_tidset), full_tidset, float("-inf"))
    return entries


def mine_closed(
    db: TransactionDatabase,
    min_support: int,
    counters: CostCounters | None = None,
) -> CondensedPatternSet:
    """All closed patterns with support >= ``min_support`` (python tidsets)."""
    if min_support < 1:
        raise MiningError(f"min_support must be >= 1, got {min_support}")
    tidsets: dict[int, set[int]] = {}
    for tid, tx in enumerate(db):
        for item in tx:
            tidsets.setdefault(item, set()).add(tid)
    items = sorted(
        item for item, tids in tidsets.items() if len(tids) >= min_support
    )
    stats = {"closure_scans": 0}
    entries = _closed_search(
        items,
        lambda item: tidsets[item],
        lambda item, m: tidsets[item] >= m,
        len,
        set(range(len(db))),
        len(db),
        min_support,
        stats,
    )
    if counters is not None:
        counters.tuple_scans += len(db)
        counters.item_visits += db.total_items()
        counters.add("closure_scans", stats["closure_scans"])
        counters.patterns_emitted += len(entries)
    return CondensedPatternSet(
        "closed", entries, min_support, n_transactions=len(db)
    )


def mine_closed_bitset(
    db: TransactionDatabase,
    min_support: int,
    counters: CostCounters | None = None,
) -> CondensedPatternSet:
    """Closed patterns over the shared encoded database's bitmaps.

    Bit-identical entries to :func:`mine_closed`; tidsets are big-int
    bitmaps, so the closure membership test is one ``&`` + compare.
    """
    if min_support < 1:
        raise MiningError(f"min_support must be >= 1, got {min_support}")
    enc = db.encoded()
    items = sorted(
        enc.item_of(code)
        for code in range(enc.item_count())
        if enc.support(code) >= min_support
    )
    stats = {"closure_scans": 0}
    entries = _closed_search(
        items,
        enc.bitmap_for_item,
        lambda item, m: enc.bitmap_for_item(item) & m == m,
        int.bit_count,
        enc.universe,
        len(db),
        min_support,
        stats,
    )
    if counters is not None:
        counters.tuple_scans += len(db)
        counters.item_visits += db.total_items()
        counters.add("closure_scans", stats["closure_scans"])
        counters.patterns_emitted += len(entries)
    return CondensedPatternSet(
        "closed", entries, min_support, n_transactions=len(db)
    )


# ---------------------------------------------------------------------------
# non-derivable itemsets (Calders–Goethals, depth-limited rules)
# ---------------------------------------------------------------------------


def _ndi_search(
    singletons: dict[Pattern, int],
    count_support,
    n_transactions: int,
    min_support: int,
    stats: dict[str, int],
) -> tuple[dict[Pattern, int], int]:
    """Level-wise NDI mining; returns ``(entries, frequent_count)``.

    ``count_support(pattern)`` is the only backend-specific piece — it is
    called *solely* for non-derivable candidates, which is where the
    Calders–Goethals saving comes from.
    """
    supports: dict[Pattern, int] = dict(singletons)
    entries: dict[Pattern, int] = dict(singletons)

    def lookup(subset: Pattern) -> int:
        return n_transactions if not subset else supports[subset]

    current = dict(singletons)
    while current:
        rows = sorted(tuple(sorted(p)) for p in current)
        candidates: set[Pattern] = set()
        for i, head in enumerate(rows):
            for j in range(i + 1, len(rows)):
                if rows[j][:-1] != head[:-1]:
                    break
                candidates.add(frozenset(head) | frozenset(rows[j]))
        next_level: dict[Pattern, int] = {}
        for cand in candidates:
            if any(cand.difference((x,)) not in current for x in cand):
                continue
            lower, upper = derivability_bounds(cand, lookup, NDI_RULE_DEPTH)
            if lower == upper:
                stats["derivable_skips"] += 1
                support = lower
            else:
                stats["support_counts"] += 1
                support = count_support(cand)
                if support >= min_support:
                    entries[cand] = support
            if support >= min_support:
                next_level[cand] = support
        supports.update(next_level)
        current = next_level
    return entries, len(supports)


def mine_ndi(
    db: TransactionDatabase,
    min_support: int,
    counters: CostCounters | None = None,
) -> CondensedPatternSet:
    """Non-derivable patterns with support >= ``min_support`` (python sets)."""
    if min_support < 1:
        raise MiningError(f"min_support must be >= 1, got {min_support}")
    tidsets: dict[int, set[int]] = {}
    for tid, tx in enumerate(db):
        for item in tx:
            tidsets.setdefault(item, set()).add(tid)
    singletons = {
        frozenset((item,)): len(tids)
        for item, tids in tidsets.items()
        if len(tids) >= min_support
    }

    def count_support(cand: Pattern) -> int:
        ordered = sorted(cand, key=lambda i: len(tidsets[i]))
        acc = tidsets[ordered[0]]
        for item in ordered[1:]:
            acc = acc & tidsets[item]
            if len(acc) < min_support:
                break
        return len(acc)

    stats = {"derivable_skips": 0, "support_counts": 0}
    entries, frequent_count = _ndi_search(
        singletons, count_support, len(db), min_support, stats
    )
    if counters is not None:
        counters.tuple_scans += len(db)
        counters.item_visits += db.total_items()
        counters.add("derivable_skips", stats["derivable_skips"])
        counters.add("support_counts", stats["support_counts"])
        counters.patterns_emitted += len(entries)
    return CondensedPatternSet(
        "ndi",
        entries,
        min_support,
        n_transactions=len(db),
        ndi_depth=NDI_RULE_DEPTH,
        expanded_count=frequent_count,
    )


def mine_ndi_bitset(
    db: TransactionDatabase,
    min_support: int,
    counters: CostCounters | None = None,
) -> CondensedPatternSet:
    """NDI mining over the shared encoded database's bitmaps.

    Bit-identical entries to :func:`mine_ndi`; support counting for the
    non-derivable candidates runs word-parallel.
    """
    if min_support < 1:
        raise MiningError(f"min_support must be >= 1, got {min_support}")
    enc = db.encoded()
    singletons = {
        frozenset((enc.item_of(code),)): enc.support(code)
        for code in range(enc.item_count())
        if enc.support(code) >= min_support
    }

    def count_support(cand: Pattern) -> int:
        return enc.pattern_bitmap(cand).bit_count()

    stats = {"derivable_skips": 0, "support_counts": 0}
    entries, frequent_count = _ndi_search(
        singletons, count_support, len(db), min_support, stats
    )
    if counters is not None:
        counters.tuple_scans += len(db)
        counters.item_visits += db.total_items()
        counters.add("derivable_skips", stats["derivable_skips"])
        counters.add("support_counts", stats["support_counts"])
        counters.patterns_emitted += len(entries)
    return CondensedPatternSet(
        "ndi",
        entries,
        min_support,
        n_transactions=len(db),
        ndi_depth=NDI_RULE_DEPTH,
        expanded_count=frequent_count,
    )
