"""Apriori (Agrawal & Srikant, VLDB 1994).

The classic level-wise miner: generate length-``k`` candidates by joining
frequent (k-1)-itemsets, prune candidates with an infrequent subset, then
count supports in one database pass per level.

Included both as the historical baseline the paper's Related Work measures
against and as a mid-size correctness oracle (it shares no code with the
projected-database miners).
"""

from __future__ import annotations

from itertools import combinations

from repro.data.transactions import TransactionDatabase
from repro.errors import MiningError
from repro.metrics.counters import CostCounters
from repro.mining.patterns import PatternSet


def _generate_candidates(frequent_k: set[frozenset[int]], k: int) -> set[frozenset[int]]:
    """Join step + prune step producing (k+1)-candidates.

    Uses the prefix-join on sorted tuples: two k-itemsets sharing their
    first k-1 items join into one (k+1)-candidate. A candidate survives
    only if all of its k-subsets are frequent (Apriori property).
    """
    sorted_itemsets = sorted(tuple(sorted(s)) for s in frequent_k)
    candidates: set[frozenset[int]] = set()
    for a_pos, a in enumerate(sorted_itemsets):
        for b in sorted_itemsets[a_pos + 1 :]:
            if a[: k - 1] != b[: k - 1]:
                break
            candidate = frozenset(a) | frozenset(b)
            if all(
                frozenset(subset) in frequent_k
                for subset in combinations(sorted(candidate), k)
            ):
                candidates.add(candidate)
    return candidates


def mine_apriori(
    db: TransactionDatabase,
    min_support: int,
    counters: CostCounters | None = None,
) -> PatternSet:
    """All patterns with support >= ``min_support``, level-wise."""
    if min_support < 1:
        raise MiningError(f"min_support must be >= 1, got {min_support}")

    result = PatternSet()
    item_visits = 0
    tuple_scans = 0

    supports = db.item_supports()
    frequent: set[frozenset[int]] = set()
    for item, support in supports.items():
        if support >= min_support:
            frequent.add(frozenset((item,)))
            result.add((item,), support)
    tuple_scans += len(db)
    item_visits += db.total_items()

    k = 1
    while frequent:
        candidates = _generate_candidates(frequent, k)
        if not candidates:
            break
        counts: dict[frozenset[int], int] = {c: 0 for c in candidates}
        # One pass: count candidates contained in each transaction. For
        # short candidate lists a direct subset test beats enumerating
        # transaction subsets.
        k += 1
        for tx in db:
            tuple_scans += 1
            if len(tx) < k:
                continue
            tx_set = frozenset(tx)
            item_visits += len(tx)
            for candidate in candidates:
                if candidate <= tx_set:
                    counts[candidate] += 1
        frequent = set()
        for candidate, support in counts.items():
            if support >= min_support:
                frequent.add(candidate)
                result.add(candidate, support)

    if counters is not None:
        counters.tuple_scans += tuple_scans
        counters.item_visits += item_visits
        counters.patterns_emitted += len(result)
    return result
