"""Tree Projection (Agarwal, Aggarwal & Prasad, 2001), depth-first.

Frequent patterns are organized in a lexicographic tree. At each node the
transactions are *projected* (reduced to that node's active extension
items), and a triangular counting matrix tallies the supports of all
2-extensions of the node in a single pass — so the supports of patterns
two levels below a node are known before its children are visited. The
paper adapts the depth-first variant, which this module implements.

Item order is the ascending-support F-list, shared with the other
projected-database miners.
"""

from __future__ import annotations

from collections import Counter

from repro.data.transactions import TransactionDatabase
from repro.errors import MiningError
from repro.metrics.counters import CostCounters
from repro.mining.flist import FList
from repro.mining.patterns import PatternSet


class _TreeProjectionEngine:
    def __init__(self, min_support: int, rank: dict[int, int]) -> None:
        self.min_support = min_support
        self.rank = rank
        self.result = PatternSet()
        self.matrix_updates = 0
        self.tuple_scans = 0
        self.projections = 0

    def mine_node(
        self,
        prefix: tuple[int, ...],
        transactions: list[tuple[int, ...]],
        extensions: list[int],
    ) -> None:
        """Expand the lexicographic-tree node ``prefix``.

        ``extensions`` are the node's active items (each already known
        frequent together with ``prefix`` and already emitted by the
        caller); ``transactions`` are projected onto exactly those items.
        """
        if len(extensions) < 2:
            return
        # One pass over the projected transactions fills the triangular
        # matrix of 2-extension supports: count(prefix + {a, b}).
        pair_counts: Counter[tuple[int, int]] = Counter()
        for tx in transactions:
            self.tuple_scans += 1
            self.matrix_updates += len(tx) * (len(tx) - 1) // 2
            for a_pos in range(len(tx) - 1):
                a = tx[a_pos]
                for b_pos in range(a_pos + 1, len(tx)):
                    pair_counts[(a, tx[b_pos])] += 1

        for e_pos, e in enumerate(extensions):
            child_extensions = [
                f
                for f in extensions[e_pos + 1 :]
                if pair_counts[(e, f)] >= self.min_support
            ]
            if not child_extensions:
                continue
            child_prefix = prefix + (e,)
            for f in child_extensions:
                self.result.add(child_prefix + (f,), pair_counts[(e, f)])
            keep = set(child_extensions)
            child_transactions = []
            for tx in transactions:
                if e not in tx:
                    continue
                projected = tuple(i for i in tx if i in keep)
                if len(projected) >= 2:
                    child_transactions.append(projected)
            self.projections += 1
            self.mine_node(child_prefix, child_transactions, child_extensions)


def mine_treeprojection(
    db: TransactionDatabase,
    min_support: int,
    counters: CostCounters | None = None,
) -> PatternSet:
    """All patterns with support >= ``min_support`` via depth-first TP."""
    if min_support < 1:
        raise MiningError(f"min_support must be >= 1, got {min_support}")
    flist = FList.from_database(db, min_support)
    rank = {i: flist.rank(i) for i in flist}
    engine = _TreeProjectionEngine(min_support, rank)
    for item in flist:
        engine.result.add((item,), flist.support(item))
    transactions = []
    for tx in db:
        projected = tuple(flist.sort_items(tx))
        if len(projected) >= 2:
            transactions.append(projected)
    engine.mine_node((), transactions, list(flist.order))
    if counters is not None:
        counters.tuple_scans += engine.tuple_scans + len(db)
        counters.item_visits += db.total_items()
        counters.add("matrix_updates", engine.matrix_updates)
        counters.projections += engine.projections
        counters.patterns_emitted += len(engine.result)
    return engine.result
