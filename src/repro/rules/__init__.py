"""Association rules derived from frequent patterns."""

from repro.rules.generation import AssociationRule, filter_rules, generate_rules

__all__ = ["AssociationRule", "filter_rules", "generate_rules"]
