"""Association-rule generation from frequent patterns.

Frequent-pattern mining is "fundamental and essential" (paper §1)
because of what sits on top of it — association rules. This module
derives rules ``antecedent -> consequent`` from any :class:`PatternSet`,
with the standard interestingness measures:

* **confidence** — ``sup(A ∪ C) / sup(A)``
* **lift** — confidence / (sup(C) / |DB|)
* **leverage** — ``sup(A∪C)/|DB| - sup(A)/|DB| * sup(C)/|DB|``

Because rules are derived purely from a pattern set, they compose with
recycling for free: re-derive rules from each iteration's patterns, no
extra database scans. This is why an interactive rule-tuning loop (vary
support, vary confidence) only ever pays the pattern-mining cost that
:class:`~repro.core.session.MiningSession` already minimizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterator

from repro.errors import MiningError
from repro.mining.patterns import Pattern, PatternSet


@dataclass(frozen=True)
class AssociationRule:
    """An implication between disjoint itemsets with its measures."""

    antecedent: Pattern
    consequent: Pattern
    support: int
    confidence: float
    lift: float
    leverage: float

    def items(self) -> Pattern:
        """The underlying frequent pattern (antecedent ∪ consequent)."""
        return self.antecedent | self.consequent

    def __str__(self) -> str:
        lhs = ",".join(map(str, sorted(self.antecedent)))
        rhs = ",".join(map(str, sorted(self.consequent)))
        return (
            f"{{{lhs}}} -> {{{rhs}}} "
            f"(sup={self.support}, conf={self.confidence:.3f}, lift={self.lift:.2f})"
        )


def generate_rules(
    patterns: PatternSet,
    db_size: int,
    min_confidence: float = 0.5,
    max_consequent_size: int | None = None,
) -> list[AssociationRule]:
    """All rules meeting ``min_confidence`` from a frequent-pattern set.

    ``patterns`` must be support-closed (every subset of a stored pattern
    stored too — true of any complete miner output here); a missing
    subset raises, it is never guessed.

    Rules are generated per pattern by splitting off every non-empty
    proper consequent (optionally capped in size), using the
    anti-monotonicity of confidence in the consequent: if ``A -> C``
    fails min-confidence, so does every ``A' -> C'`` with ``C ⊂ C'``
    from the same pattern — those splits are pruned.
    """
    if db_size < 1:
        raise MiningError(f"db_size must be >= 1, got {db_size}")
    if not 0.0 < min_confidence <= 1.0:
        raise MiningError(f"min_confidence must be in (0, 1], got {min_confidence}")

    rules: list[AssociationRule] = []
    for items, support in patterns.items():
        if len(items) < 2:
            continue
        rules.extend(
            _rules_for_pattern(
                items, support, patterns, db_size, min_confidence, max_consequent_size
            )
        )
    rules.sort(key=lambda r: (-r.confidence, -r.support, sorted(r.antecedent)))
    return rules


def _rules_for_pattern(
    items: Pattern,
    support: int,
    patterns: PatternSet,
    db_size: int,
    min_confidence: float,
    max_consequent_size: int | None,
) -> Iterator[AssociationRule]:
    sorted_items = sorted(items)
    limit = len(items) - 1
    if max_consequent_size is not None:
        limit = min(limit, max_consequent_size)
    # Grow consequents level-wise; prune a consequent's supersets once it
    # fails (confidence only drops as the antecedent shrinks).
    alive: set[Pattern] = {frozenset()}
    for size in range(1, limit + 1):
        next_alive: set[Pattern] = set()
        for consequent_tuple in combinations(sorted_items, size):
            consequent = frozenset(consequent_tuple)
            if any(
                consequent - {dropped} not in alive for dropped in consequent
            ):
                continue
            antecedent = items - consequent
            antecedent_support = patterns.support(antecedent)
            confidence = support / antecedent_support
            if confidence < min_confidence:
                continue
            next_alive.add(consequent)
            consequent_support = patterns.support(consequent)
            consequent_frequency = consequent_support / db_size
            lift = confidence / consequent_frequency
            leverage = support / db_size - (
                antecedent_support / db_size
            ) * consequent_frequency
            yield AssociationRule(
                antecedent=antecedent,
                consequent=consequent,
                support=support,
                confidence=confidence,
                lift=lift,
                leverage=leverage,
            )
        alive = next_alive
        if not alive:
            break


def filter_rules(
    rules: list[AssociationRule],
    min_lift: float | None = None,
    min_leverage: float | None = None,
    required_consequent: Pattern | None = None,
) -> list[AssociationRule]:
    """Post-filter rules on secondary measures or a target consequent."""
    result = rules
    if min_lift is not None:
        result = [r for r in result if r.lift >= min_lift]
    if min_leverage is not None:
        result = [r for r in result if r.leverage >= min_leverage]
    if required_consequent is not None:
        target = frozenset(required_consequent)
        result = [r for r in result if target <= r.consequent]
    return result
