"""The second pass of the partition scheme: union, verify, recount.

After every shard reports its locally frequent patterns, the union of
those sets is a superset of the globally frequent set (the scaling rule
in :mod:`repro.parallel.sharding` guarantees no global pattern is missed)
— but local supports are meaningless globally, so each surviving
candidate needs one exact counting pass over the full database.

That pass is organized level-wise and budgeted two ways:

* **Apriori pruning** — the candidate union is downward closed (each
  shard's local frequent set is, and a union of downward-closed families
  is), so a size-``k`` candidate whose ``k-1``-subsets were not all
  verified frequent can be skipped without counting.
* **The tight candidate bound** (Geerts, Goethals & Van den Bussche) —
  after verifying level ``k``, the Kruskal–Katona canonical decomposition
  of ``|F_k|`` bounds how many ``k+1``-patterns can possibly be frequent;
  when the bound hits zero every remaining (larger) candidate level is
  dropped unverified.

Counting itself reuses the group kernel's two styles: the vertical path
intersects member-position bitmaps (``Group.item_bitmap`` makes
pattern-head items free — the group-count saving survives the merge),
and the horizontal fallback scans compacted tails.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb
from typing import Iterable

from repro.core.groups import GroupedDatabase, to_grouped
from repro.data.patterns import PatternSet
from repro.metrics.counters import CostCounters


def tight_candidate_bound(frequent_count: int, level: int) -> int:
    """Largest possible ``|F_{level+1}|`` given ``|F_level|`` patterns.

    The Kruskal–Katona-style bound of Geerts–Goethals–Van den Bussche:
    write ``frequent_count`` canonically as
    ``C(a_k, k) + C(a_{k-1}, k-1) + ... + C(a_j, j)`` with
    ``a_k > a_{k-1} > ... > a_j >= j >= 1``; then at most
    ``C(a_k, k+1) + C(a_{k-1}, k) + ... + C(a_j, j+1)`` patterns of size
    ``level + 1`` can be frequent. Zero means level-wise search is over.
    """
    if level < 1 or frequent_count <= 0:
        return 0
    remaining = frequent_count
    bound = 0
    k = level
    while remaining > 0 and k >= 1:
        # Largest a with C(a, k) <= remaining; a >= k always works
        # since C(k, k) = 1 <= remaining.
        a = k
        while comb(a + 1, k) <= remaining:
            a += 1
        remaining -= comb(a, k)
        bound += comb(a, k + 1)
        k -= 1
    return bound


def union_candidates(
    shard_patterns: Iterable[PatternSet],
) -> set[frozenset[int]]:
    """The global candidate set: every pattern any shard found frequent.

    Local supports are dropped here — only the exact recount can assign
    a global support.
    """
    candidates: set[frozenset[int]] = set()
    for patterns in shard_patterns:
        candidates.update(patterns)
    return candidates


def count_pattern_support(
    grouped: GroupedDatabase, pattern: frozenset[int]
) -> int:
    """Exact support of one pattern over a grouped database.

    Vertical when the grouped view supports bitsets (one big-int ``&``
    chain per group, pattern-head items costing nothing), horizontal tail
    scan otherwise. Either way the group-count saving applies: members
    whose tail projected away still assert their head pattern.
    """
    if not pattern:
        return grouped.tuple_count()
    enc = grouped.encoded()
    if grouped.supports_bitset and enc is not None:
        support = 0
        for group in grouped.groups:
            acc = group.mask
            for item in pattern:
                if not acc:
                    break
                acc &= group.item_bitmap(enc, item)
            support += acc.bit_count()
        return support
    support = 0
    for group in grouped.mining_groups():
        needed = pattern - group.pattern_set
        if not needed:
            support += group.count
            continue
        # Compacted groups drop empty tails, but an empty tail cannot
        # contain the non-empty `needed` set, so scanning only the
        # non-empty ones is exact.
        for tail in group.tails:
            if needed.issubset(tail):
                support += 1
    return support


@dataclass(frozen=True)
class MergeResult:
    """What the counting pass did and what it produced."""

    patterns: PatternSet
    candidate_count: int
    counted: int
    pruned_apriori: int
    pruned_bound: int
    levels_skipped: int

    def as_dict(self) -> dict[str, int]:
        return {
            "candidate_count": self.candidate_count,
            "counted": self.counted,
            "pruned_apriori": self.pruned_apriori,
            "pruned_bound": self.pruned_bound,
            "levels_skipped": self.levels_skipped,
        }


def merge_shard_patterns(
    shard_patterns: Iterable[PatternSet],
    source: GroupedDatabase,
    min_support: int,
    counters: CostCounters | None = None,
) -> MergeResult:
    """Union shard-local frequents and recount them exactly.

    ``source`` is the *global* grouped database (counting it is counting
    every shard at once — shards partition its tuples). The result is
    set-identical, patterns and supports, to single-process mining at
    ``min_support``.
    """
    grouped = to_grouped(source)
    candidates = union_candidates(shard_patterns)
    by_level: dict[int, list[frozenset[int]]] = {}
    for candidate in candidates:
        by_level.setdefault(len(candidate), []).append(candidate)

    result = PatternSet()
    frequent_by_level: dict[int, set[frozenset[int]]] = {}
    counted = 0
    pruned_apriori = 0
    pruned_bound = 0
    levels_skipped = 0
    levels = sorted(by_level)
    for position, level in enumerate(levels):
        previous = frequent_by_level.get(level - 1)
        level_frequent: set[frozenset[int]] = set()
        for candidate in sorted(by_level[level], key=sorted):
            if level > 1 and previous is not None:
                # The candidate union is downward closed, so every
                # (level-1)-subset was itself a candidate; one that
                # failed verification sinks this candidate too.
                if any(
                    candidate - {item} not in previous for item in candidate
                ):
                    pruned_apriori += 1
                    continue
            support = count_pattern_support(grouped, candidate)
            counted += 1
            if support >= min_support:
                result.add(candidate, support)
                level_frequent.add(candidate)
        frequent_by_level[level] = level_frequent
        bound = tight_candidate_bound(len(level_frequent), level)
        if bound == 0:
            remaining = levels[position + 1:]
            levels_skipped = len(remaining)
            pruned_bound = sum(len(by_level[lv]) for lv in remaining)
            break

    if counters is not None:
        counters.add("merge_candidates", len(candidates))
        counters.add("merge_counted", counted)
        counters.add("merge_pruned_apriori", pruned_apriori)
        counters.add("merge_pruned_bound", pruned_bound)
    return MergeResult(
        patterns=result,
        candidate_count=len(candidates),
        counted=counted,
        pruned_apriori=pruned_apriori,
        pruned_bound=pruned_bound,
        levels_skipped=levels_skipped,
    )
