"""The process-pool engine driving the two-pass partition scheme.

One parallel run is: Phase 1 once in the calling process (compression is
cheap and produces the :class:`~repro.core.groups.GroupedDatabase` the
:class:`~repro.parallel.sharding.ShardPlanner` splits), then one
:class:`ShardTask` per shard shipped to a ``ProcessPoolExecutor`` worker,
then the merge pass (:mod:`repro.parallel.merge`) back in the caller.

Every payload that crosses the process boundary is deliberately boring:
a :class:`ShardTask` pickles down to plain tuples (the shard rebuilds its
database and masks lazily on the far side), and a worker answers with a
plain dict of tuples — patterns as ``((items...), support)`` pairs and
its :class:`~repro.metrics.counters.CostCounters` as a name→int dict,
rebuilt and merged via ``CostCounters.merge`` on return.

Inside a worker the existing planner trichotomy applies: a shard that
arrives with warehouse feedstock (sliced per shard fingerprint by the
service) runs :func:`~repro.core.planner.plan_support_path` /
``execute_plan`` — filter, recycle or mine, whichever is cheapest and
sound *for that shard* — while a shard without feedstock mines its slice
of the grouped database directly with the chosen recycling miner (the
groups were compressed once, globally) or a baseline miner when there was
nothing to recycle.

Failure is not an error, and it is handled *per shard* before it is
handled per run: a crashed or timed-out shard is retried individually
with capped exponential backoff and deterministic jitter
(:class:`~repro.resilience.RetryPolicy`), budgeted by attempts and by
the engine's wall-clock deadline. Only when a shard exhausts that budget
(or the whole pass misses its deadline) does the engine fall back to the
equivalent in-process path — salvaging the counters of every shard that
*did* finish (recorded under ``parallel_wasted_work``), recording
``parallel_fallbacks``, the reason on the outcome, and a
``parallel→serial`` step on the outcome's
:class:`~repro.resilience.DegradationReport` — so a parallel call can
never produce worse results than a serial one, only, at worst, the same
results later. A :class:`~repro.resilience.FaultInjector` can be armed
on the engine to exercise exactly these paths (``shard.crash``,
``shard.slow``, ``merge.count``) deterministically.
"""

from __future__ import annotations

import dataclasses
import inspect
import pickle
import time
from concurrent.futures import ALL_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.core.compression import CompressionResult, compress
from repro.core.groups import GroupedDatabase
from repro.core.planner import (
    PATH_FILTER,
    PATH_MINE,
    PATH_RECYCLE,
    execute_plan,
    plan_support_path,
    resolve_baseline_algorithm,
    resolve_recycling_algorithm,
)
from repro.data.io import canonical_pattern_rows
from repro.data.patterns import NDI_RULE_DEPTH, CondensedPatternSet, PatternSet
from repro.data.transactions import TransactionDatabase
from repro.errors import ParallelError, ReproError
from repro.metrics.counters import CostCounters
from repro.mining.registry import get_miner
from repro.parallel.merge import MergeResult, merge_shard_patterns
from repro.parallel.sharding import Shard, ShardPlanner
from repro.resilience import (
    MERGE_COUNT,
    REASON_DEADLINE,
    REASON_MERGE_FAILED,
    REASON_SHARD_FAILED,
    REASON_WORKER_ERROR,
    SHARD_CRASH,
    SHARD_SLOW,
    DegradationReport,
    FaultInjector,
    RetryPolicy,
)

#: Serialized pattern set: ((sorted items...), support) pairs.
PatternRows = tuple[tuple[tuple[int, ...], int], ...]

#: Optional per-shard feedstock source: (fingerprint, local_support) ->
#: (patterns, absolute_support) or None, where patterns may be a plain
#: or condensed set. The service wires this to
#: ``PatternWarehouse.best_feedstock``.
ShardFeedstockFn = Callable[
    [str, int], "tuple[PatternSet | CondensedPatternSet, int] | None"
]

#: Optional sink for fresh shard results: (fingerprint, local_support,
#: patterns). The service wires this to ``PatternWarehouse.put``.
ShardResultFn = Callable[[str, int, PatternSet], None]


def patterns_to_rows(patterns: PatternSet) -> PatternRows:
    """A pickle-friendly rendering of a pattern set, in canonical order."""
    return tuple(canonical_pattern_rows(patterns))


def rows_to_patterns(rows: Iterable[tuple[tuple[int, ...], int]]) -> PatternSet:
    """Inverse of :func:`patterns_to_rows`."""
    patterns = PatternSet()
    for items, support in rows:
        patterns.add(frozenset(items), support)
    return patterns


def counters_from_dict(values: dict[str, int]) -> CostCounters:
    """Rebuild a worker's counters from its name→int wire form."""
    counters = CostCounters()
    for name, amount in values.items():
        counters.add(name, amount)
    return counters


@dataclass(frozen=True)
class ShardTask:
    """Everything one worker needs, in pickle-friendly form.

    Exactly one of three modes applies, mirroring the planner trichotomy:
    ``feedstock`` present → the worker runs the full filter/recycle/mine
    plan against its shard database; ``scratch`` → baseline mining (the
    global run had nothing to recycle); otherwise the shard groups *are*
    the compressed database and the recycling miner consumes them
    directly. ``fail`` makes the worker raise (a crash, injected by the
    ``shard.crash`` fault point or the legacy ``failure_injection``
    hook); ``delay_seconds`` makes it sleep first (a straggler, injected
    by ``shard.slow``).
    """

    shard: Shard
    local_support: int
    algorithm: str = "hmine"
    strategy: str = "mcp"
    backend: str = "bitset"
    single_group_shortcut: bool = True
    feedstock: PatternRows | None = None
    feedstock_support: int | None = None
    #: Representation of the feedstock rows: ``full`` means they are the
    #: complete frequent set; ``closed``/``ndi`` means they are condensed
    #: entries, which the worker rehydrates into a
    #: :class:`~repro.data.patterns.CondensedPatternSet` so its planner
    #: stays sound (a filter over condensed entries must expand).
    feedstock_repr: str = "full"
    feedstock_n: int | None = None
    feedstock_ndi_depth: int = NDI_RULE_DEPTH
    scratch: bool = False
    fail: bool = False
    delay_seconds: float = 0.0


def run_shard_task(task: ShardTask) -> dict[str, object]:
    """Mine one shard at its scaled local support (runs in a worker).

    Top-level (picklable by reference) and returning only plain data, so
    it works identically under ``ProcessPoolExecutor`` and the inline
    executor the property tests use.
    """
    if task.fail:
        raise ParallelError(
            f"injected failure in shard {task.shard.index} (test hook)"
        )
    counters = CostCounters()
    started = time.perf_counter()
    if task.delay_seconds > 0:
        time.sleep(task.delay_seconds)
    shard = task.shard
    if task.feedstock is not None:
        feedstock: PatternSet | CondensedPatternSet
        if task.feedstock_repr != "full":
            assert task.feedstock_support is not None
            feedstock = CondensedPatternSet(
                task.feedstock_repr,
                {frozenset(items): support for items, support in task.feedstock},
                task.feedstock_support,
                n_transactions=task.feedstock_n,
                ndi_depth=task.feedstock_ndi_depth,
            )
        else:
            feedstock = rows_to_patterns(task.feedstock)
        plan = plan_support_path(
            task.local_support, feedstock, task.feedstock_support
        )
        patterns = execute_plan(
            plan,
            shard.database(),
            task.local_support,
            algorithm=task.algorithm,
            strategy=task.strategy,
            counters=counters,
            backend=task.backend,
        )
        path = plan.path
    elif task.scratch:
        name = resolve_baseline_algorithm(task.algorithm)
        patterns = get_miner(name, kind="baseline").mine(
            shard.database(), task.local_support, counters
        )
        path = PATH_MINE
    else:
        spec = get_miner(
            resolve_recycling_algorithm(task.algorithm), kind="recycling"
        )
        kwargs: dict[str, object] = {}
        accepted = inspect.signature(spec.fn).parameters
        if "single_group_shortcut" in accepted:
            kwargs["single_group_shortcut"] = task.single_group_shortcut
        if "backend" in accepted:
            kwargs["backend"] = (
                task.backend if task.backend in ("python", "bitset") else None
            )
        patterns = spec.fn(shard.grouped(), task.local_support, counters, **kwargs)
        path = PATH_RECYCLE
    elapsed = time.perf_counter() - started
    return {
        "index": shard.index,
        "fingerprint": shard.fingerprint(),
        "path": path,
        "local_support": task.local_support,
        "tuple_count": shard.tuple_count,
        "elapsed_seconds": elapsed,
        "patterns": patterns_to_rows(patterns),
        "counters": counters.as_dict(),
    }


class ShardPassError(ParallelError):
    """The shard pass failed as a whole (after per-shard retries).

    Carries everything the engine needs to degrade gracefully: the
    results of every shard that *did* complete (their counters are
    salvaged into the fallback run's accounting), per-shard attempt
    counts, and a short machine-readable reason code for the
    degradation report.
    """

    def __init__(
        self,
        message: str,
        *,
        code: str,
        completed: list[dict[str, object]],
        attempts: dict[int, int],
    ) -> None:
        super().__init__(message)
        self.code = code
        self.completed = completed
        self.attempts = attempts


@dataclass(frozen=True)
class ShardOutcome:
    """One worker's report, as the caller keeps it."""

    index: int
    fingerprint: str
    path: str
    local_support: int
    tuple_count: int
    elapsed_seconds: float
    pattern_count: int
    attempts: int = 1


@dataclass(frozen=True)
class ParallelOutcome:
    """Everything a parallel run produced, for reporting and testing.

    ``patterns`` is always the exact global answer. ``jobs`` is the
    effective shard count actually mined (1 when the engine short-
    circuited to the in-process path); ``fallback`` records that workers
    were attempted but failed and the serial path answered instead, with
    the machine-readable chain on ``degradation``.
    ``critical_path_seconds`` models the wall-clock of an ideally
    parallel execution: Phase 1 + the slowest shard + the merge — the
    number a single-core host can still report honestly.
    """

    patterns: PatternSet
    path: str
    requested_jobs: int
    jobs: int
    shards: tuple[ShardOutcome, ...] = ()
    merge: MergeResult | None = None
    compression: CompressionResult | None = None
    fallback: bool = False
    fallback_reason: str | None = None
    elapsed_seconds: float = 0.0
    critical_path_seconds: float = 0.0
    degradation: DegradationReport = field(default_factory=DegradationReport)


class ParallelEngine:
    """Shard → mine → merge, with a serial fallback that cannot lose.

    Parameters
    ----------
    jobs:
        Worker process count requested (the planner may produce fewer
        shards on small inputs).
    timeout_seconds:
        Wall-clock deadline for the whole shard pass, retries and
        backoff sleeps included; missing it triggers the in-process
        fallback.
    executor:
        ``"process"`` (real ``ProcessPoolExecutor``) or ``"inline"``
        (same tasks, same pickling round-trip, run sequentially in this
        process — what the equivalence tests use to cover the worker
        code path cheaply).
    shard_feedstock / on_shard_result:
        Warehouse hooks: slice recycling feedstock per shard fingerprint
        going out, bank fresh per-shard results coming back.
    retry_policy:
        Per-shard retry budget (attempts + backoff); the default retries
        each failed shard up to twice before the engine gives up on the
        parallel pass. ``RetryPolicy(max_attempts=1)`` disables retries.
    fault_injector:
        Optional :class:`~repro.resilience.FaultInjector`; the engine
        evaluates ``shard.crash`` and ``shard.slow`` once per shard
        *attempt* (so an ``on_calls=(1,)`` crash is healed by the first
        retry) and fires ``merge.count`` once per merge pass.
    failure_injection:
        Legacy hook: shard indices whose tasks always raise inside the
        worker (unconditional, unlike the injector's scheduled faults).
    """

    def __init__(
        self,
        jobs: int,
        *,
        timeout_seconds: float | None = None,
        executor: str = "process",
        shard_feedstock: ShardFeedstockFn | None = None,
        on_shard_result: ShardResultFn | None = None,
        retry_policy: RetryPolicy | None = None,
        fault_injector: FaultInjector | None = None,
        failure_injection: Iterable[int] = (),
    ) -> None:
        if jobs < 1:
            raise ParallelError(f"jobs must be >= 1, got {jobs}")
        if executor not in ("process", "inline"):
            raise ParallelError(
                f"unknown executor {executor!r} (known: process, inline)"
            )
        self.jobs = jobs
        self.timeout_seconds = timeout_seconds
        self.executor = executor
        self.shard_feedstock = shard_feedstock
        self.on_shard_result = on_shard_result
        self.retry_policy = retry_policy or RetryPolicy()
        self.faults = fault_injector
        self.failure_injection = frozenset(failure_injection)

    # ------------------------------------------------------------------
    # public entry points
    # ------------------------------------------------------------------
    def recycle_mine(
        self,
        db: TransactionDatabase,
        old_patterns: PatternSet,
        min_support: int,
        algorithm: str = "hmine",
        strategy: str = "mcp",
        counters: CostCounters | None = None,
        backend: str = "bitset",
        single_group_shortcut: bool = True,
    ) -> ParallelOutcome:
        """Parallel Phase 2: compress once, mine shards, merge exactly."""
        started = time.perf_counter()
        if isinstance(old_patterns, CondensedPatternSet):
            # Phase 1 only needs genuine frequent patterns with exact
            # supports to claim compression groups — the condensed
            # entries qualify directly, no expansion required.
            old_patterns = old_patterns.entry_patterns()
        compression = compress(
            db, old_patterns, strategy, counters, backend=backend
        )
        phase1 = time.perf_counter() - started

        def serial() -> PatternSet:
            spec = get_miner(
                resolve_recycling_algorithm(algorithm), kind="recycling"
            )
            return spec.mine(compression.compressed, min_support, counters)

        return self._run(
            grouped=compression.compressed,
            min_support=min_support,
            algorithm=algorithm,
            strategy=strategy,
            backend=backend,
            single_group_shortcut=single_group_shortcut,
            scratch=False,
            counters=counters,
            serial=serial,
            path=PATH_RECYCLE,
            compression=compression,
            started=started,
            phase1_seconds=phase1,
        )

    def mine(
        self,
        db: TransactionDatabase,
        min_support: int,
        algorithm: str = "hmine",
        strategy: str = "mcp",
        counters: CostCounters | None = None,
        backend: str = "bitset",
    ) -> ParallelOutcome:
        """Parallel from-scratch mining (no feedstock, one residual group)."""
        started = time.perf_counter()
        grouped = GroupedDatabase.from_database(db)

        def serial() -> PatternSet:
            name = resolve_baseline_algorithm(algorithm)
            return get_miner(name, kind="baseline").mine(
                db, min_support, counters
            )

        return self._run(
            grouped=grouped,
            min_support=min_support,
            algorithm=algorithm,
            strategy=strategy,
            backend=backend,
            single_group_shortcut=True,
            scratch=True,
            counters=counters,
            serial=serial,
            path=PATH_MINE,
            compression=None,
            started=started,
            phase1_seconds=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------
    # the shared shard → mine → merge pipeline
    # ------------------------------------------------------------------
    def _run(
        self,
        *,
        grouped: GroupedDatabase,
        min_support: int,
        algorithm: str,
        strategy: str,
        backend: str,
        single_group_shortcut: bool,
        scratch: bool,
        counters: CostCounters | None,
        serial: Callable[[], PatternSet],
        path: str,
        compression: CompressionResult | None,
        started: float,
        phase1_seconds: float,
    ) -> ParallelOutcome:
        total = grouped.tuple_count()
        plan = None
        if self.jobs > 1 and total >= max(2, self.jobs):
            plan = ShardPlanner(self.jobs).plan(grouped)
        if plan is None or plan.effective_jobs <= 1:
            patterns = serial()
            elapsed = time.perf_counter() - started
            return ParallelOutcome(
                patterns=patterns,
                path=path,
                requested_jobs=self.jobs,
                jobs=1,
                compression=compression,
                elapsed_seconds=elapsed,
                critical_path_seconds=elapsed,
            )

        tasks = []
        for shard in plan.shards:
            local = plan.local_support(shard, min_support)
            feedstock_rows: PatternRows | None = None
            feedstock_support: int | None = None
            feedstock_repr = "full"
            feedstock_n: int | None = None
            feedstock_ndi_depth = NDI_RULE_DEPTH
            if self.shard_feedstock is not None:
                hit = self.shard_feedstock(shard.fingerprint(), local)
                if hit is not None:
                    # patterns_to_rows serializes whatever items() yields
                    # — for a condensed set that is its entries, so the
                    # wire payload stays condensed too.
                    feedstock_rows = patterns_to_rows(hit[0])
                    feedstock_support = hit[1]
                    if isinstance(hit[0], CondensedPatternSet):
                        feedstock_repr = hit[0].representation
                        feedstock_n = hit[0].n_transactions
                        feedstock_ndi_depth = hit[0].ndi_depth
            tasks.append(
                ShardTask(
                    shard=shard,
                    local_support=local,
                    algorithm=algorithm,
                    strategy=strategy,
                    backend=backend,
                    single_group_shortcut=single_group_shortcut,
                    feedstock=feedstock_rows,
                    feedstock_support=feedstock_support,
                    feedstock_repr=feedstock_repr,
                    feedstock_n=feedstock_n,
                    feedstock_ndi_depth=feedstock_ndi_depth,
                    scratch=scratch,
                )
            )

        attempts: dict[int, int] = {}
        try:
            results = self._execute(tasks, attempts)
        except ShardPassError as exc:
            return self._fall_back(
                serial=serial,
                counters=counters,
                path=path,
                compression=compression,
                started=started,
                reason=f"{type(exc).__name__}: {exc}",
                code=exc.code,
                completed=exc.completed,
                attempts=exc.attempts,
            )
        except Exception as exc:
            # Non-library failures (a worker pool that cannot spawn, a
            # pickling surprise) degrade the same way.
            return self._fall_back(
                serial=serial,
                counters=counters,
                path=path,
                compression=compression,
                started=started,
                reason=f"{type(exc).__name__}: {exc}",
                code=REASON_WORKER_ERROR,
                completed=[],
                attempts=attempts,
            )

        try:
            if self.faults is not None:
                # The merge pass's exact recount is the last place a
                # parallel run can go wrong; injectable like the rest.
                self.faults.fire(MERGE_COUNT, detail="merge pass")
            merge_started = time.perf_counter()
            shard_patterns = [rows_to_patterns(r["patterns"]) for r in results]
            merge = merge_shard_patterns(
                shard_patterns, grouped, min_support, counters
            )
        except Exception as exc:
            # A merge failure (injected or real) after the shards
            # finished: all shard results are wasted, but their counters
            # are still real cost — salvage them.
            return self._fall_back(
                serial=serial,
                counters=counters,
                path=path,
                compression=compression,
                started=started,
                reason=f"{type(exc).__name__}: {exc}",
                code=REASON_MERGE_FAILED,
                completed=results,
                attempts=attempts,
            )
        merge_seconds = time.perf_counter() - merge_started

        outcomes = []
        for result, patterns in zip(results, shard_patterns):
            outcomes.append(
                ShardOutcome(
                    index=result["index"],
                    fingerprint=result["fingerprint"],
                    path=result["path"],
                    local_support=result["local_support"],
                    tuple_count=result["tuple_count"],
                    elapsed_seconds=result["elapsed_seconds"],
                    pattern_count=len(patterns),
                    attempts=attempts.get(result["index"], 1),
                )
            )
            if counters is not None:
                counters.merge(counters_from_dict(result["counters"]))
            if self.on_shard_result is not None and result["path"] != PATH_FILTER:
                self.on_shard_result(
                    result["fingerprint"], result["local_support"], patterns
                )
        if counters is not None:
            counters.add("parallel_runs")
            counters.add("parallel_shards", len(outcomes))
            counters.add("parallel_shard_attempts", sum(attempts.values()))
            retries = sum(attempts.values()) - len(outcomes)
            if retries > 0:
                counters.add("parallel_shard_retries", retries)

        elapsed = time.perf_counter() - started
        slowest = max(o.elapsed_seconds for o in outcomes)
        return ParallelOutcome(
            patterns=merge.patterns,
            path=path,
            requested_jobs=self.jobs,
            jobs=len(outcomes),
            shards=tuple(sorted(outcomes, key=lambda o: o.index)),
            merge=merge,
            compression=compression,
            elapsed_seconds=elapsed,
            critical_path_seconds=phase1_seconds + slowest + merge_seconds,
        )

    def _fall_back(
        self,
        *,
        serial: Callable[[], PatternSet],
        counters: CostCounters | None,
        path: str,
        compression: CompressionResult | None,
        started: float,
        reason: str,
        code: str,
        completed: list[dict[str, object]],
        attempts: dict[int, int],
    ) -> ParallelOutcome:
        """Serve serially after a failed shard pass, salvaging what ran.

        Shards that completed before the pass died did real work; their
        counters are merged into the run's accounting (the cost was
        paid) and the total is also recorded under
        ``parallel_wasted_work`` so the waste is visible as waste.
        """
        if counters is not None:
            wasted = CostCounters()
            for result in completed:
                wasted.merge(counters_from_dict(result["counters"]))
            if completed:
                counters.merge(wasted)
                counters.add("parallel_wasted_work", wasted.total_work())
                counters.add("parallel_wasted_shards", len(completed))
            if attempts:
                counters.add("parallel_shard_attempts", sum(attempts.values()))
            counters.add("parallel_fallbacks")
        degradation = DegradationReport()
        degradation.record("parallel", "serial", code)
        patterns = serial()
        elapsed = time.perf_counter() - started
        return ParallelOutcome(
            patterns=patterns,
            path=path,
            requested_jobs=self.jobs,
            jobs=1,
            compression=compression,
            fallback=True,
            fallback_reason=reason,
            elapsed_seconds=elapsed,
            critical_path_seconds=elapsed,
            degradation=degradation,
        )

    # ------------------------------------------------------------------
    # executors
    # ------------------------------------------------------------------
    def _arm(self, task: ShardTask) -> ShardTask:
        """Apply this attempt's fault schedule to a task.

        Evaluated once per shard *attempt*, so a ``shard.crash`` armed
        ``on_calls=(1,)`` fails the first attempt and heals on retry —
        the transient-crash scenario the retry path exists for.
        """
        fail = task.shard.index in self.failure_injection
        delay = 0.0
        if self.faults is not None:
            if self.faults.evaluate(SHARD_CRASH) is not None:
                fail = True
            slow = self.faults.evaluate(SHARD_SLOW)
            if slow is not None:
                delay = slow.delay_seconds
        if fail == task.fail and delay == task.delay_seconds:
            return task
        return dataclasses.replace(task, fail=fail, delay_seconds=delay)

    def _execute(
        self, tasks: list[ShardTask], attempts: dict[int, int]
    ) -> list[dict[str, object]]:
        """Run every task to completion, retrying shards individually.

        ``attempts`` is filled in-place (shard index → attempts used) so
        the caller can account for retries whether the pass succeeds or
        dies mid-way. Raises :class:`ShardPassError` — carrying the
        completed results — when a shard exhausts its retry budget or
        the wall-clock deadline passes.
        """
        for task in tasks:
            attempts[task.shard.index] = 0
        if self.executor == "inline":
            return self._execute_inline(tasks, attempts)
        return self._execute_process(tasks, attempts)

    def _deadline(self, start: float) -> float | None:
        if self.timeout_seconds is None:
            return None
        return start + self.timeout_seconds

    def _execute_inline(
        self, tasks: list[ShardTask], attempts: dict[int, int]
    ) -> list[dict[str, object]]:
        # Same worker function, same pickling round-trip, no processes —
        # the cheap way to exercise the exact shard code path (and the
        # retry/deadline machinery) deterministically.
        start = time.monotonic()
        deadline = self._deadline(start)
        completed: list[dict[str, object]] = []
        for task in tasks:
            index = task.shard.index
            while True:
                if deadline is not None and time.monotonic() >= deadline:
                    raise ShardPassError(
                        f"shard pass missed its {self.timeout_seconds}s "
                        f"deadline ({len(tasks) - len(completed)} of "
                        f"{len(tasks)} shards unfinished)",
                        code=REASON_DEADLINE,
                        completed=completed,
                        attempts=attempts,
                    )
                attempts[index] += 1
                armed = self._arm(task)
                try:
                    result = run_shard_task(pickle.loads(pickle.dumps(armed)))
                except ReproError as exc:
                    self._budget_retry(
                        index, attempts, exc, deadline, completed, len(tasks)
                    )
                    continue
                completed.append(result)
                break
        return completed

    def _execute_process(
        self, tasks: list[ShardTask], attempts: dict[int, int]
    ) -> list[dict[str, object]]:
        start = time.monotonic()
        deadline = self._deadline(start)
        completed: dict[int, dict[str, object]] = {}
        pending = list(tasks)
        with ProcessPoolExecutor(
            max_workers=min(self.jobs, len(tasks))
        ) as pool:
            while pending:
                futures = {}
                for task in pending:
                    attempts[task.shard.index] += 1
                    futures[pool.submit(run_shard_task, self._arm(task))] = task
                remaining = (
                    None
                    if deadline is None
                    else max(0.0, deadline - time.monotonic())
                )
                done, not_done = wait(
                    futures, timeout=remaining, return_when=ALL_COMPLETED
                )
                results = list(completed.values())
                for future in done:
                    if future.exception() is None:
                        results.append(future.result())
                if not_done:
                    for future in not_done:
                        future.cancel()
                    raise ShardPassError(
                        f"shard pass missed its {self.timeout_seconds}s "
                        f"deadline ({len(not_done)} of {len(futures)} shards "
                        "unfinished)",
                        code=REASON_DEADLINE,
                        completed=results,
                        attempts=attempts,
                    )
                retry: list[ShardTask] = []
                failures: list[tuple[ShardTask, BaseException]] = []
                for future, task in futures.items():
                    error = future.exception()
                    if error is None:
                        completed[task.shard.index] = future.result()
                    else:
                        failures.append((task, error))
                results = list(completed.values())
                for task, error in sorted(
                    failures, key=lambda pair: pair[0].shard.index
                ):
                    index = task.shard.index
                    self._budget_retry(
                        index, attempts, error, deadline, results, len(tasks)
                    )
                    retry.append(task)
                pending = retry
        return [completed[task.shard.index] for task in tasks]

    def _budget_retry(
        self,
        index: int,
        attempts: dict[int, int],
        error: BaseException,
        deadline: float | None,
        completed: list[dict[str, object]],
        total: int,
    ) -> None:
        """Sleep the backoff before retrying shard ``index``, or give up.

        Raises :class:`ShardPassError` when the attempt budget is spent
        or the backoff sleep would cross the wall-clock deadline — the
        retry machinery never makes a run *slower* than its deadline.
        """
        used = attempts[index]
        if self.retry_policy.retries_remaining(used) == 0:
            raise ShardPassError(
                f"shard {index} failed after {used} attempt(s): {error}",
                code=REASON_SHARD_FAILED,
                completed=completed,
                attempts=attempts,
            )
        delay = self.retry_policy.backoff_delay(used, salt=index)
        if deadline is not None and time.monotonic() + delay >= deadline:
            raise ShardPassError(
                f"shard {index} retry backoff would cross the "
                f"{self.timeout_seconds}s deadline ({error})",
                code=REASON_DEADLINE,
                completed=completed,
                attempts=attempts,
            )
        if delay > 0:
            time.sleep(delay)


def parallel_recycle_mine(
    db: TransactionDatabase,
    old_patterns: PatternSet,
    min_support: int,
    jobs: int,
    algorithm: str = "hmine",
    strategy: str = "mcp",
    counters: CostCounters | None = None,
    backend: str = "bitset",
    **engine_kwargs: object,
) -> PatternSet:
    """One-call parallel recycling; see :class:`ParallelEngine`."""
    engine = ParallelEngine(jobs, **engine_kwargs)  # type: ignore[arg-type]
    return engine.recycle_mine(
        db, old_patterns, min_support, algorithm, strategy, counters, backend
    ).patterns


def parallel_mine(
    db: TransactionDatabase,
    min_support: int,
    jobs: int,
    algorithm: str = "hmine",
    counters: CostCounters | None = None,
    **engine_kwargs: object,
) -> PatternSet:
    """One-call parallel from-scratch mining; see :class:`ParallelEngine`."""
    engine = ParallelEngine(jobs, **engine_kwargs)  # type: ignore[arg-type]
    return engine.mine(db, min_support, algorithm, counters=counters).patterns
