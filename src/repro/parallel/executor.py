"""The process-pool engine driving the two-pass partition scheme.

One parallel run is: Phase 1 once in the calling process (compression is
cheap and produces the :class:`~repro.core.groups.GroupedDatabase` the
:class:`~repro.parallel.sharding.ShardPlanner` splits), then one
:class:`ShardTask` per shard shipped to a ``ProcessPoolExecutor`` worker,
then the merge pass (:mod:`repro.parallel.merge`) back in the caller.

Every payload that crosses the process boundary is deliberately boring:
a :class:`ShardTask` pickles down to plain tuples (the shard rebuilds its
database and masks lazily on the far side), and a worker answers with a
plain dict of tuples — patterns as ``((items...), support)`` pairs and
its :class:`~repro.metrics.counters.CostCounters` as a name→int dict,
rebuilt and merged via ``CostCounters.merge`` on return.

Inside a worker the existing planner trichotomy applies: a shard that
arrives with warehouse feedstock (sliced per shard fingerprint by the
service) runs :func:`~repro.core.planner.plan_support_path` /
``execute_plan`` — filter, recycle or mine, whichever is cheapest and
sound *for that shard* — while a shard without feedstock mines its slice
of the grouped database directly with the chosen recycling miner (the
groups were compressed once, globally) or a baseline miner when there was
nothing to recycle.

Failure is not an error: a worker crash, a raised exception or a missed
deadline makes the engine fall back to the equivalent in-process path,
recording ``parallel_fallbacks`` in the counters and the reason on the
outcome, so a parallel call can never produce worse results than a
serial one — only, at worst, the same results later.
"""

from __future__ import annotations

import inspect
import pickle
import time
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.core.compression import CompressionResult, compress
from repro.core.groups import GroupedDatabase
from repro.core.planner import (
    PATH_FILTER,
    PATH_MINE,
    PATH_RECYCLE,
    execute_plan,
    plan_support_path,
    resolve_baseline_algorithm,
    resolve_recycling_algorithm,
)
from repro.data.io import canonical_pattern_rows
from repro.data.patterns import PatternSet
from repro.data.transactions import TransactionDatabase
from repro.errors import ParallelError
from repro.metrics.counters import CostCounters
from repro.mining.registry import get_miner
from repro.parallel.merge import MergeResult, merge_shard_patterns
from repro.parallel.sharding import Shard, ShardPlanner

#: Serialized pattern set: ((sorted items...), support) pairs.
PatternRows = tuple[tuple[tuple[int, ...], int], ...]

#: Optional per-shard feedstock source: (fingerprint, local_support) ->
#: (patterns, absolute_support) or None. The service wires this to
#: ``PatternWarehouse.best_feedstock``.
ShardFeedstockFn = Callable[[str, int], "tuple[PatternSet, int] | None"]

#: Optional sink for fresh shard results: (fingerprint, local_support,
#: patterns). The service wires this to ``PatternWarehouse.put``.
ShardResultFn = Callable[[str, int, PatternSet], None]


def patterns_to_rows(patterns: PatternSet) -> PatternRows:
    """A pickle-friendly rendering of a pattern set, in canonical order."""
    return tuple(canonical_pattern_rows(patterns))


def rows_to_patterns(rows: Iterable[tuple[tuple[int, ...], int]]) -> PatternSet:
    """Inverse of :func:`patterns_to_rows`."""
    patterns = PatternSet()
    for items, support in rows:
        patterns.add(frozenset(items), support)
    return patterns


@dataclass(frozen=True)
class ShardTask:
    """Everything one worker needs, in pickle-friendly form.

    Exactly one of three modes applies, mirroring the planner trichotomy:
    ``feedstock`` present → the worker runs the full filter/recycle/mine
    plan against its shard database; ``scratch`` → baseline mining (the
    global run had nothing to recycle); otherwise the shard groups *are*
    the compressed database and the recycling miner consumes them
    directly. ``fail`` is a test hook simulating a worker crash.
    """

    shard: Shard
    local_support: int
    algorithm: str = "hmine"
    strategy: str = "mcp"
    backend: str = "bitset"
    single_group_shortcut: bool = True
    feedstock: PatternRows | None = None
    feedstock_support: int | None = None
    scratch: bool = False
    fail: bool = False


def run_shard_task(task: ShardTask) -> dict[str, object]:
    """Mine one shard at its scaled local support (runs in a worker).

    Top-level (picklable by reference) and returning only plain data, so
    it works identically under ``ProcessPoolExecutor`` and the inline
    executor the property tests use.
    """
    if task.fail:
        raise ParallelError(
            f"injected failure in shard {task.shard.index} (test hook)"
        )
    counters = CostCounters()
    started = time.perf_counter()
    shard = task.shard
    if task.feedstock is not None:
        feedstock = rows_to_patterns(task.feedstock)
        plan = plan_support_path(
            task.local_support, feedstock, task.feedstock_support
        )
        patterns = execute_plan(
            plan,
            shard.database(),
            task.local_support,
            algorithm=task.algorithm,
            strategy=task.strategy,
            counters=counters,
            backend=task.backend,
        )
        path = plan.path
    elif task.scratch:
        name = resolve_baseline_algorithm(task.algorithm)
        patterns = get_miner(name, kind="baseline").mine(
            shard.database(), task.local_support, counters
        )
        path = PATH_MINE
    else:
        spec = get_miner(
            resolve_recycling_algorithm(task.algorithm), kind="recycling"
        )
        kwargs: dict[str, object] = {}
        accepted = inspect.signature(spec.fn).parameters
        if "single_group_shortcut" in accepted:
            kwargs["single_group_shortcut"] = task.single_group_shortcut
        if "backend" in accepted:
            kwargs["backend"] = (
                task.backend if task.backend in ("python", "bitset") else None
            )
        patterns = spec.fn(shard.grouped(), task.local_support, counters, **kwargs)
        path = PATH_RECYCLE
    elapsed = time.perf_counter() - started
    return {
        "index": shard.index,
        "fingerprint": shard.fingerprint(),
        "path": path,
        "local_support": task.local_support,
        "tuple_count": shard.tuple_count,
        "elapsed_seconds": elapsed,
        "patterns": patterns_to_rows(patterns),
        "counters": counters.as_dict(),
    }


@dataclass(frozen=True)
class ShardOutcome:
    """One worker's report, as the caller keeps it."""

    index: int
    fingerprint: str
    path: str
    local_support: int
    tuple_count: int
    elapsed_seconds: float
    pattern_count: int


@dataclass(frozen=True)
class ParallelOutcome:
    """Everything a parallel run produced, for reporting and testing.

    ``patterns`` is always the exact global answer. ``jobs`` is the
    effective shard count actually mined (1 when the engine short-
    circuited to the in-process path); ``fallback`` records that workers
    were attempted but failed and the serial path answered instead.
    ``critical_path_seconds`` models the wall-clock of an ideally
    parallel execution: Phase 1 + the slowest shard + the merge — the
    number a single-core host can still report honestly.
    """

    patterns: PatternSet
    path: str
    requested_jobs: int
    jobs: int
    shards: tuple[ShardOutcome, ...] = ()
    merge: MergeResult | None = None
    compression: CompressionResult | None = None
    fallback: bool = False
    fallback_reason: str | None = None
    elapsed_seconds: float = 0.0
    critical_path_seconds: float = 0.0


class ParallelEngine:
    """Shard → mine → merge, with a serial fallback that cannot lose.

    Parameters
    ----------
    jobs:
        Worker process count requested (the planner may produce fewer
        shards on small inputs).
    timeout_seconds:
        Deadline for the whole shard pass; missing it triggers the
        in-process fallback.
    executor:
        ``"process"`` (real ``ProcessPoolExecutor``) or ``"inline"``
        (same tasks, same pickling round-trip, run sequentially in this
        process — what the equivalence tests use to cover the worker
        code path cheaply).
    shard_feedstock / on_shard_result:
        Warehouse hooks: slice recycling feedstock per shard fingerprint
        going out, bank fresh per-shard results coming back.
    failure_injection:
        Shard indices whose tasks raise inside the worker (test hook for
        the crash-fallback path).
    """

    def __init__(
        self,
        jobs: int,
        *,
        timeout_seconds: float | None = None,
        executor: str = "process",
        shard_feedstock: ShardFeedstockFn | None = None,
        on_shard_result: ShardResultFn | None = None,
        failure_injection: Iterable[int] = (),
    ) -> None:
        if jobs < 1:
            raise ParallelError(f"jobs must be >= 1, got {jobs}")
        if executor not in ("process", "inline"):
            raise ParallelError(
                f"unknown executor {executor!r} (known: process, inline)"
            )
        self.jobs = jobs
        self.timeout_seconds = timeout_seconds
        self.executor = executor
        self.shard_feedstock = shard_feedstock
        self.on_shard_result = on_shard_result
        self.failure_injection = frozenset(failure_injection)

    # ------------------------------------------------------------------
    # public entry points
    # ------------------------------------------------------------------
    def recycle_mine(
        self,
        db: TransactionDatabase,
        old_patterns: PatternSet,
        min_support: int,
        algorithm: str = "hmine",
        strategy: str = "mcp",
        counters: CostCounters | None = None,
        backend: str = "bitset",
        single_group_shortcut: bool = True,
    ) -> ParallelOutcome:
        """Parallel Phase 2: compress once, mine shards, merge exactly."""
        started = time.perf_counter()
        compression = compress(
            db, old_patterns, strategy, counters, backend=backend
        )
        phase1 = time.perf_counter() - started

        def serial() -> PatternSet:
            spec = get_miner(
                resolve_recycling_algorithm(algorithm), kind="recycling"
            )
            return spec.mine(compression.compressed, min_support, counters)

        return self._run(
            grouped=compression.compressed,
            min_support=min_support,
            algorithm=algorithm,
            strategy=strategy,
            backend=backend,
            single_group_shortcut=single_group_shortcut,
            scratch=False,
            counters=counters,
            serial=serial,
            path=PATH_RECYCLE,
            compression=compression,
            started=started,
            phase1_seconds=phase1,
        )

    def mine(
        self,
        db: TransactionDatabase,
        min_support: int,
        algorithm: str = "hmine",
        strategy: str = "mcp",
        counters: CostCounters | None = None,
        backend: str = "bitset",
    ) -> ParallelOutcome:
        """Parallel from-scratch mining (no feedstock, one residual group)."""
        started = time.perf_counter()
        grouped = GroupedDatabase.from_database(db)

        def serial() -> PatternSet:
            name = resolve_baseline_algorithm(algorithm)
            return get_miner(name, kind="baseline").mine(
                db, min_support, counters
            )

        return self._run(
            grouped=grouped,
            min_support=min_support,
            algorithm=algorithm,
            strategy=strategy,
            backend=backend,
            single_group_shortcut=True,
            scratch=True,
            counters=counters,
            serial=serial,
            path=PATH_MINE,
            compression=None,
            started=started,
            phase1_seconds=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------
    # the shared shard → mine → merge pipeline
    # ------------------------------------------------------------------
    def _run(
        self,
        *,
        grouped: GroupedDatabase,
        min_support: int,
        algorithm: str,
        strategy: str,
        backend: str,
        single_group_shortcut: bool,
        scratch: bool,
        counters: CostCounters | None,
        serial: Callable[[], PatternSet],
        path: str,
        compression: CompressionResult | None,
        started: float,
        phase1_seconds: float,
    ) -> ParallelOutcome:
        total = grouped.tuple_count()
        plan = None
        if self.jobs > 1 and total >= max(2, self.jobs):
            plan = ShardPlanner(self.jobs).plan(grouped)
        if plan is None or plan.effective_jobs <= 1:
            patterns = serial()
            elapsed = time.perf_counter() - started
            return ParallelOutcome(
                patterns=patterns,
                path=path,
                requested_jobs=self.jobs,
                jobs=1,
                compression=compression,
                elapsed_seconds=elapsed,
                critical_path_seconds=elapsed,
            )

        tasks = []
        for shard in plan.shards:
            local = plan.local_support(shard, min_support)
            feedstock_rows: PatternRows | None = None
            feedstock_support: int | None = None
            if self.shard_feedstock is not None:
                hit = self.shard_feedstock(shard.fingerprint(), local)
                if hit is not None:
                    feedstock_rows = patterns_to_rows(hit[0])
                    feedstock_support = hit[1]
            tasks.append(
                ShardTask(
                    shard=shard,
                    local_support=local,
                    algorithm=algorithm,
                    strategy=strategy,
                    backend=backend,
                    single_group_shortcut=single_group_shortcut,
                    feedstock=feedstock_rows,
                    feedstock_support=feedstock_support,
                    scratch=scratch,
                    fail=shard.index in self.failure_injection,
                )
            )

        try:
            results = self._execute(tasks)
        except Exception as exc:
            if counters is not None:
                counters.add("parallel_fallbacks")
            patterns = serial()
            elapsed = time.perf_counter() - started
            return ParallelOutcome(
                patterns=patterns,
                path=path,
                requested_jobs=self.jobs,
                jobs=1,
                compression=compression,
                fallback=True,
                fallback_reason=f"{type(exc).__name__}: {exc}",
                elapsed_seconds=elapsed,
                critical_path_seconds=elapsed,
            )

        merge_started = time.perf_counter()
        shard_patterns = [rows_to_patterns(r["patterns"]) for r in results]
        merge = merge_shard_patterns(
            shard_patterns, grouped, min_support, counters
        )
        merge_seconds = time.perf_counter() - merge_started

        outcomes = []
        for result, patterns in zip(results, shard_patterns):
            outcomes.append(
                ShardOutcome(
                    index=result["index"],
                    fingerprint=result["fingerprint"],
                    path=result["path"],
                    local_support=result["local_support"],
                    tuple_count=result["tuple_count"],
                    elapsed_seconds=result["elapsed_seconds"],
                    pattern_count=len(patterns),
                )
            )
            if counters is not None:
                worker = CostCounters()
                for name, amount in result["counters"].items():
                    worker.add(name, amount)
                counters.merge(worker)
            if self.on_shard_result is not None and result["path"] != PATH_FILTER:
                self.on_shard_result(
                    result["fingerprint"], result["local_support"], patterns
                )
        if counters is not None:
            counters.add("parallel_runs")
            counters.add("parallel_shards", len(outcomes))

        elapsed = time.perf_counter() - started
        slowest = max(o.elapsed_seconds for o in outcomes)
        return ParallelOutcome(
            patterns=merge.patterns,
            path=path,
            requested_jobs=self.jobs,
            jobs=len(outcomes),
            shards=tuple(sorted(outcomes, key=lambda o: o.index)),
            merge=merge,
            compression=compression,
            elapsed_seconds=elapsed,
            critical_path_seconds=phase1_seconds + slowest + merge_seconds,
        )

    # ------------------------------------------------------------------
    # executors
    # ------------------------------------------------------------------
    def _execute(self, tasks: list[ShardTask]) -> list[dict[str, object]]:
        if self.executor == "inline":
            # Same worker function, same pickling round-trip, no
            # processes — the cheap way to exercise the exact shard code
            # path deterministically (property tests, 1-core hosts).
            return [
                run_shard_task(pickle.loads(pickle.dumps(task)))
                for task in tasks
            ]
        deadline = self.timeout_seconds
        with ProcessPoolExecutor(
            max_workers=min(self.jobs, len(tasks))
        ) as pool:
            futures = [pool.submit(run_shard_task, task) for task in tasks]
            done, pending = wait(
                futures, timeout=deadline, return_when=FIRST_EXCEPTION
            )
            if pending:
                for future in pending:
                    future.cancel()
                raise ParallelError(
                    f"shard pass missed its {deadline}s deadline "
                    f"({len(pending)} of {len(futures)} shards unfinished)"
                )
            return [future.result() for future in futures]


def parallel_recycle_mine(
    db: TransactionDatabase,
    old_patterns: PatternSet,
    min_support: int,
    jobs: int,
    algorithm: str = "hmine",
    strategy: str = "mcp",
    counters: CostCounters | None = None,
    backend: str = "bitset",
    **engine_kwargs: object,
) -> PatternSet:
    """One-call parallel recycling; see :class:`ParallelEngine`."""
    engine = ParallelEngine(jobs, **engine_kwargs)  # type: ignore[arg-type]
    return engine.recycle_mine(
        db, old_patterns, min_support, algorithm, strategy, counters, backend
    ).patterns


def parallel_mine(
    db: TransactionDatabase,
    min_support: int,
    jobs: int,
    algorithm: str = "hmine",
    counters: CostCounters | None = None,
    **engine_kwargs: object,
) -> PatternSet:
    """One-call parallel from-scratch mining; see :class:`ParallelEngine`."""
    engine = ParallelEngine(jobs, **engine_kwargs)  # type: ignore[arg-type]
    return engine.mine(db, min_support, algorithm, counters=counters).patterns
