"""Group-aware sharding: splitting a :class:`GroupedDatabase` for workers.

The paper's group representation makes shards cheap to ship: a shard is
just a slice of the grouped database with its counts. The one rule the
:class:`ShardPlanner` enforces is that a *pattern* group is atomic — all
members of a group travel to the same shard, so the group-count savings,
the member-position masks and the Lemma 3.1 single-group shortcut keep
working inside every shard exactly as they do on the whole database. The
residual group (pattern ``()``, the tuples no pattern claimed) carries no
group structure to preserve, so its members are dealt out individually as
ballast to balance shard sizes; in the degenerate scratch-mining case
(one all-residual group) this is what makes sharding possible at all.

Each shard rebuilds, lazily and deterministically, a self-contained
mining world: a :class:`~repro.data.transactions.TransactionDatabase` of
its member tuples (tid order preserved from the parent database, so the
shard's :meth:`fingerprint` is stable across processes and runs) and a
shard-local :class:`~repro.core.groups.GroupedDatabase` whose member
masks are re-derived over shard positions — ``supports_bitset`` holds per
shard, so the vertical kernel applies unchanged.

Local support scaling follows the classic two-pass partition bound: a
pattern with global absolute support ``S`` over ``n`` tuples must, by
pigeonhole, reach count ``>= S * n_i / n`` in at least one shard of size
``n_i``; since counts are integers, mining shard ``i`` at
``max(1, ceil(S * n_i / n))`` makes the union of local frequent sets a
superset of the global frequent set (:func:`scale_local_support`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.groups import Group, GroupedDatabase, to_grouped
from repro.data.transactions import TransactionDatabase
from repro.errors import MiningError


def scale_local_support(
    global_support: int, shard_tuples: int, total_tuples: int
) -> int:
    """The sound local threshold for one shard of the two-pass scheme.

    ``max(1, ceil(global_support * shard_tuples / total_tuples))``: any
    pattern globally frequent at ``global_support`` is locally frequent
    at this threshold in at least one shard (pigeonhole over integer
    counts), so no global pattern can be lost before the counting pass.
    """
    if global_support < 1:
        raise MiningError(f"global support must be >= 1, got {global_support}")
    if total_tuples <= 0 or shard_tuples <= 0:
        return 1
    return max(1, -(-global_support * shard_tuples // total_tuples))


class Shard:
    """One worker's slice of a grouped database.

    Carries whole pattern groups plus its share of residual tuples, all
    as plain tuples so the object pickles small; the derived database,
    shard-local grouped view and fingerprint are rebuilt lazily on
    whichever side of the process boundary first needs them (and are
    deliberately dropped from the pickled state).
    """

    def __init__(self, index: int, groups: tuple[Group, ...]) -> None:
        self.index = index
        self.groups = tuple(groups)
        self._database: TransactionDatabase | None = None
        self._grouped: GroupedDatabase | None = None

    def __getstate__(self) -> dict[str, object]:
        return {"index": self.index, "groups": self.groups}

    def __setstate__(self, state: dict[str, object]) -> None:
        self.index = state["index"]  # type: ignore[assignment]
        self.groups = state["groups"]  # type: ignore[assignment]
        self._database = None
        self._grouped = None

    def __repr__(self) -> str:
        return (
            f"Shard(index={self.index}, groups={len(self.groups)}, "
            f"tuples={self.tuple_count})"
        )

    @property
    def tuple_count(self) -> int:
        """Member tuples in this shard (the ``n_i`` of the scaling rule)."""
        return sum(group.count for group in self.groups)

    def database(self) -> TransactionDatabase:
        """This shard's member tuples as a database, in parent tid order.

        Tids are inherited from the parent database, so the shard's
        content fingerprint is stable across runs and processes — the
        property the warehouse relies on to reuse per-shard feedstock.
        """
        if self._database is None:
            rows: list[tuple[int, tuple[int, ...]]] = []
            for group in self.groups:
                if len(group.tids) != len(group.tails):
                    raise MiningError(
                        "shard groups must be root groups (tids parallel to tails)"
                    )
                for tid, tail in zip(group.tids, group.tails):
                    rows.append((tid, tuple(sorted(group.pattern + tail))))
            rows.sort()
            self._database = TransactionDatabase(
                [items for _tid, items in rows],
                tids=[tid for tid, _items in rows],
            )
        return self._database

    def grouped(self) -> GroupedDatabase:
        """The shard-local grouped view Phase 2 mines.

        Same groups, but member-position masks are re-derived over the
        shard's own database, so ``supports_bitset`` (and therefore the
        vertical kernel) holds inside the shard exactly as it does
        globally.
        """
        if self._grouped is None:
            db = self.database()
            position_of = {tid: pos for pos, tid in enumerate(db.tids)}
            rebuilt = []
            for group in self.groups:
                mask = 0
                for tid in group.tids:
                    mask |= 1 << position_of[tid]
                rebuilt.append(
                    Group(
                        pattern=group.pattern,
                        count=group.count,
                        tails=group.tails,
                        tids=group.tids,
                        mask=mask,
                    )
                )
            self._grouped = GroupedDatabase(rebuilt, original=db)
        return self._grouped

    def fingerprint(self) -> str:
        """Content hash of the shard database (the warehouse key half)."""
        return self.database().fingerprint()


@dataclass(frozen=True)
class ShardPlan:
    """The partition one parallel run mines: shards plus global facts."""

    shards: tuple[Shard, ...]
    total_tuples: int
    requested_jobs: int

    @property
    def effective_jobs(self) -> int:
        return len(self.shards)

    def local_support(self, shard: Shard, global_support: int) -> int:
        """The scaled threshold ``shard`` is mined at."""
        return scale_local_support(
            global_support, shard.tuple_count, self.total_tuples
        )


class ShardPlanner:
    """Splits a grouped database into at most ``jobs`` balanced shards.

    Pattern groups are placed wholesale, largest first, into the
    currently lightest shard (greedy LPT scheduling — deterministic, ties
    broken by shard index). Residual tuples are then dealt out one at a
    time to the lightest shard, balancing whatever imbalance the atomic
    groups left. Shards that end up empty are dropped, so the effective
    job count can be lower than requested on tiny or single-group inputs.
    """

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise MiningError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def plan(
        self, source: GroupedDatabase | TransactionDatabase | list[Group]
    ) -> ShardPlan:
        grouped = to_grouped(source)
        pattern_groups = [g for g in grouped.groups if g.pattern]
        residual_groups = [g for g in grouped.groups if not g.pattern]

        loads = [0] * self.jobs
        assigned: list[list[Group]] = [[] for _ in range(self.jobs)]
        for group in sorted(
            pattern_groups, key=lambda g: (-g.count, g.pattern)
        ):
            lightest = min(range(self.jobs), key=lambda i: (loads[i], i))
            assigned[lightest].append(group)
            loads[lightest] += group.count

        # Residual members balance the bins one tuple at a time.
        residual_members: list[list[tuple[int, tuple[int, ...]]]] = [
            [] for _ in range(self.jobs)
        ]
        for group in residual_groups:
            if len(group.tids) != len(group.tails):
                raise MiningError(
                    "cannot shard a projected residual group (tids were dropped)"
                )
            for tid, tail in zip(group.tids, group.tails):
                lightest = min(range(self.jobs), key=lambda i: (loads[i], i))
                residual_members[lightest].append((tid, tail))
                loads[lightest] += 1

        shards = []
        for index in range(self.jobs):
            groups = list(assigned[index])
            if residual_members[index]:
                members = sorted(residual_members[index])
                mask = 0  # shard-local masks are rebuilt by Shard.grouped()
                groups.append(
                    Group(
                        pattern=(),
                        count=len(members),
                        tails=tuple(tail for _tid, tail in members),
                        tids=tuple(tid for tid, _tail in members),
                        mask=mask,
                    )
                )
            if groups:
                shards.append(Shard(len(shards), tuple(groups)))
        return ShardPlan(
            shards=tuple(shards),
            total_tuples=grouped.tuple_count(),
            requested_jobs=self.jobs,
        )
