"""Sharded parallel mining: the two-pass partition scheme over groups.

The subsystem in three modules, one per pass boundary:

:mod:`repro.parallel.sharding`
    Splitting a :class:`~repro.core.groups.GroupedDatabase` group-wise
    into balanced shards, and the sound local-support scaling rule.
:mod:`repro.parallel.executor`
    The :class:`ParallelEngine`: pickle-friendly shard tasks, a
    ``ProcessPoolExecutor`` worker pool, per-worker cost counters merged
    on return, and the crash/timeout fallback to the serial path.
:mod:`repro.parallel.merge`
    The second pass: candidate union, Apriori + tight-candidate-bound
    budgeting, and the exact global recount over the grouped database.

The engine sits above :mod:`repro.core` (it drives the planner
trichotomy inside workers) and below :mod:`repro.service` (which fans
heavy requests out through it); ``recycle_mine(..., jobs=N)`` and the
CLI ``--jobs`` flag are the front doors.
"""

from repro.parallel.executor import (
    ParallelEngine,
    ParallelOutcome,
    ShardOutcome,
    ShardTask,
    parallel_mine,
    parallel_recycle_mine,
    run_shard_task,
)
from repro.parallel.merge import (
    MergeResult,
    count_pattern_support,
    merge_shard_patterns,
    tight_candidate_bound,
    union_candidates,
)
from repro.parallel.sharding import (
    Shard,
    ShardPlan,
    ShardPlanner,
    scale_local_support,
)

__all__ = [
    "MergeResult",
    "ParallelEngine",
    "ParallelOutcome",
    "Shard",
    "ShardOutcome",
    "ShardPlan",
    "ShardPlanner",
    "ShardTask",
    "count_pattern_support",
    "merge_shard_patterns",
    "parallel_mine",
    "parallel_recycle_mine",
    "run_shard_task",
    "scale_local_support",
    "tight_candidate_bound",
    "union_candidates",
]
