"""Constraint framework for iterative constrained mining."""

from repro.constraints.aggregate import AggregateConstraint
from repro.constraints.base import (
    Category,
    ChangeKind,
    Constraint,
    ConstraintContext,
)
from repro.constraints.engine import ConstraintSet
from repro.constraints.pushing import mine_constrained
from repro.constraints.support import (
    ItemsRequired,
    ItemsWithin,
    MaxLength,
    MaxSupport,
    MinLength,
    MinSupport,
)

__all__ = [
    "AggregateConstraint",
    "Category",
    "ChangeKind",
    "Constraint",
    "ConstraintContext",
    "ConstraintSet",
    "ItemsRequired",
    "ItemsWithin",
    "MaxLength",
    "MaxSupport",
    "MinLength",
    "MinSupport",
    "mine_constrained",
]
