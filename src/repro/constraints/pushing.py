"""Pushing constraints into the mining loop (paper §2's [12, 14]).

The constraint framework classifies constraints; this module *uses* the
classification inside a projected-database miner, the way CAP and
FIC/convertible mining do:

* **succinct** constraints that are also anti-monotone (``X ⊆ S``,
  ``max(attr) <= v``, ``min(attr) >= v``) restrict the item universe
  before mining even starts — items that can never appear in a
  satisfying pattern are deleted from the F-list;
* **anti-monotone** constraints prune the search tree: once a prefix
  violates, no extension is explored;
* **monotone** constraints are checked once a pattern satisfies them and
  then never re-checked along that branch (they can only stay true);
* **convertible** constraints (``avg``) fall back to post-filtering — a
  prefix-order rewrite is possible but deliberately out of scope, as in
  the paper, which notes [8]-style approaches break for them anyway.

The miner itself is the queue-based H-Mine engine restricted per prefix,
so constraint pushing composes with everything else built on F-lists.

Note the interplay with recycling (paper §2): pushed anti-monotone
constraints shrink the *reported* pattern set, so a session that wants
to recycle later should mine with support only and push constraints at
filter time — or keep this module for one-shot constrained queries,
which is how the examples use it.
"""

from __future__ import annotations

from collections import Counter

from repro.constraints.base import Category, Constraint, ConstraintContext
from repro.constraints.engine import ConstraintSet
from repro.constraints.support import ItemsWithin
from repro.constraints.aggregate import AggregateConstraint
from repro.data.transactions import TransactionDatabase
from repro.metrics.counters import CostCounters
from repro.mining.flist import FList
from repro.mining.patterns import PatternSet


def _item_level_survivors(
    constraint: Constraint, items: set[int], context: ConstraintContext
) -> set[int] | None:
    """Items that can appear in some satisfying pattern, or ``None`` when
    the constraint cannot be evaluated item-wise."""
    if isinstance(constraint, ItemsWithin):
        return items & constraint.allowed
    if isinstance(constraint, AggregateConstraint) and constraint.aggregate in (
        "max",
        "min",
    ):
        # max <= v / min >= v: an offending item poisons every superset.
        if (constraint.aggregate, constraint.op) not in (("max", "<="), ("min", ">=")):
            return None
        survivors = set()
        for item in items:
            row = context.item_table.get(item)
            if row is None or constraint.attribute not in row.attributes:
                continue
            value = row.attributes[constraint.attribute]
            if constraint.op == "<=" and value <= constraint.value:
                survivors.add(item)
            elif constraint.op == ">=" and value >= constraint.value:
                survivors.add(item)
        return survivors
    return None


def mine_constrained(
    db: TransactionDatabase,
    constraints: ConstraintSet,
    context: ConstraintContext | None = None,
    counters: CostCounters | None = None,
) -> PatternSet:
    """Frequent patterns of ``db`` satisfying ``constraints``, with
    anti-monotone and succinct constraints pushed into the search.

    Returns exactly ``constraints.filter_patterns(mine(db, xi), ...)``,
    but without materializing the unconstrained set.
    """
    context = context or ConstraintContext(db_size=len(db))
    min_support = constraints.absolute_support(len(db))
    others = constraints.others()

    anti_monotone = [c for c in others if c.is_anti_monotone()]
    monotone = [c for c in others if c.is_monotone() and not c.is_anti_monotone()]
    residual = [
        c for c in others if not c.is_anti_monotone() and not c.is_monotone()
    ]

    # Succinct pre-filtering of the item universe.
    flist = FList.from_database(db, min_support)
    universe = set(flist.order)
    for constraint in anti_monotone:
        if Category.SUCCINCT in constraint.categories:
            survivors = _item_level_survivors(constraint, universe, context)
            if survivors is not None:
                universe = survivors
    order = [i for i in flist.order if i in universe]
    rank = {item: pos for pos, item in enumerate(order)}

    transactions = []
    for tx in db:
        live = tuple(sorted((i for i in tx if i in rank), key=rank.__getitem__))
        if live:
            transactions.append(live)

    result = PatternSet()
    stats = {"pruned": 0, "tuple_scans": 0, "item_visits": 0}

    def satisfies_anti_monotone(pattern: frozenset[int]) -> bool:
        return all(c.satisfied(pattern, 0, context) for c in anti_monotone)

    def emit(pattern: tuple[int, ...], support: int) -> None:
        key = frozenset(pattern)
        if all(c.satisfied(key, support, context) for c in monotone) and all(
            c.satisfied(key, support, context) for c in residual
        ):
            result.add(key, support)

    def mine(entries: list[tuple[tuple[int, ...], int]], prefix: tuple[int, ...]) -> None:
        counts: Counter[int] = Counter()
        for tx, pos in entries:
            stats["tuple_scans"] += 1
            stats["item_visits"] += len(tx) - pos
            counts.update(tx[pos:])
        local = [i for i, c in counts.items() if c >= min_support]
        local.sort(key=rank.__getitem__)
        for item in local:
            candidate = prefix + (item,)
            if not satisfies_anti_monotone(frozenset(candidate)):
                stats["pruned"] += 1
                continue
            emit(candidate, counts[item])
            sub_entries = []
            for tx, pos in entries:
                try:
                    at = tx.index(item, pos)
                except ValueError:
                    continue
                if at + 1 < len(tx):
                    sub_entries.append((tx, at + 1))
            if sub_entries:
                mine(sub_entries, candidate)

    mine([(tx, 0) for tx in transactions], ())
    if counters is not None:
        counters.tuple_scans += stats["tuple_scans"] + len(db)
        counters.item_visits += stats["item_visits"] + db.total_items()
        counters.add("constraint_prunes", stats["pruned"])
        counters.patterns_emitted += len(result)
    return result
