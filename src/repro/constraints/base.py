"""Constraint framework foundations.

The paper situates recycling in *constrained* frequent-pattern mining:
users iterate, adjusting a set of constraints between runs. Four
constraint categories from the literature (anti-monotone, monotone,
succinct, convertible — [12, 14] in the paper) determine what a
constraint change means for recycling:

* when every changed constraint is **tightened**, the new answer is a
  filter over the old patterns (Section 2);
* any **relaxed** constraint forces re-mining — the recycling path.

A :class:`Constraint` therefore knows how to *evaluate* itself on a
pattern and how to *compare* itself against a replacement constraint of
the same kind.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.data.items import ItemTable
from repro.mining.patterns import Pattern


class Category(enum.Enum):
    """The classic constraint categories (paper Section 2)."""

    ANTI_MONOTONE = "anti-monotone"
    MONOTONE = "monotone"
    SUCCINCT = "succinct"
    CONVERTIBLE = "convertible"
    HARD = "hard"


class ChangeKind(enum.Enum):
    """How a constraint compares against its predecessor."""

    SAME = "same"
    TIGHTENED = "tightened"
    RELAXED = "relaxed"
    INCOMPARABLE = "incomparable"


@dataclass(frozen=True)
class ConstraintContext:
    """Everything a constraint may consult besides the pattern itself."""

    db_size: int
    item_table: ItemTable = field(default_factory=ItemTable)


class Constraint(ABC):
    """A predicate over (pattern, support) with category metadata."""

    @property
    @abstractmethod
    def categories(self) -> frozenset[Category]:
        """The categories this constraint belongs to."""

    @abstractmethod
    def satisfied(self, pattern: Pattern, support: int, context: ConstraintContext) -> bool:
        """True when the pattern meets this constraint."""

    @abstractmethod
    def compare(self, other: "Constraint") -> ChangeKind:
        """How ``other`` (the *new* constraint) relates to ``self``.

        ``TIGHTENED`` means every pattern satisfying ``other`` also
        satisfies ``self`` (solution space shrank); ``RELAXED`` the
        reverse; ``INCOMPARABLE`` when neither containment holds or the
        constraints are of different kinds.
        """

    def is_anti_monotone(self) -> bool:
        """Whether supersets of violating patterns also violate."""
        return Category.ANTI_MONOTONE in self.categories

    def is_monotone(self) -> bool:
        """Whether supersets of satisfying patterns also satisfy."""
        return Category.MONOTONE in self.categories
