"""The constraint set: evaluation and change classification.

:class:`ConstraintSet` is what a mining iteration runs under. Comparing
the new iteration's set against the previous one yields the decision the
paper's Section 2 describes:

* ``TIGHTENED`` (or ``SAME``) — the new answer is a filter over the old
  patterns; no mining needed;
* ``RELAXED`` or ``INCOMPARABLE`` — the solution space (possibly) grew;
  re-mine, recycling the old patterns through compression.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.constraints.base import ChangeKind, Constraint, ConstraintContext
from repro.constraints.support import MinSupport
from repro.errors import ConstraintError
from repro.mining.patterns import Pattern, PatternSet


class ConstraintSet:
    """An immutable conjunction of constraints.

    Exactly one :class:`MinSupport` is required — it is the essential
    constraint of frequent-pattern mining and the one the recycling
    machinery keys on.
    """

    def __init__(self, constraints: Iterable[Constraint]) -> None:
        self._constraints = tuple(constraints)
        supports = [c for c in self._constraints if isinstance(c, MinSupport)]
        if len(supports) != 1:
            raise ConstraintError(
                f"a ConstraintSet needs exactly one MinSupport, found {len(supports)}"
            )
        self._min_support = supports[0]

    @classmethod
    def of(cls, *constraints: Constraint) -> "ConstraintSet":
        """Variadic convenience constructor."""
        return cls(constraints)

    @classmethod
    def min_support(cls, threshold: float) -> "ConstraintSet":
        """The common case: support threshold only."""
        return cls((MinSupport(threshold),))

    def __iter__(self) -> Iterator[Constraint]:
        return iter(self._constraints)

    def __len__(self) -> int:
        return len(self._constraints)

    def __repr__(self) -> str:
        return f"ConstraintSet({list(self._constraints)!r})"

    @property
    def support_constraint(self) -> MinSupport:
        return self._min_support

    def absolute_support(self, db_size: int) -> int:
        """The minimum support as an absolute count."""
        return self._min_support.absolute(db_size)

    def others(self) -> tuple[Constraint, ...]:
        """All constraints except the minimum support."""
        return tuple(c for c in self._constraints if c is not self._min_support)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def satisfied(self, pattern: Pattern, support: int, context: ConstraintContext) -> bool:
        """Conjunction over all member constraints."""
        return all(c.satisfied(pattern, support, context) for c in self._constraints)

    def filter_patterns(self, patterns: PatternSet, context: ConstraintContext) -> PatternSet:
        """Patterns from ``patterns`` satisfying every constraint."""
        return patterns.filter(
            lambda pattern, support: self.satisfied(pattern, support, context)
        )

    # ------------------------------------------------------------------
    # change classification
    # ------------------------------------------------------------------
    def classify_change(self, new: "ConstraintSet") -> ChangeKind:
        """How ``new`` relates to this (older) constraint set.

        Pairs up constraints greedily by best comparison result. Any
        relaxed or unmatched-in-old constraint... more precisely:

        * every new constraint tightens-or-equals a matched old one, and
          no old constraint was dropped -> ``TIGHTENED`` (or ``SAME``);
        * every new constraint relaxes-or-equals, and no new constraint
          was added -> ``RELAXED``;
        * otherwise -> ``INCOMPARABLE`` (treated like a relaxation by the
          session: re-mine with recycling, then filter).
        """
        old_constraints = list(self._constraints)
        verdicts: list[ChangeKind] = []
        unmatched_new = 0
        for new_constraint in new:
            match_kind: ChangeKind | None = None
            match_index: int | None = None
            for index, old_constraint in enumerate(old_constraints):
                kind = old_constraint.compare(new_constraint)
                if kind is ChangeKind.INCOMPARABLE:
                    continue
                if match_kind is None or kind is ChangeKind.SAME:
                    match_kind, match_index = kind, index
                    if kind is ChangeKind.SAME:
                        break
            if match_index is None:
                unmatched_new += 1
            else:
                old_constraints.pop(match_index)
                verdicts.append(match_kind)  # type: ignore[arg-type]
        dropped_old = len(old_constraints)

        tightened = any(v is ChangeKind.TIGHTENED for v in verdicts) or unmatched_new > 0
        relaxed = any(v is ChangeKind.RELAXED for v in verdicts) or dropped_old > 0
        if tightened and relaxed:
            return ChangeKind.INCOMPARABLE
        if tightened:
            return ChangeKind.TIGHTENED
        if relaxed:
            return ChangeKind.RELAXED
        return ChangeKind.SAME
