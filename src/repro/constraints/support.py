"""Support and structural (length / item-membership) constraints."""

from __future__ import annotations

import math

from repro.constraints.base import Category, ChangeKind, Constraint, ConstraintContext
from repro.errors import ConstraintError
from repro.mining.patterns import Pattern


class MinSupport(Constraint):
    """``sup(X) >= threshold`` — the essential anti-monotone constraint.

    ``threshold`` may be absolute (int >= 1) or relative (float in
    (0, 1)); relative thresholds resolve against the context's database
    size, rounding up.
    """

    def __init__(self, threshold: float) -> None:
        if threshold <= 0:
            raise ConstraintError(f"min support must be positive, got {threshold}")
        self.threshold = threshold

    @property
    def categories(self) -> frozenset[Category]:
        return frozenset({Category.ANTI_MONOTONE})

    def absolute(self, db_size: int) -> int:
        """Resolve to an absolute count for a database of ``db_size``."""
        if self.threshold < 1:
            return max(1, math.ceil(self.threshold * db_size))
        return int(self.threshold)

    def satisfied(self, pattern: Pattern, support: int, context: ConstraintContext) -> bool:
        return support >= self.absolute(context.db_size)

    def compare(self, other: Constraint) -> ChangeKind:
        if not isinstance(other, MinSupport):
            return ChangeKind.INCOMPARABLE
        if other.threshold == self.threshold:
            return ChangeKind.SAME
        return ChangeKind.TIGHTENED if other.threshold > self.threshold else ChangeKind.RELAXED

    def __repr__(self) -> str:
        return f"MinSupport({self.threshold})"


class MaxSupport(Constraint):
    """``sup(X) <= threshold`` — monotone (rare-pattern mining)."""

    def __init__(self, threshold: float) -> None:
        if threshold <= 0:
            raise ConstraintError(f"max support must be positive, got {threshold}")
        self.threshold = threshold

    @property
    def categories(self) -> frozenset[Category]:
        return frozenset({Category.MONOTONE})

    def absolute(self, db_size: int) -> int:
        if self.threshold < 1:
            return int(self.threshold * db_size)
        return int(self.threshold)

    def satisfied(self, pattern: Pattern, support: int, context: ConstraintContext) -> bool:
        return support <= self.absolute(context.db_size)

    def compare(self, other: Constraint) -> ChangeKind:
        if not isinstance(other, MaxSupport):
            return ChangeKind.INCOMPARABLE
        if other.threshold == self.threshold:
            return ChangeKind.SAME
        return ChangeKind.TIGHTENED if other.threshold < self.threshold else ChangeKind.RELAXED

    def __repr__(self) -> str:
        return f"MaxSupport({self.threshold})"


class MinLength(Constraint):
    """``|X| >= n`` — monotone."""

    def __init__(self, length: int) -> None:
        if length < 1:
            raise ConstraintError(f"min length must be >= 1, got {length}")
        self.length = length

    @property
    def categories(self) -> frozenset[Category]:
        return frozenset({Category.MONOTONE, Category.SUCCINCT})

    def satisfied(self, pattern: Pattern, support: int, context: ConstraintContext) -> bool:
        return len(pattern) >= self.length

    def compare(self, other: Constraint) -> ChangeKind:
        if not isinstance(other, MinLength):
            return ChangeKind.INCOMPARABLE
        if other.length == self.length:
            return ChangeKind.SAME
        return ChangeKind.TIGHTENED if other.length > self.length else ChangeKind.RELAXED

    def __repr__(self) -> str:
        return f"MinLength({self.length})"


class MaxLength(Constraint):
    """``|X| <= n`` — anti-monotone."""

    def __init__(self, length: int) -> None:
        if length < 1:
            raise ConstraintError(f"max length must be >= 1, got {length}")
        self.length = length

    @property
    def categories(self) -> frozenset[Category]:
        return frozenset({Category.ANTI_MONOTONE, Category.SUCCINCT})

    def satisfied(self, pattern: Pattern, support: int, context: ConstraintContext) -> bool:
        return len(pattern) <= self.length

    def compare(self, other: Constraint) -> ChangeKind:
        if not isinstance(other, MaxLength):
            return ChangeKind.INCOMPARABLE
        if other.length == self.length:
            return ChangeKind.SAME
        return ChangeKind.TIGHTENED if other.length < self.length else ChangeKind.RELAXED

    def __repr__(self) -> str:
        return f"MaxLength({self.length})"


class ItemsWithin(Constraint):
    """``X ⊆ S`` — anti-monotone and succinct."""

    def __init__(self, allowed: frozenset[int] | set[int]) -> None:
        if not allowed:
            raise ConstraintError("ItemsWithin needs a non-empty item set")
        self.allowed = frozenset(allowed)

    @property
    def categories(self) -> frozenset[Category]:
        return frozenset({Category.ANTI_MONOTONE, Category.SUCCINCT})

    def satisfied(self, pattern: Pattern, support: int, context: ConstraintContext) -> bool:
        return pattern <= self.allowed

    def compare(self, other: Constraint) -> ChangeKind:
        if not isinstance(other, ItemsWithin):
            return ChangeKind.INCOMPARABLE
        if other.allowed == self.allowed:
            return ChangeKind.SAME
        if other.allowed < self.allowed:
            return ChangeKind.TIGHTENED
        if other.allowed > self.allowed:
            return ChangeKind.RELAXED
        return ChangeKind.INCOMPARABLE

    def __repr__(self) -> str:
        return f"ItemsWithin({sorted(self.allowed)})"


class ItemsRequired(Constraint):
    """``X ⊇ S`` — monotone and succinct."""

    def __init__(self, required: frozenset[int] | set[int]) -> None:
        if not required:
            raise ConstraintError("ItemsRequired needs a non-empty item set")
        self.required = frozenset(required)

    @property
    def categories(self) -> frozenset[Category]:
        return frozenset({Category.MONOTONE, Category.SUCCINCT})

    def satisfied(self, pattern: Pattern, support: int, context: ConstraintContext) -> bool:
        return pattern >= self.required

    def compare(self, other: Constraint) -> ChangeKind:
        if not isinstance(other, ItemsRequired):
            return ChangeKind.INCOMPARABLE
        if other.required == self.required:
            return ChangeKind.SAME
        if other.required > self.required:
            return ChangeKind.TIGHTENED
        if other.required < self.required:
            return ChangeKind.RELAXED
        return ChangeKind.INCOMPARABLE

    def __repr__(self) -> str:
        return f"ItemsRequired({sorted(self.required)})"
