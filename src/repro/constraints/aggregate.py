"""Aggregate constraints over item attributes.

These are the constraints that motivated the convertible/succinct
taxonomy: predicates like ``sum(X.price) <= 100`` or ``avg(X.weight) >=
3``. Classification follows Pei & Han's tables (assuming non-negative
attribute values for ``sum``):

=========  ====  =====================================
aggregate  op    category
=========  ====  =====================================
sum        <=    anti-monotone
sum        >=    monotone
min        <=    monotone, succinct
min        >=    anti-monotone, succinct
max        <=    anti-monotone, succinct
max        >=    monotone, succinct
avg        any   convertible
=========  ====  =====================================
"""

from __future__ import annotations

from repro.constraints.base import Category, ChangeKind, Constraint, ConstraintContext
from repro.errors import ConstraintError
from repro.mining.patterns import Pattern

_AGGREGATES = ("sum", "min", "max", "avg")
_OPS = ("<=", ">=")

_CATEGORY_TABLE: dict[tuple[str, str], frozenset[Category]] = {
    ("sum", "<="): frozenset({Category.ANTI_MONOTONE}),
    ("sum", ">="): frozenset({Category.MONOTONE}),
    ("min", "<="): frozenset({Category.MONOTONE, Category.SUCCINCT}),
    ("min", ">="): frozenset({Category.ANTI_MONOTONE, Category.SUCCINCT}),
    ("max", "<="): frozenset({Category.ANTI_MONOTONE, Category.SUCCINCT}),
    ("max", ">="): frozenset({Category.MONOTONE, Category.SUCCINCT}),
    ("avg", "<="): frozenset({Category.CONVERTIBLE}),
    ("avg", ">="): frozenset({Category.CONVERTIBLE}),
}


class AggregateConstraint(Constraint):
    """``agg(attribute over pattern) op value``.

    Items lacking the attribute fail the constraint outright — silently
    skipping them would make the aggregate lie.
    """

    def __init__(self, aggregate: str, attribute: str, op: str, value: float) -> None:
        if aggregate not in _AGGREGATES:
            raise ConstraintError(
                f"unknown aggregate {aggregate!r} (expected one of {_AGGREGATES})"
            )
        if op not in _OPS:
            raise ConstraintError(f"unknown op {op!r} (expected one of {_OPS})")
        self.aggregate = aggregate
        self.attribute = attribute
        self.op = op
        self.value = float(value)

    @property
    def categories(self) -> frozenset[Category]:
        return _CATEGORY_TABLE[(self.aggregate, self.op)]

    def _aggregate_value(self, pattern: Pattern, context: ConstraintContext) -> float | None:
        values = []
        for item_id in pattern:
            row = context.item_table.get(item_id)
            if row is None or self.attribute not in row.attributes:
                return None
            values.append(row.attributes[self.attribute])
        if not values:
            return None
        if self.aggregate == "sum":
            return sum(values)
        if self.aggregate == "min":
            return min(values)
        if self.aggregate == "max":
            return max(values)
        return sum(values) / len(values)

    def satisfied(self, pattern: Pattern, support: int, context: ConstraintContext) -> bool:
        value = self._aggregate_value(pattern, context)
        if value is None:
            return False
        return value <= self.value if self.op == "<=" else value >= self.value

    def compare(self, other: Constraint) -> ChangeKind:
        if (
            not isinstance(other, AggregateConstraint)
            or other.aggregate != self.aggregate
            or other.attribute != self.attribute
            or other.op != self.op
        ):
            return ChangeKind.INCOMPARABLE
        if other.value == self.value:
            return ChangeKind.SAME
        # For `<=` a smaller bound admits fewer patterns; for `>=` a
        # larger bound does.
        shrank = other.value < self.value if self.op == "<=" else other.value > self.value
        return ChangeKind.TIGHTENED if shrank else ChangeKind.RELAXED

    def __repr__(self) -> str:
        return f"AggregateConstraint({self.aggregate}({self.attribute}) {self.op} {self.value})"
