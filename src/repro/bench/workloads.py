"""Workload plumbing shared by all experiments.

A *workload* is a dataset spec plus everything derived from it that the
experiments reuse: the materialized database, the patterns mined at
``xi_old`` (the recycling feedstock) and the compressed databases under
each strategy. Construction is cached per (dataset, seed) because every
figure for a dataset shares them — exactly like the paper, which
compresses once per dataset (Table 3) and reuses the result in
Figures 9–24.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import lru_cache

from repro.core.compression import CompressionResult, compress
from repro.data.datasets import DatasetSpec, get_dataset
from repro.data.transactions import TransactionDatabase
from repro.mining.hmine import mine_hmine
from repro.mining.patterns import PatternSet


@dataclass(frozen=True)
class Workload:
    """A dataset prepared for recycling experiments."""

    spec: DatasetSpec
    db: TransactionDatabase
    xi_old_absolute: int
    old_patterns: PatternSet
    old_mining_seconds: float
    compressions: dict[str, CompressionResult]

    @property
    def name(self) -> str:
        return self.spec.name

    def absolute_support(self, relative: float) -> int:
        """Convert a relative support to the absolute threshold used here."""
        return max(1, int(relative * len(self.db)))

    def sweep_absolute(self) -> list[tuple[float, int]]:
        """The figure sweep as (relative, absolute) pairs."""
        return [(rel, self.absolute_support(rel)) for rel in self.spec.xi_new_sweep]


@lru_cache(maxsize=None)
def prepare_workload(
    dataset: str, seed: int = 0, strategies: tuple[str, ...] = ("mcp", "mlp")
) -> Workload:
    """Load a dataset, mine at ``xi_old`` and compress under each strategy."""
    spec = get_dataset(dataset)
    db = spec.load(seed)
    xi_old = max(1, int(spec.xi_old * len(db)))
    started = time.perf_counter()
    old_patterns = mine_hmine(db, xi_old)
    old_seconds = time.perf_counter() - started
    compressions = {
        strategy: compress(db, old_patterns, strategy) for strategy in strategies
    }
    return Workload(
        spec=spec,
        db=db,
        xi_old_absolute=xi_old,
        old_patterns=old_patterns,
        old_mining_seconds=old_seconds,
        compressions=compressions,
    )
