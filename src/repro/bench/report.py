"""Plain-text table rendering for experiment output.

Every experiment in :mod:`repro.bench.experiments` produces rows; this
module turns them into the aligned tables the benchmarks print — the
same rows/series the paper's tables and figures report.
"""

from __future__ import annotations

import math
from typing import Sequence


def format_cell(value: object) -> str:
    """Render one value: floats get 4 significant-ish decimals.

    Non-finite floats render explicitly (``nan`` / ``inf`` / ``-inf``)
    instead of falling through the magnitude ladder, and magnitudes too
    small for four decimal places switch to significant digits so a tiny
    negative never collapses to the misleading ``-0.0000``.
    """
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        if abs(value) < 0.00005:
            return f"{value:.3g}"
        return f"{value:.4f}"
    if isinstance(value, int) and abs(value) >= 10000:
        return f"{value:,d}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """An aligned, pipe-separated text table.

    Ragged input is tolerated: short rows pad with blanks, and rows
    wider than the header grow blank-headed columns, so a benchmark
    emitting an optional trailing column cannot crash its own report.
    """
    columns = max([len(headers), *(len(row) for row in rows)], default=0)
    headers = [*headers, *[""] * (columns - len(headers))]
    rendered = [
        [format_cell(v) for v in row] + [""] * (columns - len(row))
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip(),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)).rstrip()
        )
    return "\n".join(lines)


def render_report(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """A titled table block."""
    table = format_table(headers, rows)
    bar = "=" * max(len(title), 8)
    return f"\n{title}\n{bar}\n{table}\n"
