"""Plain-text table rendering for experiment output.

Every experiment in :mod:`repro.bench.experiments` produces rows; this
module turns them into the aligned tables the benchmarks print — the
same rows/series the paper's tables and figures report.
"""

from __future__ import annotations

from typing import Sequence


def format_cell(value: object) -> str:
    """Render one value: floats get 4 significant-ish decimals."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        return f"{value:.4f}"
    if isinstance(value, int) and abs(value) >= 10000:
        return f"{value:,d}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """An aligned, pipe-separated text table."""
    rendered = [[format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip(),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)).rstrip()
        )
    return "\n".join(lines)


def render_report(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """A titled table block."""
    table = format_table(headers, rows)
    bar = "=" * max(len(title), 8)
    return f"\n{title}\n{bar}\n{table}\n"
