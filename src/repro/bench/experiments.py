"""Experiment generators: one function per paper table / figure group.

Each function returns ``(headers, rows)`` ready for
:func:`repro.bench.report.render_report`; the benchmark modules under
``benchmarks/`` call these and print the result. The mapping from paper
artifact to function lives in :data:`FIGURES` and is mirrored in
DESIGN.md's experiment index.

All experiments verify the correctness invariant as they run: every
recycling variant must produce exactly the baseline's pattern set. A
benchmark that produced wrong patterns would be meaningless, so a
mismatch raises immediately.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.bench.runner import (
    MiningRun,
    run_baseline,
    run_condensed,
    run_recycling,
    speedup,
    timed,
)
from repro.bench.workloads import prepare_workload
from repro.core.naive import mine_rp
from repro.core.utility import STRATEGIES
from repro.core.compression import compress
from repro.errors import BenchmarkError
from repro.mining.registry import iter_miners
from repro.storage.disk import DiskModel, SimulatedDisk, transactions_byte_size
from repro.storage.memory import estimate_transactions_bytes
from repro.storage.projection import mine_grouped, mine_with_memory_budget

#: Paper figure number -> (dataset, base algorithm). Figures 21-24 are the
#: memory-limited family, handled by :func:`memory_limited_figure`.
FIGURES: dict[int, tuple[str, str]] = {
    9: ("weather", "hmine"),
    10: ("weather", "fpgrowth"),
    11: ("weather", "treeprojection"),
    12: ("forest", "hmine"),
    13: ("forest", "fpgrowth"),
    14: ("forest", "treeprojection"),
    15: ("connect4", "hmine"),
    16: ("connect4", "fpgrowth"),
    17: ("connect4", "treeprojection"),
    18: ("pumsb", "hmine"),
    19: ("pumsb", "fpgrowth"),
    20: ("pumsb", "treeprojection"),
}

MEMORY_FIGURES: dict[int, str] = {
    21: "weather",
    22: "forest",
    23: "connect4",
    24: "pumsb",
}

_ALGORITHM_TAGS = {"hmine": "HM", "fpgrowth": "FP", "treeprojection": "TP"}


def _work(run: MiningRun) -> int:
    """Machine-independent cost: visits + scans + projections plus the
    algorithm-specific extras (matrix updates, tidset intersections)."""
    extras = run.counters.as_dict()
    return (
        run.counters.total_work()
        + extras.get("matrix_updates", 0)
        + extras.get("tidset_intersections", 0)
    )


def _check_same(baseline: MiningRun, candidate: MiningRun, where: str) -> None:
    if baseline.patterns != candidate.patterns:
        raise BenchmarkError(
            f"{where}: {candidate.label} disagreed with {baseline.label} "
            f"({candidate.pattern_count} vs {baseline.pattern_count} patterns)"
        )


# ----------------------------------------------------------------------
# Table 3 — dataset properties and compression statistics
# ----------------------------------------------------------------------
def table3(seed: int = 0) -> tuple[list[str], list[list[object]]]:
    """Dataset properties + per-strategy compression time and ratio.

    "pipeline" time is the pure compression cost (the paper's column that
    deducts I/O, since compression can ride along with an existing
    projection pass); "I/O" adds a modelled read of the original database
    and write of the compressed one.
    """
    headers = [
        "dataset", "tuples", "avg_len", "items", "xi_old",
        "patterns", "max_len", "strategy",
        "time_pipeline_s", "time_io_s", "ratio",
    ]
    model = DiskModel()
    rows: list[list[object]] = []
    for dataset in ("weather", "forest", "connect4", "pumsb"):
        workload = prepare_workload(dataset, seed)
        db = workload.db
        raw_bytes = transactions_byte_size(list(db.transactions))
        for strategy in ("mcp", "mlp"):
            compression = workload.compressions[strategy]
            compressed_bytes = int(raw_bytes * compression.ratio)
            io_seconds = compression.elapsed_seconds + model.transfer_time(
                raw_bytes + compressed_bytes, 2
            )
            rows.append(
                [
                    dataset,
                    len(db),
                    round(db.average_length(), 1),
                    db.item_count(),
                    workload.spec.xi_old,
                    len(workload.old_patterns),
                    workload.old_patterns.max_length(),
                    strategy.upper(),
                    compression.elapsed_seconds,
                    io_seconds,
                    compression.ratio,
                ]
            )
    return headers, rows


# ----------------------------------------------------------------------
# Figures 9-20 — runtime vs xi_new, baseline vs MCP/MLP recycling
# ----------------------------------------------------------------------
def figure(
    number: int, seed: int = 0, sweep: Sequence[float] | None = None
) -> tuple[list[str], list[list[object]]]:
    """One runtime-vs-support figure: baseline, -MCP and -MLP series."""
    try:
        dataset, algorithm = FIGURES[number]
    except KeyError:
        raise BenchmarkError(
            f"unknown figure {number} (known: {sorted(FIGURES)} and "
            f"{sorted(MEMORY_FIGURES)} via memory_limited_figure)"
        ) from None
    return figure_series(dataset, algorithm, seed, sweep)


def figure_series(
    dataset: str,
    algorithm: str,
    seed: int = 0,
    sweep: Sequence[float] | None = None,
) -> tuple[list[str], list[list[object]]]:
    """The three series of one figure over the dataset's support sweep."""
    workload = prepare_workload(dataset, seed)
    tag = _ALGORITHM_TAGS.get(algorithm, algorithm)
    headers = [
        "xi_new", "abs_sup", "patterns",
        f"{tag}_s", f"{tag}-MCP_s", f"{tag}-MLP_s",
        "speedup_mcp", "speedup_mlp",
        "work_base", "work_mcp",
    ]
    rows: list[list[object]] = []
    points = sweep if sweep is not None else workload.spec.xi_new_sweep
    for relative in points:
        absolute = workload.absolute_support(relative)
        base = run_baseline(algorithm, workload.db, absolute)
        mcp = run_recycling(
            algorithm, workload.compressions["mcp"].compressed, absolute, "mcp"
        )
        mlp = run_recycling(
            algorithm, workload.compressions["mlp"].compressed, absolute, "mlp"
        )
        _check_same(base, mcp, f"figure {dataset}/{algorithm} xi={relative}")
        _check_same(base, mlp, f"figure {dataset}/{algorithm} xi={relative}")
        rows.append(
            [
                relative,
                absolute,
                base.pattern_count,
                base.seconds,
                mcp.seconds,
                mlp.seconds,
                speedup(base, mcp),
                speedup(base, mlp),
                _work(base),
                _work(mcp),
            ]
        )
    return headers, rows


# ----------------------------------------------------------------------
# Figures 21-24 — memory-limited H-Mine vs HM-MCP
# ----------------------------------------------------------------------
def memory_limited_figure(
    number_or_dataset: int | str,
    seed: int = 0,
    budget_fractions: Sequence[float] = (0.15, 0.30),
    sweep: Sequence[float] | None = None,
) -> tuple[list[str], list[list[object]]]:
    """H-Mine vs HM-MCP under memory budgets, with simulated I/O.

    The paper fixes 4 MB / 8 MB on datasets of tens of MB; our stand-ins
    are ~100x smaller, so budgets are expressed as fractions of the full
    H-struct footprint (defaults chosen to match the paper's ~10-25%
    regime). Reported times add the simulated disk model's transfer time
    to the measured CPU time, mirroring how the paper's wall-clock
    includes real I/O.
    """
    if isinstance(number_or_dataset, int):
        try:
            dataset = MEMORY_FIGURES[number_or_dataset]
        except KeyError:
            raise BenchmarkError(
                f"unknown memory figure {number_or_dataset} "
                f"(known: {sorted(MEMORY_FIGURES)})"
            ) from None
    else:
        dataset = number_or_dataset
    workload = prepare_workload(dataset, seed)
    db = workload.db
    full_bytes = estimate_transactions_bytes(list(db.transactions), db.item_count())
    headers = [
        "xi_new", "budget_bytes",
        "HM_s", "HM_io_mb", "HM-MCP_s", "HM-MCP_io_mb",
        "speedup", "patterns",
    ]
    rows: list[list[object]] = []
    points = sweep if sweep is not None else workload.spec.xi_new_sweep
    for fraction in budget_fractions:
        budget = max(1, int(full_bytes * fraction))
        for relative in points:
            absolute = workload.absolute_support(relative)
            base_disk = SimulatedDisk(counters=None)
            base = timed(
                "hmine-budget",
                lambda counters: mine_with_memory_budget(
                    "hmine", "baseline", db, absolute, budget,
                    disk=base_disk, counters=counters,
                ),
            )
            rp_disk = SimulatedDisk(counters=None)
            mcp = timed(
                "hm-mcp-budget",
                lambda counters: mine_with_memory_budget(
                    "naive",
                    "recycling",
                    workload.compressions["mcp"].compressed,
                    absolute,
                    budget,
                    disk=rp_disk,
                    counters=counters,
                ),
            )
            _check_same(base, mcp, f"memory figure {dataset} xi={relative}")
            base_total = base.seconds + base_disk.simulated_seconds
            mcp_total = mcp.seconds + rp_disk.simulated_seconds
            rows.append(
                [
                    relative,
                    budget,
                    base_total,
                    (base_disk.total_bytes_read + base_disk.total_bytes_written) / 2**20,
                    mcp_total,
                    (rp_disk.total_bytes_read + rp_disk.total_bytes_written) / 2**20,
                    base_total / mcp_total if mcp_total > 0 else float("inf"),
                    base.pattern_count,
                ]
            )
    return headers, rows


# ----------------------------------------------------------------------
# Section 5.2 observations
# ----------------------------------------------------------------------
def observations(seed: int = 0) -> tuple[list[str], list[list[object]]]:
    """Observation 1: the recycling saving vs the cost of producing it.

    For each dataset, at the lowest sweep support: the time HM-MCP saves
    over H-Mine, compared against the *entire* investment — mining at
    xi_old plus MCP compression. The paper's claim is saving >> cost,
    which justifies even cold-start two-step mining (run high support
    first, recycle down).
    """
    headers = [
        "dataset", "xi_old_mine_s", "compress_s", "investment_s",
        "HM_s", "HM-MCP_s", "saving_s", "saving/investment",
    ]
    rows: list[list[object]] = []
    for dataset in ("weather", "forest", "connect4", "pumsb"):
        workload = prepare_workload(dataset, seed)
        relative = workload.spec.xi_new_sweep[-1]
        absolute = workload.absolute_support(relative)
        base = run_baseline("hmine", workload.db, absolute)
        mcp = run_recycling(
            "hmine", workload.compressions["mcp"].compressed, absolute, "mcp"
        )
        _check_same(base, mcp, f"observations {dataset}")
        invest = (
            workload.old_mining_seconds
            + workload.compressions["mcp"].elapsed_seconds
        )
        saving = base.seconds - mcp.seconds
        rows.append(
            [
                dataset,
                workload.old_mining_seconds,
                workload.compressions["mcp"].elapsed_seconds,
                invest,
                base.seconds,
                mcp.seconds,
                saving,
                saving / invest if invest > 0 else float("inf"),
            ]
        )
    return headers, rows


# ----------------------------------------------------------------------
# Ablations (ours, motivated by DESIGN.md)
# ----------------------------------------------------------------------
def ablation_strategies(
    dataset: str, seed: int = 0
) -> tuple[list[str], list[list[object]]]:
    """Utility-function ablation: MCP vs MLP vs arrival-order vs random.

    Isolates how much of the recycling win comes from *which* patterns
    compress the database, holding the mining algorithm (naive RP-Mine)
    fixed. Run at the middle sweep support.
    """
    workload = prepare_workload(dataset, seed)
    relative = workload.spec.xi_new_sweep[len(workload.spec.xi_new_sweep) // 2]
    absolute = workload.absolute_support(relative)
    headers = ["strategy", "ratio", "grouped_tuples", "groups", "mine_s", "patterns"]
    rows: list[list[object]] = []
    reference = None
    for name in STRATEGIES:
        compression = compress(workload.db, workload.old_patterns, name, seed=seed)
        run = timed(
            f"rp-{name}",
            lambda counters: mine_rp(compression.compressed, absolute, counters),
        )
        if reference is None:
            reference = run
        else:
            _check_same(reference, run, f"ablation {dataset}/{name}")
        rows.append(
            [
                name,
                compression.ratio,
                compression.compressed.grouped_tuple_count(),
                len(compression.compressed.groups),
                run.seconds,
                run.pattern_count,
            ]
        )
    return headers, rows


def ablation_single_group_shortcut(
    dataset: str, seed: int = 0
) -> tuple[list[str], list[list[object]]]:
    """Lemma 3.1 ablation: RP-Mine with and without the enumeration.

    Wall-clock differences are small at this scale (the shortcut trades
    recursive projections for subset enumeration), so the deterministic
    columns — shortcut firings and projections built — carry the story:
    disabling the lemma forces strictly more projected databases.
    """
    workload = prepare_workload(dataset, seed)
    headers = [
        "xi_new", "with_shortcut_s", "without_shortcut_s",
        "shortcut_fires", "projections_with", "projections_without",
    ]
    rows: list[list[object]] = []
    compressed = workload.compressions["mcp"].compressed
    for relative in workload.spec.xi_new_sweep:
        absolute = workload.absolute_support(relative)
        with_run = timed(
            "rp-shortcut",
            lambda counters: mine_rp(compressed, absolute, counters),
        )
        without_run = timed(
            "rp-no-shortcut",
            lambda counters: mine_rp(
                compressed, absolute, counters, single_group_shortcut=False
            ),
        )
        _check_same(with_run, without_run, f"shortcut ablation {dataset} xi={relative}")
        rows.append(
            [
                relative,
                with_run.seconds,
                without_run.seconds,
                with_run.counters.single_group_enumerations,
                with_run.counters.projections,
                without_run.counters.projections,
            ]
        )
    return headers, rows


def two_step_cold_start(
    dataset: str, seed: int = 0
) -> tuple[list[str], list[list[object]]]:
    """The paper's Observation-1 proposal, measured end to end.

    Cold-start mining at a low support, two ways: (a) directly with
    H-Mine; (b) mine at a high support first, compress with MCP, then
    mine the compressed database — the split the paper suggests
    exploring. Both totals include every phase."""
    workload = prepare_workload(dataset, seed)
    relative = workload.spec.xi_new_sweep[-1]
    absolute = workload.absolute_support(relative)
    headers = ["plan", "phase_1_s", "phase_2_s", "phase_3_s", "total_s", "patterns"]
    direct = run_baseline("hmine", workload.db, absolute)

    started = time.perf_counter()
    compression = compress(workload.db, workload.old_patterns, "mcp", seed=seed)
    compress_seconds = time.perf_counter() - started
    recycled = run_recycling("hmine", compression.compressed, absolute, "mcp")
    _check_same(direct, recycled, f"two-step {dataset}")
    rows: list[list[object]] = [
        ["direct", direct.seconds, 0.0, 0.0, direct.seconds, direct.pattern_count],
        [
            "two-step",
            workload.old_mining_seconds,
            compress_seconds,
            recycled.seconds,
            workload.old_mining_seconds + compress_seconds + recycled.seconds,
            recycled.pattern_count,
        ],
    ]
    return headers, rows


def miner_sweep(dataset: str, seed: int = 0) -> tuple[list[str], list[list[object]]]:
    """Every registered miner (both kinds, both backends) on one dataset.

    Iterates the miner registry rather than any hard-coded name list, so
    a newly registered miner shows up here with zero wiring. Baselines
    run on the raw database, recycling miners on the MCP-compressed one;
    every run is checked against the first for the correctness invariant.
    The brute-force oracle is skipped when transactions exceed its
    enumeration limit.
    """
    workload = prepare_workload(dataset, seed)
    relative = workload.spec.xi_new_sweep[len(workload.spec.xi_new_sweep) // 2]
    absolute = workload.absolute_support(relative)
    headers = [
        "miner", "kind", "backend", "memory_budget",
        "seconds", "work", "patterns",
    ]
    rows: list[list[object]] = []
    reference: MiningRun | None = None
    max_len = max((len(tx) for tx in workload.db), default=0)
    for spec in iter_miners():
        if spec.name == "bruteforce" and max_len > 20:
            continue
        if spec.kind == "condensed":
            run = run_condensed(spec.name, workload.db, absolute)
        elif spec.needs_compressed:
            run = run_recycling(spec.name, workload.compressions["mcp"].compressed,
                                absolute, "mcp")
        else:
            run = run_baseline(spec.name, workload.db, absolute)
        if reference is None:
            reference = run
        else:
            _check_same(reference, run, f"miner sweep {dataset}/{spec.kind}/{spec.name}")
        rows.append(
            [
                spec.name,
                spec.kind,
                spec.backend,
                "yes" if spec.supports_memory_budget else "-",
                run.seconds,
                _work(run),
                run.pattern_count,
            ]
        )
    return headers, rows


def grouped_kernel_benchmark(
    dataset: str, seed: int = 0
) -> tuple[list[str], list[list[object]]]:
    """Group-kernel backend comparison: python loops vs vertical bitmaps.

    Runs the shared Phase 2 kernel (:func:`mine_grouped`) over the
    MCP-compressed database with both backends at every sweep support.
    The result sets must be bit-identical — the backends differ only in
    how they count group members (tail scans vs one ``&`` + popcount per
    candidate), which is where dense data rewards the vertical layout.
    """
    workload = prepare_workload(dataset, seed)
    compressed = workload.compressions["mcp"].compressed
    headers = [
        "xi_new", "abs_sup", "patterns",
        "python_s", "bitset_s", "speedup",
        "shortcut_fires", "group_counts",
    ]
    rows: list[list[object]] = []
    for relative in workload.spec.xi_new_sweep:
        absolute = workload.absolute_support(relative)
        python_run = timed(
            "grouped-python",
            lambda counters: mine_grouped(
                compressed, absolute, counters, backend="python"
            ),
        )
        bitset_run = timed(
            "grouped-bitset",
            lambda counters: mine_grouped(
                compressed, absolute, counters, backend="bitset"
            ),
        )
        _check_same(python_run, bitset_run, f"grouped {dataset} xi={relative}")
        rows.append(
            [
                relative,
                absolute,
                python_run.pattern_count,
                python_run.seconds,
                bitset_run.seconds,
                speedup(python_run, bitset_run),
                bitset_run.counters.single_group_enumerations,
                bitset_run.counters.group_counts,
            ]
        )
    return headers, rows


def service_benchmark(
    dataset: str,
    seed: int = 0,
    tenants: int = 3,
    sweep: Sequence[float] | None = None,
) -> tuple[list[str], list[list[object]]]:
    """Warm-warehouse service vs cold mining on a multi-tenant sweep.

    Replays an interleaved workload — ``tenants`` users each requesting
    every support in the dataset's sweep, highest first — through a
    warehouse-backed :class:`~repro.service.MiningService`, and charges
    each request the machine-independent ``CostCounters.total_work()``.
    The cold column is what a warehouse-less platform pays: a full
    baseline mine per request (computed once per distinct support, since
    cold mining is deterministic). The first request at each new lowest
    support pays mine/recycle cost; every later tenant's request is a
    filter hit, which is where the warehouse's amortization shows up.
    """
    from repro.service import MineRequest, MiningService, PatternWarehouse

    workload = prepare_workload(dataset, seed)
    db = workload.db
    headers = [
        "tenant", "xi_new", "abs_sup", "path", "feedstock",
        "work_warm", "work_cold", "patterns",
    ]
    supports = sorted(
        sweep if sweep is not None else workload.spec.xi_new_sweep, reverse=True
    )
    cold_runs = {
        workload.absolute_support(rel): run_baseline(
            "hmine", db, workload.absolute_support(rel)
        )
        for rel in supports
    }
    rows: list[list[object]] = []
    total_warm = 0
    total_cold = 0
    warehouse = PatternWarehouse()
    with MiningService(warehouse=warehouse, max_workers=1) as service:
        for relative in supports:
            absolute = workload.absolute_support(relative)
            cold = cold_runs[absolute]
            for tenant_index in range(tenants):
                response = service.execute(
                    MineRequest(db=db, support=absolute, tenant=f"user-{tenant_index}")
                )
                if response.patterns != cold.patterns:
                    raise BenchmarkError(
                        f"service {dataset} xi={relative}: warm result disagreed "
                        f"with cold mining ({response.pattern_count} vs "
                        f"{cold.pattern_count} patterns)"
                    )
                warm_work = response.counters.total_work() if not response.coalesced else 0
                cold_work = _work(cold)
                total_warm += warm_work
                total_cold += cold_work
                rows.append(
                    [
                        response.tenant,
                        relative,
                        absolute,
                        response.path,
                        response.feedstock_support or "-",
                        warm_work,
                        cold_work,
                        response.pattern_count,
                    ]
                )
    rows.append(["TOTAL", "-", "-", "-", "-", total_warm, total_cold, "-"])
    return headers, rows


#: The four traffic scenarios the service-load bench compares. The first
#: pair isolates cross-request batching (same FIFO arrival order, merge
#: on/off); the second pair isolates admission control (same paced
#: backlog, priority+shedding on/off). Work counters are
#: machine-independent, so the deltas are CI-gateable.
SERVICE_LOAD_SCENARIOS = (
    "per-request",
    "batched",
    "no-admission",
    "admission",
)


def service_load_rows(
    dataset: str,
    seed: int = 0,
    requests: int = 32,
    tenants: int = 6,
    burst_length: int = 8,
    queue_depth: int = 8,
    pumps_per_burst: int = 4,
    sweep: Sequence[float] | None = None,
) -> list[dict[str, object]]:
    """Gateway load benchmark: throughput and tail latency per scenario.

    Replays one seeded heavy-traffic trace
    (:func:`repro.gateway.synthesize_traffic`: Zipfian tenants,
    support-ladder sessions, burst arrivals) through four gateway
    configurations over cold (warehouse-less) services, so the deltas
    isolate the gateway's own amortization from the warehouse's — on
    dense data a warm warehouse's staged recycling can beat one deep
    mine outright (the paper's thesis), which would confound the
    batching comparison this bench exists to make:

    * ``per-request`` / ``batched`` — every burst queues, then drains
      fully; the only difference is cross-request batching. The work
      delta is batching's amortization: one mine at the burst-minimum
      support versus a mine-or-recycle per distinct support.
    * ``no-admission`` / ``admission`` — bursts arrive faster than the
      gateway pumps (``pumps_per_burst`` < ``burst_length``), so a
      backlog builds. ``no-admission`` is the naive front end: FIFO,
      unbounded queue, everything eventually served. ``admission`` is
      the gateway doing its job: priority lanes, a depth bound of
      ``queue_depth``, lowest-priority work shed under pressure.
      Batching is off in both so the latency comparison isolates
      scheduling and shedding.

    Latency rows carry both bases: wall seconds (machine-dependent,
    advisory) and **work position** — the gateway's cumulative
    machine-independent work counter at resolution — which is what the
    acceptance bars gate on. Every served response is verified
    bit-identical to a cold from-scratch mine before it counts.
    """
    from repro.data.datasets import get_dataset
    from repro.gateway import (
        GatewayConfig,
        MiningGateway,
        TrafficConfig,
        bursts,
        synthesize_traffic,
    )
    from repro.service import MiningService

    spec = get_dataset(dataset)
    db = spec.load(seed)
    points = sweep if sweep is not None else spec.xi_new_sweep
    supports = sorted(
        {db.relative_to_absolute(rel) for rel in points}, reverse=True
    )
    trace = synthesize_traffic(
        db,
        supports,
        TrafficConfig(
            requests=requests,
            tenants=tenants,
            seed=seed * 7919 + 13,
            burst_length=burst_length,
            deadline_fraction=0.0,
        ),
    )
    arrival_bursts = bursts(trace, gap_threshold_seconds=0.01)
    expected = {
        support: run_baseline("hmine", db, support).patterns
        for support in supports
    }

    configs = {
        "per-request": GatewayConfig(batching=False, fifo=True),
        "batched": GatewayConfig(batching=True, fifo=True),
        "no-admission": GatewayConfig(batching=False, fifo=True),
        "admission": GatewayConfig(
            batching=False, max_queue_depth=queue_depth, shed_on_full=True
        ),
    }
    #: The drain-fully pair vs the paced-backlog pair.
    paced = {"no-admission", "admission"}

    rows: list[dict[str, object]] = []
    for scenario in SERVICE_LOAD_SCENARIOS:
        config = configs[scenario]
        started = time.perf_counter()
        with MiningService(
            warehouse=None, max_workers=1
        ) as service:
            gateway = MiningGateway(service, config, start=False)
            futures = []
            for burst in arrival_bursts:
                futures.extend(gateway.submit(req) for req in burst)
                if scenario in paced:
                    for _ in range(pumps_per_burst):
                        gateway.pump_once()
                else:
                    gateway.drain()
            gateway.drain()
            elapsed = time.perf_counter() - started
            served = 0
            for future in futures:
                outcome = future.result()
                if outcome.status != "served":
                    continue
                served += 1
                support = outcome.gateway_request.request.absolute_support()
                if outcome.patterns != expected[support]:
                    raise BenchmarkError(
                        f"service-load {dataset} [{scenario}] support="
                        f"{support}: gateway result disagreed with cold "
                        "mining"
                    )
            stats = gateway.stats
            computations = service.stats.computations
            gateway.close()
        rows.append(
            {
                "dataset": dataset,
                "scenario": scenario,
                "requests": len(futures),
                "served": served,
                "shed": stats.shed,
                "rejected": stats.rejected,
                "expired": stats.expired,
                "computations": computations,
                "merged_batches": stats.merged_batches,
                "queue_high_water": stats.queue_high_water,
                "total_work": stats.work_executed,
                "work_per_served": (
                    stats.work_executed / served if served else 0.0
                ),
                "interactive_p50_work": stats.work_quantile(
                    "interactive", 0.50
                ),
                "interactive_p99_work": stats.work_quantile(
                    "interactive", 0.99
                ),
                "standard_p99_work": stats.work_quantile("standard", 0.99),
                "interactive_p99_s": stats.latency_quantile(
                    "interactive", 0.99
                ),
                "elapsed_seconds": elapsed,
            }
        )
    return rows


def service_load_benchmark(
    dataset: str, seed: int = 0
) -> tuple[list[str], list[list[object]]]:
    """CLI-report wrapper around :func:`service_load_rows`."""
    headers = [
        "scenario", "served", "shed", "rejected", "computations",
        "queue_HWM", "total_work", "work_per_served",
        "int_p99_work", "int_p99_s", "seconds",
    ]
    rows = [
        [
            row["scenario"],
            row["served"],
            row["shed"],
            row["rejected"],
            row["computations"],
            row["queue_high_water"],
            row["total_work"],
            round(float(row["work_per_served"]), 1),
            row["interactive_p99_work"],
            row["interactive_p99_s"],
            row["elapsed_seconds"],
        ]
        for row in service_load_rows(dataset, seed)
    ]
    return headers, rows


#: Byte budget the warehouse bench charges every representation against.
#: Sized so a dense dataset's condensed entries all fit while its
#: full-set entries are too large to bank — the regime where the
#: condensed warehouse earns its warm-path hit rate.
DEFAULT_WAREHOUSE_BUDGET = 8 * 1024


def warehouse_rows(
    dataset: str,
    seed: int = 0,
    tenants: int = 3,
    byte_budget: int = DEFAULT_WAREHOUSE_BUDGET,
    representations: Sequence[str] | None = None,
) -> list[dict[str, object]]:
    """Warehouse footprint and warm-path hit rate per representation.

    Replays the same interleaved multi-tenant sweep as
    :func:`service_benchmark` once per pattern representation, every run
    against an identically budgeted warehouse. Every response is checked
    bit-identical to a cold from-scratch mine before it counts. A request
    is a *warm hit* when the warehouse served it (the ``filter`` or
    ``recycle`` path); ``mine`` means the platform paid full price. The
    row also carries the warehouse's closing footprint — entries, stored
    bytes, bytes per entry, and the condensation ratio (what the same
    entries would cost as full sets, over what they actually cost) — so
    the before/after of condensation is read straight off the ``full``
    row versus the ``closed``/``ndi`` rows.
    """
    from repro.data.patterns import REPRESENTATIONS
    from repro.service import MineRequest, MiningService, PatternWarehouse

    workload = prepare_workload(dataset, seed)
    db = workload.db
    supports = sorted(workload.spec.xi_new_sweep, reverse=True)
    cold_runs = {
        workload.absolute_support(rel): run_baseline(
            "hmine", db, workload.absolute_support(rel)
        )
        for rel in supports
    }
    rows: list[dict[str, object]] = []
    for representation in representations or REPRESENTATIONS:
        warehouse = PatternWarehouse(
            byte_budget=byte_budget, representation=representation
        )
        requests = 0
        warm_hits = 0
        total_work = 0
        with MiningService(warehouse=warehouse, max_workers=1) as service:
            for relative in supports:
                absolute = workload.absolute_support(relative)
                cold = cold_runs[absolute]
                for tenant_index in range(tenants):
                    response = service.execute(
                        MineRequest(
                            db=db, support=absolute, tenant=f"user-{tenant_index}"
                        )
                    )
                    if response.patterns != cold.patterns:
                        raise BenchmarkError(
                            f"warehouse {dataset}/{representation} xi={relative}: "
                            f"warm result disagreed with cold mining"
                        )
                    requests += 1
                    if response.path in ("filter", "recycle"):
                        warm_hits += 1
                    if not response.coalesced:
                        total_work += response.counters.total_work()
        stats = warehouse.stats()
        entries = stats["entries"]
        rows.append(
            {
                "dataset": dataset,
                "representation": representation,
                "byte_budget": byte_budget,
                "requests": requests,
                "warm_hits": warm_hits,
                "warm_hit_rate": round(warm_hits / requests, 4) if requests else 0.0,
                "work": total_work,
                "entries": entries,
                "stored_bytes": stats["stored_bytes"],
                "bytes_per_entry": (
                    round(stats["stored_bytes"] / entries, 1) if entries else 0.0
                ),
                "full_bytes": stats["full_bytes"],
                "condensation_ratio": round(warehouse.condensation_ratio(), 2),
                "evictions": stats["evictions"],
                "rejections": stats["rejections"],
            }
        )
    return rows


def warehouse_benchmark(
    dataset: str, seed: int = 0
) -> tuple[list[str], list[list[object]]]:
    """CLI-report wrapper around :func:`warehouse_rows`."""
    headers = [
        "repr", "warm_hits", "requests", "hit_rate", "work",
        "entries", "stored_B", "B_per_entry", "ratio", "rejections",
    ]
    rows = [
        [
            row["representation"],
            row["warm_hits"],
            row["requests"],
            row["warm_hit_rate"],
            row["work"],
            row["entries"],
            row["stored_bytes"],
            row["bytes_per_entry"],
            row["condensation_ratio"],
            row["rejections"],
        ]
        for row in warehouse_rows(dataset, seed)
    ]
    return headers, rows


def parallel_speedup_rows(
    dataset: str,
    seed: int = 0,
    jobs_grid: Sequence[int] = (1, 2, 4),
    task: str = "recycle",
    scale: int = 1,
    executor: str | None = None,
) -> list[dict[str, object]]:
    """Speedup-vs-jobs curve for the sharded engine on one dataset.

    Each row times a full request (Phase 1 compression where the task
    recycles + shard pass + merge recount) at the dataset's middle sweep
    support and checks the result bit-identical to the serial ``jobs=1``
    run. ``task`` selects warm recycling (``"recycle"``, native size) or
    cold scratch mining (``"mine"``); for the latter ``scale`` replicates
    the database so the row-dependent mining cost dominates the
    per-pattern constants, the regime the paper's full-size datasets
    (30–60x these surrogates) live in.

    Two timings are reported: measured wall-clock, and the critical path
    (Phase 1 + slowest shard + merge) — what an ideally parallel host
    would pay. ``speedup`` uses whichever basis the machine can honestly
    deliver: wall-clock through the real process pool when there are at
    least ``jobs`` CPUs; otherwise the critical path from the *inline*
    executor, whose sequential shard timings are free of the CPU
    contention that inflates concurrent workers sharing one core.
    """
    import os

    from repro.data.transactions import TransactionDatabase
    from repro.parallel import ParallelEngine

    if task not in ("recycle", "mine"):
        raise BenchmarkError(f"unknown parallel task {task!r}")
    cpus = os.cpu_count() or 1
    if executor is None:
        executor = "process" if cpus >= max(jobs_grid) else "inline"
    workload = prepare_workload(dataset, seed)
    db = workload.db
    xi_new = workload.spec.xi_new_sweep[len(workload.spec.xi_new_sweep) // 2]
    absolute = workload.absolute_support(xi_new)
    if scale > 1:
        db = TransactionDatabase(list(db) * scale)
        absolute *= scale
    rows: list[dict[str, object]] = []
    reference = None
    serial_seconds = 0.0
    for jobs in jobs_grid:
        engine = ParallelEngine(jobs, executor=executor)
        if task == "recycle":
            outcome = engine.recycle_mine(
                db, workload.old_patterns, absolute, algorithm="hmine"
            )
        else:
            outcome = engine.mine(db, absolute, algorithm="hmine")
        if outcome.fallback:
            raise BenchmarkError(
                f"parallel {dataset} jobs={jobs} fell back: "
                f"{outcome.fallback_reason}"
            )
        if reference is None:
            reference = outcome.patterns
            serial_seconds = outcome.elapsed_seconds
        identical = outcome.patterns == reference
        if not identical:
            raise BenchmarkError(
                f"parallel {dataset} jobs={jobs} diverged from serial "
                f"({len(outcome.patterns)} vs {len(reference)} patterns)"
            )
        basis = (
            "wall"
            if (jobs == 1 or (executor == "process" and cpus >= jobs))
            else "critical_path"
        )
        effective = (
            outcome.elapsed_seconds if basis == "wall"
            else outcome.critical_path_seconds
        )
        rows.append(
            {
                "dataset": dataset,
                "task": task,
                "scale": scale,
                "transactions": len(db),
                "xi_new": xi_new,
                "abs_support": absolute,
                "jobs": jobs,
                "shards": len(outcome.shards),
                "patterns": len(outcome.patterns),
                "executor": executor,
                "wall_seconds": round(outcome.elapsed_seconds, 4),
                "critical_path_seconds": round(outcome.critical_path_seconds, 4),
                "speedup_basis": basis,
                "cpus": cpus,
                "speedup": round(serial_seconds / effective, 2) if effective else 0.0,
                "identical": identical,
            }
        )
    return rows


def parallel_benchmark(
    dataset: str, seed: int = 0
) -> tuple[list[str], list[list[object]]]:
    """CLI-report wrapper around :func:`parallel_speedup_rows`."""
    headers = [
        "jobs", "shards", "wall_s", "critical_s", "basis", "speedup", "patterns",
    ]
    rows = [
        [
            row["jobs"],
            row["shards"],
            row["wall_seconds"],
            row["critical_path_seconds"],
            row["speedup_basis"],
            row["speedup"],
            row["patterns"],
        ]
        for row in parallel_speedup_rows(dataset, seed)
    ]
    return headers, rows


#: Delta sizes (fraction of the base database appended) swept by the
#: incremental experiment: from warehouse-refresh-sized trickles to a
#: bulk load where re-mining should win.
INCREMENTAL_CHURNS: tuple[float, ...] = (0.01, 0.02, 0.05, 0.1, 0.2, 0.5)


def incremental_rows(
    dataset: str,
    seed: int = 0,
    churns: Sequence[float] | None = None,
) -> list[dict[str, object]]:
    """Update-path economics: FUP vs recycle-update vs scratch per churn.

    For each churn level an insert-only delta of ``churn * |db|``
    transactions (drawn cyclically from the base database, so the
    distribution is preserved and the sweep is deterministic) is applied
    at *constant relative support* — the threshold grows with the
    database, FUP's home-turf precondition. Three contenders re-derive
    the post-update pattern set:

    * **scratch** — H-Mine on the grown database (the cold baseline);
    * **fup** — :func:`~repro.core.fup.fup_update_delta`, scanning only
      the increment for surviving patterns and holding newcomers to the
      delta threshold — run only when :func:`~repro.core.fup.
      fup_applicable` certifies the feedstock/threshold pair (``fup_work
      = None`` otherwise, mirroring how the planner would refuse the
      mode);
    * **recycle** — :func:`~repro.core.incremental.incremental_mine`,
      compressing the grown database with the old patterns and running
      a recycling miner.

    Every contender is checked bit-identical to scratch before it
    counts. Both machine-independent work (``CostCounters.total_work``)
    and wall seconds are recorded; the ``winner`` column is decided on
    work. Each row also replays the same update through a warehoused
    :class:`~repro.service.MiningService` with the version chain
    attached and reports whether the service actually served the
    post-delta request on the ``update`` path.
    """
    from repro.core.fup import fup_applicable, fup_update_delta
    from repro.core.incremental import incremental_mine
    from repro.data.versioned import DatabaseDelta, VersionedDatabase
    from repro.metrics.counters import CostCounters
    from repro.mining.hmine import mine_hmine
    from repro.service import MineRequest, MiningService, PatternWarehouse

    workload = prepare_workload(dataset, seed)
    db = workload.db
    old_support = workload.xi_old_absolute
    old_patterns = workload.old_patterns
    base_rows = db.transactions
    rows: list[dict[str, object]] = []
    for churn in churns or INCREMENTAL_CHURNS:
        delta_size = max(1, int(churn * len(db)))
        appended = tuple(
            base_rows[index % len(base_rows)] for index in range(delta_size)
        )
        delta = DatabaseDelta.append(appended)
        v0 = VersionedDatabase.initial(db)
        v1 = v0.apply(delta)
        new_db = v1.db
        # Constant relative support: the threshold the feedstock was
        # mined at, rescaled to the grown database.
        new_support = max(1, int(workload.spec.xi_old * len(new_db)))

        scratch_counters = CostCounters()
        started = time.perf_counter()
        scratch = mine_hmine(new_db, new_support, scratch_counters)
        scratch_wall = time.perf_counter() - started

        works: dict[str, int] = {"scratch": scratch_counters.total_work()}
        fup_wall: float | None = None
        if fup_applicable(delta, old_support, new_support, len(db)):
            fup_counters = CostCounters()
            started = time.perf_counter()
            fup = fup_update_delta(
                db, delta, old_patterns, new_support, fup_counters
            )
            fup_wall = round(time.perf_counter() - started, 4)
            if fup != scratch:
                raise BenchmarkError(
                    f"incremental {dataset} churn={churn}: "
                    "FUP disagreed with scratch"
                )
            works["fup"] = fup_counters.total_work()

        recycle_counters = CostCounters()
        started = time.perf_counter()
        recycled = incremental_mine(
            new_db, old_patterns, new_support, counters=recycle_counters
        )
        recycle_wall = time.perf_counter() - started
        if recycled != scratch:
            raise BenchmarkError(
                f"incremental {dataset} churn={churn}: "
                "recycle-update disagreed with scratch"
            )
        works["recycle"] = recycle_counters.total_work()
        winner = min(works, key=works.get)

        update_hits = 0
        with MiningService(warehouse=PatternWarehouse()) as service:
            service.execute(MineRequest(db=db, support=old_support, version=v0))
            response = service.execute(
                MineRequest(db=new_db, support=new_support, version=v1)
            )
            if response.patterns != scratch:
                raise BenchmarkError(
                    f"incremental {dataset} churn={churn}: "
                    "service update path disagreed with scratch"
                )
            if response.path == "update":
                update_hits += 1
        rows.append(
            {
                "dataset": dataset,
                "churn": churn,
                "delta_rows": delta_size,
                "old_support": old_support,
                "new_support": new_support,
                "patterns": len(scratch),
                "scratch_work": works["scratch"],
                "scratch_wall_s": round(scratch_wall, 4),
                "fup_work": works.get("fup"),
                "fup_wall_s": fup_wall,
                "recycle_work": works["recycle"],
                "recycle_wall_s": round(recycle_wall, 4),
                "winner": winner,
                "update_path_hits": update_hits,
                "update_path_requests": 1,
            }
        )
    return rows


def incremental_crossover(rows: Sequence[dict[str, object]]) -> float | None:
    """The smallest swept churn at which scratch mining wins on work.

    ``None`` when the update path won everywhere — an honest record
    either way, written into ``BENCH_incremental.json``.
    """
    for row in sorted(rows, key=lambda r: r["churn"]):
        if row["winner"] == "scratch":
            return float(row["churn"])
    return None


def incremental_benchmark(
    dataset: str, seed: int = 0
) -> tuple[list[str], list[list[object]]]:
    """CLI-report wrapper around :func:`incremental_rows`."""
    headers = [
        "churn", "delta_rows", "patterns", "scratch_work", "fup_work",
        "recycle_work", "winner", "scratch_s", "fup_s", "recycle_s", "update_hit",
    ]
    rows = [
        [
            row["churn"],
            row["delta_rows"],
            row["patterns"],
            row["scratch_work"],
            row["fup_work"] if row["fup_work"] is not None else "n/a",
            row["recycle_work"],
            row["winner"],
            row["scratch_wall_s"],
            row["fup_wall_s"] if row["fup_wall_s"] is not None else "n/a",
            row["recycle_wall_s"],
            f"{row['update_path_hits']}/{row['update_path_requests']}",
        ]
        for row in incremental_rows(dataset, seed)
    ]
    return headers, rows


def run_experiment(name: str, seed: int = 0) -> tuple[list[str], list[list[object]]]:
    """Dispatch an experiment by CLI-friendly name."""
    if name == "table3":
        return table3(seed)
    if name.startswith("fig"):
        number = int(name[3:])
        if number in FIGURES:
            return figure(number, seed)
        if number in MEMORY_FIGURES:
            return memory_limited_figure(number, seed)
        raise BenchmarkError(f"unknown figure {number}")
    if name == "observations":
        return observations(seed)
    if name.startswith("ablation-strategies-"):
        return ablation_strategies(name.rsplit("-", 1)[1], seed)
    if name.startswith("ablation-shortcut-"):
        return ablation_single_group_shortcut(name.rsplit("-", 1)[1], seed)
    if name.startswith("two-step-"):
        return two_step_cold_start(name.rsplit("-", 1)[1], seed)
    if name.startswith("miners-"):
        return miner_sweep(name.split("-", 1)[1], seed)
    if name.startswith("service-load-"):
        return service_load_benchmark(name.split("-", 2)[2], seed)
    if name.startswith("service-"):
        return service_benchmark(name.split("-", 1)[1], seed)
    if name.startswith("warehouse-"):
        return warehouse_benchmark(name.split("-", 1)[1], seed)
    if name.startswith("grouped-"):
        return grouped_kernel_benchmark(name.split("-", 1)[1], seed)
    if name.startswith("parallel-"):
        return parallel_benchmark(name.split("-", 1)[1], seed)
    if name.startswith("incremental-"):
        return incremental_benchmark(name.split("-", 1)[1], seed)
    raise BenchmarkError(
        f"unknown experiment {name!r} — try table3, fig9..fig24, observations, "
        "ablation-strategies-<dataset>, ablation-shortcut-<dataset>, "
        "two-step-<dataset>, miners-<dataset>, service-<dataset>, "
        "service-load-<dataset>, warehouse-<dataset>, grouped-<dataset>, "
        "parallel-<dataset>, incremental-<dataset>"
    )
