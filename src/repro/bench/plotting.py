"""ASCII line charts for experiment series.

The paper's Figures 9–24 are runtime-vs-support line charts; the
benchmarks print their underlying tables, and this module renders the
same series as terminal plots so a figure can be eyeballed without
leaving the shell (``repro plot --figure 15``). Pure text, no plotting
dependency.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import BenchmarkError

_MARKERS = "ox+*#@%&"


def render_chart(
    x_values: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 64,
    height: int = 18,
    title: str = "",
    log_y: bool = False,
    y_label: str = "seconds",
) -> str:
    """Render named series over shared x positions as an ASCII chart.

    ``x_values`` are plotted in the order given, evenly spaced (support
    sweeps are ordinal, matching the paper's figures); ``log_y=True``
    uses a log-scaled y axis like the paper's dense-dataset figures.
    """
    if not x_values:
        raise BenchmarkError("nothing to plot: empty x values")
    if not series:
        raise BenchmarkError("nothing to plot: no series")
    for name, values in series.items():
        if len(values) != len(x_values):
            raise BenchmarkError(
                f"series {name!r} has {len(values)} points for {len(x_values)} x values"
            )
        if log_y and any(v <= 0 for v in values):
            raise BenchmarkError(f"series {name!r} has non-positive values on a log axis")

    def transform(value: float) -> float:
        return math.log10(value) if log_y else value

    flat = [transform(v) for values in series.values() for v in values]
    lo, hi = min(flat), max(flat)
    if hi == lo:
        hi = lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    columns = [
        int(round(i * (width - 1) / max(1, len(x_values) - 1)))
        for i in range(len(x_values))
    ]
    for index, (name, values) in enumerate(sorted(series.items())):
        marker = _MARKERS[index % len(_MARKERS)]
        for point, value in enumerate(values):
            row = height - 1 - int(
                round((transform(value) - lo) / (hi - lo) * (height - 1))
            )
            grid[row][columns[point]] = marker

    def y_tick(row: int) -> str:
        value = lo + (height - 1 - row) / (height - 1) * (hi - lo)
        if log_y:
            value = 10**value
        return f"{value:8.3g}"

    lines = []
    if title:
        lines.append(title)
    axis_note = f"{y_label}, log scale" if log_y else y_label
    lines.append(f"({axis_note})")
    for row in range(height):
        prefix = y_tick(row) if row % 4 == 0 or row == height - 1 else " " * 8
        lines.append(f"{prefix} |{''.join(grid[row])}")
    x_axis = " " * 8 + " +" + "-" * width
    lines.append(x_axis)
    labels = " ".join(f"{x:g}" for x in x_values)
    lines.append(" " * 10 + labels)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}"
        for i, name in enumerate(sorted(series))
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def chart_from_figure_rows(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str, log_y: bool
) -> str:
    """Build the three-series chart for a Figure 9–20 table."""
    x_values = [float(row[0]) for row in rows]
    series = {
        headers[3]: [float(row[3]) for row in rows],
        headers[4]: [float(row[4]) for row in rows],
        headers[5]: [float(row[5]) for row in rows],
    }
    return render_chart(x_values, series, title=title, log_y=log_y)
