"""Timed, counted execution of miners for the experiment harness."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.core.groups import GroupedDatabase
from repro.data.transactions import TransactionDatabase
from repro.errors import BenchmarkError, MiningError, RecycleError
from repro.metrics.counters import CostCounters
from repro.mining.patterns import PatternSet
from repro.mining.registry import get_miner


@dataclass(frozen=True)
class MiningRun:
    """One measured mining execution."""

    label: str
    seconds: float
    patterns: PatternSet
    counters: CostCounters

    @property
    def pattern_count(self) -> int:
        return len(self.patterns)


def timed(label: str, fn: Callable[[CostCounters], PatternSet]) -> MiningRun:
    """Run ``fn`` once with fresh counters, timing it."""
    counters = CostCounters()
    started = time.perf_counter()
    patterns = fn(counters)
    elapsed = time.perf_counter() - started
    return MiningRun(label=label, seconds=elapsed, patterns=patterns, counters=counters)


def run_baseline(
    algorithm: str, db: TransactionDatabase, min_support: int
) -> MiningRun:
    """Time a non-recycling miner (resolved through the registry)."""
    try:
        spec = get_miner(algorithm, kind="baseline")
    except MiningError as exc:
        raise BenchmarkError(str(exc)) from None
    return timed(algorithm, lambda counters: spec.fn(db, min_support, counters))


def run_condensed(
    algorithm: str, db: TransactionDatabase, min_support: int
) -> MiningRun:
    """Time a condensed miner, expansion included.

    The sweep compares miners on producing the exact frequent set, so
    the lossless ``expand()`` rides inside the timer — a condensed
    miner's headline win is footprint, not wall-clock, and charging the
    expansion keeps the correctness cross-check honest.
    """
    try:
        spec = get_miner(algorithm, kind="condensed")
    except (MiningError, RecycleError) as exc:
        raise BenchmarkError(str(exc)) from None
    return timed(
        algorithm,
        lambda counters: spec.fn(db, min_support, counters).expand(),
    )


def run_recycling(
    algorithm: str,
    compressed: GroupedDatabase,
    min_support: int,
    strategy_label: str,
) -> MiningRun:
    """Time a recycling miner over an already-compressed database.

    Compression is excluded on purpose: the paper charges it separately
    (Table 3) because it is shared across the whole sweep and can be
    pipelined into the previous round's projection. Dispatch goes through
    :meth:`MinerSpec.mine` so the registry's capability flags (group
    coercion) apply uniformly.
    """
    try:
        spec = get_miner(algorithm, kind="recycling")
    except (MiningError, RecycleError) as exc:
        raise BenchmarkError(str(exc)) from None
    label = f"{algorithm}-{strategy_label}"
    return timed(label, lambda counters: spec.mine(compressed, min_support, counters))


def speedup(baseline: MiningRun, candidate: MiningRun) -> float:
    """Wall-clock ratio baseline/candidate (>1 means the candidate wins)."""
    if candidate.seconds <= 0:
        return float("inf")
    return baseline.seconds / candidate.seconds
