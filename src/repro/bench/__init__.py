"""Benchmark harness regenerating the paper's tables and figures."""

from repro.bench.experiments import (
    FIGURES,
    MEMORY_FIGURES,
    ablation_single_group_shortcut,
    ablation_strategies,
    figure,
    figure_series,
    memory_limited_figure,
    miner_sweep,
    observations,
    run_experiment,
    table3,
    two_step_cold_start,
)
from repro.bench.plotting import chart_from_figure_rows, render_chart
from repro.bench.report import format_table, render_report
from repro.bench.runner import (
    MiningRun,
    run_baseline,
    run_condensed,
    run_recycling,
    speedup,
    timed,
)
from repro.bench.workloads import Workload, prepare_workload

__all__ = [
    "FIGURES",
    "MEMORY_FIGURES",
    "MiningRun",
    "Workload",
    "ablation_single_group_shortcut",
    "ablation_strategies",
    "chart_from_figure_rows",
    "figure",
    "figure_series",
    "format_table",
    "memory_limited_figure",
    "miner_sweep",
    "observations",
    "prepare_workload",
    "render_chart",
    "render_report",
    "run_baseline",
    "run_condensed",
    "run_experiment",
    "run_recycling",
    "speedup",
    "table3",
    "timed",
    "two_step_cold_start",
]
