"""Deterministic cost accounting for mining runs.

Pure-Python wall-clock numbers are noisy and roughly two orders of
magnitude above the paper's 2004 C++ numbers, so every experiment in this
reproduction also reports *operation counts* — a machine-independent cost
model. The quantities mirror where the paper says the work goes
(Section 3.1): support counting and projected-database construction.

Miners accumulate counts locally (plain ints in hot loops) and flush them
into a :class:`CostCounters` at phase boundaries, so accounting adds no
per-item overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class CostCounters:
    """Operation counts for one mining (or compression) run.

    Attributes
    ----------
    item_visits:
        Individual item occurrences touched while counting supports. This
        is the quantity group counts amortize: scanning a group header
        once instead of its tuples one by one.
    tuple_scans:
        Transactions (or group tails) examined.
    group_counts:
        Times a whole group was accounted for via its count in one step —
        the recycling saving, visible only in recycling miners.
    projections:
        Projected databases constructed.
    single_group_enumerations:
        Uses of the Lemma 3.1 shortcut (enumerate a group's power set).
    patterns_emitted:
        Frequent patterns produced.
    containment_checks:
        Pattern-containment tests during compression.
    disk_reads / disk_writes / bytes_read / bytes_written:
        Simulated I/O from :mod:`repro.storage` (memory-limited mining).
    """

    item_visits: int = 0
    tuple_scans: int = 0
    group_counts: int = 0
    projections: int = 0
    single_group_enumerations: int = 0
    patterns_emitted: int = 0
    containment_checks: int = 0
    disk_reads: int = 0
    disk_writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    _extra: dict[str, int] = field(default_factory=dict, repr=False)

    def add(self, name: str, amount: int = 1) -> None:
        """Bump a counter by name (standard field or ad-hoc extra).

        Only true dataclass fields take the attribute fast path;
        anything else (including names that collide with methods like
        ``merge``) lands in ``_extra`` instead of clobbering a bound
        method.
        """
        if name in _COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + amount)
        else:
            self._extra[name] = self._extra.get(name, 0) + amount

    def merge(self, other: "CostCounters") -> None:
        """Accumulate another run's counts into this one."""
        for f in fields(self):
            if f.name == "_extra":
                continue
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        for name, amount in other._extra.items():
            self._extra[name] = self._extra.get(name, 0) + amount

    def total_work(self) -> int:
        """A single scalar proxy for CPU cost (visits + scans + projections)."""
        return self.item_visits + self.tuple_scans + self.projections

    def total_io(self) -> int:
        """A single scalar proxy for I/O cost (bytes moved)."""
        return self.bytes_read + self.bytes_written

    def as_dict(self) -> dict[str, int]:
        """All counters (standard and extra) as a plain dict."""
        result = {
            f.name: getattr(self, f.name) for f in fields(self) if f.name != "_extra"
        }
        result.update(self._extra)
        return result

    def reset(self) -> None:
        """Zero every counter."""
        for f in fields(self):
            if f.name == "_extra":
                continue
            setattr(self, f.name, 0)
        self._extra.clear()


#: Names eligible for the attribute fast path in :meth:`CostCounters.add`.
_COUNTER_FIELDS = frozenset(
    f.name for f in fields(CostCounters) if f.name != "_extra"
)
