"""Machine-independent cost accounting for experiments."""

from repro.metrics.counters import CostCounters
from repro.metrics.reservoir import DEFAULT_RESERVOIR_CAPACITY, LatencyReservoir

__all__ = ["CostCounters", "DEFAULT_RESERVOIR_CAPACITY", "LatencyReservoir"]
