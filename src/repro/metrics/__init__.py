"""Machine-independent cost accounting for experiments."""

from repro.metrics.counters import CostCounters

__all__ = ["CostCounters"]
