"""Bounded, deterministic quantile estimation for long-running services.

A service that records every latency in a plain list grows without limit
— after a few million requests the "statistics" are the memory leak.
:class:`LatencyReservoir` is the standard fix: Vitter's Algorithm R
reservoir sampling over a fixed-size buffer, so memory is ``O(capacity)``
forever while every observation ever recorded had an equal chance of
being in the sample. Quantiles read off the sorted sample.

Two deliberate properties:

* **Deterministic.** The replacement RNG is seeded from the capacity at
  construction, so the same observation sequence always yields the same
  sample — service stats stay reproducible, which the benchmark
  acceptance gates rely on.
* **Exact until full.** While fewer than ``capacity`` values have been
  recorded the sample *is* the population, so small test workloads see
  exact quantiles and nothing changes for existing callers.
"""

from __future__ import annotations

import random

#: Default sample size: large enough that p99 over the sample tracks the
#: population p99 closely, small enough to be memory-irrelevant.
DEFAULT_RESERVOIR_CAPACITY = 2048


class LatencyReservoir:
    """A fixed-size uniform sample of a value stream, with quantiles.

    Not thread-safe — callers that share one (``ServiceStats``, the
    gateway's per-class histograms) hold their own lock around
    :meth:`add` / :meth:`quantile`, exactly as they did for the
    unbounded list this replaces.
    """

    def __init__(self, capacity: int = DEFAULT_RESERVOIR_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.count = 0  # observations ever recorded, not just retained
        self._sample: list[float] = []
        # Seeded from the capacity so two reservoirs with the same shape
        # fed the same stream retain the same sample.
        self._rng = random.Random(capacity * 0x5EED + 1)

    def add(self, value: float) -> None:
        """Record one observation (kept with probability capacity/count)."""
        self.count += 1
        if len(self._sample) < self.capacity:
            self._sample.append(value)
            return
        slot = self._rng.randrange(self.count)
        if slot < self.capacity:
            self._sample[slot] = value

    def quantile(self, q: float) -> float:
        """The q-quantile (0 < q <= 1) of the sample (0.0 when empty).

        Uses the same nearest-rank convention the service's quantiles
        always used: the element at ``round(q * n) - 1`` of the sorted
        sample, clamped to its bounds.
        """
        if not self._sample:
            return 0.0
        ordered = sorted(self._sample)
        index = max(0, min(len(ordered) - 1, round(q * len(ordered)) - 1))
        return ordered[index]

    def __len__(self) -> int:
        """Values currently retained (== count until the buffer fills)."""
        return len(self._sample)

    def values(self) -> list[float]:
        """A copy of the retained sample (unsorted, arrival-biased order)."""
        return list(self._sample)
