"""The async high-throughput gateway in front of :class:`MiningService`.

``MiningService`` is a synchronous worker pool: every submission goes
straight into the pool's FIFO, saturation queues silently, and only
byte-identical requests share work. :class:`MiningGateway` is the
traffic-management layer the "millions of users" north star needs in
front of it:

* **Priority queueing with deadlines** — submissions wait in a
  :class:`~repro.gateway.queueing.PriorityRequestQueue` (interactive >
  standard > batch); a request whose deadline elapses in queue is
  rejected with a structured ``deadline_expired`` degradation instead
  of mining stale work.
* **Admission control / backpressure** — a bounded queue depth; at the
  bound, an arriving request either sheds the youngest lowest-priority
  queued entry (when it outranks it) or is itself rejected
  (``queue_full``). Both outcomes are structured
  :class:`~repro.gateway.request.GatewayResponse`\\ s, counted in
  :class:`~repro.gateway.stats.GatewayStats`, never silent.
* **Cross-request batching** — at dispatch, every queued request
  compatible with the dequeued leader (same database fingerprint,
  algorithm, strategy, backend, jobs) joins one
  :class:`~repro.gateway.batching.BatchPlan`: mine once at the group's
  minimum support, serve each member exactly via ``filter_min_support``.
* **Per-tenant fairness** — weighted deficit-round-robin dequeue inside
  each priority class, so one hot tenant cannot starve the rest.

Two execution modes share all of that logic:

* **Auto mode** (default): a dispatcher thread pulls plans from the
  queue and fans them out through ``service.submit`` asynchronously,
  with at most ``max_inflight`` computations outstanding — the
  backpressure signal that makes the queue (and therefore admission
  control) real when the pool saturates. ``submit`` returns a
  ``concurrent.futures.Future``; ``submit_async`` awaits the same
  future on an asyncio loop, making the gateway a drop-in async front
  end over the thread pool (the hybrid async-over-pool design).
* **Manual mode** (``start=False``): nothing runs until the caller
  pumps (:meth:`pump_once` / :meth:`drain`). Dispatch order is then a
  pure function of the submission sequence and the injected clock,
  which is what the deterministic load benchmark and the chaos tests
  replay.

Whatever the mode and whatever the path — batched, coalesced, degraded
to serial, retried — a *served* response is bit-identical to the same
request executed synchronously by the service; the gateway only ever
reorders, merges or refuses work, never approximates it.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import Callable, Mapping

from repro.errors import GatewayError
from repro.gateway.batching import BatchPlan, member_response, plan_batch
from repro.gateway.queueing import PriorityRequestQueue, QueueEntry
from repro.gateway.request import (
    PRIORITY_RANKS,
    PRIORITY_STANDARD,
    STATUS_EXPIRED,
    STATUS_REJECTED,
    STATUS_SERVED,
    STATUS_SHED,
    GatewayRequest,
    GatewayResponse,
)
from repro.gateway.stats import GatewayStats
from repro.mining.registry import has_miner
from repro.resilience import (
    REASON_DEADLINE_EXPIRED,
    REASON_GATEWAY_CLOSED,
    REASON_LOAD_SHED,
    REASON_QUEUE_FULL,
    DegradationReport,
)
from repro.service import MineRequest, MiningService


class GatewayConfig:
    """The gateway's traffic-management knobs.

    Parameters
    ----------
    max_queue_depth:
        Admission bound: arrivals beyond this queue depth shed or are
        rejected. ``None`` disables admission control (the queue grows
        without limit, like a naive front end).
    shed_on_full:
        At the bound, drop the youngest strictly-lower-priority queued
        entry to admit a higher-priority arrival. When ``False`` (or
        when nothing outranks), the arrival is rejected instead.
    batching:
        Enable cross-request batching at dispatch.
    max_batch_size:
        Cap on requests merged into one plan (``None`` = unlimited).
    default_priority / default_deadline_seconds:
        Applied to plain :class:`MineRequest` submissions that carry no
        gateway envelope.
    tenant_weights:
        Deficit-round-robin weights (default 1.0; higher = larger share).
    fifo:
        Disable priority *and* fairness scheduling — pure arrival order.
        The "no admission control" baseline for benchmarks.
    max_inflight:
        Auto-mode cap on concurrently dispatched computations. This is
        the saturation coupling: when the pool is this far behind, the
        queue grows and admission control takes over.
    """

    def __init__(
        self,
        max_queue_depth: int | None = None,
        shed_on_full: bool = True,
        batching: bool = True,
        max_batch_size: int | None = None,
        default_priority: str = PRIORITY_STANDARD,
        default_deadline_seconds: float | None = None,
        tenant_weights: Mapping[str, float] | None = None,
        drr_quantum: float = 1.0,
        fifo: bool = False,
        max_inflight: int = 4,
    ) -> None:
        if max_queue_depth is not None and max_queue_depth < 1:
            raise GatewayError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        if max_batch_size is not None and max_batch_size < 1:
            raise GatewayError(
                f"max_batch_size must be >= 1, got {max_batch_size}"
            )
        if max_inflight < 1:
            raise GatewayError(f"max_inflight must be >= 1, got {max_inflight}")
        if default_priority not in PRIORITY_RANKS:
            raise GatewayError(f"unknown priority {default_priority!r}")
        if (
            default_deadline_seconds is not None
            and default_deadline_seconds <= 0
        ):
            raise GatewayError(
                "default_deadline_seconds must be positive, "
                f"got {default_deadline_seconds}"
            )
        self.max_queue_depth = max_queue_depth
        self.shed_on_full = shed_on_full
        self.batching = batching
        self.max_batch_size = max_batch_size
        self.default_priority = default_priority
        self.default_deadline_seconds = default_deadline_seconds
        self.tenant_weights = dict(tenant_weights or {})
        self.drr_quantum = drr_quantum
        self.fifo = fifo
        self.max_inflight = max_inflight


class MiningGateway:
    """Priority queueing, admission control and batching over a service.

    The gateway never closes the service it fronts — the caller owns
    both lifecycles (typically via nested ``with`` blocks).
    """

    def __init__(
        self,
        service: MiningService,
        config: GatewayConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
        start: bool = True,
    ) -> None:
        self._service = service
        self.config = config or GatewayConfig()
        self._clock = clock
        self._queue = PriorityRequestQueue(
            tenant_weights=self.config.tenant_weights,
            quantum=self.config.drr_quantum,
            fifo=self.config.fifo,
        )
        self.stats = GatewayStats()
        service.stats.attach_gauges(self.stats)
        self._cv = threading.Condition()
        self._seq = 0
        self._inflight = 0
        self._closed = False
        self._thread: threading.Thread | None = None
        if start:
            self._thread = threading.Thread(
                target=self._dispatch_loop,
                name="repro-gateway-dispatch",
                daemon=True,
            )
            self._thread.start()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self, request: "MineRequest | GatewayRequest"
    ) -> "Future[GatewayResponse]":
        """Enqueue a request; returns a future resolving to its outcome.

        Admission control runs here, synchronously: a rejected or
        shedding arrival resolves (its own or the victim's) future
        immediately with a structured non-served response. Validation
        errors (unknown algorithm, closed gateway) raise — they are
        caller bugs, not traffic.
        """
        gateway_request = self._wrap(request)
        mine_request = gateway_request.request
        if mine_request.algorithm != "naive" and not has_miner(
            mine_request.algorithm, kind="baseline"
        ):
            raise GatewayError(f"unknown algorithm {mine_request.algorithm!r}")
        if mine_request.jobs < 1:
            raise GatewayError(f"jobs must be >= 1, got {mine_request.jobs}")
        future: "Future[GatewayResponse]" = Future()
        self.stats.record_submitted()
        to_shed: QueueEntry | None = None
        rejected = False
        with self._cv:
            if self._closed:
                raise GatewayError("gateway is closed")
            self._seq += 1
            entry = QueueEntry(
                gateway_request=gateway_request,
                seq=self._seq,
                enqueued_at=self._clock(),
                future=future,
            )
            depth_bound = self.config.max_queue_depth
            if depth_bound is not None and self._queue.depth >= depth_bound:
                if self.config.shed_on_full:
                    to_shed = self._queue.shed_worse_than(entry.rank)
                if to_shed is not None:
                    self._queue.push(entry)
                else:
                    rejected = True
            else:
                self._queue.push(entry)
            self._note_depth_locked()
            self._cv.notify_all()
        if to_shed is not None:
            self._resolve_unserved(to_shed, STATUS_SHED, REASON_LOAD_SHED)
        if rejected:
            self._resolve_unserved(entry, STATUS_REJECTED, REASON_QUEUE_FULL)
        return future

    def execute(
        self, request: "MineRequest | GatewayRequest"
    ) -> GatewayResponse:
        """Submit and wait (manual mode drains the queue to get there)."""
        future = self.submit(request)
        if self._thread is None:
            self.drain()
        return future.result()

    def execute_many(
        self, requests: "list[MineRequest | GatewayRequest]"
    ) -> list[GatewayResponse]:
        """Submit every request up front, then gather in arrival order.

        Submitting everything before gathering is what gives
        cross-request batching its shot: queued contemporaries on the
        same fingerprint merge into one plan, exactly like simultaneous
        users.
        """
        futures = [self.submit(request) for request in requests]
        if self._thread is None:
            self.drain()
        return [future.result() for future in futures]

    async def submit_async(
        self, request: "MineRequest | GatewayRequest"
    ) -> GatewayResponse:
        """Await one request on an asyncio loop (auto mode only)."""
        import asyncio

        self._require_auto("submit_async")
        return await asyncio.wrap_future(self.submit(request))

    async def execute_many_async(
        self, requests: "list[MineRequest | GatewayRequest]"
    ) -> list[GatewayResponse]:
        """Submit all, await all — the asyncio face of :meth:`execute_many`."""
        import asyncio

        self._require_auto("execute_many_async")
        futures = [asyncio.wrap_future(self.submit(r)) for r in requests]
        return list(await asyncio.gather(*futures))

    # ------------------------------------------------------------------
    # manual pumping (deterministic mode)
    # ------------------------------------------------------------------
    def pump_once(self) -> int:
        """Dispatch at most one batch synchronously; returns resolutions.

        Manual mode only. One pump: purge expired entries, pop the next
        leader under priority + fairness, pull its compatible queue-
        mates into a plan, execute the shared request through the
        service, fan the result out. The count includes expired
        resolutions, so ``pump_once() == 0`` means the queue is empty.
        """
        self._require_manual("pump_once")
        with self._cv:
            now = self._clock()
            expired = self._queue.purge_expired(now)
            leader = self._queue.pop()
            members: list[QueueEntry] = []
            if leader is not None and self.config.batching:
                limit = (
                    None
                    if self.config.max_batch_size is None
                    else self.config.max_batch_size - 1
                )
                members = self._queue.take_compatible(
                    leader.gateway_request.batch_key(), limit
                )
            self._note_depth_locked()
        resolved = 0
        for entry in expired:
            self._resolve_unserved(
                entry, STATUS_EXPIRED, REASON_DEADLINE_EXPIRED
            )
            resolved += 1
        if leader is None:
            return resolved
        plan = plan_batch(leader, members)
        try:
            shared = self._service.execute(plan.shared_request())
        except BaseException as exc:
            self._fail_plan(plan, exc)
            return resolved + plan.size
        self._complete_plan(plan, shared, dispatched_at=now)
        return resolved + plan.size

    def drain(self) -> int:
        """Pump until the queue is empty; returns total resolutions."""
        total = 0
        while True:
            resolved = self.pump_once()
            if resolved == 0:
                return total
            total += resolved

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, drain: bool = True) -> None:
        """Stop accepting work; finish (or flush) what is queued.

        ``drain=True`` serves everything already admitted before
        shutting down; ``drain=False`` rejects queued entries with a
        ``gateway_closed`` degradation.
        """
        with self._cv:
            already_closed = self._closed
            self._closed = True
            flushed = [] if drain else self._queue.drain()
            self._note_depth_locked()
            self._cv.notify_all()
        for entry in flushed:
            self._resolve_unserved(entry, STATUS_REJECTED, REASON_GATEWAY_CLOSED)
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        elif drain and not already_closed:
            self.drain()

    def __enter__(self) -> "MiningGateway":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def queue_depth(self) -> int:
        with self._cv:
            return self._queue.depth

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _wrap(
        self, request: "MineRequest | GatewayRequest"
    ) -> GatewayRequest:
        if isinstance(request, GatewayRequest):
            return request
        return GatewayRequest(
            request=request,
            priority=self.config.default_priority,
            deadline_seconds=self.config.default_deadline_seconds,
        )

    def _require_manual(self, what: str) -> None:
        if self._thread is not None:
            raise GatewayError(
                f"{what} is for manual-mode gateways (start=False); "
                "this gateway runs its own dispatcher"
            )

    def _require_auto(self, what: str) -> None:
        if self._thread is None:
            raise GatewayError(
                f"{what} needs the auto-mode dispatcher; this gateway is "
                "manual (start=False) — pump it instead"
            )

    def _note_depth_locked(self) -> None:
        self.stats.note_queue_depth(self._queue.depth, self._queue.high_water)

    def _resolve_unserved(
        self, entry: QueueEntry, status: str, reason: str
    ) -> None:
        """Resolve a future for work the gateway refused or dropped."""
        degradation = DegradationReport()
        served = "shed" if status == STATUS_SHED else "reject"
        degradation.record("serve", served, reason)
        response = GatewayResponse(
            gateway_request=entry.gateway_request,
            status=status,
            queue_seconds=max(0.0, self._clock() - entry.enqueued_at),
            served_at_work=self.stats.current_work(),
            degradation=degradation,
        )
        self.stats.record_outcome(response)
        entry.future.set_result(response)

    def _fail_plan(self, plan: BatchPlan, exc: BaseException) -> None:
        self.stats.record_failure()
        for entry in plan.entries:
            entry.future.set_exception(exc)

    def _complete_plan(
        self, plan: BatchPlan, shared, dispatched_at: float
    ) -> None:
        """Fan a shared computation out to every member of the plan."""
        leader_work = (
            shared.counters.total_work() if not shared.coalesced else 0
        )
        self.stats.record_batch(plan.size, leader_work)
        work_now = self.stats.current_work()
        for entry in plan.entries:
            response = GatewayResponse(
                gateway_request=entry.gateway_request,
                status=STATUS_SERVED,
                response=member_response(entry, shared, plan),
                batched=plan.batched,
                batch_size=plan.size,
                batch_support=plan.min_support,
                queue_seconds=max(0.0, dispatched_at - entry.enqueued_at),
                served_at_work=work_now,
            )
            self.stats.record_outcome(response)
            entry.future.set_result(response)

    def _dispatch_loop(self) -> None:
        """Auto mode: feed plans to the service, bounded by max_inflight."""
        while True:
            expired: list[QueueEntry] = []
            plan: BatchPlan | None = None
            dispatched_at = 0.0
            with self._cv:
                while True:
                    now = self._clock()
                    expired = self._queue.purge_expired(now)
                    if expired:
                        break
                    if (
                        self._queue.depth
                        and self._inflight < self.config.max_inflight
                    ):
                        leader = self._queue.pop()
                        members: list[QueueEntry] = []
                        if self.config.batching:
                            limit = (
                                None
                                if self.config.max_batch_size is None
                                else self.config.max_batch_size - 1
                            )
                            members = self._queue.take_compatible(
                                leader.gateway_request.batch_key(), limit
                            )
                        self._note_depth_locked()
                        plan = plan_batch(leader, members)
                        dispatched_at = now
                        self._inflight += 1
                        break
                    if (
                        self._closed
                        and self._queue.depth == 0
                        and self._inflight == 0
                    ):
                        return
                    deadline = self._queue.next_deadline()
                    timeout = (
                        None if deadline is None else max(0.0, deadline - now)
                    )
                    self._cv.wait(timeout)
            for entry in expired:
                self._resolve_unserved(
                    entry, STATUS_EXPIRED, REASON_DEADLINE_EXPIRED
                )
            if plan is None:
                continue
            try:
                future = self._service.submit(plan.shared_request())
            except BaseException as exc:
                self._fail_plan(plan, exc)
                with self._cv:
                    self._inflight -= 1
                    self._cv.notify_all()
                continue
            future.add_done_callback(
                lambda f, p=plan, t=dispatched_at: self._on_leader_done(p, t, f)
            )

    def _on_leader_done(
        self, plan: BatchPlan, dispatched_at: float, future: "Future"
    ) -> None:
        """Service-side completion callback for an auto-mode plan."""
        try:
            error = future.exception()
            if error is not None:
                self._fail_plan(plan, error)
            else:
                self._complete_plan(plan, future.result(), dispatched_at)
        finally:
            with self._cv:
                self._inflight -= 1
                self._cv.notify_all()
