"""Gateway request/response envelopes: priorities, deadlines, outcomes.

The gateway wraps the service's :class:`~repro.service.MineRequest` in a
:class:`GatewayRequest` carrying the two traffic-management fields the
synchronous service has no use for — a **priority class** (which queue
lane the request waits in) and a **deadline** (how long the answer is
worth waiting for) — and answers every submission with a
:class:`GatewayResponse` whose ``status`` says what actually happened:
served, shed under load, rejected at admission, or expired in queue.

A non-``served`` response is not an exception. Load shedding and
deadline expiry are the gateway doing its job — protecting latency for
the traffic that still matters — so they come back as structured
responses with a :class:`~repro.resilience.DegradationReport` naming the
reason, and counters in :class:`~repro.gateway.stats.GatewayStats`, not
as errors a caller has to catch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import GatewayError
from repro.mining.patterns import PatternSet
from repro.resilience import DegradationReport
from repro.service import MineRequest, MineResponse

#: Priority classes, best first. Rank order is scheduling order: the
#: queue always serves the lowest-ranked non-empty class.
PRIORITY_INTERACTIVE = "interactive"
PRIORITY_STANDARD = "standard"
PRIORITY_BATCH = "batch"
PRIORITY_CLASSES: tuple[str, ...] = (
    PRIORITY_INTERACTIVE,
    PRIORITY_STANDARD,
    PRIORITY_BATCH,
)
PRIORITY_RANKS: dict[str, int] = {
    name: rank for rank, name in enumerate(PRIORITY_CLASSES)
}

#: Terminal statuses a gateway submission can resolve to.
STATUS_SERVED = "served"
STATUS_SHED = "shed"
STATUS_REJECTED = "rejected"
STATUS_EXPIRED = "expired"
STATUSES: tuple[str, ...] = (
    STATUS_SERVED,
    STATUS_SHED,
    STATUS_REJECTED,
    STATUS_EXPIRED,
)


@dataclass(frozen=True)
class GatewayRequest:
    """One tenant's request plus its traffic-management envelope.

    ``deadline_seconds`` is relative to enqueue: if the request is still
    queued when it elapses, the gateway rejects it (``status ==
    "expired"``) instead of mining stale work. ``None`` means wait
    forever.
    """

    request: MineRequest
    priority: str = PRIORITY_STANDARD
    deadline_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.priority not in PRIORITY_RANKS:
            raise GatewayError(
                f"unknown priority {self.priority!r} "
                f"(known: {', '.join(PRIORITY_CLASSES)})"
            )
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise GatewayError(
                f"deadline_seconds must be positive, got {self.deadline_seconds}"
            )

    @property
    def rank(self) -> int:
        """Scheduling rank (lower serves first)."""
        return PRIORITY_RANKS[self.priority]

    @property
    def tenant(self) -> str:
        return self.request.tenant

    def batch_key(self) -> tuple[str, str, str, str, int]:
        """The cross-request batching compatibility key.

        Two requests are *compatible* — one shared mine can serve both
        exactly — when they target the same database *version* (the
        chain head's fingerprint when the request carries a
        :class:`~repro.data.versioned.VersionedDatabase`, the bare
        database fingerprint otherwise — two versions of one tenant's
        evolving database never share a batch) with
        the same algorithm, strategy, backend and jobs. Support is
        deliberately absent: the batch mines once at the group's minimum
        absolute support and serves every member by
        ``filter_min_support``, which is exact because the full frequent
        set at a lower threshold is a superset of the set at any higher
        one. This generalizes the service's byte-identical single-flight
        coalescing (same key *and* same support) to whole support
        ladders.
        """
        return (
            self.request.version_fingerprint(),
            self.request.algorithm,
            self.request.strategy,
            self.request.backend,
            self.request.jobs,
        )


@dataclass(frozen=True)
class GatewayResponse:
    """What the gateway did with one submission.

    ``response`` is the underlying service response — the batch
    leader's for the member that triggered the shared mine, a
    synthesized filter-view of it for the other members — and is
    ``None`` exactly when ``status != "served"``. ``served_at_work`` is
    the gateway's cumulative machine-independent work counter
    (``CostCounters.total_work`` summed over every computation it has
    dispatched) at the moment this response resolved: a wall-clock-free
    latency proxy the load bench gates CI on.
    """

    gateway_request: GatewayRequest
    status: str
    response: MineResponse | None = None
    batched: bool = False
    batch_size: int = 1
    batch_support: int | None = None
    queue_seconds: float = 0.0
    served_at_work: int | None = None
    degradation: DegradationReport = field(default_factory=DegradationReport)

    @property
    def ok(self) -> bool:
        return self.status == STATUS_SERVED

    @property
    def tenant(self) -> str:
        return self.gateway_request.tenant

    @property
    def priority(self) -> str:
        return self.gateway_request.priority

    @property
    def patterns(self) -> PatternSet:
        """The served pattern set (raises on a non-served response)."""
        if self.response is None:
            raise GatewayError(
                f"request was not served (status={self.status!r}: "
                f"{self.degradation.describe() or 'no reason recorded'})"
            )
        return self.response.patterns
