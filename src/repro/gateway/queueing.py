"""The gateway's bounded, fair, priority request queue.

Three scheduling concerns live here, kept free of any I/O or mining so
they are testable as pure data-structure logic:

* **Priority classes.** One lane per class
  (:data:`~repro.gateway.request.PRIORITY_CLASSES`); the queue always
  serves the best-ranked non-empty lane, so interactive traffic never
  waits behind batch work.
* **Per-tenant fairness.** Within a lane, tenants are scheduled by
  deficit round-robin: each visit grants a tenant ``quantum × weight``
  credit, serving a request costs one credit, and residual credit is
  forfeited when a tenant's sub-queue drains. A hot tenant that floods
  the queue gets exactly its weighted share per round; it cannot starve
  the others however many requests it piles up.
* **Admission bookkeeping.** The queue enforces nothing itself — the
  gateway decides what to shed or reject — but it exposes the two
  operations admission control needs: :meth:`shed_worse_than` (remove
  the youngest entry of the worst lane strictly below a given rank) and
  a :attr:`high_water` depth gauge.

The queue is deliberately **not** thread-safe: the gateway serializes
access under its own condition variable, exactly like the service's
in-flight table.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

from repro.errors import GatewayError
from repro.gateway.request import GatewayRequest


@dataclass
class QueueEntry:
    """One queued submission: the request plus its waiting-room state."""

    gateway_request: GatewayRequest
    seq: int
    enqueued_at: float
    future: object = None  # Future[GatewayResponse]; opaque to the queue

    @property
    def rank(self) -> int:
        return self.gateway_request.rank

    @property
    def tenant(self) -> str:
        return self.gateway_request.tenant

    def deadline_at(self) -> float | None:
        deadline = self.gateway_request.deadline_seconds
        return None if deadline is None else self.enqueued_at + deadline

    def expired(self, now: float) -> bool:
        deadline = self.deadline_at()
        return deadline is not None and now >= deadline


class _Lane:
    """One priority class: per-tenant FIFOs under deficit round-robin."""

    def __init__(
        self, weight_of: Callable[[str], float], quantum: float
    ) -> None:
        self._queues: "OrderedDict[str, deque[QueueEntry]]" = OrderedDict()
        self._rotation: deque[str] = deque()
        self._deficits: dict[str, float] = {}
        self._weight_of = weight_of
        self._quantum = quantum
        self.depth = 0

    def push(self, entry: QueueEntry, tenant: str) -> None:
        if tenant not in self._queues:
            self._queues[tenant] = deque()
            self._rotation.append(tenant)
            self._deficits[tenant] = 0.0
        self._queues[tenant].append(entry)
        self.depth += 1

    def pop(self) -> QueueEntry | None:
        """Next entry under DRR, or ``None`` when the lane is empty."""
        if self.depth == 0:
            return None
        # Terminates: every full rotation grants every waiting tenant
        # quantum × weight > 0 credit, so some deficit reaches 1.
        while True:
            tenant = self._rotation[0]
            queue = self._queues.get(tenant)
            if not queue:
                self._retire(tenant)
                continue
            if self._deficits[tenant] >= 1.0:
                self._deficits[tenant] -= 1.0
                entry = queue.popleft()
                self.depth -= 1
                if not queue:
                    self._retire(tenant)  # forfeit residual credit
                return entry
            self._deficits[tenant] += self._quantum * self._weight_of(tenant)
            self._rotation.rotate(-1)

    def _retire(self, tenant: str) -> None:
        self._queues.pop(tenant, None)
        self._deficits.pop(tenant, None)
        try:
            self._rotation.remove(tenant)
        except ValueError:
            pass

    def entries(self) -> Iterator[QueueEntry]:
        for queue in self._queues.values():
            yield from queue

    def remove(self, predicate: Callable[[QueueEntry], bool]) -> list[QueueEntry]:
        """Remove (and return, in seq order) every matching entry."""
        removed: list[QueueEntry] = []
        for tenant in list(self._queues):
            queue = self._queues[tenant]
            kept = deque(e for e in queue if not predicate(e))
            if len(kept) != len(queue):
                removed.extend(e for e in queue if predicate(e))
                self.depth -= len(queue) - len(kept)
                if kept:
                    self._queues[tenant] = kept
                else:
                    self._retire(tenant)
        removed.sort(key=lambda e: e.seq)
        return removed

    def youngest(self) -> QueueEntry | None:
        """The most recently enqueued entry (the cheapest one to shed)."""
        best: QueueEntry | None = None
        for entry in self.entries():
            if best is None or entry.seq > best.seq:
                best = entry
        return best


class PriorityRequestQueue:
    """Multi-class, tenant-fair request queue with depth accounting.

    Parameters
    ----------
    tenant_weights:
        Relative DRR weights (default 1.0 per tenant). A tenant with
        weight 2 gets twice the per-round share of its class.
    quantum:
        Credit granted per DRR visit before weighting.
    fifo:
        Disable all scheduling: one lane, one logical tenant, pure
        arrival order. This is the "no admission control" baseline the
        load benchmark compares against — the queue a naive front end
        would use.
    """

    def __init__(
        self,
        tenant_weights: Mapping[str, float] | None = None,
        quantum: float = 1.0,
        fifo: bool = False,
    ) -> None:
        if quantum <= 0:
            raise GatewayError(f"quantum must be positive, got {quantum}")
        weights = dict(tenant_weights or {})
        for tenant, weight in weights.items():
            if weight <= 0:
                raise GatewayError(
                    f"tenant weight must be positive, got {tenant!r}: {weight}"
                )
        self._weights = weights
        self._quantum = quantum
        self.fifo = fifo
        self._lanes: dict[int, _Lane] = {}
        self.depth = 0
        self.high_water = 0

    def _weight_of(self, tenant: str) -> float:
        return self._weights.get(tenant, 1.0)

    def _lane_for(self, rank: int) -> _Lane:
        if rank not in self._lanes:
            self._lanes[rank] = _Lane(self._weight_of, self._quantum)
        return self._lanes[rank]

    def push(self, entry: QueueEntry) -> None:
        if self.fifo:
            # One lane, one logical tenant: arrival order, nothing else.
            self._lane_for(0).push(entry, "")
        else:
            self._lane_for(entry.rank).push(entry, entry.tenant)
        self.depth += 1
        self.high_water = max(self.high_water, self.depth)

    def pop(self) -> QueueEntry | None:
        """The next entry to serve: best lane first, DRR within it."""
        for rank in sorted(self._lanes):
            entry = self._lanes[rank].pop()
            if entry is not None:
                self.depth -= 1
                return entry
        return None

    def take_compatible(
        self, key: tuple, limit: int | None = None
    ) -> list[QueueEntry]:
        """Remove and return every queued entry batch-compatible with ``key``.

        Entries come back in arrival (seq) order across all lanes and
        tenants — cross-request batching deliberately ignores class and
        fairness, because adding a member to an already-paid-for mine
        costs one ``filter_min_support``, not a mining run; there is
        nothing to arbitrate. With ``limit``, the newest overflow
        entries go back into the queue for a later batch.
        """
        taken: list[QueueEntry] = []
        for lane in self._lanes.values():
            taken.extend(
                lane.remove(lambda e: e.gateway_request.batch_key() == key)
            )
        taken.sort(key=lambda e: e.seq)
        self.depth -= len(taken)
        if limit is not None and len(taken) > limit:
            for entry in taken[limit:]:
                self.push(entry)
            taken = taken[:limit]
        return taken

    def purge_expired(self, now: float) -> list[QueueEntry]:
        """Remove and return every entry whose deadline has elapsed."""
        expired: list[QueueEntry] = []
        for lane in self._lanes.values():
            expired.extend(lane.remove(lambda e: e.expired(now)))
        expired.sort(key=lambda e: e.seq)
        self.depth -= len(expired)
        return expired

    def shed_worse_than(self, rank: int) -> QueueEntry | None:
        """Remove the youngest entry of the worst lane strictly below ``rank``.

        Returns ``None`` when nothing queued is lower-priority than the
        incoming rank — the caller then rejects the arrival instead.
        In FIFO mode there are no priorities, so nothing ever sheds.
        """
        if self.fifo:
            return None
        for lane_rank in sorted(self._lanes, reverse=True):
            if lane_rank <= rank:
                break
            lane = self._lanes[lane_rank]
            victim = lane.youngest()
            if victim is not None:
                lane.remove(lambda e: e.seq == victim.seq)
                self.depth -= 1
                return victim
        return None

    def next_deadline(self) -> float | None:
        """The earliest queued deadline (``None`` when nothing expires)."""
        earliest: float | None = None
        for lane in self._lanes.values():
            for entry in lane.entries():
                deadline = entry.deadline_at()
                if deadline is not None and (
                    earliest is None or deadline < earliest
                ):
                    earliest = deadline
        return earliest

    def drain(self) -> list[QueueEntry]:
        """Remove and return everything, in arrival order (for shutdown)."""
        drained: list[QueueEntry] = []
        for lane in self._lanes.values():
            drained.extend(lane.remove(lambda e: True))
        drained.sort(key=lambda e: e.seq)
        self.depth -= len(drained)
        return drained

    def __len__(self) -> int:
        return self.depth
