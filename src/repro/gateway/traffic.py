"""Synthetic heavy-traffic workload generator for the gateway.

The load benchmark and the gateway stress tests need traffic that looks
like the shared-platform scenario — many tenants, a few of them hot,
analysts walking support ladders, arrivals clumped into bursts — and
they need it *deterministic*, because CI gates on the machine-independent
counters the schedule produces. :func:`synthesize_traffic` builds such a
trace from a seed:

* **Zipfian tenant popularity** — tenant ``rank`` (1-based) is drawn
  with weight ``1 / rank**zipf_exponent``, so a handful of tenants
  dominate, exactly the regime where per-tenant fairness and
  cross-request batching matter.
* **Support-ladder sessions** — each session is one tenant re-mining the
  same database at descending supports (the paper's iterative-refinement
  usage pattern, and the planner's filter/recycle sweet spot).
* **Burst arrivals** — requests land in bursts separated by gaps, the
  arrival process that actually exercises admission control: a queue
  that never fills never sheds.

Everything is driven by one ``random.Random(seed)``; the same seed and
config produce the identical list of ``(arrival_offset, GatewayRequest)``
pairs on any machine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.data.transactions import TransactionDatabase
from repro.errors import GatewayError
from repro.gateway.request import PRIORITY_CLASSES, PRIORITY_RANKS, GatewayRequest
from repro.service import MineRequest

#: Default mix: mostly interactive and standard traffic, some batch.
DEFAULT_PRIORITY_MIX: dict[str, float] = {
    "interactive": 0.3,
    "standard": 0.5,
    "batch": 0.2,
}


@dataclass(frozen=True)
class TrafficConfig:
    """Shape of a synthetic gateway workload (all knobs seeded)."""

    requests: int = 100
    tenants: int = 8
    zipf_exponent: float = 1.2
    seed: int = 7
    #: Probability of each priority class per session (normalized).
    priority_mix: dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_PRIORITY_MIX)
    )
    #: Supports per ladder session (descending walk over ``supports``).
    session_length: int = 3
    #: Requests per arrival burst.
    burst_length: int = 8
    #: Gap between bursts, in synthetic seconds.
    burst_gap_seconds: float = 0.05
    #: Spacing between arrivals inside a burst.
    within_burst_seconds: float = 0.001
    #: Fraction of requests carrying a deadline (0 disables deadlines).
    deadline_fraction: float = 0.0
    #: The deadline attached to that fraction, in synthetic seconds.
    deadline_seconds: float = 0.5
    jobs: int = 1

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise GatewayError(f"requests must be >= 1, got {self.requests}")
        if self.tenants < 1:
            raise GatewayError(f"tenants must be >= 1, got {self.tenants}")
        if self.session_length < 1:
            raise GatewayError(
                f"session_length must be >= 1, got {self.session_length}"
            )
        if self.burst_length < 1:
            raise GatewayError(
                f"burst_length must be >= 1, got {self.burst_length}"
            )
        if not 0.0 <= self.deadline_fraction <= 1.0:
            raise GatewayError(
                f"deadline_fraction must be in [0, 1], got "
                f"{self.deadline_fraction}"
            )
        for cls, share in self.priority_mix.items():
            if cls not in PRIORITY_RANKS:
                raise GatewayError(f"unknown priority {cls!r} in priority_mix")
            if share < 0:
                raise GatewayError(
                    f"priority_mix share must be >= 0, got {cls!r}: {share}"
                )
        if not any(self.priority_mix.values()):
            raise GatewayError("priority_mix must have a positive share")


def _zipf_weights(tenants: int, exponent: float) -> list[float]:
    return [1.0 / (rank**exponent) for rank in range(1, tenants + 1)]


def synthesize_traffic(
    db: TransactionDatabase,
    supports: "list[int]",
    config: TrafficConfig | None = None,
    algorithm: str = "hmine",
    strategy: str = "mcp",
    backend: str = "bitset",
) -> "list[tuple[float, GatewayRequest]]":
    """Build a deterministic ``(arrival_offset, request)`` trace.

    ``supports`` is the absolute-support menu sessions walk down (it is
    sorted descending internally). Offsets are synthetic seconds from
    the start of the trace; a replayer may honor them (sleep), compress
    them (fire bursts back-to-back) or ignore them entirely — the bench
    submits burst-by-burst and lets queue contention come from the
    service's real latency.
    """
    if not supports:
        raise GatewayError("supports menu must not be empty")
    cfg = config or TrafficConfig()
    rng = random.Random(cfg.seed)
    menu = sorted(set(int(s) for s in supports), reverse=True)
    tenant_weights = _zipf_weights(cfg.tenants, cfg.zipf_exponent)
    tenant_names = [f"tenant-{i:02d}" for i in range(1, cfg.tenants + 1)]
    classes = [cls for cls in PRIORITY_CLASSES if cfg.priority_mix.get(cls, 0) > 0]
    class_weights = [cfg.priority_mix[cls] for cls in classes]

    trace: "list[tuple[float, GatewayRequest]]" = []
    offset = 0.0
    in_burst = 0
    # Session state: (tenant, priority, remaining ladder of supports).
    session_tenant = ""
    session_priority = PRIORITY_CLASSES[1]
    ladder: list[int] = []
    while len(trace) < cfg.requests:
        if not ladder:
            session_tenant = rng.choices(tenant_names, tenant_weights)[0]
            session_priority = rng.choices(classes, class_weights)[0]
            # A descending walk: start somewhere on the menu, take up to
            # session_length steps down it (iterative refinement).
            start = rng.randrange(len(menu))
            ladder = list(menu[start : start + cfg.session_length])
        support = ladder.pop(0)
        deadline = (
            cfg.deadline_seconds
            if cfg.deadline_fraction > 0
            and rng.random() < cfg.deadline_fraction
            else None
        )
        request = GatewayRequest(
            request=MineRequest(
                db=db,
                support=support,
                tenant=session_tenant,
                algorithm=algorithm,
                strategy=strategy,
                backend=backend,
                jobs=cfg.jobs,
            ),
            priority=session_priority,
            deadline_seconds=deadline,
        )
        trace.append((offset, request))
        in_burst += 1
        if in_burst >= cfg.burst_length:
            offset += cfg.burst_gap_seconds
            in_burst = 0
        else:
            offset += cfg.within_burst_seconds
    return trace


def bursts(
    trace: "list[tuple[float, GatewayRequest]]",
    gap_threshold_seconds: float,
) -> "list[list[GatewayRequest]]":
    """Split a trace into arrival bursts at gaps >= the threshold.

    The load bench submits one burst at a time (then drains), which is
    how contemporaneous requests end up queued together for
    cross-request batching without depending on real thread timing.
    """
    groups: "list[list[GatewayRequest]]" = []
    current: "list[GatewayRequest]" = []
    previous: float | None = None
    for offset, request in trace:
        if (
            previous is not None
            and offset - previous >= gap_threshold_seconds
            and current
        ):
            groups.append(current)
            current = []
        current.append(request)
        previous = offset
    if current:
        groups.append(current)
    return groups
