"""Gateway observability: queue gauges, admission counters, class histograms.

:class:`GatewayStats` is the gateway's ledger, kept separate from
:class:`~repro.service.ServiceStats` because the two count different
things: the service counts *computations* (what the pool executed), the
gateway counts *submissions* (what tenants asked for — including the
batched members, shed work and expired requests the service never saw).
The gateway attaches its stats to the service's via
``ServiceStats.attach_gauges``, so one ``snapshot()`` still tells the
whole story without the service layer importing the gateway above it.

Two latency bases are tracked per priority class:

* **seconds** — wall-clock from enqueue to resolution. What an operator
  watches; machine-dependent, so benchmarks report it as advisory.
* **work** — the gateway's cumulative machine-independent work counter
  (``CostCounters.total_work`` summed over dispatched computations) at
  resolution time. Deterministic for a deterministic schedule, which is
  what lets CI gate "high-priority traffic finishes earlier under
  admission control" without trusting a shared runner's wall clock.

Both are fixed-size :class:`~repro.metrics.LatencyReservoir`\\ s, so a
long-running gateway's stats memory is bounded exactly like the
service's.
"""

from __future__ import annotations

import threading

from repro.metrics.reservoir import LatencyReservoir
from repro.gateway.request import (
    PRIORITY_CLASSES,
    STATUS_EXPIRED,
    STATUS_REJECTED,
    STATUS_SERVED,
    STATUS_SHED,
    GatewayResponse,
)


class GatewayStats:
    """Thread-safe aggregation of gateway outcomes."""

    def __init__(self, reservoir_capacity: int = 2048) -> None:
        self._lock = threading.Lock()
        self.submitted = 0
        self.served = 0
        self.shed = 0
        self.rejected = 0
        self.expired = 0
        self.failed = 0
        #: Dispatched batch plans (singletons included).
        self.batches = 0
        #: Plans that merged more than one request.
        self.merged_batches = 0
        #: Requests served as members of a multi-request batch.
        self.batched_requests = 0
        #: Cumulative machine-independent work dispatched (leader
        #: computations' ``total_work``; coalesced leaders charge 0).
        self.work_executed = 0
        self.queue_depth = 0
        self.queue_high_water = 0
        self._seconds: dict[str, LatencyReservoir] = {
            cls: LatencyReservoir(reservoir_capacity) for cls in PRIORITY_CLASSES
        }
        self._work: dict[str, LatencyReservoir] = {
            cls: LatencyReservoir(reservoir_capacity) for cls in PRIORITY_CLASSES
        }

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_submitted(self) -> None:
        with self._lock:
            self.submitted += 1

    def record_failure(self) -> None:
        """A dispatched computation raised; its members got the exception."""
        with self._lock:
            self.failed += 1

    def record_batch(self, size: int, leader_work: int) -> None:
        """One plan dispatched: ``size`` requests on one computation."""
        with self._lock:
            self.batches += 1
            if size > 1:
                self.merged_batches += 1
                self.batched_requests += size
            self.work_executed += leader_work

    def record_outcome(self, response: GatewayResponse) -> None:
        with self._lock:
            if response.status == STATUS_SERVED:
                self.served += 1
            elif response.status == STATUS_SHED:
                self.shed += 1
            elif response.status == STATUS_REJECTED:
                self.rejected += 1
            elif response.status == STATUS_EXPIRED:
                self.expired += 1
            cls = response.priority
            if response.status == STATUS_SERVED and cls in self._seconds:
                latency = response.queue_seconds + (
                    response.response.elapsed_seconds
                    if response.response is not None
                    else 0.0
                )
                self._seconds[cls].add(latency)
                if response.served_at_work is not None:
                    self._work[cls].add(float(response.served_at_work))

    def note_queue_depth(self, depth: int, high_water: int) -> None:
        with self._lock:
            self.queue_depth = depth
            self.queue_high_water = max(self.queue_high_water, high_water)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def current_work(self) -> int:
        with self._lock:
            return self.work_executed

    def latency_quantile(self, priority: str, q: float) -> float:
        """Wall-clock q-quantile for one priority class (0.0 when empty)."""
        with self._lock:
            reservoir = self._seconds.get(priority)
            return reservoir.quantile(q) if reservoir is not None else 0.0

    def work_quantile(self, priority: str, q: float) -> float:
        """Machine-independent work-position q-quantile for one class."""
        with self._lock:
            reservoir = self._work.get(priority)
            return reservoir.quantile(q) if reservoir is not None else 0.0

    def gauges(self) -> dict[str, float]:
        """The gateway gauges merged into ``ServiceStats.snapshot()``."""
        with self._lock:
            gauges = {
                "gateway_submitted": float(self.submitted),
                "gateway_served": float(self.served),
                "gateway_shed": float(self.shed),
                "gateway_rejected": float(self.rejected),
                "gateway_expired": float(self.expired),
                "gateway_failed": float(self.failed),
                "gateway_batches": float(self.batches),
                "gateway_merged_batches": float(self.merged_batches),
                "gateway_batched_requests": float(self.batched_requests),
                "gateway_work_executed": float(self.work_executed),
                "gateway_queue_depth": float(self.queue_depth),
                "gateway_queue_high_water": float(self.queue_high_water),
            }
            for cls in PRIORITY_CLASSES:
                gauges[f"gateway_p50_{cls}_s"] = self._seconds[cls].quantile(0.50)
                gauges[f"gateway_p99_{cls}_s"] = self._seconds[cls].quantile(0.99)
            return gauges

    def snapshot(self) -> dict[str, float]:
        """Alias for :meth:`gauges` (symmetry with ``ServiceStats``)."""
        return self.gauges()
