"""Cross-request batching: one mine, many answers.

The service's single-flight coalescing only merges *byte-identical*
requests. The gateway generalizes it: every queued request on the same
database fingerprint with the same algorithm / strategy / backend / jobs
is **compatible**, whatever support it asks for. A :class:`BatchPlan`
mines once at the group's minimum absolute support and serves every
member by ``filter_min_support`` over the shared result.

This is exact, not approximate — the same Section 2 case analysis the
planner runs: the full frequent-pattern set at the minimum support is a
superset of the set at every member's (higher-or-equal) support, so a
support filter over it *is* each member's answer, bit for bit. The
batching-correctness property test pins this across every miner,
strategy, backend and warehouse representation.

The economics are the paper's recycle-and-reuse argument applied at
request granularity: the warehouse amortizes mining across *time* (one
tenant's past pays for another's future); the batch amortizes it across
*concurrency* (one queue-mate's mine pays for the whole group, including
the warehouse write that then serves everyone later).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.gateway.queueing import QueueEntry
from repro.service import MineRequest, MineResponse


@dataclass(frozen=True)
class BatchPlan:
    """A group of compatible queued requests served by one computation.

    ``entries`` are in arrival order; ``entries[0]`` is the scheduling
    leader (the entry the queue chose to serve — its dequeue paid the
    priority/fairness toll for the whole group). ``min_support`` is the
    group's minimum absolute support, the threshold the shared mine
    runs at.
    """

    entries: tuple[QueueEntry, ...]
    min_support: int

    def __post_init__(self) -> None:
        assert self.entries, "a batch plan needs at least one entry"

    @property
    def size(self) -> int:
        return len(self.entries)

    @property
    def batched(self) -> bool:
        """Whether cross-request batching actually merged anything."""
        return len(self.entries) > 1

    def shared_request(self) -> MineRequest:
        """The one service request that pays for the whole group.

        The leader's request with the group-minimum absolute support
        substituted in (as an ``int``, i.e. an absolute count under the
        library-wide support convention). Tenant attribution stays with
        the leader — it is the request the scheduler chose to serve.
        """
        return dataclasses.replace(
            self.entries[0].gateway_request.request, support=self.min_support
        )


def plan_batch(leader: QueueEntry, members: list[QueueEntry]) -> BatchPlan:
    """Build the plan for a leader plus the compatible entries pulled
    from the queue (which may include none — a singleton batch)."""
    ordered = [leader] + [m for m in members if m.seq != leader.seq]
    supports = [
        entry.gateway_request.request.absolute_support() for entry in ordered
    ]
    return BatchPlan(entries=tuple(ordered), min_support=min(supports))


def member_response(
    member: QueueEntry, shared: MineResponse, plan: BatchPlan
) -> MineResponse:
    """A member's exact response, derived from the shared computation.

    The member's absolute support is at least ``plan.min_support``, so
    its full frequent set is precisely ``filter_min_support`` over the
    shared result. Members share the leader's counters (the work was
    paid once — the same convention coalesced followers use), and are
    marked ``coalesced`` so aggregate accounting never double-charges
    the computation.
    """
    absolute = member.gateway_request.request.absolute_support()
    if absolute == shared.absolute_support:
        patterns = shared.patterns
        feedstock = shared.feedstock_support
        path = shared.path
    else:
        patterns = shared.patterns.filter_min_support(absolute)
        feedstock = shared.absolute_support
        path = "filter"
    return MineResponse(
        tenant=member.tenant,
        path=path,
        absolute_support=absolute,
        feedstock_support=feedstock,
        patterns=patterns,
        coalesced=True,
        elapsed_seconds=shared.elapsed_seconds,
        counters=shared.counters,
        jobs=shared.jobs,
        parallel_fallback=shared.parallel_fallback,
        degradation=shared.degradation,
    )
