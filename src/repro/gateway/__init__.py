"""Async high-throughput gateway in front of the mining service.

The traffic-management layer between "millions of users" and the
:class:`~repro.service.MiningService` worker pool: priority queueing
with per-request deadlines, admission control with load shedding,
cross-request batching (one mine at the group-minimum support serves a
whole compatible cohort via ``filter_min_support``), and weighted
deficit-round-robin tenant fairness. See ``docs/gateway.md``.

Layering: ``repro.gateway`` sits *above* ``repro.service`` and below
``repro.bench`` / the CLI; the service never imports it (gauges flow the
other way through ``ServiceStats.attach_gauges``).
"""

from repro.gateway.batching import BatchPlan, member_response, plan_batch
from repro.gateway.gateway import GatewayConfig, MiningGateway
from repro.gateway.queueing import PriorityRequestQueue, QueueEntry
from repro.gateway.request import (
    PRIORITY_BATCH,
    PRIORITY_CLASSES,
    PRIORITY_INTERACTIVE,
    PRIORITY_RANKS,
    PRIORITY_STANDARD,
    STATUS_EXPIRED,
    STATUS_REJECTED,
    STATUS_SERVED,
    STATUS_SHED,
    STATUSES,
    GatewayRequest,
    GatewayResponse,
)
from repro.gateway.stats import GatewayStats
from repro.gateway.traffic import (
    DEFAULT_PRIORITY_MIX,
    TrafficConfig,
    bursts,
    synthesize_traffic,
)

__all__ = [
    "BatchPlan",
    "DEFAULT_PRIORITY_MIX",
    "GatewayConfig",
    "GatewayRequest",
    "GatewayResponse",
    "GatewayStats",
    "MiningGateway",
    "PRIORITY_BATCH",
    "PRIORITY_CLASSES",
    "PRIORITY_INTERACTIVE",
    "PRIORITY_RANKS",
    "PRIORITY_STANDARD",
    "PriorityRequestQueue",
    "QueueEntry",
    "STATUSES",
    "STATUS_EXPIRED",
    "STATUS_REJECTED",
    "STATUS_SERVED",
    "STATUS_SHED",
    "TrafficConfig",
    "bursts",
    "member_response",
    "plan_batch",
    "synthesize_traffic",
]
