"""Write-ahead journal for warehouse and chain mutations.

Every durable mutation — entry put/drop/evict, lineage link and unlink,
chain-file writes, garbage collection — is bracketed by two journal
lines: a ``begin`` record carrying the operation's full intent, appended
and fsynced *before* any target file is touched, and a ``commit`` record
appended after the mutation's atomic rename lands. Recovery therefore
sees exactly three possible states per mutation and resolves each one:

* begin + commit — the mutation landed; nothing to do.
* begin only — the process died mid-mutation. The begin record carries
  enough intent to roll the mutation forward (lineage ops, deletions)
  or to decide from the target file whether it landed (entry and chain
  writes are themselves atomic, so the file is either old or new).
* a torn final line — the process died mid-append. Per-line checksums
  make the tear detectable; the line is dropped and counted, exactly
  like a corrupt pattern file quarantines today.

The journal is an append-only text file, one record per line::

    <seq>\\t<phase>\\t<op>\\t<payload-json>\\t<sha256>

``sha256`` covers the first four fields, so any truncation or bit rot
inside a line is caught. JSON escapes control characters, so the
payload never contains a literal tab or newline. After a successful
recovery — and periodically after commits — the journal is *compacted*
(atomically replaced by an empty file) so its on-disk footprint stays
bounded by the handful of in-flight mutations, not by history.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import InjectedFaultError
from repro.resilience.faults import PERSIST_WRITE

from repro.durability.atomic import atomic_write_text

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.resilience.faults import FaultInjector

#: Format stamp for the journal line layout; bump on incompatible change.
JOURNAL_FORMAT_VERSION = 1

#: The two phases bracketing every journaled mutation.
PHASE_BEGIN = "begin"
PHASE_COMMIT = "commit"

#: Journaled operation names (the warehouse's durable mutation alphabet).
OP_PUT = "put"
OP_DROP = "drop"
OP_EVICT = "evict"
OP_LINK = "link"
OP_UNLINK = "unlink"
OP_CHAIN = "chain"
OP_GC = "gc"

#: Every op a journal line may carry.
JOURNAL_OPS = frozenset(
    {OP_PUT, OP_DROP, OP_EVICT, OP_LINK, OP_UNLINK, OP_CHAIN, OP_GC}
)


@dataclass(frozen=True)
class JournalRecord:
    """One parsed journal line."""

    seq: int
    phase: str
    op: str
    payload: dict


def _line_checksum(seq: int, phase: str, op: str, payload_json: str) -> str:
    head = f"{seq}\t{phase}\t{op}\t{payload_json}"
    return hashlib.sha256(head.encode("utf-8")).hexdigest()


def format_record(seq: int, phase: str, op: str, payload: dict) -> str:
    """Render one journal line (with trailing newline)."""
    payload_json = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    checksum = _line_checksum(seq, phase, op, payload_json)
    return f"{seq}\t{phase}\t{op}\t{payload_json}\t{checksum}\n"


def parse_record(line: str) -> JournalRecord | None:
    """Parse one journal line; ``None`` if torn, truncated or corrupt."""
    stripped = line.rstrip("\n")
    parts = stripped.split("\t")
    if len(parts) != 5:
        return None
    seq_text, phase, op, payload_json, checksum = parts
    if _line_checksum_safe(seq_text, phase, op, payload_json) != checksum:
        return None
    if phase not in (PHASE_BEGIN, PHASE_COMMIT) or op not in JOURNAL_OPS:
        return None
    try:
        seq = int(seq_text)
        payload = json.loads(payload_json)
    except ValueError:
        return None
    if not isinstance(payload, dict):
        return None
    return JournalRecord(seq=seq, phase=phase, op=op, payload=payload)


def _line_checksum_safe(
    seq_text: str, phase: str, op: str, payload_json: str
) -> str:
    head = f"{seq_text}\t{phase}\t{op}\t{payload_json}"
    return hashlib.sha256(head.encode("utf-8")).hexdigest()


class WriteAheadJournal:
    """Append-only, checksummed intent log with atomic compaction.

    Appends are fsynced so a ``begin`` is durable before its mutation
    starts. The :data:`~repro.resilience.faults.PERSIST_WRITE` fault
    point guards each append; when it fires, *half the line* reaches
    disk first, so the chaos harness produces genuinely torn tails for
    recovery to tolerate.
    """

    def __init__(
        self, path: str | Path, faults: "FaultInjector | None" = None
    ) -> None:
        self.path = Path(path)
        self._faults = faults
        self._lock = threading.Lock()
        records, _ = self.load()
        self._next_seq = max((r.seq for r in records), default=0) + 1

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def load(self) -> tuple[list[JournalRecord], int]:
        """All intact records plus the count of torn/corrupt lines."""
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return [], 0
        records: list[JournalRecord] = []
        torn = 0
        for line in text.splitlines():
            if not line:
                continue
            record = parse_record(line)
            if record is None:
                torn += 1
                continue
            records.append(record)
        return records, torn

    def pending(self) -> list[JournalRecord]:
        """Begin records with no matching commit, in append order."""
        records, _ = self.load()
        committed = {r.seq for r in records if r.phase == PHASE_COMMIT}
        return [
            r
            for r in records
            if r.phase == PHASE_BEGIN and r.seq not in committed
        ]

    def size_bytes(self) -> int:
        try:
            return self.path.stat().st_size
        except OSError:
            return 0

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def begin(self, op: str, payload: dict) -> int:
        """Durably record intent; returns the sequence number to commit."""
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
        self._append(format_record(seq, PHASE_BEGIN, op, payload))
        return seq

    def commit(self, seq: int, op: str) -> None:
        """Durably record that mutation ``seq`` landed."""
        self._append(format_record(seq, PHASE_COMMIT, op, {}))

    def _append(self, line: str) -> None:
        with self._lock:
            with self.path.open("a", encoding="utf-8") as handle:
                if self._faults is not None:
                    fired = self._faults.evaluate(PERSIST_WRITE)
                    if fired is not None:
                        handle.write(line[: len(line) // 2])
                        handle.flush()
                        os.fsync(handle.fileno())
                        raise InjectedFaultError(
                            f"{PERSIST_WRITE}: injected fault on call "
                            f"{fired.call} journal append"
                        )
                handle.write(line)
                handle.flush()
                os.fsync(handle.fileno())

    def compact(self) -> None:
        """Atomically truncate the journal (all mutations resolved)."""
        with self._lock:
            if not self.path.exists():
                return
            atomic_write_text(
                self.path, "", faults=self._faults, detail="journal compact"
            )
            self._next_seq = 1
