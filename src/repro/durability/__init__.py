"""Crash-safe persistence and recovery for the mining service.

The paper's premise is that previously mined patterns are an asset worth
recycling — an asset that must therefore survive the process. Before
this package, only warehouse ``.patterns`` files did: version chains and
lineage links lived in memory, so a restart lost the planner's *update*
path and every ``ancestor_feedstock`` route. ``repro.durability`` is the
layer that makes the whole recycling state durable:

:mod:`repro.durability.atomic`
    The single atomic writer (temp + fsync + ``os.replace``) every
    durable file goes through, with the ``persist.write`` /
    ``persist.rename`` / ``persist.manifest`` fault points wired in.
:mod:`repro.durability.journal`
    The write-ahead :class:`WriteAheadJournal`: checksummed begin/commit
    intent lines bracketing every mutation, torn-tail tolerant, compacted
    atomically.
:mod:`repro.durability.chains`
    Durable :class:`ChainRecord` hops (tid-stamped append/delete rows)
    that invert, apply and compose exactly — the file format behind
    fingerprint-identical chain restore.
:mod:`repro.durability.gc`
    Pure GC planning: reachability pruning of dead lineage and
    compaction of ancient hops into composed records.
:mod:`repro.durability.store`
    :class:`DurableStore`, tying the above to one warehouse directory
    with :meth:`~DurableStore.recover` — journal replay, stray-temp
    sweep, quarantine, manifest + chain reload.

Layering: imports :mod:`repro.data` and :mod:`repro.resilience` only;
:mod:`repro.service` builds on it, never the other way around (enforced
in ``tests/test_layering.py``).
"""

from __future__ import annotations

from repro.durability.atomic import atomic_write_text, sweep_tmp_files
from repro.durability.chains import (
    CHAIN_FORMAT_VERSION,
    CHAIN_SUFFIX,
    ChainRecord,
    apply_record,
    chain_record_text,
    compose_records,
    invert_record,
    read_chain_record,
    record_from_node,
    restore_version,
)
from repro.durability.gc import GCPlan, GCReport, plan_gc
from repro.durability.journal import (
    JOURNAL_FORMAT_VERSION,
    JournalRecord,
    WriteAheadJournal,
)
from repro.durability.store import (
    CHAINS_DIR,
    JOURNAL_NAME,
    MANIFEST_NAME,
    DurableStore,
    RecoveryReport,
)

__all__ = [
    "CHAINS_DIR",
    "CHAIN_FORMAT_VERSION",
    "CHAIN_SUFFIX",
    "JOURNAL_FORMAT_VERSION",
    "JOURNAL_NAME",
    "MANIFEST_NAME",
    "ChainRecord",
    "DurableStore",
    "GCPlan",
    "GCReport",
    "JournalRecord",
    "RecoveryReport",
    "WriteAheadJournal",
    "apply_record",
    "atomic_write_text",
    "chain_record_text",
    "compose_records",
    "invert_record",
    "plan_gc",
    "read_chain_record",
    "record_from_node",
    "restore_version",
    "sweep_tmp_files",
]
