"""Garbage collection over lineage links and chain records.

Two collectors keep the durable footprint bounded (ROADMAP open item 3):

* **Reachability prune** — a lineage link (and its chain record) exists
  to route a request at ``child`` to warehoused feedstock at an
  ancestor. When *no* fingerprint at the parent or above still holds a
  warehouse entry — because the LRU evicted it, ``drop_entry`` removed
  it, or quarantine ate it — the link can serve nothing and is dropped.
  This is what makes eviction *lineage-aware*: a long dead tail behind
  the newest warehoused version collapses to nothing instead of growing
  one file per delta forever.

* **Chain compaction** — when a live child routes through a run of
  intermediate hops none of which is warehoused, those ancient hops are
  collapsed into one composed record
  (:func:`~repro.durability.chains.compose_records`) spanning straight
  to the nearest warehoused ancestor. The intermediate versions keep
  their *own* links (a request at that exact version can still route),
  but the child no longer pays one file and one restore step per
  historical delta.

Planning is pure (:func:`plan_gc` touches no disk), so ``--dry-run``
reports exactly what a real run would do; the store applies a plan
under its journal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Collection, Mapping

from repro.durability.chains import ChainRecord, compose_records

#: A lineage link as the warehouse registry stores it:
#: ``child -> (parent, delta_fingerprint | None, distance)``.
LineageLink = tuple[str, str | None, int]


@dataclass(frozen=True)
class GCPlan:
    """What one garbage-collection pass would change.

    ``dropped_links`` are children whose link (and chain record, when
    present) is unreachable from any warehoused entry;
    ``link_rewrites`` re-points a child's link at its nearest warehoused
    ancestor; ``record_rewrites`` carries the composed chain records
    backing those rewrites (children whose hop run lacked intact records
    rewire the link only); ``collapsed_hops`` counts the hops removed by
    composition.
    """

    dropped_links: tuple[str, ...] = ()
    link_rewrites: dict[str, LineageLink] = field(default_factory=dict)
    record_rewrites: dict[str, ChainRecord] = field(default_factory=dict)
    collapsed_hops: int = 0

    @property
    def is_empty(self) -> bool:
        return not self.dropped_links and not self.link_rewrites


@dataclass(frozen=True)
class GCReport:
    """The outcome of one pass, dry or real — what the stats gauges sum."""

    dropped_links: int
    collapsed_hops: int
    rewritten_chains: int
    dropped_chain_files: int
    dry_run: bool


def plan_gc(
    lineage: Mapping[str, LineageLink],
    chains: Mapping[str, ChainRecord],
    warehoused: Collection[str],
) -> GCPlan:
    """Plan one GC pass; pure function of the registries.

    ``warehoused`` is the set of fingerprints holding at least one
    warehouse entry at any support.
    """
    alive = set(warehoused)

    def parent_of(fingerprint: str) -> str | None:
        link = lineage.get(fingerprint)
        if link is not None:
            return link[0]
        record = chains.get(fingerprint)
        return record.parent if record is not None else None

    def nearest_alive_ancestor(child: str) -> tuple[str | None, int]:
        """(ancestor fingerprint, hops walked) or (None, 0) when dead."""
        hops = 0
        seen = {child}
        node = parent_of(child)
        while node is not None and node not in seen:
            hops += 1
            if node in alive:
                return node, hops
            seen.add(node)
            node = parent_of(node)
        return None, 0

    dropped: list[str] = []
    link_rewrites: dict[str, LineageLink] = {}
    record_rewrites: dict[str, ChainRecord] = {}
    collapsed = 0
    for child in sorted(set(lineage) | set(chains)):
        target, hops = nearest_alive_ancestor(child)
        if target is None:
            dropped.append(child)
            continue
        if hops <= 1:
            continue
        # Collapse the run child -> ... -> target into one hop. Compose
        # real records when every hop has one; otherwise rewire the
        # lineage link alone (routing survives, restore stays stepwise
        # as deep as records reach).
        composed = _compose_run(child, target, chains, parent_of)
        if composed is not None:
            record_rewrites[child] = composed
            link_rewrites[child] = (
                target,
                composed.delta_fingerprint(),
                composed.size,
            )
        else:
            distance = _run_distance(child, target, lineage, chains, parent_of)
            link_rewrites[child] = (target, None, distance)
        collapsed += hops - 1
    return GCPlan(
        dropped_links=tuple(dropped),
        link_rewrites=link_rewrites,
        record_rewrites=record_rewrites,
        collapsed_hops=collapsed,
    )


def _compose_run(
    child: str,
    target: str,
    chains: Mapping[str, ChainRecord],
    parent_of,
) -> ChainRecord | None:
    record = chains.get(child)
    if record is None:
        return None
    node = record.parent
    seen = {child}
    while node != target:
        # A chain record whose parent disagrees with the lineage link
        # (stale file) would make this walk diverge; the seen-set stops
        # it and the caller falls back to a link-only rewire.
        if node in seen:
            return None
        seen.add(node)
        hop = chains.get(node)
        if hop is None:
            return None
        record = compose_records(record, hop)
        node = hop.parent
    return record


def _run_distance(
    child: str,
    target: str,
    lineage: Mapping[str, LineageLink],
    chains: Mapping[str, ChainRecord],
    parent_of,
) -> int:
    distance = 0
    node = child
    while node != target:
        link = lineage.get(node)
        if link is not None:
            distance += link[2]
        else:
            record = chains.get(node)
            if record is not None:
                distance += record.size
        node = parent_of(node)
    return distance
