"""Durable chain records: the on-disk form of a version-chain hop.

A :class:`~repro.data.versioned.VersionedDatabase` chain is pure memory;
this module gives each hop (parent → child) a checksummed file so a
restarted service can rebuild the chain — and with it the planner's
*update* path — fingerprint-identical to the pre-crash state.

A :class:`ChainRecord` stores the hop *with its tids*: appended rows as
``(tid, items)`` and deleted rows as ``(tid, items)``. That is strictly
more than a :class:`~repro.data.versioned.DatabaseDelta` (which has only
append contents and delete tids) and it is exactly what makes recovery
exact in both directions:

* **forward** — :func:`apply_record` rebuilds the child from the parent
  using the recorded append tids, not freshly assigned ones;
* **backward** — :func:`invert_record` rebuilds the parent from the
  child by removing the appended tids and re-inserting the deleted rows.
  Chain tid discipline (tids strictly ascending in row order, never
  reused) means a tid-ascending merge reproduces the parent's exact row
  order, so ``parent.fingerprint()`` comes back identical.

Records compose (:func:`compose_records`), which is what chain
compaction collapses ancient hops with: the composed record spans
grandparent → child in one hop and still inverts exactly.

File format (``chains/<child-fingerprint>.chain``), in the spirit of the
pattern-file headers::

    # chain_format=1
    # child=<fingerprint>
    # parent=<fingerprint>
    # delta=<delta-fingerprint>
    # version=<child chain position>
    # next_tid=<child's next fresh tid>
    # sha256=<hex over the body lines>
    +<tid> <item> <item> ...      (appended rows, tid-ascending)
    -<tid> <item> <item> ...      (deleted rows, tid-ascending)

Any malformed header, checksum mismatch or inconsistent body raises
:class:`~repro.errors.DataError`, and the store quarantines the file
exactly like a corrupt pattern file.
"""

from __future__ import annotations

import hashlib
import io
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

from repro.data.transactions import TransactionDatabase
from repro.data.versioned import DatabaseDelta, VersionedDatabase
from repro.errors import DataError

#: Format stamp; readers reject files from a future format.
CHAIN_FORMAT_VERSION = 1

#: File suffix for chain records inside the store's ``chains/`` dir.
CHAIN_SUFFIX = ".chain"

FORMAT_HEADER_PREFIX = "# chain_format="
CHILD_HEADER_PREFIX = "# child="
PARENT_HEADER_PREFIX = "# parent="
DELTA_HEADER_PREFIX = "# delta="
VERSION_HEADER_PREFIX = "# version="
NEXT_TID_HEADER_PREFIX = "# next_tid="
CHECKSUM_HEADER_PREFIX = "# sha256="


@dataclass(frozen=True)
class ChainRecord:
    """One durable hop of a version chain, tids included.

    ``appends`` and ``deletes`` are ``(tid, items)`` rows sorted by tid;
    ``next_tid`` is the child's fresh-tid high-water mark (what
    :meth:`VersionedDatabase.apply` would hand the next delta).
    """

    child: str
    parent: str
    version: int
    next_tid: int
    appends: tuple[tuple[int, tuple[int, ...]], ...]
    deletes: tuple[tuple[int, tuple[int, ...]], ...]

    @property
    def size(self) -> int:
        """Rows touched — same delta-distance unit the planner uses."""
        return len(self.appends) + len(self.deletes)

    def delta(self) -> DatabaseDelta:
        """The forward :class:`DatabaseDelta` this hop applied."""
        return DatabaseDelta(
            appends=tuple(items for _, items in self.appends),
            deletes=frozenset(tid for tid, _ in self.deletes),
        )

    def delta_fingerprint(self) -> str:
        return self.delta().delta_fingerprint()


def record_from_node(node: VersionedDatabase) -> ChainRecord:
    """The :class:`ChainRecord` for ``node``'s hop from its parent.

    Exact by tid discipline: a tid in the child but not the parent was
    appended by this hop; one in the parent but not the child was
    deleted by it.
    """
    parent = node.parent
    if parent is None:
        raise DataError("chain root has no parent hop to record")
    child_rows = dict(zip(node.db.tids, node.db.transactions))
    parent_rows = dict(zip(parent.db.tids, parent.db.transactions))
    appends = tuple(
        (tid, tx)
        for tid, tx in sorted(child_rows.items())
        if tid not in parent_rows
    )
    deletes = tuple(
        (tid, tx)
        for tid, tx in sorted(parent_rows.items())
        if tid not in child_rows
    )
    return ChainRecord(
        child=node.fingerprint(),
        parent=parent.fingerprint(),
        version=node.version,
        next_tid=node.next_tid,
        appends=appends,
        deletes=deletes,
    )


# ----------------------------------------------------------------------
# forward / backward application
# ----------------------------------------------------------------------
def apply_record(
    parent_db: TransactionDatabase, record: ChainRecord
) -> TransactionDatabase:
    """The child database, rebuilt with the record's exact tids."""
    delete_tids = {tid for tid, _ in record.deletes}
    rows = [
        (tid, tx)
        for tid, tx in zip(parent_db.tids, parent_db.transactions)
        if tid not in delete_tids
    ]
    rows.extend(record.appends)
    rows.sort(key=lambda row: row[0])
    return TransactionDatabase(
        [tx for _, tx in rows], tids=[tid for tid, _ in rows]
    )


def invert_record(
    child_db: TransactionDatabase, record: ChainRecord
) -> TransactionDatabase:
    """The parent database, rebuilt exactly from the child.

    Raises :class:`DataError` when the record does not match the child
    (an appended tid missing, or carrying different content) — the
    store treats that as a stale record and stops the restore walk
    there rather than fabricating a wrong ancestor.
    """
    child_rows = dict(zip(child_db.tids, child_db.transactions))
    for tid, tx in record.appends:
        if child_rows.get(tid) != tx:
            raise DataError(
                f"chain record for {record.child[:12]} appends tid {tid} "
                "absent from (or different in) the child database"
            )
    append_tids = {tid for tid, _ in record.appends}
    rows = [
        (tid, tx)
        for tid, tx in zip(child_db.tids, child_db.transactions)
        if tid not in append_tids
    ]
    rows.extend(record.deletes)
    rows.sort(key=lambda row: row[0])
    return TransactionDatabase(
        [tx for _, tx in rows], tids=[tid for tid, _ in rows]
    )


def compose_records(late: ChainRecord, early: ChainRecord) -> ChainRecord:
    """One record spanning both hops (``early`` then ``late``).

    ``early`` takes A → B and ``late`` takes B → C; the result takes
    A → C. A row appended by ``early`` and deleted again by ``late``
    cancels out; a row deleted by ``late`` that already existed in A
    becomes a composed delete. This is the delta composition
    ``DB - db- ∪ db+`` applied to tid-stamped rows, so the composed
    record still inverts exactly.
    """
    if early.child != late.parent:
        raise DataError(
            f"cannot compose chain records: {early.child[:12]} != "
            f"{late.parent[:12]}"
        )
    late_delete_tids = {tid for tid, _ in late.deletes}
    early_append_tids = {tid for tid, _ in early.appends}
    appends = tuple(
        sorted(
            [row for row in early.appends if row[0] not in late_delete_tids]
            + list(late.appends)
        )
    )
    deletes = tuple(
        sorted(
            list(early.deletes)
            + [row for row in late.deletes if row[0] not in early_append_tids]
        )
    )
    return ChainRecord(
        child=late.child,
        parent=early.parent,
        version=late.version,
        next_tid=late.next_tid,
        appends=appends,
        deletes=deletes,
    )


# ----------------------------------------------------------------------
# chain restore
# ----------------------------------------------------------------------
def restore_version(
    db: TransactionDatabase, records: Mapping[str, ChainRecord]
) -> VersionedDatabase | None:
    """Rebuild ``db``'s version chain from durable records.

    Walks child → parent from ``db``'s fingerprint as deep as intact,
    consistent records reach (a stale or mismatching record ends the
    walk; shallower hops are still restored). Returns ``None`` when no
    hop applies — the caller falls back to the unversioned paths.

    Every reconstructed ancestor is fingerprint-checked against its
    record before use, so a restored chain is exactly as trustworthy as
    one that never left memory.
    """
    hops: list[tuple[ChainRecord, TransactionDatabase]] = []
    current = db
    fingerprint = db.fingerprint()
    seen = {fingerprint}
    while True:
        record = records.get(fingerprint)
        if record is None or record.parent in seen:
            break
        try:
            parent_db = invert_record(current, record)
        except DataError:
            break
        if parent_db.fingerprint() != record.parent:
            break
        hops.append((record, current))
        current = parent_db
        fingerprint = record.parent
        seen.add(fingerprint)
    if not hops:
        return None
    deepest, _ = hops[-1]
    node = VersionedDatabase(
        current,
        version=deepest.version - 1,
        next_tid=deepest.next_tid - len(deepest.appends),
    )
    for record, child_db in reversed(hops):
        node = VersionedDatabase(
            child_db,
            version=record.version,
            parent=node,
            delta=record.delta(),
            next_tid=record.next_tid,
        )
    return node


# ----------------------------------------------------------------------
# file format
# ----------------------------------------------------------------------
def _record_body(record: ChainRecord) -> str:
    buffer = io.StringIO()
    for tid, tx in record.appends:
        buffer.write(f"+{tid}")
        for item in tx:
            buffer.write(f" {item}")
        buffer.write("\n")
    for tid, tx in record.deletes:
        buffer.write(f"-{tid}")
        for item in tx:
            buffer.write(f" {item}")
        buffer.write("\n")
    return buffer.getvalue()


def _body_checksum(body: str) -> str:
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def chain_record_text(record: ChainRecord) -> str:
    """The full chain-file text (headers + tid-stamped rows)."""
    body = _record_body(record)
    headers = [
        f"{FORMAT_HEADER_PREFIX}{CHAIN_FORMAT_VERSION}",
        f"{CHILD_HEADER_PREFIX}{record.child}",
        f"{PARENT_HEADER_PREFIX}{record.parent}",
        f"{DELTA_HEADER_PREFIX}{record.delta_fingerprint()}",
        f"{VERSION_HEADER_PREFIX}{record.version}",
        f"{NEXT_TID_HEADER_PREFIX}{record.next_tid}",
        f"{CHECKSUM_HEADER_PREFIX}{_body_checksum(body)}",
    ]
    return "".join(f"{line}\n" for line in headers) + body


def read_chain_record(path: str | Path) -> ChainRecord:
    """Load and verify one chain file; :class:`DataError` on any damage."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise DataError(f"cannot read chain file {path}: {exc}") from exc
    lines = text.splitlines(keepends=True)

    def header(index: int, prefix: str) -> str:
        if index >= len(lines) or not lines[index].startswith(prefix):
            raise DataError(f"{path}: missing {prefix.strip('# =')} header")
        return lines[index][len(prefix):].strip()

    try:
        fmt = int(header(0, FORMAT_HEADER_PREFIX))
    except ValueError as exc:
        raise DataError(f"{path}: malformed chain_format header") from exc
    if fmt != CHAIN_FORMAT_VERSION:
        raise DataError(
            f"{path}: unsupported chain format {fmt} "
            f"(expected {CHAIN_FORMAT_VERSION})"
        )
    child = header(1, CHILD_HEADER_PREFIX)
    parent = header(2, PARENT_HEADER_PREFIX)
    delta_fp = header(3, DELTA_HEADER_PREFIX)
    try:
        version = int(header(4, VERSION_HEADER_PREFIX))
        next_tid = int(header(5, NEXT_TID_HEADER_PREFIX))
    except ValueError as exc:
        raise DataError(f"{path}: malformed integer header") from exc
    checksum = header(6, CHECKSUM_HEADER_PREFIX)
    body = "".join(lines[7:])
    actual = _body_checksum(body)
    if actual != checksum:
        raise DataError(
            f"{path}: body checksum mismatch (expected {checksum}, got "
            f"{actual}) — the file is corrupt or truncated"
        )

    appends: list[tuple[int, tuple[int, ...]]] = []
    deletes: list[tuple[int, tuple[int, ...]]] = []
    for line_no, line in enumerate(body.splitlines(), start=8):
        stripped = line.strip()
        if not stripped:
            continue
        sign, rest = stripped[0], stripped[1:]
        if sign not in "+-":
            raise DataError(f"{path}: line {line_no}: bad row sign {sign!r}")
        try:
            tokens = rest.split()
            tid = int(tokens[0])
            items = tuple(int(tok) for tok in tokens[1:])
        except (IndexError, ValueError) as exc:
            raise DataError(
                f"{path}: line {line_no}: malformed row {stripped!r}"
            ) from exc
        (appends if sign == "+" else deletes).append((tid, items))

    record = ChainRecord(
        child=child,
        parent=parent,
        version=version,
        next_tid=next_tid,
        appends=tuple(appends),
        deletes=tuple(deletes),
    )
    if record.delta_fingerprint() != delta_fp:
        raise DataError(
            f"{path}: delta fingerprint mismatch — rows do not match the "
            "recorded delta"
        )
    return record
