"""The one atomic file writer the durability layer routes bytes through.

Every durable artifact — journal compactions, chain files, the lineage
manifest, warehouse entry bodies — reaches disk the same way: rendered
once into a sibling ``*.tmp`` file, flushed and fsynced, then moved into
place with :func:`os.replace`. A kill at any byte offset therefore
leaves either the old file or the new file, never a torn one; the worst
residue is a stray temp file, which recovery sweeps up.

The two crash windows are named fault points
(:data:`~repro.resilience.faults.PERSIST_WRITE` mid temp-file,
:data:`~repro.resilience.faults.PERSIST_RENAME` between a complete temp
file and the rename; the manifest's write window fires
:data:`~repro.resilience.faults.PERSIST_MANIFEST` instead so the chaos
harness can target it independently). When a write fault fires, the
helper deliberately leaves *half the payload* in the temp file before
raising — the bytes look exactly like a hard kill mid-``write(2)``, so
recovery tests exercise the real torn-file path, not a polite fiction.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import InjectedFaultError
from repro.resilience.faults import PERSIST_RENAME, PERSIST_WRITE, FiredFault

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.resilience.faults import FaultInjector

#: Suffix every in-flight temp file carries; recovery globs and removes.
TMP_SUFFIX = ".tmp"


def atomic_write_text(
    path: str | Path,
    text: str,
    *,
    faults: "FaultInjector | None" = None,
    write_point: str = PERSIST_WRITE,
    detail: str = "",
) -> None:
    """Atomically replace ``path`` with ``text`` (write → fsync → rename).

    ``write_point`` names the fault point fired before the payload hits
    the temp file (the manifest writer passes
    :data:`~repro.resilience.faults.PERSIST_MANIFEST`);
    :data:`~repro.resilience.faults.PERSIST_RENAME` always guards the
    rename. On an injected write fault, half the payload is written
    first so the temp file is genuinely torn. An injected kill leaves
    its temp file on disk — that stray ``*.tmp`` IS the crash residue
    recovery must sweep, so cleaning it here would un-test recovery;
    real ``OSError`` failures still remove theirs.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=TMP_SUFFIX
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            if faults is not None:
                fired = faults.evaluate(write_point)
                if fired is not None:
                    handle.write(text[: len(text) // 2])
                    handle.flush()
                    os.fsync(handle.fileno())
                    raise _killed(write_point, fired, detail or path.name)
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        if faults is not None:
            faults.fire(PERSIST_RENAME, detail or str(path.name))
        os.replace(tmp_name, path)
    except InjectedFaultError:
        raise
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _killed(point: str, fired: FiredFault, detail: object) -> InjectedFaultError:
    return InjectedFaultError(
        f"{point}: injected fault on call {fired.call} {detail}"
    )


def sweep_tmp_files(directory: str | Path) -> int:
    """Remove stray ``*.tmp`` files left by a kill; returns the count."""
    directory = Path(directory)
    removed = 0
    if not directory.is_dir():
        return 0
    for stray in sorted(directory.glob(f"*{TMP_SUFFIX}")):
        try:
            stray.unlink()
            removed += 1
        except OSError:
            continue
    return removed
