"""The durable store: crash-safe files + journal + manifest + recovery.

One :class:`DurableStore` owns everything under a warehouse directory
that must survive a kill::

    <dir>/
        <fingerprint>-<support>.patterns   warehouse entries (atomic)
        chains/<fingerprint>.chain         chain records (atomic)
        MANIFEST                           lineage links (atomic JSON)
        journal.log                        write-ahead intent log
        quarantine/                        torn/corrupt files, preserved

Write protocol (the crash-safety argument, window by window):

1. ``journal.begin`` — intent is fsynced before anything else moves. A
   kill here leaves old state plus a pending record recovery resolves.
2. the mutation itself — every target file is written via
   :func:`~repro.durability.atomic.atomic_write_text` (temp + fsync +
   ``os.replace``) or is a single ``unlink``. A kill here leaves the
   old file or the new file, never a torn one; the worst residue is a
   stray ``*.tmp``.
3. ``journal.commit`` — a kill here merely leaves a pending record
   whose effect already landed; replay is idempotent.

:meth:`DurableStore.recover` runs before the warehouse trusts the
directory: it reads the journal (tolerating a torn tail line), rolls
pending mutations forward or confirms them rolled back, sweeps stray
temp files, loads the manifest and every chain record (quarantining
damage exactly like corrupt pattern files), then compacts the journal.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Collection

from repro.data.io import warehouse_entry_text
from repro.data.patterns import CondensedPatternSet
from repro.data.transactions import TransactionDatabase
from repro.data.versioned import VersionedDatabase
from repro.errors import DataError, InjectedFaultError
from repro.resilience.faults import PERSIST_MANIFEST

from repro.durability.atomic import atomic_write_text, sweep_tmp_files
from repro.durability.chains import (
    CHAIN_SUFFIX,
    ChainRecord,
    chain_record_text,
    read_chain_record,
    restore_version,
)
from repro.durability.gc import GCPlan, GCReport, LineageLink, plan_gc
from repro.durability.journal import (
    OP_CHAIN,
    OP_DROP,
    OP_EVICT,
    OP_GC,
    OP_LINK,
    OP_PUT,
    OP_UNLINK,
    WriteAheadJournal,
)

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.resilience.faults import FaultInjector

#: The atomic lineage manifest's file name inside the store directory.
MANIFEST_NAME = "MANIFEST"

#: The write-ahead journal's file name inside the store directory.
JOURNAL_NAME = "journal.log"

#: Subdirectory holding one ``.chain`` file per durable hop.
CHAINS_DIR = "chains"

#: Subdirectory quarantined files move to (shared with the warehouse).
QUARANTINE_DIR = "quarantine"

#: Manifest format stamp; bump on incompatible change.
MANIFEST_FORMAT_VERSION = 1

#: Compact the journal once it grows past this many bytes. Mutations are
#: serialized under the warehouse lock, so at any commit boundary there
#: are no in-flight records and truncation loses nothing.
JOURNAL_COMPACT_BYTES = 64 * 1024


@dataclass
class RecoveryReport:
    """What one :meth:`DurableStore.recover` pass found and fixed."""

    journal_replays: int = 0
    torn_journal_lines: int = 0
    stray_tmp_removed: int = 0
    recovered_links: int = 0
    recovered_chains: int = 0
    quarantined: list[tuple[str, str]] = field(default_factory=list)


class DurableStore:
    """Journaled, crash-safe persistence for one warehouse directory.

    The store is the only writer of entry, chain, manifest and journal
    files; the warehouse calls it under its own lock, so the store adds
    just enough locking to protect the journal's sequence counter.
    Construction performs no I/O beyond creating the directory layout —
    call :meth:`recover` (the warehouse does, first thing) before
    trusting the registries.
    """

    def __init__(
        self,
        directory: str | Path,
        faults: "FaultInjector | None" = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.chains_dir = self.directory / CHAINS_DIR
        self.chains_dir.mkdir(parents=True, exist_ok=True)
        self.faults = faults
        self.journal = WriteAheadJournal(
            self.directory / JOURNAL_NAME, faults
        )
        self._lock = threading.Lock()
        self._lineage: dict[str, LineageLink] = {}
        self._chains: dict[str, ChainRecord] = {}

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def entry_path(self, fingerprint: str, absolute_support: int) -> Path:
        return self.directory / f"{fingerprint}-{absolute_support}.patterns"

    def chain_path(self, child: str) -> Path:
        return self.chains_dir / f"{child}{CHAIN_SUFFIX}"

    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    def quarantine_path(self, name: str) -> Path:
        return self.directory / QUARANTINE_DIR / name

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def recover(self, *, apply: bool = True) -> RecoveryReport:
        """Resolve in-flight mutations and load the durable registries.

        ``apply=False`` audits without mutating the directory — pending
        records are counted, stray temp files are reported as zero
        (they are only *swept* when applying), and the journal is left
        as found; the loaded registries are identical either way. The
        CLI's read-only inspection uses the audit mode so listing a
        warehouse never rewrites it.
        """
        report = RecoveryReport()
        records, report.torn_journal_lines = self.journal.load()
        committed = {r.seq for r in records if r.phase == "commit"}
        pending = [
            r
            for r in records
            if r.phase == "begin" and r.seq not in committed
        ]

        # Load the manifest before replay so pending lineage ops apply
        # on top of the last durable state.
        lineage, manifest_damage = self._load_manifest()
        if manifest_damage is not None:
            if apply:
                self._quarantine_file(self.manifest_path, manifest_damage)
            report.quarantined.append((MANIFEST_NAME, manifest_damage))

        lineage_dirty = False
        for record in pending:
            replayed, touched = self._resolve_pending(record, lineage, apply)
            if replayed:
                report.journal_replays += 1
            lineage_dirty = lineage_dirty or touched

        if apply:
            report.stray_tmp_removed += sweep_tmp_files(self.directory)
            report.stray_tmp_removed += sweep_tmp_files(self.chains_dir)

        chains: dict[str, ChainRecord] = {}
        if self.chains_dir.is_dir():
            for path in sorted(self.chains_dir.glob(f"*{CHAIN_SUFFIX}")):
                try:
                    record = read_chain_record(path)
                except DataError as exc:
                    if apply:
                        self._quarantine_file(path, str(exc))
                    report.quarantined.append((path.name, str(exc)))
                    continue
                chains[record.child] = record

        with self._lock:
            self._lineage = lineage
            self._chains = chains
        report.recovered_links = len(lineage)
        report.recovered_chains = len(chains)

        if apply:
            if lineage_dirty:
                self._write_manifest()
            if pending or report.torn_journal_lines:
                self.journal.compact()
        return report

    def _resolve_pending(
        self, record, lineage: dict[str, LineageLink], apply: bool
    ) -> tuple[bool, bool]:
        """Roll one pending mutation forward; (replayed, lineage_touched)."""
        payload = record.payload
        if record.op in (OP_PUT, OP_CHAIN):
            # The target write is itself atomic: if the file exists the
            # mutation landed (only uncommitted), else it rolled back.
            # Either state is consistent; nothing to roll forward.
            return False, False
        if record.op in (OP_DROP, OP_EVICT):
            name = payload.get("file", "")
            target = self.directory / name if name else None
            if target is not None and target.exists():
                if apply:
                    target.unlink()
                return True, False
            return False, False
        if record.op == OP_LINK:
            child = payload.get("child")
            if not isinstance(child, str):
                return False, False
            link = (
                payload.get("parent"),
                payload.get("delta"),
                int(payload.get("distance", 0)),
            )
            if lineage.get(child) == link:
                return False, False
            lineage[child] = link
            return True, True
        if record.op == OP_UNLINK:
            children = payload.get("children", [])
            touched = False
            for child in children:
                if child in lineage:
                    del lineage[child]
                    touched = True
                target = self.chain_path(str(child))
                if target.exists():
                    if apply:
                        target.unlink()
                    touched = True
            return touched, touched
        if record.op == OP_GC:
            touched = False
            for child in payload.get("drop", []):
                if child in lineage:
                    del lineage[child]
                    touched = True
                target = self.chain_path(str(child))
                if target.exists() and apply:
                    target.unlink()
            for child, link in payload.get("rewrite", {}).items():
                new_link = (link[0], link[1], int(link[2]))
                if lineage.get(child) != new_link:
                    lineage[child] = new_link
                    touched = True
            return touched, touched
        return False, False

    def _load_manifest(
        self,
    ) -> tuple[dict[str, LineageLink], str | None]:
        """(lineage, damage-reason). Damage yields an empty registry."""
        try:
            text = self.manifest_path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return {}, None
        except OSError as exc:
            return {}, f"cannot read manifest: {exc}"
        try:
            data = json.loads(text)
            if data.get("format") != MANIFEST_FORMAT_VERSION:
                return {}, f"unsupported manifest format {data.get('format')!r}"
            lineage: dict[str, LineageLink] = {}
            for child, link in data["lineage"].items():
                parent, delta_fp, distance = link
                if not isinstance(child, str) or not isinstance(parent, str):
                    raise ValueError("non-string fingerprint")
                lineage[child] = (parent, delta_fp, int(distance))
            return lineage, None
        except (ValueError, KeyError, TypeError) as exc:
            return {}, f"malformed manifest: {exc}"

    def _quarantine_file(self, path: Path, reason: str) -> None:
        destination = self.quarantine_path(path.name)
        destination.parent.mkdir(parents=True, exist_ok=True)
        try:
            path.replace(destination)
        except OSError:
            pass

    # ------------------------------------------------------------------
    # entries
    # ------------------------------------------------------------------
    def write_entry(
        self,
        fingerprint: str,
        absolute_support: int,
        condensed: CondensedPatternSet,
        *,
        full_bytes: int | None = None,
    ) -> None:
        """Journaled, atomic write of one warehouse entry file."""
        path = self.entry_path(fingerprint, absolute_support)
        seq = self.journal.begin(OP_PUT, {"file": path.name})
        atomic_write_text(
            path,
            warehouse_entry_text(condensed, full_bytes=full_bytes),
            faults=self.faults,
            detail=f"entry {fingerprint[:12]}@{absolute_support}",
        )
        self.journal.commit(seq, OP_PUT)
        self._maybe_compact()

    def remove_entry(
        self, fingerprint: str, absolute_support: int, *, op: str = OP_DROP
    ) -> None:
        """Journaled unlink of one entry file (``op`` is drop or evict)."""
        path = self.entry_path(fingerprint, absolute_support)
        seq = self.journal.begin(op, {"file": path.name})
        try:
            path.unlink()
        except FileNotFoundError:
            pass
        self.journal.commit(seq, op)
        self._maybe_compact()

    # ------------------------------------------------------------------
    # lineage + chains
    # ------------------------------------------------------------------
    def lineage_links(self) -> dict[str, LineageLink]:
        with self._lock:
            return dict(self._lineage)

    def chain_records(self) -> dict[str, ChainRecord]:
        with self._lock:
            return dict(self._chains)

    def has_chain(self, child: str) -> bool:
        with self._lock:
            return child in self._chains

    def record_link(
        self,
        child: str,
        parent: str,
        delta_fingerprint: str | None,
        distance: int,
    ) -> None:
        """Journaled lineage link + manifest rewrite (idempotent)."""
        link = (parent, delta_fingerprint, distance)
        with self._lock:
            if self._lineage.get(child) == link:
                return
        seq = self.journal.begin(
            OP_LINK,
            {
                "child": child,
                "parent": parent,
                "delta": delta_fingerprint,
                "distance": distance,
            },
        )
        with self._lock:
            self._lineage[child] = link
        self._write_manifest()
        self.journal.commit(seq, OP_LINK)
        self._maybe_compact()

    def drop_links(self, children: Collection[str]) -> int:
        """Journaled removal of links + chain files; returns links dropped."""
        with self._lock:
            doomed = [c for c in children if c in self._lineage]
            doomed_chains = [c for c in children if c in self._chains]
        if not doomed and not doomed_chains:
            return 0
        seq = self.journal.begin(
            OP_UNLINK, {"children": sorted(set(doomed) | set(doomed_chains))}
        )
        with self._lock:
            for child in doomed:
                del self._lineage[child]
            for child in doomed_chains:
                del self._chains[child]
        for child in doomed_chains:
            try:
                self.chain_path(child).unlink()
            except FileNotFoundError:
                pass
        self._write_manifest()
        self.journal.commit(seq, OP_UNLINK)
        self._maybe_compact()
        return len(doomed)

    def write_chain(self, record: ChainRecord) -> None:
        """Journaled, atomic write of one chain record file."""
        with self._lock:
            if self._chains.get(record.child) == record:
                return
        seq = self.journal.begin(OP_CHAIN, {"child": record.child})
        atomic_write_text(
            self.chain_path(record.child),
            chain_record_text(record),
            faults=self.faults,
            detail=f"chain {record.child[:12]}",
        )
        with self._lock:
            self._chains[record.child] = record
        self.journal.commit(seq, OP_CHAIN)
        self._maybe_compact()

    def restore_version(
        self, db: TransactionDatabase
    ) -> VersionedDatabase | None:
        """Rebuild ``db``'s version chain from recovered records."""
        with self._lock:
            if not self._chains:
                return None
            records = dict(self._chains)
        return restore_version(db, records)

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------
    def plan_gc(self, warehoused: Collection[str]) -> GCPlan:
        with self._lock:
            return plan_gc(dict(self._lineage), dict(self._chains), warehoused)

    def gc(
        self, warehoused: Collection[str], *, dry_run: bool = False
    ) -> GCReport:
        """One full GC pass (prune + compaction), journaled unless dry."""
        plan = self.plan_gc(warehoused)
        if dry_run or plan.is_empty:
            return GCReport(
                dropped_links=len(plan.dropped_links),
                collapsed_hops=plan.collapsed_hops,
                rewritten_chains=len(plan.record_rewrites),
                dropped_chain_files=sum(
                    1
                    for child in plan.dropped_links
                    if self.has_chain(child)
                ),
                dry_run=dry_run,
            )
        seq = self.journal.begin(
            OP_GC,
            {
                "drop": sorted(plan.dropped_links),
                "rewrite": {
                    child: [link[0], link[1], link[2]]
                    for child, link in sorted(plan.link_rewrites.items())
                },
            },
        )
        for child, record in sorted(plan.record_rewrites.items()):
            atomic_write_text(
                self.chain_path(child),
                chain_record_text(record),
                faults=self.faults,
                detail=f"gc chain {child[:12]}",
            )
        dropped_files = 0
        for child in plan.dropped_links:
            target = self.chain_path(child)
            if target.exists():
                target.unlink()
                dropped_files += 1
        with self._lock:
            for child in plan.dropped_links:
                self._lineage.pop(child, None)
                self._chains.pop(child, None)
            for child, link in plan.link_rewrites.items():
                self._lineage[child] = link
            for child, record in plan.record_rewrites.items():
                self._chains[child] = record
        self._write_manifest()
        self.journal.commit(seq, OP_GC)
        self._maybe_compact()
        return GCReport(
            dropped_links=len(plan.dropped_links),
            collapsed_hops=plan.collapsed_hops,
            rewritten_chains=len(plan.record_rewrites),
            dropped_chain_files=dropped_files,
            dry_run=False,
        )

    def _maybe_compact(self) -> None:
        """Best-effort journal truncation past the size bound.

        Housekeeping only — the committed mutation already landed, so a
        failure (real or injected) here must not fail the caller; it
        just leaves a longer journal for the next recovery to compact.
        """
        if self.journal.size_bytes() <= JOURNAL_COMPACT_BYTES:
            return
        try:
            self.journal.compact()
        except (OSError, InjectedFaultError):
            pass

    # ------------------------------------------------------------------
    # manifest
    # ------------------------------------------------------------------
    def _write_manifest(self) -> None:
        with self._lock:
            lineage = {
                child: [link[0], link[1], link[2]]
                for child, link in sorted(self._lineage.items())
            }
        text = json.dumps(
            {"format": MANIFEST_FORMAT_VERSION, "lineage": lineage},
            sort_keys=True,
            indent=0,
        )
        atomic_write_text(
            self.manifest_path,
            text + "\n",
            faults=self.faults,
            write_point=PERSIST_MANIFEST,
            detail="manifest",
        )

    def footprint_bytes(self) -> int:
        """Total durable footprint: entries + chains + manifest + journal."""
        total = 0
        for path in self.directory.glob("*.patterns"):
            try:
                total += path.stat().st_size
            except OSError:
                continue
        if self.chains_dir.is_dir():
            for path in self.chains_dir.glob(f"*{CHAIN_SUFFIX}"):
                try:
                    total += path.stat().st_size
                except OSError:
                    continue
        for path in (self.manifest_path, self.journal.path):
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total
